#include "adversary/game.hpp"

#include <algorithm>
#include <cmath>

#include "adversary/placements.hpp"
#include "core/lower_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace linesearch {

GameResult play_theorem2_game(const Fleet& fleet, const int f,
                              const Real alpha, const GameOptions& options) {
  expects(f >= 0, "game: f must be >= 0");
  LS_OBS_SPAN("adversary.game.play");
  LS_OBS_COUNT("adversary.game.rounds", 1);
  const int n = static_cast<int>(fleet.size());
  const std::vector<Real> magnitudes = adversary_placements(n, alpha);

  std::vector<Real> targets;
  for (const Real m : magnitudes) {
    targets.push_back(m);
    targets.push_back(-m);
  }
  if (options.attack_turning_points) {
    const Real x0 = largest_placement(alpha);
    for (const int side : {+1, -1}) {
      // Windowed: only turns at magnitude <= x0 can pass the probe filter
      // below, and the window keeps the scan finite on analytic fleets.
      for (const Real magnitude : fleet.turning_positions_in(side, 0, x0)) {
        const Real probe = magnitude * (1 + tol::kLimitProbe);
        if (probe >= 1 && probe <= x0) {
          targets.push_back(static_cast<Real>(side) * probe);
        }
      }
    }
  }

  // Placements are independent, so the scan fans out over the pool;
  // outcomes land in target order and the reduction below replays the
  // serial first-wins tie-break exactly.
  std::vector<PlacementOutcome> outcomes = parallel_map(
      targets.size(),
      [&fleet, &targets, f](const std::size_t i) {
        AdversarialFaults adversary;
        PlacementOutcome outcome;
        outcome.target = targets[i];
        outcome.faults = adversary.choose_faults(fleet, outcome.target, f);
        outcome.detection_time =
            fleet.detection_time_with_faults(outcome.target, outcome.faults);
        outcome.ratio = outcome.detection_time / std::fabs(outcome.target);
        return outcome;
      },
      options.threads);

  LS_OBS_COUNT("adversary.game.placements", outcomes.size());
  LS_OBS_OBSERVE("adversary.game.placements_per_round", outcomes.size(),
                 {8, 16, 32, 64, 128});

  GameResult result;
  result.forced_ratio = 0;
  bool first = true;
  for (PlacementOutcome& outcome : outcomes) {
    if (first || outcome.ratio > result.forced_ratio) {
      result.forced_ratio = outcome.ratio;
      result.best = outcome;
      first = false;
    } else if (outcome.ratio == result.forced_ratio) {
      // First-wins tie: a later placement matched the forced ratio but
      // did not displace the witness (the determinism-sensitive branch).
      LS_OBS_COUNT("adversary.game.tie_breaks", 1);
    }
    if (options.keep_outcomes) result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

ByzantineGameResult play_byzantine_game(const Fleet& fleet, const int f,
                                        const Real alpha,
                                        const GameOptions& options) {
  expects(f >= 0, "byzantine game: f must be >= 0");
  LS_OBS_SPAN("adversary.byzantine.play");
  LS_OBS_COUNT("adversary.game.rounds", 1);
  const int n = static_cast<int>(fleet.size());
  const std::vector<Real> magnitudes = adversary_placements(n, alpha);

  std::vector<Real> points;
  for (const Real m : magnitudes) {
    points.push_back(m);
    points.push_back(-m);
  }
  if (options.attack_turning_points) {
    const Real x0 = largest_placement(alpha);
    for (const int side : {+1, -1}) {
      for (const Real magnitude : fleet.turning_positions_in(side, 0, x0)) {
        const Real probe = magnitude * (1 + tol::kLimitProbe);
        if (probe >= 1 && probe <= x0) {
          points.push_back(static_cast<Real>(side) * probe);
        }
      }
    }
  }

  // Every ordered (target, lie) pair with lie != target, in point order.
  std::vector<std::pair<Real, Real>> pairs;
  for (const Real target : points) {
    for (const Real lie : points) {
      if (lie != target) pairs.emplace_back(target, lie);
    }
  }

  std::vector<LiePlacementOutcome> outcomes = parallel_map(
      pairs.size(),
      [&fleet, &pairs, f](const std::size_t i) {
        LiePlacementOutcome outcome;
        outcome.target = pairs[i].first;
        outcome.lie_position = pairs[i].second;
        // The strongest liar set against THIS target: the f earliest
        // visitors, exactly the blind set of the crash/blind adversary.
        AdversarialFaults adversary;
        outcome.liars = adversary.choose_faults(fleet, outcome.target, f);
        outcome.confirm_time =
            byzantine_quorum_time(fleet, outcome.target, outcome.liars, f);
        outcome.ratio = outcome.confirm_time / std::fabs(outcome.target);
        // The lie is claimed by the liars alone; honest robots only ever
        // corroborate the true target.  Quorum needs f+1 distinct
        // supporters, so this stays false unless the budget is violated.
        const auto supporters =
            std::count(outcome.liars.begin(), outcome.liars.end(), true);
        outcome.false_claim_confirmed = supporters >= f + 1;
        // Refutation: the (f+1)-st distinct honest visit to the lie —
        // f+1 "nothing there" reports contain an honest one.
        outcome.refute_time =
            byzantine_quorum_time(fleet, outcome.lie_position, outcome.liars,
                                  f);
        return outcome;
      },
      options.threads);

  LS_OBS_COUNT("adversary.lie_placements", outcomes.size());

  ByzantineGameResult result;
  result.forced_ratio = 0;
  bool first = true;
  for (LiePlacementOutcome& outcome : outcomes) {
    result.any_false_confirmed =
        result.any_false_confirmed || outcome.false_claim_confirmed;
    if (first || outcome.ratio > result.forced_ratio) {
      result.forced_ratio = outcome.ratio;
      result.best = outcome;
      first = false;
    } else if (outcome.ratio == result.forced_ratio) {
      LS_OBS_COUNT("adversary.game.tie_breaks", 1);
    }
    if (options.keep_outcomes) result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

Real comfortable_alpha(const int n, const Real shrink) {
  expects(shrink > 0 && shrink <= 1, "comfortable_alpha: shrink in (0,1]");
  const Real alpha_star = theorem2_alpha(n);
  return 3 + shrink * (alpha_star - 3);
}

}  // namespace linesearch

#include "adversary/game.hpp"

#include <algorithm>
#include <cmath>

#include "adversary/placements.hpp"
#include "core/lower_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace linesearch {

GameResult play_theorem2_game(const Fleet& fleet, const int f,
                              const Real alpha, const GameOptions& options) {
  expects(f >= 0, "game: f must be >= 0");
  LS_OBS_SPAN("adversary.game.play");
  LS_OBS_COUNT("adversary.game.rounds", 1);
  const int n = static_cast<int>(fleet.size());
  const std::vector<Real> magnitudes = adversary_placements(n, alpha);

  std::vector<Real> targets;
  for (const Real m : magnitudes) {
    targets.push_back(m);
    targets.push_back(-m);
  }
  if (options.attack_turning_points) {
    const Real x0 = largest_placement(alpha);
    for (const int side : {+1, -1}) {
      // Windowed: only turns at magnitude <= x0 can pass the probe filter
      // below, and the window keeps the scan finite on analytic fleets.
      for (const Real magnitude : fleet.turning_positions_in(side, 0, x0)) {
        const Real probe = magnitude * (1 + tol::kLimitProbe);
        if (probe >= 1 && probe <= x0) {
          targets.push_back(static_cast<Real>(side) * probe);
        }
      }
    }
  }

  // Placements are independent, so the scan fans out over the pool;
  // outcomes land in target order and the reduction below replays the
  // serial first-wins tie-break exactly.
  std::vector<PlacementOutcome> outcomes = parallel_map(
      targets.size(),
      [&fleet, &targets, f](const std::size_t i) {
        AdversarialFaults adversary;
        PlacementOutcome outcome;
        outcome.target = targets[i];
        outcome.faults = adversary.choose_faults(fleet, outcome.target, f);
        outcome.detection_time =
            fleet.detection_time_with_faults(outcome.target, outcome.faults);
        outcome.ratio = outcome.detection_time / std::fabs(outcome.target);
        return outcome;
      },
      options.threads);

  LS_OBS_COUNT("adversary.game.placements", outcomes.size());
  LS_OBS_OBSERVE("adversary.game.placements_per_round", outcomes.size(),
                 {8, 16, 32, 64, 128});

  GameResult result;
  result.forced_ratio = 0;
  bool first = true;
  for (PlacementOutcome& outcome : outcomes) {
    if (first || outcome.ratio > result.forced_ratio) {
      result.forced_ratio = outcome.ratio;
      result.best = outcome;
      first = false;
    } else if (outcome.ratio == result.forced_ratio) {
      // First-wins tie: a later placement matched the forced ratio but
      // did not displace the witness (the determinism-sensitive branch).
      LS_OBS_COUNT("adversary.game.tie_breaks", 1);
    }
    if (options.keep_outcomes) result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

Real comfortable_alpha(const int n, const Real shrink) {
  expects(shrink > 0 && shrink <= 1, "comfortable_alpha: shrink in (0,1]");
  const Real alpha_star = theorem2_alpha(n);
  return 3 + shrink * (alpha_star - 3);
}

}  // namespace linesearch

#include "adversary/classify.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {

std::string to_string(const TrajectoryClass c) {
  switch (c) {
    case TrajectoryClass::kPositive:
      return "positive";
    case TrajectoryClass::kNegative:
      return "negative";
    case TrajectoryClass::kNeither:
      return "neither";
    case TrajectoryClass::kIncomplete:
      return "incomplete";
  }
  return "unknown";
}

std::array<Real, 4> checkpoint_times(const Trajectory& robot, const Real x) {
  expects(x > 1, "checkpoint_times: x must exceed 1");
  std::array<Real, 4> times{};
  const std::array<Real, 4> points{-x, -1, 1, x};
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::optional<Real> visit = robot.first_visit_time(points[i]);
    times[i] = visit ? *visit : kInfinity;
  }
  return times;
}

TrajectoryClass classify_trajectory(const Trajectory& robot, const Real x) {
  const std::array<Real, 4> t = checkpoint_times(robot, x);
  const Real t_neg_x = t[0], t_neg_1 = t[1], t_pos_1 = t[2], t_pos_x = t[3];
  for (const Real time : t) {
    if (std::isinf(time)) return TrajectoryClass::kIncomplete;
  }
  if (t_pos_1 < t_pos_x && t_pos_x < t_neg_1 && t_neg_1 < t_neg_x) {
    return TrajectoryClass::kPositive;
  }
  if (t_neg_1 < t_neg_x && t_neg_x < t_pos_1 && t_pos_1 < t_pos_x) {
    return TrajectoryClass::kNegative;
  }
  return TrajectoryClass::kNeither;
}

bool visits_both_early(const Trajectory& robot, const Real x) {
  expects(x > 1, "visits_both_early: x must exceed 1");
  const std::optional<Real> pos = robot.first_visit_time(x);
  const std::optional<Real> neg = robot.first_visit_time(-x);
  if (!pos || !neg) return false;
  const Real deadline = 3 * x + 2;
  return *pos < deadline && *neg < deadline;
}

Real both_visited_time(const Trajectory& robot, const Real y) {
  const std::optional<Real> pos = robot.first_visit_time(y);
  const std::optional<Real> neg = robot.first_visit_time(-y);
  if (!pos || !neg) return kInfinity;
  return std::max(*pos, *neg);
}

}  // namespace linesearch

// adversary/classify.hpp — positive/negative trajectory classification
// (Section 4, Figure 6, Lemmas 6-7).
//
// For x > 1, a robot has a *positive trajectory for x* if its first
// visits to {-x, -1, 1, x} occur in the order 1, x, -1, -x, and a
// *negative trajectory for x* if they occur in the order -1, -x, 1, x.
// Lemma 6: a robot visiting both ±x strictly before time 3x+2 must follow
// one of the two.  Lemma 7: a robot following either one for x cannot
// reach both ±y before time 2x+y (y >= 1).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "sim/trajectory.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Classification result.
enum class TrajectoryClass {
  kPositive,   ///< first visits ordered 1, x, -1, -x
  kNegative,   ///< first visits ordered -1, -x, 1, x
  kNeither,    ///< visits all four points in some other order
  kIncomplete, ///< misses at least one of {-x, -1, 1, x}
};

[[nodiscard]] std::string to_string(TrajectoryClass c);

/// First-visit times to the four checkpoints of the definition, in the
/// fixed order [-x, -1, 1, x]; kInfinity where the robot never arrives.
[[nodiscard]] std::array<Real, 4> checkpoint_times(const Trajectory& robot,
                                                   Real x);

/// Classify `robot` with respect to x > 1.
[[nodiscard]] TrajectoryClass classify_trajectory(const Trajectory& robot,
                                                  Real x);

/// Lemma 6 premise: does the robot visit both ±x strictly before 3x+2?
[[nodiscard]] bool visits_both_early(const Trajectory& robot, Real x);

/// Time by which the robot has visited BOTH of ±y (kInfinity if never).
[[nodiscard]] Real both_visited_time(const Trajectory& robot, Real y);

}  // namespace linesearch

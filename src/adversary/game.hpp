// adversary/game.hpp — play the Theorem-2 adversary against an arbitrary
// fleet.
//
// The adversary inspects the fleet's trajectories, considers every signed
// placement ±1, ±x_{n-1}, ..., ±x_0 (plus, optionally, the fleet's own
// turning-point discontinuities), and for each placement makes faulty the
// f robots that would otherwise detect earliest.  The result is the best
// ratio the adversary can force.  Theorem 2 guarantees
// forced ratio >= alpha against EVERY algorithm with n < 2f+2 robots; the
// game demonstrates the bound constructively against A(n,f), the
// baselines, and anything a user plugs in.
#pragma once

#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// One inspected placement.
struct PlacementOutcome {
  Real target = 0;            ///< signed target position
  Real detection_time = 0;    ///< worst-case (adversarial-fault) detection
  Real ratio = 0;             ///< detection_time / |target|
  std::vector<bool> faults;   ///< the fault set the adversary chose
};

/// Result of a full adversarial game.
struct GameResult {
  Real forced_ratio = 0;                   ///< max ratio over placements
  PlacementOutcome best;                   ///< the winning placement
  std::vector<PlacementOutcome> outcomes;  ///< all placements, in order
};

/// Game options.
struct GameOptions {
  /// Also attack just past the fleet's own turning points (the K(x)
  /// discontinuities), not only the Theorem-2 placements.  This usually
  /// forces a strictly larger ratio (up to the strategy's true CR).
  bool attack_turning_points = false;

  /// Keep per-placement outcomes (can be large with
  /// attack_turning_points).
  bool keep_outcomes = true;

  /// Workers for the placement scan (util/parallel): 1 = serial (the
  /// default), 0 = LINESEARCH_THREADS env var, then hardware.  Outcomes
  /// are evaluated placement-by-placement into input order and reduced
  /// with the serial scan's first-wins tie-break, so the result is
  /// identical for every thread count.
  int threads = 1;
};

/// Run the adversary at threat level alpha against `fleet` with fault
/// budget f.  Requires the Theorem-2 feasibility condition for
/// (n = fleet.size(), alpha) and that the fleet was built to extent >=
/// largest_placement(alpha) (detection times at un-covered placements
/// would be infinite, which the game reports as an immediate win with
/// ratio kInfinity).
[[nodiscard]] GameResult play_theorem2_game(const Fleet& fleet, int f,
                                            Real alpha,
                                            const GameOptions& options = {});

/// Threat level used by demos/tests: a fraction `shrink` of the way from
/// 3 to theorem2_alpha(n) (shrink in (0,1]; smaller values keep
/// largest_placement — and hence the required fleet extent — moderate).
[[nodiscard]] Real comfortable_alpha(int n, Real shrink = 0.9L);

/// One inspected (target, lie) pair of the Byzantine game.
struct LiePlacementOutcome {
  Real target = 0;        ///< the true target position
  Real lie_position = 0;  ///< where the liars claim it is instead
  Real confirm_time = 0;  ///< quorum (f+1 corroborations) at the target
  Real ratio = 0;         ///< confirm_time / |target|
  Real refute_time = 0;   ///< (f+1)-st honest visit to the lie; kInfinity
                          ///< when the lie is never formally refuted
  bool false_claim_confirmed = false;  ///< lie reached quorum (never, by
                                       ///< the f+1 pigeonhole — asserted)
  std::vector<bool> liars;             ///< the liar set the adversary chose
};

/// Result of a full Byzantine lie-placement game.
struct ByzantineGameResult {
  Real forced_ratio = 0;        ///< max quorum ratio over pairs
  LiePlacementOutcome best;     ///< the winning pair
  bool any_false_confirmed = false;  ///< any lie reached quorum (must stay
                                     ///< false; the oracle pins it)
  std::vector<LiePlacementOutcome> outcomes;  ///< all pairs, in order
};

/// The Byzantine analogue of play_theorem2_game: the adversary picks a
/// true target AND a lie placement from the same signed Theorem-2
/// placement set (lie != target; turning-point probes too when
/// options.attack_turning_points).  Per pair it makes liars of the f
/// robots that visit the target earliest — the liars suppress the find
/// and claim the lie instead — and the searcher pays the quorum time:
/// the (f+1)-st distinct honest first visit (sim's
/// byzantine_quorum_time).  Lies are corroborated only by the <= f
/// liars, so no pair can confirm a false position; the game computes
/// that from the model and reports it rather than assuming it.
[[nodiscard]] ByzantineGameResult play_byzantine_game(
    const Fleet& fleet, int f, Real alpha, const GameOptions& options = {});

}  // namespace linesearch

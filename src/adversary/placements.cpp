#include "adversary/placements.hpp"

#include <algorithm>

#include "core/lower_bound.hpp"
#include "util/error.hpp"

namespace linesearch {

bool placements_feasible(const int n, const Real alpha) {
  expects(n >= 1, "placements_feasible: n must be >= 1");
  if (alpha <= 3) return false;
  // Log-domain residual <= 0 means (alpha-1)^n (alpha-3) <= 2^(n+1).
  return theorem2_residual(n, alpha) <= 0;
}

std::vector<Real> adversary_placements(const int n, const Real alpha) {
  expects(n >= 1, "adversary_placements: n must be >= 1");
  expects(alpha > 3, "adversary_placements: alpha must exceed 3");
  expects(placements_feasible(n, alpha),
          "adversary_placements: (alpha-1)^n (alpha-3) must be <= 2^(n+1)");
  std::vector<Real> magnitudes;
  magnitudes.reserve(static_cast<std::size_t>(n) + 1);
  magnitudes.push_back(1);
  for (int i = n - 1; i >= 0; --i) {
    magnitudes.push_back(theorem2_placement(n, alpha, i));
  }
  ensures(std::is_sorted(magnitudes.begin(), magnitudes.end()),
          "placements must be increasing (Eq. 20)");
  return magnitudes;
}

Real largest_placement(const Real alpha) {
  expects(alpha > 3, "largest_placement: alpha must exceed 3");
  return 2 / (alpha - 3);
}

}  // namespace linesearch

// adversary/placements.hpp — the adversarial target placements of
// Theorem 2's proof (Figure 7).
//
// For a chosen alpha > 3 with (alpha-1)^n (alpha-3) <= 2^(n+1), the
// adversary threatens to place the target at one of
//   {±1, ±x_{n-1}, ..., ±x_0},   x_i = 2^(i+1) / ((alpha-1)^i (alpha-3)),
// which satisfy x_i = (alpha-1)/2 * x_{i+1} (Eq. 16) and
// x_0 > x_1 > ... > x_{n-1} > 1 (Eqns 19-20).  Any algorithm that fails
// to give f+1 distinct visits to some ±x_i (or ±1) by time alpha*x_i is
// immediately lost; Theorem 2 shows no algorithm with n < 2f+2 robots can
// defend all placements.
#pragma once

#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// The full placement set for n robots at threat level alpha:
/// candidate magnitudes {1, x_{n-1}, ..., x_0}, sorted increasing.
/// Requires alpha > 3 and the Theorem-2 feasibility condition
/// (alpha-1)^n (alpha-3) <= 2^(n+1); throws PreconditionError otherwise.
[[nodiscard]] std::vector<Real> adversary_placements(int n, Real alpha);

/// Check Theorem 2's feasibility condition for (n, alpha).
[[nodiscard]] bool placements_feasible(int n, Real alpha);

/// Largest placement magnitude x_0 = 2/(alpha-3); the fleet under attack
/// must be built to at least this extent for the game to be meaningful.
[[nodiscard]] Real largest_placement(Real alpha);

}  // namespace linesearch

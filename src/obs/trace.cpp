#include "obs/trace.hpp"

#include <string>

namespace linesearch::obs {

SpanHandle register_span(const std::string_view name) {
  Registry& registry = Registry::instance();
  const std::string base = "span." + std::string(name);
  SpanHandle handle;
  handle.count_id = registry.counter(base + ".count");
  handle.nanos_id =
      registry.counter(base + ".nanos", /*deterministic=*/false);
  return handle;
}

}  // namespace linesearch::obs

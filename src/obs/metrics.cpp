#include "obs/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace linesearch::obs {

namespace {

/// Thread-local pointer into Registry::sinks_ (the registry is a
/// process-wide singleton, so one slot of TLS suffices).  Never freed:
/// the registry owns the sink and outlives every recording thread.
thread_local Registry::Sink* tl_sink = nullptr;

}  // namespace

const char* metric_type_name(const MetricType type) noexcept {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

MetricId Registry::register_metric(const std::string_view name,
                                   const MetricType type,
                                   const bool deterministic,
                                   std::vector<std::uint64_t> bounds) {
  expects(!name.empty(), "obs: metric name must be non-empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const MetricDef& def = defs_[it->second];
    expects(def.type == type && def.deterministic == deterministic &&
                def.bounds == bounds,
            "obs: metric re-registered with a different definition");
    return it->second;
  }
  std::uint32_t slots = 1;
  if (type == MetricType::kHistogram) {
    expects(!bounds.empty(), "obs: histogram needs at least one bound");
    expects(bounds.size() <= kMaxHistogramBounds,
            "obs: too many histogram bounds");
    expects(std::is_sorted(bounds.begin(), bounds.end()) &&
                std::adjacent_find(bounds.begin(), bounds.end()) ==
                    bounds.end(),
            "obs: histogram bounds must be strictly increasing");
    // bounds.size() buckets + overflow + count + sum
    slots = static_cast<std::uint32_t>(bounds.size()) + 3;
  }
  expects(next_slot_ + slots <= kMaxSlots,
          "obs: sink slot capacity exhausted (too many metrics)");
  expects(defs_.size() < kMaxMetrics, "obs: metric capacity exhausted");
  const auto id = static_cast<MetricId>(defs_.size());
  HotDef& hot = hot_[id];
  hot.first_slot = next_slot_;
  hot.bound_count = static_cast<std::uint32_t>(bounds.size());
  std::copy(bounds.begin(), bounds.end(), hot.bounds.begin());
  defs_.push_back(MetricDef{std::string(name), type, deterministic,
                            std::move(bounds), next_slot_, slots});
  next_slot_ += slots;
  by_name_.emplace(defs_.back().name, id);
  return id;
}

MetricId Registry::counter(const std::string_view name,
                           const bool deterministic) {
  return register_metric(name, MetricType::kCounter, deterministic, {});
}

MetricId Registry::gauge(const std::string_view name,
                         const bool deterministic) {
  return register_metric(name, MetricType::kGauge, deterministic, {});
}

MetricId Registry::histogram(const std::string_view name,
                             std::vector<std::uint64_t> bounds,
                             const bool deterministic) {
  return register_metric(name, MetricType::kHistogram, deterministic,
                         std::move(bounds));
}

Registry::Sink& Registry::local_sink() {
  if (tl_sink == nullptr) {
    const std::lock_guard<std::mutex> lock(mutex_);
    sinks_.push_back(std::make_unique<Sink>());
    tl_sink = sinks_.back().get();
  }
  return *tl_sink;
}

void Registry::add(const MetricId id, const std::uint64_t delta) {
  const std::uint32_t slot = hot_[id].first_slot;  // write-once entry
  local_sink().slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_to(const MetricId id,
                        const std::uint64_t value) {
  std::atomic<std::uint64_t>& slot =
      local_sink().slots[hot_[id].first_slot];
  // Thread-local slot: no other writer, so load + store suffices.
  if (value > slot.load(std::memory_order_relaxed)) {
    slot.store(value, std::memory_order_relaxed);
  }
}

void Registry::observe(const MetricId id,
                       const std::uint64_t value) {
  const HotDef& def = hot_[id];
  Sink& sink = local_sink();
  const std::size_t buckets = def.bound_count;
  // First bucket whose inclusive upper bound holds the value; past the
  // last bound, the overflow bucket at index bound_count.
  std::size_t bucket = buckets;
  for (std::size_t b = 0; b < buckets; ++b) {
    if (value <= def.bounds[b]) {
      bucket = b;
      break;
    }
  }
  const std::uint32_t base = def.first_slot;
  sink.slots[base + bucket].fetch_add(1, std::memory_order_relaxed);
  sink.slots[base + buckets + 1].fetch_add(1, std::memory_order_relaxed);
  sink.slots[base + buckets + 2].fetch_add(value,
                                           std::memory_order_relaxed);
}

void Registry::add_named(const std::string_view name,
                         const std::uint64_t delta) {
  add(counter(name), delta);
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(defs_.size());
  for (const MetricDef& def : defs_) {
    MetricSnapshot snap;
    snap.name = def.name;
    snap.type = def.type;
    snap.deterministic = def.deterministic;
    snap.bounds = def.bounds;
    const auto fold = [&](const std::uint32_t offset) {
      std::uint64_t total = 0;
      for (const std::unique_ptr<Sink>& sink : sinks_) {
        const std::uint64_t part =
            sink->slots[def.first_slot + offset].load(
                std::memory_order_relaxed);
        total = def.type == MetricType::kGauge ? std::max(total, part)
                                               : total + part;
      }
      return total;
    };
    if (def.type == MetricType::kHistogram) {
      const std::size_t buckets = def.bounds.size() + 1;
      snap.buckets.reserve(buckets);
      for (std::size_t b = 0; b < buckets; ++b) {
        snap.buckets.push_back(fold(static_cast<std::uint32_t>(b)));
      }
      snap.count = fold(static_cast<std::uint32_t>(buckets));
      snap.sum = fold(static_cast<std::uint32_t>(buckets + 1));
      snap.value = snap.count;
    } else {
      snap.value = fold(0);
      snap.count = snap.value;
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<Sink>& sink : sinks_) {
    for (std::atomic<std::uint64_t>& slot : sink->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return defs_.size();
}

}  // namespace linesearch::obs

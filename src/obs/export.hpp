// obs/export.hpp — structured JSON export of the metric registry.
//
// One canonical serialization, shared by BENCH_perf.json (obs/
// perf_report), the tools/stats_main CLI, and the golden-counter
// regression fixtures: metrics sorted by name, each as one object.
// Counters/gauges carry "value"; histograms add "count", "sum", "bounds"
// and "buckets" (last bucket = overflow).  Every entry carries its
// "type" and "deterministic" flag so consumers (and the determinism
// tests) can filter wall-clock counters without knowing the catalogue.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/jsonio.hpp"

namespace linesearch::obs {

/// Emit `snapshots` as a JSON array (the writer must be positioned where
/// a value is expected — typically right after a key).
void write_metrics_array(JsonWriter& json,
                         const std::vector<MetricSnapshot>& snapshots);

/// Emit the registry's current snapshot (all metrics, or only the
/// deterministic ones) as a JSON array.
void write_metrics_array(JsonWriter& json, bool deterministic_only = false);

/// Standalone JSON document: {"schema": "linesearch-metrics/1",
/// "enabled": ..., "metrics": [...]}.
[[nodiscard]] std::string metrics_to_json(bool deterministic_only = false);

/// The deterministic subset of a snapshot (drops span nanos etc.) —
/// exactly what must be bit-identical across thread counts.
[[nodiscard]] std::vector<MetricSnapshot> deterministic_subset(
    std::vector<MetricSnapshot> snapshots);

}  // namespace linesearch::obs

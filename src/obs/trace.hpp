// obs/trace.hpp — RAII scoped-span tracing on top of obs/metrics.
//
// A span names a region of work ("eval.batch.run", "runtime.world.
// execute").  Entering the region bumps `span.<name>.count` (an ordinary
// deterministic counter: the number of entries is a pure function of the
// workload) and, on exit, adds the elapsed steady-clock nanoseconds to
// `span.<name>.nanos` — a counter flagged `deterministic = false`, since
// wall-clock time is the one quantity this layer cannot make
// reproducible.  Tests assert on span COUNTS; exporters report both.
//
// Spans are metrics, not a call-stack: nesting works (each level has its
// own pair of counters) but there is no parent/child edge — per-phase
// attribution is by naming convention (`<area>.<component>.<verb>`, see
// docs/observability.md).
//
// Cost: two steady_clock reads plus two thread-local relaxed adds per
// span.  Place spans at call granularity (a CR scan, a game, a batch),
// never per probe; per-event accounting belongs to plain counters.  With
// LINESEARCH_OBS=OFF the macro expands to nothing and ScopedSpan is an
// empty no-op type.
#pragma once

#include "obs/metrics.hpp"

#if LINESEARCH_OBS_ENABLED
#include <chrono>
#endif

namespace linesearch::obs {

/// The two metric ids behind one span name (interned once per call site
/// by LS_OBS_SPAN's function-local static).
struct SpanHandle {
  MetricId count_id = 0;
  MetricId nanos_id = 0;
};

/// Intern `span.<name>.count` (deterministic) and `span.<name>.nanos`
/// (non-deterministic); both are counters.
[[nodiscard]] SpanHandle register_span(std::string_view name);

#if LINESEARCH_OBS_ENABLED

/// RAII region marker; see the header comment.
class ScopedSpan {
 public:
  explicit ScopedSpan(const SpanHandle& handle)
      : handle_(handle), start_(std::chrono::steady_clock::now()) {
    Registry::instance().add(handle_.count_id, 1);
  }

  ~ScopedSpan() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Registry::instance().add(
        handle_.nanos_id,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanHandle handle_;
  std::chrono::steady_clock::time_point start_;
};

#else  // LINESEARCH_OBS_ENABLED == 0

class ScopedSpan {
 public:
  explicit ScopedSpan(const SpanHandle&) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // LINESEARCH_OBS_ENABLED

}  // namespace linesearch::obs

#if LINESEARCH_OBS_ENABLED

#define LS_OBS_SPAN_CONCAT_(a, b) a##b
#define LS_OBS_SPAN_CONCAT(a, b) LS_OBS_SPAN_CONCAT_(a, b)

/// Open a span covering the rest of the enclosing scope.
#define LS_OBS_SPAN(name)                                                  \
  static const ::linesearch::obs::SpanHandle LS_OBS_SPAN_CONCAT(           \
      ls_obs_span_handle_, __LINE__) = ::linesearch::obs::register_span(   \
      name);                                                               \
  const ::linesearch::obs::ScopedSpan LS_OBS_SPAN_CONCAT(                  \
      ls_obs_span_, __LINE__)(LS_OBS_SPAN_CONCAT(ls_obs_span_handle_,      \
                                                 __LINE__))

#else

#define LS_OBS_SPAN(name) ((void)0)

#endif  // LINESEARCH_OBS_ENABLED

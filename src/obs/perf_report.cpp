#include "obs/perf_report.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/lower_bound.hpp"
#include "eval/batch.hpp"
#include "eval/byzantine.hpp"
#include "eval/cr_eval.hpp"
#include "eval/exact.hpp"
#include "eval/expectation.hpp"
#include "eval/kernels.hpp"
#include "eval/montecarlo.hpp"
#include "eval/validation.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/supervisor.hpp"
#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"
#include "util/parallel.hpp"

namespace linesearch::obs {

namespace {

using Clock = std::chrono::steady_clock;

double millis_since(const Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double micros_since(const Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Nearest-rank percentile of a latency sample (values copied: the
/// caller's insertion order is the arrival order and stays meaningful).
double percentile(std::vector<double> values, const double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const auto index = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

/// The dense (f, window) job list the sweep workloads time: every fault
/// budget of an A(7, 4) fleet crossed with three windows — the grid
/// shape bench_fig5/analysis sweeps evaluate for real.
std::vector<CrBatchJob> dense_cr_jobs(const Fleet& fleet) {
  std::vector<CrBatchJob> jobs;
  for (int f = 0; f < static_cast<int>(fleet.size()); ++f) {
    for (const Real window : {12.0L, 24.0L, 48.0L}) {
      jobs.push_back(
          {&fleet, f, {.window_hi = window, .interior_samples = 16}});
    }
  }
  return jobs;
}

Real checksum(const std::vector<CrEvalResult>& results) {
  Real sum = 0;
  for (const CrEvalResult& r : results) sum += r.cr + r.argmax;
  return sum;
}

}  // namespace

void write_perf_report(std::ostream& out, const PerfReportOptions& options) {
  expects(options.build_reps >= 1, "perf_report: build_reps must be >= 1");
  expects(options.kernel_reps >= 1, "perf_report: kernel_reps must be >= 1");
  expects(options.sweep_window_hi > 1,
          "perf_report: sweep_window_hi must exceed 1");
  expects(options.probabilistic_mc_trials >= 1,
          "perf_report: probabilistic_mc_trials must be >= 1");

  if (options.include_metrics) Registry::instance().reset();

  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(options.dense_coverage);
  const std::vector<CrBatchJob> jobs = dense_cr_jobs(fleet);

  const auto serial_start = Clock::now();
  const std::vector<CrEvalResult> serial =
      measure_cr_batch(jobs, {.threads = 1});
  const double serial_ms = millis_since(serial_start);

  const auto parallel_start = Clock::now();
  const std::vector<CrEvalResult> parallel =
      measure_cr_batch(jobs, {.threads = 0});
  const double parallel_ms = millis_since(parallel_start);

  bool identical = true;
  if (!options.timings_only) {
    identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
      identical = serial[i].cr == parallel[i].cr &&
                  serial[i].argmax == parallel[i].argmax;
    }
  }

  const auto certified_start = Clock::now();
  const ExactCrResult certified = certified_cr(fleet, 4, {.window_hi = 32});
  const double certified_ms = millis_since(certified_start);

  const Real alpha = comfortable_alpha(3, 0.8L);
  const Fleet game_fleet =
      ProportionalAlgorithm(3, 1).build_fleet(largest_placement(alpha) * 4);
  const auto game_start = Clock::now();
  const GameResult game = play_theorem2_game(game_fleet, 1, alpha);
  const double game_ms = millis_since(game_start);

  // analytic_sweep: the A(12, 11) schedule built analytic (O(1)
  // closed-form state) and evaluated over options.sweep_window_hi.  In
  // the full mode the SAME schedule is also built dense (waypoints
  // materialized out to 4 * window) and swept, and the checksums must
  // agree bit for bit; timings-only skips the dense counterpart, which
  // exists purely to verify the analytic result.  Builds are timed over
  // build_reps iterations because one build is below clock resolution;
  // the size fold keeps the loop's results observably used.
  const ProportionalAlgorithm wide(12, 11);
  std::size_t build_sink = 0;

  double dense_build_ms = 0;
  double dense_sweep_ms = 0;
  std::size_t dense_footprint = 0;
  CrEvalResult dense_sweep;
  if (!options.timings_only) {
    const auto dense_build_start = Clock::now();
    for (int rep = 0; rep < options.build_reps - 1; ++rep) {
      build_sink += wide.build_fleet(4 * options.sweep_window_hi).size();
    }
    const Fleet wide_dense = wide.build_fleet(4 * options.sweep_window_hi);
    dense_build_ms = millis_since(dense_build_start);

    const auto dense_sweep_start = Clock::now();
    dense_sweep =
        measure_cr(wide_dense, 11, {.window_hi = options.sweep_window_hi});
    dense_sweep_ms = millis_since(dense_sweep_start);

    for (RobotId id = 0; id < wide_dense.size(); ++id) {
      dense_footprint += wide_dense.robot(id).source().footprint_bytes();
    }
  }

  const auto analytic_build_start = Clock::now();
  for (int rep = 0; rep < options.build_reps - 1; ++rep) {
    build_sink += wide.build_unbounded_fleet().size();
  }
  const Fleet wide_analytic = wide.build_unbounded_fleet();
  const double analytic_build_ms = millis_since(analytic_build_start);

  const auto analytic_sweep_start = Clock::now();
  const CrEvalResult analytic_sweep =
      measure_cr(wide_analytic, 11, {.window_hi = options.sweep_window_hi});
  const double analytic_sweep_ms = millis_since(analytic_sweep_start);

  std::size_t analytic_footprint = 0;
  for (RobotId id = 0; id < wide_analytic.size(); ++id) {
    analytic_footprint += wide_analytic.robot(id).source().footprint_bytes();
  }

  // kernel_sweep: the SoA kernel path (eval/kernels measure_cr_kernel)
  // raced against the scalar reference scan (detail::measure_cr_with
  // over direct, uncached Fleet::detection_time queries) on two shapes.
  // The dense leg runs the deep wide regimes A(12, 11) and A(12, 10)
  // built dense at 4x the race window — high-f proportional schedules
  // pack many segments into the window, which is exactly the regime
  // where the per-probe segment walk the kernel replaces with one
  // frontier sweep per robot dominates the scalar scan.  The analytic
  // leg sweeps A(12, 11) on the analytic backend over the full window.
  // Both runs are single-threaded and uncached, so the ratio isolates
  // the SoA restructuring itself; full mode also demands bitwise
  // identity of every result field.  Fleet builds happen outside the
  // timed regions in both modes.
  const auto scalar_scan = [](const Fleet& target, const int faults,
                              const CrEvalOptions& scan_options) {
    return detail::measure_cr_with(
        target, faults, scan_options, [&target, faults](const Real x) {
          return target.detection_time(x, faults);
        });
  };
  const Real kernel_window =
      options.sweep_window_hi < 2048 ? options.sweep_window_hi : 2048;
  const CrEvalOptions kernel_scan{.window_hi = kernel_window,
                                  .interior_samples = 16};
  const Fleet kernel_dense_a = wide.build_fleet(4 * kernel_window);
  const Fleet kernel_dense_b =
      ProportionalAlgorithm(12, 10).build_fleet(4 * kernel_window);
  const std::vector<std::pair<const Fleet*, int>> kernel_jobs{
      {&kernel_dense_a, 11}, {&kernel_dense_b, 10}};

  // Every leg is a few milliseconds end to end, so a single pass is
  // dominated by scheduler and frequency noise; each leg runs
  // kernel_reps times and reports its fastest pass.  Results are
  // deterministic, so re-running a leg cannot change what the identity
  // check below sees.
  const auto best_of = [&options](auto&& leg) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < options.kernel_reps; ++rep) {
      const auto start = Clock::now();
      leg();
      best = std::min(best, millis_since(start));
    }
    return best;
  };

  std::vector<CrEvalResult> kernel_scalar;
  const double kernel_scalar_ms = best_of([&] {
    kernel_scalar.clear();
    kernel_scalar.reserve(kernel_jobs.size());
    for (const auto& [target, faults] : kernel_jobs) {
      kernel_scalar.push_back(scalar_scan(*target, faults, kernel_scan));
    }
  });

  std::vector<CrEvalResult> kernel_fast;
  const double kernel_fast_ms = best_of([&] {
    kernel_fast.clear();
    kernel_fast.reserve(kernel_jobs.size());
    for (const auto& [target, faults] : kernel_jobs) {
      kernel_fast.push_back(
          kernels::measure_cr_kernel(*target, faults, kernel_scan));
    }
  });

  const CrEvalOptions analytic_scan{.window_hi = options.sweep_window_hi};
  CrEvalResult kernel_analytic_scalar;
  const double kernel_analytic_scalar_ms = best_of([&] {
    kernel_analytic_scalar = scalar_scan(wide_analytic, 11, analytic_scan);
  });

  CrEvalResult kernel_analytic_fast;
  const double kernel_analytic_fast_ms = best_of([&] {
    kernel_analytic_fast =
        kernels::measure_cr_kernel(wide_analytic, 11, analytic_scan);
  });

  bool kernel_identical = true;
  if (!options.timings_only) {
    kernel_identical = kernel_scalar.size() == kernel_fast.size();
    for (std::size_t i = 0; kernel_identical && i < kernel_scalar.size();
         ++i) {
      kernel_identical = kernel_scalar[i].cr == kernel_fast[i].cr &&
                         kernel_scalar[i].argmax == kernel_fast[i].argmax &&
                         kernel_scalar[i].probes == kernel_fast[i].probes;
    }
    kernel_identical =
        kernel_identical &&
        kernel_analytic_scalar.cr == kernel_analytic_fast.cr &&
        kernel_analytic_scalar.argmax == kernel_analytic_fast.argmax &&
        kernel_analytic_scalar.probes == kernel_analytic_fast.probes;
  }

  // degraded_sweep: crash -> silence-detect -> re-plan -> re-measure CR
  // over the proportional-regime grid (runtime/supervisor.hpp).  The
  // timing covers the full recovery pipeline; the verification side —
  // the worst relative gap to Theorem 1 over the valid reductions — is
  // a by-product of rows the sweep computes anyway, so full mode reports
  // it while timings-only just drops the field.
  DegradedSweepOptions degraded_options;
  degraded_options.n_max = options.degraded_n_max;
  degraded_options.max_crashes = options.degraded_max_crashes;
  const auto degraded_start = Clock::now();
  const std::vector<DegradedSweepRow> degraded =
      degraded_mode_sweep(degraded_options);
  const double degraded_ms = millis_since(degraded_start);

  int degraded_recovered = 0;
  Real degraded_checksum = 0;
  Real degraded_worst_gap = 0;
  for (const DegradedSweepRow& row : degraded) {
    if (!row.recovered) continue;
    ++degraded_recovered;
    degraded_checksum += row.measured_cr + row.survivors;
    if (std::isfinite(row.ratio_to_theory)) {
      degraded_worst_gap =
          std::max(degraded_worst_gap, std::fabs(row.ratio_to_theory - 1));
    }
  }

  // byzantine_sweep: quorum-CR scan (budget 2f, require_finite off) of
  // every proportional-regime pair vs the arXiv:1611.08209 closed form
  // (eval/byzantine).  Only the feasible diagonal n = 2f + 1 admits a
  // finite bound, so full mode reports the worst relative gap to theory
  // over exactly those rows; timings-only drops the field like the
  // degraded sweep does.
  ByzantineSweepOptions byzantine_options;
  byzantine_options.n_max = options.byzantine_n_max;
  const auto byzantine_start = Clock::now();
  const std::vector<ByzantineSweepRow> byzantine =
      byzantine_sweep(byzantine_options);
  const double byzantine_ms = millis_since(byzantine_start);

  int byzantine_feasible = 0;
  Real byzantine_checksum = 0;
  Real byzantine_worst_gap = 0;
  for (const ByzantineSweepRow& row : byzantine) {
    if (!row.feasible) continue;
    ++byzantine_feasible;
    if (std::isfinite(row.measured_cr)) {
      byzantine_checksum += row.measured_cr + row.n;
    }
    if (std::isfinite(row.ratio_to_theory)) {
      byzantine_worst_gap =
          std::max(byzantine_worst_gap, std::fabs(row.ratio_to_theory - 1));
    }
  }

  // svc_load: one closed-loop client driving the query service's wire
  // path (svc/server handle_line — parse, canonicalize, cache, evaluate,
  // serialize) over the proportional-regime grid.  The cold pass answers
  // every request against an empty cache; the warm passes replay the
  // identical request list svc_warm_passes times, so the cold/warm qps
  // ratio is the cache's end-to-end payoff and the warm p50/p99 bound
  // the hot-path latency.  Single-threaded by design: a closed loop
  // (next request only after the previous response) measures service
  // time, not queueing.
  std::vector<std::string> svc_requests;
  {
    long long id = 0;
    for (const auto& [n, f] : proportional_regime_pairs(options.svc_n_max)) {
      std::ostringstream request;
      request << "{\"id\": " << ++id << ", \"op\": \"cr\", \"n\": " << n
              << ", \"f\": " << f
              << ", \"window_hi\": " << options.svc_window_hi
              << ", \"interior_samples\": 64}";
      svc_requests.push_back(request.str());
    }
  }
  svc::QueryServer svc_server;
  std::size_t svc_sink = 0;
  std::vector<double> svc_warm_usec;
  svc_warm_usec.reserve(svc_requests.size() *
                        static_cast<std::size_t>(options.svc_warm_passes));

  const auto svc_cold_start = Clock::now();
  for (const std::string& request : svc_requests) {
    svc_sink += svc_server.handle_line(request).size();
  }
  const double svc_cold_ms = millis_since(svc_cold_start);

  const auto svc_warm_start = Clock::now();
  for (int pass = 0; pass < options.svc_warm_passes; ++pass) {
    for (const std::string& request : svc_requests) {
      const auto request_start = Clock::now();
      svc_sink += svc_server.handle_line(request).size();
      svc_warm_usec.push_back(micros_since(request_start));
    }
  }
  const double svc_warm_ms = millis_since(svc_warm_start);

  const double svc_cold_qps =
      svc_cold_ms > 0
          ? static_cast<double>(svc_requests.size()) / (svc_cold_ms / 1e3)
          : 0;
  const double svc_warm_qps =
      svc_warm_ms > 0 ? static_cast<double>(svc_warm_usec.size()) /
                            (svc_warm_ms / 1e3)
                      : 0;
  const svc::QueryService::Stats svc_stats =
      svc_server.service().stats();
  const double svc_hit_rate =
      svc_stats.queries > 0 ? static_cast<double>(svc_stats.cache_hits) /
                                  static_cast<double>(svc_stats.queries)
                            : 0;

  // svc_restart: the crash-safe warm-restart round trip (svc/snapshot).
  // The warmed svc_load server snapshots its result cache to disk, a
  // FRESH server restores it, and the identical request list replays
  // against the restored cache.  The replay hit rate is the headline —
  // a restored snapshot that still misses is a cold start wearing a
  // warm label — with the save/load/replay timings alongside.
  const std::string restart_path =
      (std::filesystem::temp_directory_path() /
       "linesearch-bench-svc-restart.snapshot")
          .string();
  const auto restart_save_start = Clock::now();
  const svc::SnapshotWriteReport restart_saved =
      svc::save_snapshot(svc_server.service(), restart_path);
  const double restart_save_ms = millis_since(restart_save_start);

  svc::QueryServer restart_server;
  const auto restart_load_start = Clock::now();
  const svc::SnapshotLoadReport restart_loaded =
      svc::load_snapshot(restart_server.service(), restart_path);
  const double restart_load_ms = millis_since(restart_load_start);

  std::size_t restart_sink = 0;
  const auto restart_replay_start = Clock::now();
  for (const std::string& request : svc_requests) {
    restart_sink += restart_server.handle_line(request).size();
  }
  const double restart_replay_ms = millis_since(restart_replay_start);
  std::filesystem::remove(restart_path);

  const svc::QueryService::Stats restart_stats =
      restart_server.service().stats();
  const double restart_hit_rate =
      restart_stats.queries > 0
          ? static_cast<double>(restart_stats.cache_hits) /
                static_cast<double>(restart_stats.queries)
          : 0;
  const double restart_replay_qps =
      restart_replay_ms > 0 ? static_cast<double>(svc_requests.size()) /
                                  (restart_replay_ms / 1e3)
                            : 0;

  // probabilistic_sweep: the exact expected-CR engine over the regime
  // grid times a p grid (eval/expectation).  Full mode also races the
  // closed-form series against a seeded Monte-Carlo estimate of the
  // same per-target expectations at the sweep's largest p — agreement
  // is certified elsewhere (the expectation_vs_montecarlo differential);
  // here the race is TIMED, and the exact_over_mc_speedup figure is the
  // headline: the geometric-ladder summation answers in closed form
  // what the MC estimate pays trials * realized-schedule walks for.
  ExpectationSweepOptions probabilistic_options;
  probabilistic_options.n_max = options.probabilistic_n_max;
  probabilistic_options.p_count = options.probabilistic_p_count;
  probabilistic_options.p_max = options.probabilistic_p_max;
  const auto probabilistic_start = Clock::now();
  const std::vector<ExpectationSweepRow> probabilistic =
      expectation_sweep(probabilistic_options);
  const double probabilistic_ms = millis_since(probabilistic_start);

  int probabilistic_divergent = 0;
  Real probabilistic_checksum = 0;
  for (const ExpectationSweepRow& row : probabilistic) {
    if (std::isfinite(row.expected_cr)) {
      probabilistic_checksum += row.expected_cr + row.n;
    } else {
      ++probabilistic_divergent;
    }
  }

  double probabilistic_exact_ms = 0;
  double probabilistic_mc_ms = 0;
  Real probabilistic_exact_checksum = 0;
  Real probabilistic_mc_checksum = 0;
  if (!options.timings_only) {
    const Real race_p = options.probabilistic_p_max;
    for (const auto& [n, f] :
         proportional_regime_pairs(options.probabilistic_n_max)) {
      const Fleet backend =
          ProportionalAlgorithm(n, f).build_unbounded_fleet();
      ExpectationOptions exact_options;
      exact_options.p = race_p;
      const auto exact_start = Clock::now();
      const Real exact =
          expected_detection_time(backend, 3.5L, exact_options);
      probabilistic_exact_ms += millis_since(exact_start);
      if (std::isfinite(exact)) probabilistic_exact_checksum += exact;

      ProbabilisticMcOptions mc_options;
      mc_options.p = race_p;
      mc_options.trials = options.probabilistic_mc_trials;
      const auto mc_start = Clock::now();
      const ProbabilisticMcResult mc =
          mc_expected_detection_time(backend, 3.5L, mc_options);
      probabilistic_mc_ms += millis_since(mc_start);
      if (std::isfinite(mc.mean)) probabilistic_mc_checksum += mc.mean;
    }
  }

  JsonWriter json(out);
  json.begin_object();
  json.field("schema", kPerfReportSchema);
  json.field("threads", static_cast<int>(resolve_thread_count(0)));
  json.field("timings_only", options.timings_only);
  json.key("workloads").begin_array();

  const auto workload = [&json, &options](const char* name, const double ms,
                                          const Real value) {
    json.begin_object();
    json.field("name", name);
    json.field("millis", static_cast<Real>(ms));
    if (!options.timings_only) json.field("checksum", value);
    json.end_object();
  };
  workload("dense_cr_sweep_serial", serial_ms, checksum(serial));
  workload("dense_cr_sweep_parallel", parallel_ms, checksum(parallel));
  workload("certified_cr_a74", certified_ms, certified.cr);
  workload("theorem2_game_a31", game_ms, game.forced_ratio);
  if (!options.timings_only) {
    workload("analytic_sweep_dense", dense_sweep_ms,
             dense_sweep.cr + dense_sweep.argmax);
  }
  workload("analytic_sweep_analytic", analytic_sweep_ms,
           analytic_sweep.cr + analytic_sweep.argmax);
  workload("kernel_sweep_scalar", kernel_scalar_ms, checksum(kernel_scalar));
  workload("kernel_sweep_kernel", kernel_fast_ms, checksum(kernel_fast));
  workload("kernel_sweep_analytic_scalar", kernel_analytic_scalar_ms,
           kernel_analytic_scalar.cr + kernel_analytic_scalar.argmax);
  workload("kernel_sweep_analytic_kernel", kernel_analytic_fast_ms,
           kernel_analytic_fast.cr + kernel_analytic_fast.argmax);
  workload("degraded_sweep", degraded_ms, degraded_checksum);
  workload("byzantine_sweep", byzantine_ms, byzantine_checksum);
  // The checksum folds the response byte counts: a byte-level change in
  // the wire format shows up here even when every value is unchanged.
  workload("svc_load_cold", svc_cold_ms, static_cast<Real>(svc_sink));
  workload("svc_load_warm", svc_warm_ms, static_cast<Real>(svc_sink));
  // save + restore + hot replay; the checksum folds the replayed
  // response bytes, so a snapshot that alters any answered bit is a
  // checksum change, not just a hit-rate dip.
  workload("svc_restart", restart_save_ms + restart_load_ms + restart_replay_ms,
           static_cast<Real>(restart_sink));
  workload("probabilistic_sweep", probabilistic_ms, probabilistic_checksum);
  if (!options.timings_only) {
    // The two legs of the closed-form-vs-MC race (full mode only: the
    // MC leg exists purely to quantify what the exact engine saves).
    workload("probabilistic_exact_points", probabilistic_exact_ms,
             probabilistic_exact_checksum);
    workload("probabilistic_mc_points", probabilistic_mc_ms,
             probabilistic_mc_checksum);
  }
  json.end_array();

  if (!options.timings_only) {
    json.field("parallel_identical_to_serial", identical);
  }

  json.key("analytic_sweep").begin_object();
  json.field("window_hi", options.sweep_window_hi);
  json.field("build_reps", options.build_reps);
  json.field("analytic_build_millis", static_cast<Real>(analytic_build_ms));
  json.field("analytic_footprint_bytes",
             static_cast<Real>(analytic_footprint));
  if (!options.timings_only) {
    json.field("dense_build_millis", static_cast<Real>(dense_build_ms));
    json.field("dense_footprint_bytes", static_cast<Real>(dense_footprint));
    json.field("analytic_identical_to_dense",
               dense_sweep.cr == analytic_sweep.cr &&
                   dense_sweep.argmax == analytic_sweep.argmax);
  }
  json.end_object();

  json.key("kernel_sweep").begin_object();
  json.field("simd_compiled", kernels::simd_compiled());
  json.field("window_hi", kernel_window);
  json.field("kernel_reps", options.kernel_reps);
  json.field("dense_speedup",
             static_cast<Real>(kernel_fast_ms > 0
                                   ? kernel_scalar_ms / kernel_fast_ms
                                   : 0));
  json.field("analytic_speedup",
             static_cast<Real>(kernel_analytic_fast_ms > 0
                                   ? kernel_analytic_scalar_ms /
                                         kernel_analytic_fast_ms
                                   : 0));
  if (!options.timings_only) {
    json.field("kernel_identical_to_scalar", kernel_identical);
  }
  json.end_object();

  json.key("degraded_sweep").begin_object();
  json.field("n_max", options.degraded_n_max);
  json.field("max_crashes", options.degraded_max_crashes);
  json.field("recovered_rows", degraded_recovered);
  if (!options.timings_only) {
    json.field("worst_gap_to_theory", degraded_worst_gap);
  }
  json.key("rows").begin_array();
  for (const DegradedSweepRow& row : degraded) {
    json.begin_object();
    json.field("n", row.n);
    json.field("f", row.f);
    json.field("crashes", row.crashes);
    json.field("cr", row.measured_cr);
    json.field("theory_cr", row.theory_cr);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  json.key("byzantine_sweep").begin_object();
  json.field("n_max", options.byzantine_n_max);
  json.field("feasible_rows", byzantine_feasible);
  if (!options.timings_only) {
    json.field("worst_gap_to_theory", byzantine_worst_gap);
  }
  json.key("rows").begin_array();
  for (const ByzantineSweepRow& row : byzantine) {
    json.begin_object();
    json.field("n", row.n);
    json.field("f", row.f);
    json.field("cr", row.measured_cr);
    json.field("theory_cr", row.theory_cr);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  json.key("svc_load").begin_object();
  json.field("n_max", options.svc_n_max);
  json.field("window_hi", options.svc_window_hi);
  json.field("requests", static_cast<int>(svc_requests.size()));
  json.field("warm_passes", options.svc_warm_passes);
  json.field("cold_qps", static_cast<Real>(svc_cold_qps));
  json.field("warm_qps", static_cast<Real>(svc_warm_qps));
  json.field("warm_speedup",
             static_cast<Real>(svc_cold_qps > 0 ? svc_warm_qps / svc_cold_qps
                                                : 0));
  json.field("warm_p50_usec",
             static_cast<Real>(percentile(svc_warm_usec, 50)));
  json.field("warm_p99_usec",
             static_cast<Real>(percentile(svc_warm_usec, 99)));
  json.field("hit_rate", static_cast<Real>(svc_hit_rate));
  json.end_object();

  json.key("svc_restart").begin_object();
  json.field("entries_saved", static_cast<int>(restart_saved.entries));
  json.field("snapshot_bytes", static_cast<Real>(restart_saved.bytes));
  json.field("restored_ok", restart_loaded.ok);
  json.field("entries_restored", static_cast<int>(restart_loaded.entries));
  json.field("save_millis", static_cast<Real>(restart_save_ms));
  json.field("load_millis", static_cast<Real>(restart_load_ms));
  json.field("replay_millis", static_cast<Real>(restart_replay_ms));
  json.field("replay_qps", static_cast<Real>(restart_replay_qps));
  json.field("hit_rate", static_cast<Real>(restart_hit_rate));
  json.end_object();

  json.key("probabilistic_sweep").begin_object();
  json.field("n_max", options.probabilistic_n_max);
  json.field("p_count", options.probabilistic_p_count);
  json.field("p_max", options.probabilistic_p_max);
  json.field("divergent_rows", probabilistic_divergent);
  if (!options.timings_only) {
    json.field("mc_trials", options.probabilistic_mc_trials);
    json.field("exact_over_mc_speedup",
               static_cast<Real>(probabilistic_exact_ms > 0
                                     ? probabilistic_mc_ms /
                                           probabilistic_exact_ms
                                     : 0));
  }
  json.key("rows").begin_array();
  for (const ExpectationSweepRow& row : probabilistic) {
    json.begin_object();
    json.field("n", row.n);
    json.field("f", row.f);
    json.field("p", row.p);
    json.field("converges", row.converges);
    json.field("cr", row.expected_cr);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  if (options.include_metrics) {
    // Folded AFTER every workload above joined its workers: the
    // deterministic entries are bit-identical for any thread count.
    json.key("metrics");
    write_metrics_array(json);
  }
  json.field("build_sink", static_cast<Real>(build_sink));
  json.end_object();
}

}  // namespace linesearch::obs

// obs/metrics.hpp — deterministic, lock-free-on-the-hot-path metrics.
//
// The library's hot loops (probe scans, visit-cache lookups, analytic
// window queries) each record a handful of integer events per iteration.
// The design goal is that recording an event costs one relaxed atomic add
// on a THREAD-LOCAL cache line — no shared counters, no locks, no
// contention — while the aggregate read back out is BIT-IDENTICAL for any
// LINESEARCH_THREADS setting.  Determinism falls out of the value model:
// every metric is an unsigned 64-bit integer merged with a commutative,
// associative reduction (sum for counters and histogram buckets, max for
// gauges), so the partition of increments across workers cannot affect
// the total.  Wall-clock quantities (span durations, see obs/trace.hpp)
// are the one exception and are flagged `deterministic = false` so tests
// and exporters can filter them.
//
// Structure: a process-wide Registry interns metric definitions (name,
// type, histogram bounds) and hands out dense MetricIds; each thread that
// records anything lazily registers one Sink — a fixed array of relaxed
// atomics indexed by slot.  Registration takes a mutex (once per call
// site thanks to function-local statics in the macros below); recording
// touches only the thread's own sink.  snapshot() folds all sinks under
// the registration mutex; it is intended for quiescent points (after a
// parallel region has joined), which is when its values are exact.
//
// Compile-time switch: building with LINESEARCH_OBS=OFF (CMake) defines
// LINESEARCH_OBS_ENABLED=0, which turns every LS_OBS_* macro and every
// inline helper below into a no-op — the instrumented hot paths compile
// to exactly the code they were before instrumentation.  The Registry
// API itself stays available (snapshot() just reports nothing) so tools
// and tests link unchanged in both modes.
#pragma once

#ifndef LINESEARCH_OBS_ENABLED
#define LINESEARCH_OBS_ENABLED 1
#endif

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace linesearch::obs {

/// True when the layer is compiled in (LINESEARCH_OBS=ON, the default).
inline constexpr bool kEnabled = LINESEARCH_OBS_ENABLED != 0;

/// Dense handle of a registered metric.
using MetricId = std::uint32_t;

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* metric_type_name(MetricType type) noexcept;

/// One metric folded out of all sinks.  Counters/gauges use `value`;
/// histograms use `count`/`sum`/`buckets` (buckets has bounds.size() + 1
/// entries, the last being the overflow bucket).
struct MetricSnapshot {
  std::string name;
  MetricType type = MetricType::kCounter;
  bool deterministic = true;
  std::uint64_t value = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
};

/// Process-wide metric registry + per-thread sinks.
class Registry {
 public:
  /// Capacity of one thread sink, in u64 slots.  A counter or gauge uses
  /// one slot, a histogram bounds.size() + 3 (buckets + overflow + count
  /// + sum); registration past the capacity throws.
  static constexpr std::size_t kMaxSlots = 4096;

  [[nodiscard]] static Registry& instance();

  /// Register (or look up) a counter.  Re-registration with the same name
  /// must agree on type and determinism.  `deterministic = false` marks
  /// wall-clock counters (span nanoseconds) that aggregate reproducibly
  /// in COUNT but not in value.
  MetricId counter(std::string_view name, bool deterministic = true);

  /// Register (or look up) a gauge (merge = max over all recordings).
  /// `deterministic = false` marks scheduling-dependent gauges (e.g. the
  /// service queue-depth high-water mark).
  MetricId gauge(std::string_view name, bool deterministic = true);

  /// Register (or look up) a histogram over fixed inclusive upper bounds
  /// (strictly increasing, non-empty); values above the last bound land
  /// in the overflow bucket.  `deterministic = false` marks wall-clock
  /// histograms (e.g. the service latency distribution).
  MetricId histogram(std::string_view name,
                     std::vector<std::uint64_t> bounds,
                     bool deterministic = true);

  /// Hot path: add `delta` to a counter (relaxed, thread-local).
  void add(MetricId id, std::uint64_t delta = 1);

  /// Hot path: raise a gauge to at least `value`.
  void gauge_to(MetricId id, std::uint64_t value);

  /// Hot path: record one histogram observation.
  void observe(MetricId id, std::uint64_t value);

  /// Slow path for dynamically named counters (e.g. per-fuzz-kind):
  /// registers on first use, then adds.  Takes the registry mutex.
  void add_named(std::string_view name, std::uint64_t delta = 1);

  /// Fold every sink into per-metric totals, sorted by name.  Exact when
  /// no other thread is concurrently recording (quiescent points).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Zero every slot of every sink (test isolation between scenarios).
  /// Definitions stay registered.
  void reset() noexcept;

  /// Number of registered metrics (0 when the layer is compiled out and
  /// nothing registered explicitly).
  [[nodiscard]] std::size_t size() const;

  /// Maximum number of registered metrics / histogram bounds; both are
  /// fixed so the hot-path definition table never reallocates under a
  /// concurrent reader.
  static constexpr std::size_t kMaxMetrics = 512;
  static constexpr std::size_t kMaxHistogramBounds = 16;

  struct Sink {
    std::array<std::atomic<std::uint64_t>, kMaxSlots> slots{};
  };

 private:
  /// Cold (registration/snapshot-side) definition.
  struct MetricDef {
    std::string name;
    MetricType type = MetricType::kCounter;
    bool deterministic = true;
    std::vector<std::uint64_t> bounds;
    std::uint32_t first_slot = 0;
    std::uint32_t slots = 1;
  };

  /// Hot-path view, written exactly once (under the mutex) BEFORE the
  /// MetricId is handed out; ids only reach other threads through
  /// synchronizing channels (the macros' function-local statics or the
  /// registration mutex), so lock-free reads here are race-free.
  struct HotDef {
    std::uint32_t first_slot = 0;
    std::uint32_t bound_count = 0;
    std::array<std::uint64_t, kMaxHistogramBounds> bounds{};
  };

  Registry() = default;

  MetricId register_metric(std::string_view name, MetricType type,
                           bool deterministic,
                           std::vector<std::uint64_t> bounds);
  [[nodiscard]] Sink& local_sink();

  mutable std::mutex mutex_;
  std::vector<MetricDef> defs_;
  std::array<HotDef, kMaxMetrics> hot_{};
  std::unordered_map<std::string, MetricId> by_name_;
  /// One sink per thread that ever recorded; sinks live until process
  /// exit (pool workers are long-lived; a transient thread parks a
  /// 32 KiB sink, which is bounded by the thread count, not the runtime).
  std::vector<std::unique_ptr<Sink>> sinks_;
  std::uint32_t next_slot_ = 0;
};

// ---- inline helpers (compiled out entirely when the layer is off) ----

inline void count(const MetricId id, const std::uint64_t delta = 1) {
  if constexpr (kEnabled) Registry::instance().add(id, delta);
}

inline void observe(const MetricId id, const std::uint64_t value) {
  if constexpr (kEnabled) Registry::instance().observe(id, value);
}

inline void gauge_to(const MetricId id, const std::uint64_t value) {
  if constexpr (kEnabled) Registry::instance().gauge_to(id, value);
}

/// Dynamically named counter (slow path; see Registry::add_named).
inline void count_named(const std::string_view name,
                        const std::uint64_t delta = 1) {
  if constexpr (kEnabled) Registry::instance().add_named(name, delta);
}

}  // namespace linesearch::obs

// ---- instrumentation macros -----------------------------------------
//
// Each macro interns its metric on first execution via a function-local
// static (thread-safe, once per call site) and then records through the
// thread-local sink.  With LINESEARCH_OBS_ENABLED == 0 they expand to
// ((void)0): zero code, zero data, zero includes needed at the call site
// beyond this header.

#if LINESEARCH_OBS_ENABLED

/// Add `delta` to the counter `name` (a string literal).
#define LS_OBS_COUNT(name, delta)                                         \
  do {                                                                    \
    static const ::linesearch::obs::MetricId ls_obs_count_id_ =           \
        ::linesearch::obs::Registry::instance().counter(name);            \
    ::linesearch::obs::Registry::instance().add(                          \
        ls_obs_count_id_, static_cast<std::uint64_t>(delta));             \
  } while (0)

/// Raise the gauge `name` to at least `value`.
#define LS_OBS_GAUGE_TO(name, value)                                      \
  do {                                                                    \
    static const ::linesearch::obs::MetricId ls_obs_gauge_id_ =           \
        ::linesearch::obs::Registry::instance().gauge(name);              \
    ::linesearch::obs::Registry::instance().gauge_to(                     \
        ls_obs_gauge_id_, static_cast<std::uint64_t>(value));             \
  } while (0)

/// Record one observation in the histogram `name` with the given
/// inclusive upper `...` bounds (braced-init-list of u64, e.g.
/// LS_OBS_OBSERVE("eval.cr.probes_per_scan", probes, {16, 64, 256})).
#define LS_OBS_OBSERVE(name, value, ...)                                  \
  do {                                                                    \
    static const ::linesearch::obs::MetricId ls_obs_hist_id_ =            \
        ::linesearch::obs::Registry::instance().histogram(name,           \
                                                          __VA_ARGS__);   \
    ::linesearch::obs::Registry::instance().observe(                      \
        ls_obs_hist_id_, static_cast<std::uint64_t>(value));              \
  } while (0)

#else  // LINESEARCH_OBS_ENABLED == 0

#define LS_OBS_COUNT(name, delta) ((void)0)
#define LS_OBS_GAUGE_TO(name, value) ((void)0)
#define LS_OBS_OBSERVE(name, value, ...) ((void)0)

#endif  // LINESEARCH_OBS_ENABLED

// obs/perf_report.hpp — the machine-readable perf artifact, as a library.
//
// bench_perf's JSON output (BENCH_perf.json) used to live inside the
// bench binary, which made two things impossible: tests could not pin
// its schema (satellite: schema-stability regression), and the
// `--timings-only` flag could not actually skip the checksum work — the
// heavyweight dense counterpart of the analytic sweep (hundreds of dense
// A(12, 11) builds out to 4 * 2^20) ran unconditionally, defeating the
// flag's stated purpose of being cheap enough for every CI push.
//
// This module owns the workload now.  bench_perf delegates here;
// tests/obs/perf_report_test runs it with scaled-down options and
// asserts on the schema.  Semantics of the two modes:
//
//   full (timings_only = false): every workload runs, deterministic
//     checksums are folded, serial-vs-parallel and dense-vs-analytic
//     identity is verified, and the dense sweep counterpart is timed.
//   timings only: everything whose ONLY purpose is checksum
//     verification is skipped — the checksum folds, the element-wise
//     identity comparisons, and the entire dense counterpart of the
//     analytic sweep.  "checksum" fields and the two *_identical_* flags
//     are omitted; everything else keeps its name and shape.
//
// Both modes emit schema "linesearch-bench-perf/4" and embed the obs
// metric registry ("metrics": [...], see obs/export.hpp) folded over
// exactly the workloads this report ran (the registry is reset first).
// Schema /3 added the degraded_sweep workload (runtime/supervisor.hpp:
// crash -> detect -> re-plan -> re-measure CR over the regime grid) and
// its summary object; in full mode that object also reports the worst
// relative gap to Theorem 1 over the valid reductions.  Schema /4 added
// the kernel_sweep workloads — the SoA kernel path (eval/kernels) raced
// against the scalar reference scan on a dense leg (the deep wide
// regimes A(12, 11) and A(12, 10) built dense at 4x the race window)
// and the analytic A(12, 11) window sweep — plus the kernel_sweep
// summary object (simd_compiled, the two speedups, and in full mode the
// bitwise kernel-vs-scalar identity flag).  Each kernel_sweep leg is
// timed best-of-kernel_reps (single passes are noise-bound).  Schema /5
// added the byzantine_sweep workload (eval/byzantine: quorum CR of
// every regime pair vs the arXiv:1611.08209 closed form) and its
// summary object; full mode reports worst_gap_to_theory over the
// feasible diagonal.  Schema /6 added the svc_load workloads — a
// closed-loop client driving the query service's wire path
// (svc/server handle_line) over the proportional-regime grid, one cold
// pass against an empty cache and svc_warm_passes hot replays — plus
// the svc_load summary object (cold/warm qps, the warm speedup, warm
// p50/p99 latency, and the cache hit rate).  Schema /7 added the
// probabilistic_sweep workload — the exact expected-CR engine
// (eval/expectation) over the regime grid times a p grid — and its
// summary object (divergent row count plus, in full mode, the
// closed-form-vs-Monte-Carlo agreement check and the measured speedup
// of the exact series over a seeded MC estimate of the same
// expectations).  Schema /8 added the svc_restart workload — the
// crash-safe warm-restart round trip (svc/snapshot: save the warmed
// svc_load cache, restore it into a fresh server, replay the hot set)
// — and its summary object (entries/bytes saved, restore verdict,
// save/load/replay timings, replay qps, and the restored-cache hit
// rate the robustness docs pin at >= 0.9).
#pragma once

#include <iosfwd>

#include "util/real.hpp"

namespace linesearch::obs {

/// Schema tag emitted by write_perf_report (bumped from /1 when the
/// report moved into the library, gained the metrics array and made
/// timings-only actually skip the checksum workloads; from /2 when the
/// degraded-mode supervisor sweep joined the workload list; from /3 when
/// the SoA kernel_sweep workloads and summary joined it; from /4 when
/// the Byzantine quorum sweep joined it; from /5 when the closed-loop
/// query-service load workload joined it; from /6 when the probabilistic
/// expected-CR p-sweep joined it; from /7 when the warm-restart
/// snapshot round trip joined it).
inline constexpr const char* kPerfReportSchema = "linesearch-bench-perf/8";

struct PerfReportOptions {
  /// Skip all checksum-verification work (see header comment).
  bool timings_only = false;
  /// Fleet builds per timing loop of the analytic-vs-dense build
  /// comparison (single builds are below clock resolution).
  int build_reps = 512;
  /// Coverage of the dense A(7, 4) fleet behind the CR-sweep workloads.
  Real dense_coverage = 2000;
  /// Window of the analytic sweep (a power of two keeps probes exact).
  Real sweep_window_hi = 1048576;
  /// Timing passes per kernel_sweep leg; the fastest pass is reported.
  /// Each leg is only a few milliseconds end to end, so a single pass
  /// is dominated by scheduler and frequency noise.
  int kernel_reps = 15;
  /// Grid size of the degraded-mode supervisor sweep (regime pairs with
  /// n <= degraded_n_max, 1..degraded_max_crashes crash-stops each).
  int degraded_n_max = 6;
  int degraded_max_crashes = 2;
  /// Grid size of the Byzantine quorum sweep (regime pairs with
  /// n <= byzantine_n_max; 41 pairs at 12).
  int byzantine_n_max = 6;
  /// Grid of the closed-loop service-load workload (regime pairs with
  /// n <= svc_n_max, one wire request each).
  int svc_n_max = 8;
  /// Evaluation window of each service-load request.  Wide enough that a
  /// cold (cache-miss) evaluation dwarfs the wire overhead, so the
  /// cold/warm qps ratio measures the cache, not JSON parsing.
  int svc_window_hi = 4096;
  /// Hot replays of the request list after the cold pass; the warm
  /// qps / p50 / p99 come from these.
  int svc_warm_passes = 20;
  /// Grid of the probabilistic expected-CR sweep (regime pairs with
  /// n <= probabilistic_n_max times probabilistic_p_count failure
  /// probabilities up to probabilistic_p_max; the default p_max stays
  /// below the grid's minimum ladder threshold ~0.63, so every row is
  /// convergent unless callers push past it).
  int probabilistic_n_max = 6;
  int probabilistic_p_count = 3;
  Real probabilistic_p_max = 0.4L;
  /// Monte-Carlo trials behind the full-mode closed-form-vs-MC speedup
  /// figure (one seeded MC estimate per pair at the sweep's largest p).
  int probabilistic_mc_trials = 400;
  /// Embed the obs metric registry (reset + folded over this report).
  bool include_metrics = true;
};

/// Run the perf workloads and stream the JSON document to `out`.
void write_perf_report(std::ostream& out,
                       const PerfReportOptions& options = {});

}  // namespace linesearch::obs

#include "obs/export.hpp"

#include <algorithm>
#include <sstream>

namespace linesearch::obs {

void write_metrics_array(JsonWriter& json,
                         const std::vector<MetricSnapshot>& snapshots) {
  json.begin_array();
  for (const MetricSnapshot& snap : snapshots) {
    json.begin_object();
    json.field("name", snap.name);
    json.field("type", metric_type_name(snap.type));
    json.field("deterministic", snap.deterministic);
    json.field("value", snap.value);
    if (snap.type == MetricType::kHistogram) {
      json.field("count", snap.count);
      json.field("sum", snap.sum);
      json.key("bounds").begin_array();
      for (const std::uint64_t bound : snap.bounds) json.value(bound);
      json.end_array();
      json.key("buckets").begin_array();
      for (const std::uint64_t bucket : snap.buckets) json.value(bucket);
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
}

void write_metrics_array(JsonWriter& json, const bool deterministic_only) {
  std::vector<MetricSnapshot> snapshots = Registry::instance().snapshot();
  if (deterministic_only) {
    snapshots = deterministic_subset(std::move(snapshots));
  }
  write_metrics_array(json, snapshots);
}

std::string metrics_to_json(const bool deterministic_only) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", "linesearch-metrics/1");
  json.field("enabled", kEnabled);
  json.key("metrics");
  write_metrics_array(json, deterministic_only);
  json.end_object();
  return out.str();
}

std::vector<MetricSnapshot> deterministic_subset(
    std::vector<MetricSnapshot> snapshots) {
  snapshots.erase(std::remove_if(snapshots.begin(), snapshots.end(),
                                 [](const MetricSnapshot& snap) {
                                   return !snap.deterministic;
                                 }),
                  snapshots.end());
  return snapshots;
}

}  // namespace linesearch::obs

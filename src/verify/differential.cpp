#include "verify/differential.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/exact.hpp"
#include "eval/expectation.hpp"
#include "eval/kernels.hpp"
#include "eval/montecarlo.hpp"
#include "eval/visit_cache.hpp"
#include "runtime/arbitration.hpp"
#include "runtime/world.hpp"
#include "sim/faults.hpp"
#include "svc/chaos.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace verify {
namespace {

std::string real_str(const Real value) { return encode_real_field(value, 12); }

void record(DifferentialResult& result, const std::size_t job,
            const std::string& field, const Real lhs, const Real rhs) {
  result.passed = false;
  result.mismatches.push_back({job, field, lhs, rhs});
  if (result.message.empty()) {
    result.message = "job " + std::to_string(job) + " field " + field +
                     ": " + real_str(lhs) + " vs " + real_str(rhs);
  }
}

/// Compare two CrEvalResults field by field, bitwise.
void compare_results(DifferentialResult& out, const std::size_t job,
                     const CrEvalResult& reference,
                     const CrEvalResult& candidate) {
  if (!value_identical(reference.cr, candidate.cr)) {
    record(out, job, "cr", reference.cr, candidate.cr);
  }
  if (!value_identical(reference.argmax, candidate.argmax)) {
    record(out, job, "argmax", reference.argmax, candidate.argmax);
  }
  if (!value_identical(reference.cr_positive, candidate.cr_positive)) {
    record(out, job, "cr_positive", reference.cr_positive,
           candidate.cr_positive);
  }
  if (!value_identical(reference.cr_negative, candidate.cr_negative)) {
    record(out, job, "cr_negative", reference.cr_negative,
           candidate.cr_negative);
  }
  if (reference.probes != candidate.probes) {
    record(out, job, "probes", static_cast<Real>(reference.probes),
           static_cast<Real>(candidate.probes));
  }
  if (reference.undetected_probes != candidate.undetected_probes) {
    record(out, job, "undetected_probes",
           static_cast<Real>(reference.undetected_probes),
           static_cast<Real>(candidate.undetected_probes));
  }
}

}  // namespace

DifferentialResult diff_batch_threads(const std::vector<CrBatchJob>& jobs,
                                      const DifferentialOptions& options) {
  DifferentialResult result;
  result.name = "batch_threads";
  expects(!options.thread_counts.empty(),
          "diff_batch_threads: need at least one thread count");
  const std::vector<CrEvalResult> reference =
      measure_cr_batch(jobs, {.threads = options.thread_counts.front()});
  // The serial measure_cr path is part of the race too: the batch layer
  // promises to be indistinguishable from it, not just self-consistent.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const CrEvalResult serial =
        measure_cr(*jobs[i].fleet, jobs[i].f, jobs[i].options);
    compare_results(result, i, serial, reference[i]);
  }
  for (std::size_t t = 1; t < options.thread_counts.size(); ++t) {
    const std::vector<CrEvalResult> candidate =
        measure_cr_batch(jobs, {.threads = options.thread_counts[t]});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      compare_results(result, i, reference[i], candidate[i]);
    }
  }
  if (!result.passed && result.mismatches.size() > 1) {
    result.message += " (+" +
                      std::to_string(result.mismatches.size() - 1) +
                      " more mismatches)";
  }
  return result;
}

DifferentialResult diff_cache_on_off(const std::vector<CrBatchJob>& jobs,
                                     const int threads) {
  DifferentialResult result;
  result.name = "cache_on_off";
  const std::vector<CrEvalResult> cached =
      measure_cr_batch(jobs, {.threads = threads, .use_cache = true});
  const std::vector<CrEvalResult> uncached =
      measure_cr_batch(jobs, {.threads = threads, .use_cache = false});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    compare_results(result, i, uncached[i], cached[i]);
  }
  return result;
}

DifferentialResult diff_cache_direct(const Fleet& fleet, const int f,
                                     const std::vector<Real>& positions) {
  DifferentialResult result;
  result.name = "cache_direct";
  if (positions.empty()) {
    result.applicable = false;
    return result;
  }
  const FleetVisitCache cache(fleet);
  for (int round = 0; round < 2; ++round) {  // cold, then memoized
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const Real direct = fleet.detection_time(positions[i], f);
      const Real memoized = cache.detection_time(positions[i], f);
      if (!value_identical(direct, memoized)) {
        record(result, i, round == 0 ? "cold" : "warm", direct, memoized);
      }
    }
  }
  return result;
}

DifferentialResult diff_probe_vs_exact(const Fleet& fleet, const int f,
                                       const CrEvalOptions& eval,
                                       const DifferentialOptions& options) {
  DifferentialResult result;
  result.name = "probe_vs_exact";
  const CrEvalResult measured = measure_cr(fleet, f, eval);
  const ExactCrResult certified =
      certified_cr(fleet, f,
                   {.window_lo = eval.window_lo,
                    .window_hi = eval.window_hi,
                    .require_finite = eval.require_finite});
  if (std::isinf(measured.cr) || std::isinf(certified.cr)) {
    // Only reachable with require_finite off; both paths must agree the
    // window is undetectable.
    if (std::isinf(measured.cr) != std::isinf(certified.cr)) {
      record(result, 0, "cr", measured.cr, certified.cr);
    }
    return result;
  }
  // A probe is a sample of the sup: it can never exceed the certified
  // value (round-off slack only)...
  if (measured.cr > certified.cr * (1 + options.sample_tol)) {
    record(result, 0, "cr(probe>exact)", measured.cr, certified.cr);
  }
  // ...and the 1e-9 right-limit offset must keep it within probe_gap_tol
  // BELOW it.
  if (certified.cr - measured.cr >
      certified.cr * options.probe_gap_tol) {
    record(result, 0, "cr(gap)", measured.cr, certified.cr);
    result.message += " — probe scan missed the certified sup at x=" +
                      real_str(certified.argsup);
  }
  return result;
}

DifferentialResult diff_exact_vs_grid(const Fleet& fleet, const int f,
                                      const CrEvalOptions& eval,
                                      const DifferentialOptions& options) {
  DifferentialResult result;
  result.name = "exact_vs_grid";
  const ExactCrResult certified =
      certified_cr(fleet, f,
                   {.window_lo = eval.window_lo,
                    .window_hi = eval.window_hi,
                    .require_finite = eval.require_finite});
  if (std::isinf(certified.cr)) return result;

  std::vector<Real> positions;
  const int count = std::max(2, options.grid_points);
  const Real ratio = std::pow(eval.window_hi / eval.window_lo,
                              Real{1} / static_cast<Real>(count - 1));
  Real magnitude = eval.window_lo;
  for (int i = 0; i < count; ++i) {
    const Real m = (i == count - 1) ? eval.window_hi : magnitude;
    positions.push_back(m);
    positions.push_back(-m);
    magnitude *= ratio;
  }
  const std::vector<Real> profile =
      k_profile_batch(fleet, f, positions, {.threads = 2});
  const std::vector<Real> serial_profile = k_profile(fleet, f, positions);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!value_identical(profile[i], serial_profile[i])) {
      record(result, i, "k_profile(parallel)", serial_profile[i], profile[i]);
    }
    if (std::isinf(serial_profile[i])) continue;
    if (serial_profile[i] > certified.cr * (1 + options.sample_tol)) {
      record(result, i, "k>certified_sup", serial_profile[i], certified.cr);
      result.message += " at x=" + real_str(positions[i]);
    }
  }
  return result;
}

DifferentialResult diff_dense_vs_analytic(const SearchStrategy& strategy,
                                          const Real extent, const int f,
                                          const CrEvalOptions& eval) {
  DifferentialResult result;
  result.name = "dense_vs_analytic";
  if (!strategy.supports_unbounded()) {
    result.applicable = false;
    return result;
  }
  const Fleet dense = strategy.build_fleet(extent);
  const Fleet analytic = strategy.build_unbounded_fleet();
  if (dense.size() != analytic.size()) {
    record(result, 0, "fleet_size", static_cast<Real>(dense.size()),
           static_cast<Real>(analytic.size()));
    return result;
  }

  // (a) The analytic schedule must reproduce the dense waypoint stream
  // bit for bit on the prefix both backends materialize.
  constexpr std::size_t kPrefix = 64;
  for (RobotId id = 0; id < dense.size(); ++id) {
    const std::vector<Waypoint> lhs = dense.robot(id).waypoint_prefix(kPrefix);
    const std::vector<Waypoint> rhs =
        analytic.robot(id).waypoint_prefix(kPrefix);
    const std::size_t shared = std::min(lhs.size(), rhs.size());
    for (std::size_t w = 0; w < shared; ++w) {
      if (!value_identical(lhs[w].time, rhs[w].time)) {
        record(result, id, "waypoint[" + std::to_string(w) + "].time",
               lhs[w].time, rhs[w].time);
      }
      if (!value_identical(lhs[w].position, rhs[w].position)) {
        record(result, id, "waypoint[" + std::to_string(w) + "].position",
               lhs[w].position, rhs[w].position);
      }
    }
  }

  // (b) The evaluator must not be able to tell the backends apart.
  const CrEvalResult dense_cr = measure_cr(dense, f, eval);
  const CrEvalResult analytic_cr = measure_cr(analytic, f, eval);
  compare_results(result, 0, dense_cr, analytic_cr);
  return result;
}

DifferentialResult diff_crash_injected(const int n, const int f,
                                       const Real extent,
                                       const std::vector<Real>& crash_times,
                                       const CrEvalOptions& eval) {
  DifferentialResult result;
  result.name = "crash_injected";
  expects(static_cast<int>(crash_times.size()) == n,
          "diff_crash_injected: crash schedule size must match the fleet");

  const auto team = [n, f, extent]() {
    std::vector<ControllerPtr> controllers;
    controllers.reserve(static_cast<std::size_t>(n));
    for (int robot = 0; robot < n; ++robot) {
      controllers.push_back(
          std::make_unique<ProportionalController>(n, f, robot, extent));
    }
    return controllers;
  };
  std::vector<FaultSpec> plan;
  plan.reserve(crash_times.size());
  for (const Real t : crash_times) {
    plan.push_back(std::isfinite(t) ? FaultSpec::crash_at(t)
                                    : FaultSpec::none());
  }
  const Fleet injected =
      World().execute_team(team(), FaultInjector(std::move(plan)));
  const Fleet truncated =
      truncate_at_crashes(World().execute_team(team()), crash_times);

  // (a) The injected run must equal the analytic truncation waypoint by
  // waypoint (World's mid-leg cut uses the same interpolation
  // arithmetic).
  for (RobotId id = 0; id < injected.size(); ++id) {
    const std::vector<Waypoint>& lhs = injected.robot(id).waypoints();
    const std::vector<Waypoint>& rhs = truncated.robot(id).waypoints();
    if (lhs.size() != rhs.size()) {
      record(result, id, "waypoint_count", static_cast<Real>(lhs.size()),
             static_cast<Real>(rhs.size()));
      continue;
    }
    for (std::size_t w = 0; w < lhs.size(); ++w) {
      if (!value_identical(lhs[w].time, rhs[w].time)) {
        record(result, id, "waypoint[" + std::to_string(w) + "].time",
               lhs[w].time, rhs[w].time);
      }
      if (!value_identical(lhs[w].position, rhs[w].position)) {
        record(result, id, "waypoint[" + std::to_string(w) + "].position",
               lhs[w].position, rhs[w].position);
      }
    }
  }

  // (b) Nor may the evaluator tell them apart (a crashed fleet can leave
  // probes undetected, so the caller's eval must have require_finite
  // off; enforce it here rather than trusting every call site).
  CrEvalOptions relaxed = eval;
  relaxed.require_finite = false;
  const CrEvalResult lhs_cr = measure_cr(injected, f, relaxed);
  const CrEvalResult rhs_cr = measure_cr(truncated, f, relaxed);
  compare_results(result, 0, lhs_cr, rhs_cr);
  return result;
}

DifferentialResult diff_byzantine(const int n, const int f, const Real extent,
                                  const LiePlan& plan,
                                  const std::vector<Real>& targets,
                                  const CrEvalOptions& eval) {
  DifferentialResult result;
  result.name = "byzantine";
  expects(plan.size() == static_cast<std::size_t>(n),
          "diff_byzantine: lie plan size must match the fleet");

  std::vector<ControllerPtr> team;
  team.reserve(static_cast<std::size_t>(n));
  for (int robot = 0; robot < n; ++robot) {
    team.push_back(
        std::make_unique<ProportionalController>(n, f, robot, extent));
  }
  const Fleet injected = World().execute_team(team);

  const auto confirm_at = [](const ArbitrationReport& report, const Real x) {
    for (const ClaimVerdict& verdict : report.verdicts) {
      if (verdict.position == x) return verdict.confirm_time;
    }
    return kInfinity;
  };

  for (std::size_t i = 0; i < targets.size(); ++i) {
    const Real x = targets[i];
    const ArbitrationReport arbitrated =
        arbitrate(injected, f, collect_claims(injected, x, plan));

    // (b) No falsely claimed position may ever reach quorum.
    for (const ClaimVerdict& verdict : arbitrated.verdicts) {
      if (verdict.position != x && verdict.confirmed()) {
        record(result, i, "false_confirm", verdict.position,
               verdict.confirm_time);
      }
    }

    // (a) Arbiter vs the analytic per-liar-set quorum — unless some lie
    // lands exactly on the target, where extra (accidentally true)
    // corroborations may legitimately confirm earlier.
    bool lie_on_target = false;
    for (const std::vector<LieEvent>& events : plan.claims) {
      for (const LieEvent& event : events) {
        lie_on_target = lie_on_target || event.position == x;
      }
    }
    if (!lie_on_target) {
      const Real analytic = byzantine_quorum_time(injected, x, plan.liar, f);
      const Real arbiter = confirm_at(arbitrated, x);
      if (!value_identical(arbiter, analytic)) {
        record(result, i, "confirm_time", analytic, arbiter);
      }
    }

    // (c) The worst liar set — the f earliest visitors, all silent —
    // arbitrated through the runtime path must land exactly on the
    // order statistic the sim layer promises.
    AdversarialFaults adversary;
    LiePlan silent;
    silent.liar = adversary.choose_faults(injected, x, f);
    silent.claims.assign(injected.size(), {});
    const Real worst_arbiter = confirm_at(
        arbitrate(injected, f, collect_claims(injected, x, silent)), x);
    const Real order_stat = injected.detection_time(x, 2 * f);
    if (!value_identical(worst_arbiter, order_stat)) {
      record(result, i, "worst_case_quorum", order_stat, worst_arbiter);
    }
  }

  // (d) The quorum CR scan cannot tell the executed fleet from the
  // schedule builder's (a quorum can be unreachable, so require_finite
  // must be off on both paths).
  const Fleet built = ProportionalAlgorithm(n, f).build_fleet(extent);
  CrEvalOptions relaxed = eval;
  relaxed.require_finite = false;
  const CrEvalResult lhs_cr = measure_cr(injected, 2 * f, relaxed);
  const CrEvalResult rhs_cr = measure_cr(built, 2 * f, relaxed);
  compare_results(result, targets.size(), lhs_cr, rhs_cr);
  return result;
}

DifferentialResult diff_server_vs_library(const svc::CrQuery& query) {
  DifferentialResult result;
  result.name = "server_vs_library";
  try {
    const svc::QueryResult direct = svc::evaluate_query_direct(query);

    // Render the wire request exactly as an external client would.
    const std::string request = svc::render_request(1, query);

    svc::QueryServer server;
    const std::string cold = server.handle_line(request);
    const std::string warm = server.handle_line(request);
    if (warm != cold) {
      result.passed = false;
      result.message =
          "warm response bytes differ from cold: " + warm + " vs " + cold;
      return result;
    }

    const JsonValue doc = parse_json(cold);
    if (!doc.at("ok").as_bool()) {
      result.passed = false;
      result.message = "server error: " + doc.at("error").as_string();
      return result;
    }
    if (doc.at("feasible").as_bool() != direct.feasible) {
      record(result, 0, "feasible", direct.feasible ? Real{1} : Real{0},
             doc.at("feasible").as_bool() ? Real{1} : Real{0});
    }
    for (const char* field : {"cr", "argmax", "cr_positive", "cr_negative"}) {
      const Real lhs = field == std::string("cr")            ? direct.cr
                       : field == std::string("argmax")      ? direct.argmax
                       : field == std::string("cr_positive")
                           ? direct.cr_positive
                           : direct.cr_negative;
      const Real rhs = doc.at(field).as_real();
      if (!value_identical(lhs, rhs)) record(result, 0, field, lhs, rhs);
    }
    if (doc.at("probes").as_int() != direct.probes) {
      record(result, 0, "probes", static_cast<Real>(direct.probes),
             static_cast<Real>(doc.at("probes").as_int()));
    }
    if (doc.at("undetected_probes").as_int() != direct.undetected_probes) {
      record(result, 0, "undetected_probes",
             static_cast<Real>(direct.undetected_probes),
             static_cast<Real>(doc.at("undetected_probes").as_int()));
    }
  } catch (const Error& error) {
    result.passed = false;
    result.message = error.what();
  }
  return result;
}

DifferentialResult diff_chaos_vs_library(const svc::CrQuery& query,
                                         const std::uint64_t chaos_seed,
                                         const int fault_cap) {
  DifferentialResult result;
  result.name = "chaos_vs_library";
  try {
    // The reference: the offline library's exact response bytes.
    const svc::QueryResult direct = svc::evaluate_query_direct(query);

    svc::QueryServer server;
    svc::ChaosConfig config;
    config.seed = chaos_seed;
    config.fault_cap = fault_cap;

    // Logical time: stalls become read timeouts, backoff never sleeps.
    // max_attempts = clean_every + 2 guarantees the client reaches a
    // fault-free connection even if every faulty attempt burns one —
    // a structured failure below is therefore always a real bug.
    svc::ClientOptions options;
    options.max_attempts = config.clean_every + 2;
    options.sleep_on_backoff = false;
    options.request_timeout_ms = 1000;
    options.jitter_seed = chaos_seed ^ 0x5eedULL;
    svc::QueryClient client(
        options, std::make_unique<svc::ChaosLoopback>(server, config));

    // Three calls back to back: the first races the cold cache, the
    // rest the warm one — retries must replay byte-identically in both.
    for (long long id = 1; id <= 3; ++id) {
      const std::string expected = svc::render_response(id, direct);
      const svc::ClientResult call = client.call(id, query);
      if (!call.ok) {
        result.passed = false;
        result.message = "client gave up (id " + std::to_string(id) +
                         ", attempts " + std::to_string(call.attempts) +
                         "): " + call.error;
        return result;
      }
      if (call.response != expected) {
        result.passed = false;
        result.message = "response bytes differ from library (id " +
                         std::to_string(id) + "): got " + call.response +
                         " want " + expected;
        return result;
      }
    }
  } catch (const Error& error) {
    result.passed = false;
    result.message = error.what();
  }
  return result;
}

DifferentialResult diff_expectation_vs_montecarlo(
    const int n, const int f, const Real p,
    const std::vector<Real>& targets, const std::uint64_t seed,
    const int trials) {
  DifferentialResult result;
  result.name = "expectation_vs_montecarlo";
  expects(in_proportional_regime(n, f),
          "diff_expectation_vs_montecarlo: (n, f) must be in regime");
  expects(p >= 0 && p < 1,
          "diff_expectation_vs_montecarlo: need 0 <= p < 1");
  expects(trials >= 2,
          "diff_expectation_vs_montecarlo: trials must be >= 2");
  const Fleet fleet = ProportionalAlgorithm(n, f).build_unbounded_fleet();
  const bool converges = expectation_converges(n, f, p);
  // The SECOND moment converges iff p^(2n) kappa^4 < 1, a strictly
  // narrower band than the mean's p^(2n) kappa^2 < 1.  Between the two
  // the exact mean is finite but every finite sample mean is heavy-
  // tailed garbage, so the CLT comparison only runs with headroom.
  const Real kappa = optimal_expansion_factor(n, f);
  const Real variance_q =
      std::pow(p, 2 * n) * kappa * kappa * kappa * kappa;
  const bool clt_comparable = p > 0 && converges && variance_q <= 0.8L;

  std::size_t job = 0;
  for (const Real x : targets) {
    if (x == 0) continue;
    ExpectationOptions exact_options;
    exact_options.p = p;
    const Real exact = expected_detection_time(fleet, x, exact_options);
    const Real first_visit = fleet.detection_time(x, 0);
    if (p == 0) {
      // No faults, no sampling: the series IS the first visit, bitwise.
      if (!value_identical(exact, first_visit)) {
        record(result, job, "p0_identity", first_visit, exact);
      }
      ++job;
      continue;
    }
    if (!converges) {
      if (!std::isinf(exact)) {
        record(result, job, "divergence", kInfinity, exact);
      }
      ++job;
      continue;
    }
    if (!std::isfinite(exact)) {
      record(result, job, "finite", first_visit, exact);
      ++job;
      continue;
    }
    // E[T] is a mixture of visit times all >= the first visit.
    if (exact < first_visit * (1 - Real{1e-9L})) {
      record(result, job, "first_visit_bound", first_visit, exact);
    }
    if (clt_comparable) {
      ProbabilisticMcOptions mc_options;
      mc_options.p = p;
      mc_options.trials = trials;
      // Decorrelate targets: consecutive SplitMix64 seeds mix apart.
      mc_options.seed = seed + job;
      const ProbabilisticMcResult mc =
          mc_expected_detection_time(fleet, x, mc_options);
      const int detected = mc.trials - mc.undetected;
      if (detected < 2 || !std::isfinite(mc.stddev)) {
        record(result, job, "mc_detected", static_cast<Real>(trials),
               static_cast<Real>(detected));
        ++job;
        continue;
      }
      // 7-sigma CLT band plus relative slack for the exact engine's own
      // rel_tol tail truncation: wide enough that a false alarm across
      // the whole fuzz corpus is essentially impossible, tight enough
      // that a wrong closed form (off by a term, wrong ratio) trips it.
      const Real band = 7 * mc.stddev / std::sqrt(static_cast<Real>(detected)) +
                        Real{0.02L} * exact + Real{1e-9L};
      if (std::fabs(exact - mc.mean) > band) {
        record(result, job, "mc_mean", exact, mc.mean);
      }
    }
    ++job;
  }
  if (!result.passed && result.mismatches.size() > 1) {
    result.message += " (+" +
                      std::to_string(result.mismatches.size() - 1) +
                      " more mismatches)";
  }
  return result;
}

DifferentialResult diff_scalar_vs_simd(const Fleet& fleet, const int f,
                                       const CrEvalOptions& eval) {
  DifferentialResult result;
  result.name = "scalar_vs_simd";
  // A fleet that leaves probes undetected throws under require_finite on
  // BOTH paths with the same message; compare the relaxed results so the
  // engine reports value mismatches instead of aborting.
  CrEvalOptions relaxed = eval;
  relaxed.require_finite = false;

  // (a) Full scan: the SoA kernel vs the scalar reference loop backed by
  // direct (uncached, unbatched) Fleet queries.
  const CrEvalResult kernel = kernels::measure_cr_kernel(fleet, f, relaxed);
  const CrEvalResult scalar = detail::measure_cr_with(
      fleet, f, relaxed,
      [&fleet, f](const Real x) { return fleet.detection_time(x, f); });
  compare_results(result, 0, scalar, kernel);

  // (b) Columns: every batched per-probe detection time vs the scalar
  // oracle at the identical signed position (the same side * magnitude
  // product the kernel feeds its sweep).
  const kernels::ProbeBatch batch = kernels::build_probe_batch(fleet, relaxed);
  kernels::VisitColumns columns;
  kernels::fill_visit_columns(fleet, f, batch, columns);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Real x = static_cast<Real>(batch.sides[i]) * batch.magnitudes[i];
    const Real direct = fleet.detection_time(x, f);
    if (!value_identical(direct, columns.detection[i])) {
      record(result, i, "detection", direct, columns.detection[i]);
    }
  }
  if (!result.passed && result.mismatches.size() > 1) {
    result.message += " (+" +
                      std::to_string(result.mismatches.size() - 1) +
                      " more mismatches)";
  }
  return result;
}

std::vector<DifferentialResult> run_differentials(
    const Fleet& fleet, const int f, const CrEvalOptions& eval,
    const std::vector<Real>& targets, const DifferentialOptions& options) {
  // The thread race uses a small (f', window) sweep around the instance,
  // the shape real sweeps have, so the cache sees cross-job sharing.
  std::vector<CrBatchJob> jobs;
  const int n = static_cast<int>(fleet.size());
  for (const int g : {0, f, n - 1}) {
    if (g < 0 || (!jobs.empty() && jobs.back().f == g)) continue;
    CrEvalOptions job_options = eval;
    jobs.push_back({&fleet, g, job_options});
  }

  std::vector<DifferentialResult> results;
  results.push_back(diff_batch_threads(jobs, options));
  results.push_back(diff_cache_on_off(jobs));
  std::vector<Real> positions = targets;
  if (positions.empty()) {
    positions = {eval.window_lo, -eval.window_lo, eval.window_hi,
                 -eval.window_hi};
  }
  results.push_back(diff_cache_direct(fleet, f, positions));
  results.push_back(diff_probe_vs_exact(fleet, f, eval, options));
  results.push_back(diff_exact_vs_grid(fleet, f, eval, options));
  results.push_back(diff_scalar_vs_simd(fleet, f, eval));
  return results;
}

bool all_ok(const std::vector<DifferentialResult>& results) {
  return std::all_of(results.begin(), results.end(),
                     [](const DifferentialResult& r) { return r.ok(); });
}

std::string describe_failures(
    const std::vector<DifferentialResult>& results) {
  std::string out;
  for (const DifferentialResult& result : results) {
    if (result.ok()) continue;
    if (!out.empty()) out += '\n';
    out += result.name + ": " + result.message;
  }
  return out;
}

}  // namespace verify
}  // namespace linesearch

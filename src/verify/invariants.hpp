// verify/invariants.hpp — machine-checkable oracles over fleets.
//
// The paper is not just a source of strategies; it is a source of
// PREDICATES that every strategy and every evaluator path must satisfy.
// This module packages them as pure checks over a `Subject` (a fleet plus
// what the builder claims about it) so the fuzzer, the differential
// engines and the tests all enforce one oracle set:
//
//   * kinematics   — speed <= 1, detection never beats the light cone
//                    (T_{f+1}(x) >= |x|);
//   * Lemma 1      — cone containment: every waypoint of a cone-built
//                    fleet inside C_beta;
//   * Lemma 2      — proportional structure: positive turning points in
//                    geometric progression r = ((beta+1)/(beta-1))^(2/n),
//                    robots interleaved mod n (re-derived from raw
//                    waypoints by core/check_schedule);
//   * monotonicity — per-robot first-visit times nondecreasing in |x|
//                    along each half-line (robots start at the origin, so
//                    reaching x means crossing everything nearer first);
//   * T_{f+1}      — detection_time(x, k) is EXACTLY the (k+1)-st
//                    distinct first visit, nondecreasing in k, kInfinity
//                    once k >= n; more faults never shrink the measured
//                    CR (the crash <= Byzantine direction of
//                    arXiv:1611.08209, restricted to our model);
//   * coverage     — the (f+1)-fold coverage every SearchStrategy
//                    promises for |x| <= extent;
//   * Theorem 1    — certified CR of A(n,f) (or Lemma 5's F(beta) for
//                    any S_beta(n)) agrees with the closed form;
//   * Theorem 2    — the adversary game forces ratio >= alpha for every
//                    feasible threat level whenever n < 2f+2 — the
//                    lower-bound-dominance cross-check in the spirit of
//                    Kupavskii-Welzl's independent bounds (arXiv:
//                    1707.05077): measured ratios must dominate every
//                    proved floor, on every instance;
//   * Byzantine    — the arXiv:1611.08209 bounds: quorum time is exactly
//                    the (2f+1)-st distinct visit and dominates T_{f+1};
//                    n < 2f+1 makes quorum impossible (CR = inf); on the
//                    feasible diagonal n = 2f+1 the measured quorum CR
//                    never exceeds schedule_cr(n, 2f, beta).
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace verify {

/// A fleet plus everything the builder claims about it.  Oracles that
/// need a claim the subject does not make report themselves inapplicable
/// instead of failing.
struct Subject {
  const Fleet* fleet = nullptr;
  int f = 0;                      ///< fault budget the fleet claims
  std::optional<Real> beta;       ///< cone parameter, when cone-confined
  bool proportional = false;      ///< Lemma-2 structure expected
  std::optional<Real> theory_cr;  ///< closed-form CR, when proven
  /// True when the verification window is known to contain the worst
  /// case (steady state), so theory agreement is two-sided; false keeps
  /// the Theorem-1 oracle one-sided (measured <= theory).
  bool window_is_tight = false;
  Real coverage_extent = 0;       ///< extent the builder promised
};

/// Options shared by the sampled oracles.
struct InvariantOptions {
  Real window_lo = 1;
  Real window_hi = 16;
  int samples = 24;          ///< geometric probe grid density per side
  Real rel_tol = 1e-7L;      ///< closed-form agreement tolerance
  /// Extra positions (signed) every sampled oracle also probes —
  /// the fuzzer feeds its adversarial targets through here.
  std::vector<Real> extra_positions;
  /// Run the Theorem-2 adversary game (the costliest oracle).
  bool run_theorem2_game = true;
};

/// Outcome of one oracle.
struct InvariantResult {
  std::string name;
  bool applicable = true;   ///< subject makes the claim this oracle needs
  bool passed = true;
  std::string message;      ///< failure detail (empty when passed)
  Real worst = 0;           ///< worst observed violation magnitude

  [[nodiscard]] bool ok() const noexcept { return !applicable || passed; }
};

/// Value-exact equality for Real: same value, same zero sign, NaN == NaN.
/// (The "bit-identical" contract of the parallel engine, minus the x87
/// padding bytes a raw memcmp would compare.)
[[nodiscard]] inline bool value_identical(const Real a,
                                          const Real b) noexcept {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b && std::signbit(a) == std::signbit(b);
}

/// Kinematics: every robot's speed <= 1 (+slack) and sampled detection
/// times never beat the light cone (T_{f+1}(x) >= |x|).
[[nodiscard]] InvariantResult check_kinematics(const Subject& subject,
                                               const InvariantOptions& options);

/// Lemma 1: every waypoint of every robot inside C_beta.  Inapplicable
/// without subject.beta.
[[nodiscard]] InvariantResult check_cone_containment(
    const Subject& subject, const InvariantOptions& options);

/// Lemma 2: proportional turning-point structure, re-derived from raw
/// waypoints.  Inapplicable unless subject.proportional.
[[nodiscard]] InvariantResult check_proportional_structure(
    const Subject& subject, const InvariantOptions& options);

/// Per-robot first-visit times nondecreasing in |x| along each half-line
/// (skips robots that do not start inside (-window_lo, window_lo)).
[[nodiscard]] InvariantResult check_first_visit_monotonicity(
    const Subject& subject, const InvariantOptions& options);

/// T_{f+1} ordering at sampled positions: detection_time(x, k) equals the
/// (k+1)-st distinct first visit, is nondecreasing in k, turns kInfinity
/// at k >= n, and distinct_visitors_by confirms the count.
[[nodiscard]] InvariantResult check_detection_order_statistics(
    const Subject& subject, const InvariantOptions& options);

/// (f+1)-fold coverage of 1 <= |x| <= coverage_extent (Fleet::covers).
[[nodiscard]] InvariantResult check_coverage(const Subject& subject,
                                             const InvariantOptions& options);

/// Theorem 1 / Lemma 5: certified CR over the window vs the closed form.
/// One-sided (certified <= theory) unless subject.window_is_tight, in
/// which case agreement within rel_tol is demanded.  Inapplicable
/// without subject.theory_cr.
[[nodiscard]] InvariantResult check_theorem1_agreement(
    const Subject& subject, const InvariantOptions& options);

/// Theorem 2 dominance: the adversary game at a feasible threat level
/// alpha forces ratio >= alpha (and any claimed closed-form CR dominates
/// best_lower_bound).  Inapplicable when n >= 2f+2 (bound is trivial) or
/// the fleet's extent cannot contain any feasible placement set.
[[nodiscard]] InvariantResult check_lower_bound_dominance(
    const Subject& subject, const InvariantOptions& options);

/// Fault monotonicity of the measured CR itself: sup K with fault budget
/// g is nondecreasing in g over 0..f (more crash faults never help the
/// searchers — the in-model face of the crash-vs-Byzantine ordering).
[[nodiscard]] InvariantResult check_fault_monotone_cr(
    const Subject& subject, const InvariantOptions& options);

/// Probabilistic-fault monotonicity: the expected CR measured by
/// eval/expectation is nondecreasing in the per-visit failure
/// probability p over a fixed grid (a coupling argument — raising p can
/// only remove successful coin flips, never add them, so every
/// realization detects later).  Probes whose expectation diverges
/// (finite visit lists under p > 0, or p past the ladder threshold) are
/// compared through the undetected-probe count, which must itself be
/// nondecreasing in p; the finite sup is only compared while the
/// detected probe set is unchanged, mirroring check_fault_monotone_cr.
[[nodiscard]] InvariantResult check_probabilistic_monotone(
    const Subject& subject, const InvariantOptions& options);

/// arXiv:1611.08209 bounds for the lying fault model, per sampled
/// position: the quorum time byzantine_quorum_time(x, f) is exactly the
/// (2f+1)-st distinct first visit (order-statistic identity), dominates
/// T_{f+1}(x) pointwise, and is infinite everywhere when n < 2f+1 (the
/// impossibility bound).  On the feasible diagonal n = 2f+1 of a
/// proportional subject the measured quorum CR must stay within the
/// closed-form upper bound schedule_cr(n, 2f, beta).  Inapplicable when
/// f < 1.
[[nodiscard]] InvariantResult check_byzantine_bounds(
    const Subject& subject, const InvariantOptions& options);

/// Run every oracle above, in a fixed order.
[[nodiscard]] std::vector<InvariantResult> run_invariants(
    const Subject& subject, const InvariantOptions& options = {});

/// True iff every result is ok (inapplicable counts as ok).
[[nodiscard]] bool all_ok(const std::vector<InvariantResult>& results);

/// One line per failed oracle ("name: message"), empty when all ok.
[[nodiscard]] std::string describe_failures(
    const std::vector<InvariantResult>& results);

}  // namespace verify
}  // namespace linesearch

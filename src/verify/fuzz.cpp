#include "verify/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "core/custom.hpp"
#include "eval/expectation.hpp"
#include "obs/metrics.hpp"
#include "runtime/world.hpp"
#include "sim/faults.hpp"
#include "sim/trajectory.hpp"
#include "sim/zigzag.hpp"
#include "svc/chaos.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"

namespace linesearch {
namespace verify {

const char* kind_name(const FleetKind kind) noexcept {
  switch (kind) {
    case FleetKind::kProportional: return "proportional";
    case FleetKind::kPerturbedBeta: return "perturbed-beta";
    case FleetKind::kCustomCone: return "custom-cone";
    case FleetKind::kGroupDoubling: return "group-doubling";
    case FleetKind::kClassicCowPath: return "classic-cow-path";
    case FleetKind::kUniformOffset: return "uniform-offset";
    case FleetKind::kAnalyticZigzag: return "analytic-zigzag";
    case FleetKind::kCrashInjected: return "crash-injected";
    case FleetKind::kKernelSoA: return "kernel-soa";
    case FleetKind::kByzantineLies: return "byzantine-lies";
    case FleetKind::kServerQuery: return "server-query";
    case FleetKind::kProbabilisticFaults: return "probabilistic-faults";
    case FleetKind::kChaosWire: return "chaos-wire";
  }
  return "unknown";
}

const char* injection_name(const Injection injection) noexcept {
  switch (injection) {
    case Injection::kNone: return "none";
    case Injection::kConeEscape: return "cone-escape";
  }
  return "unknown";
}

namespace {

bool regime_kind(const FleetKind kind) noexcept {
  return kind == FleetKind::kProportional ||
         kind == FleetKind::kPerturbedBeta ||
         kind == FleetKind::kUniformOffset ||
         kind == FleetKind::kAnalyticZigzag ||
         kind == FleetKind::kCrashInjected ||
         kind == FleetKind::kKernelSoA ||
         kind == FleetKind::kByzantineLies ||
         kind == FleetKind::kServerQuery ||
         kind == FleetKind::kProbabilisticFaults ||
         kind == FleetKind::kChaosWire;
}

bool cone_kind(const FleetKind kind) noexcept {
  return kind != FleetKind::kClassicCowPath;
}

/// Smallest f with f < n < 2f+2, i.e. the regime floor floor(n/2).
int regime_f_floor(const int n) noexcept { return n / 2; }

/// Unit-speed Beck/Bellman doubling zig-zag from the origin: waypoints
/// (0,0), (1,1), (-2,4), (4,10), ... until both half-lines reach
/// min_coverage.  Its first waypoint (1, 1) lies strictly below the
/// boundary t = beta*|x| of every cone with beta > 1.
/// Strategy object behind a fuzz kind, for the dense-vs-analytic
/// differential; null when the kind has no SearchStrategy form.
std::unique_ptr<SearchStrategy> make_fuzz_strategy(
    const FuzzInstance& instance) {
  switch (instance.kind) {
    case FleetKind::kProportional:
    case FleetKind::kAnalyticZigzag:
    case FleetKind::kByzantineLies:
    case FleetKind::kProbabilisticFaults:
      return std::make_unique<ProportionalAlgorithm>(instance.n, instance.f);
    case FleetKind::kPerturbedBeta:
    case FleetKind::kKernelSoA:
      return std::make_unique<ProportionalAlgorithm>(instance.n, instance.f,
                                                     instance.beta);
    case FleetKind::kGroupDoubling:
      return std::make_unique<GroupDoubling>(instance.n, instance.f);
    case FleetKind::kClassicCowPath:
      return std::make_unique<ClassicCowPath>(instance.n, instance.f,
                                              instance.mirrored);
    case FleetKind::kUniformOffset:
      return std::make_unique<UniformOffsetZigzag>(instance.n, instance.f);
    case FleetKind::kCustomCone:
    case FleetKind::kCrashInjected:
    case FleetKind::kServerQuery:
    case FleetKind::kChaosWire:
      // A crashed fleet is not a SearchStrategy, and the wire kinds
      // have their own dedicated differentials (server/chaos vs
      // library).
      return nullptr;
  }
  return nullptr;
}

/// The controller team behind kCrashInjected (the crash differential
/// rebuilds the identical team itself).
Fleet build_crash_injected_fleet(const FuzzInstance& instance) {
  std::vector<FaultSpec> plan;
  plan.reserve(instance.crash_times.size());
  for (const Real t : instance.crash_times) {
    plan.push_back(std::isfinite(t) ? FaultSpec::crash_at(t)
                                    : FaultSpec::none());
  }
  std::vector<ControllerPtr> team;
  team.reserve(static_cast<std::size_t>(instance.n));
  for (int robot = 0; robot < instance.n; ++robot) {
    team.push_back(std::make_unique<ProportionalController>(
        instance.n, instance.f, robot, instance.extent));
  }
  return World().execute_team(team, FaultInjector(std::move(plan)));
}

Trajectory make_escape_zigzag(const Real min_coverage) {
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  Real turn = 1;
  Real covered_pos = 0;
  Real covered_neg = 0;
  while (covered_pos < min_coverage || covered_neg < min_coverage) {
    builder.move_to(turn);
    if (turn > 0) {
      covered_pos = turn;
    } else {
      covered_neg = -turn;
    }
    turn *= -2;
  }
  return std::move(builder).build();
}

}  // namespace

FuzzInstance generate_instance(const std::uint64_t seed) {
  SplitMix64 rng(seed);
  FuzzInstance instance;
  instance.seed = seed;
  instance.kind = static_cast<FleetKind>(rng.uniform_int(0, 12));

  switch (instance.kind) {
    case FleetKind::kProportional:
    case FleetKind::kPerturbedBeta:
    case FleetKind::kUniformOffset:
    case FleetKind::kAnalyticZigzag:
    case FleetKind::kCrashInjected:
    case FleetKind::kKernelSoA:
    case FleetKind::kByzantineLies:
    case FleetKind::kServerQuery:
    case FleetKind::kProbabilisticFaults:
    case FleetKind::kChaosWire: {
      instance.f = rng.uniform_int(1, 4);
      instance.n = rng.uniform_int(instance.f + 1, 2 * instance.f + 1);
      instance.beta =
          instance.kind == FleetKind::kPerturbedBeta ||
                  instance.kind == FleetKind::kKernelSoA
              ? rng.uniform(1.2L, 6.0L)
              : optimal_beta(instance.n, instance.f);
      break;
    }
    case FleetKind::kGroupDoubling:
    case FleetKind::kClassicCowPath: {
      instance.n = rng.uniform_int(1, 6);
      instance.f = rng.uniform_int(0, instance.n - 1);
      instance.beta = 3;
      instance.mirrored = instance.kind == FleetKind::kClassicCowPath &&
                          instance.n >= 2 && rng.chance(0.5L);
      break;
    }
    case FleetKind::kCustomCone: {
      instance.beta = rng.uniform(1.5L, 4.0L);
      const Real kappa2 = expansion_factor(instance.beta) *
                          expansion_factor(instance.beta);
      instance.n = rng.uniform_int(1, 6);
      for (int i = 0; i < instance.n; ++i) {
        instance.magnitudes.push_back(
            rng.uniform(1, kappa2 * 0.999L));
      }
      std::sort(instance.magnitudes.begin(), instance.magnitudes.end());
      instance.f = rng.uniform_int(0, instance.n - 1);
      break;
    }
  }

  instance.window_lo = 1;
  instance.window_hi = static_cast<Real>(1 << rng.uniform_int(2, 4));
  instance.extent = instance.window_hi * 4;
  if (instance.kind == FleetKind::kCustomCone || regime_kind(instance.kind)) {
    // Cone fleets need extent > kappa^2 (builder precondition); regime
    // kinds additionally need the positive turning grid to hold a full
    // n-rung interleaving cycle above 1 — one whole kappa^2 period —
    // before the structural oracle can judge them.
    const Real kappa2 =
        expansion_factor(instance.beta) * expansion_factor(instance.beta);
    instance.extent = std::max(instance.extent, kappa2 * Real{1.5L});
  }

  if (instance.kind == FleetKind::kServerQuery ||
      instance.kind == FleetKind::kChaosWire) {
    // Which fault regime the wire query runs under; a crash query
    // carries its schedule in crash_times (generated below, like
    // kCrashInjected's).
    instance.query_regime =
        static_cast<svc::FaultRegime>(rng.uniform_int(0, 2));
  }

  if (instance.kind == FleetKind::kChaosWire) {
    // The wire fault injector's substrate: a nonzero seed (0 is the
    // documented clean channel, reserved for the shrinker) and the
    // per-connection fault-script cap.
    instance.chaos_seed = rng.next() | 1u;
    instance.chaos_fault_cap = rng.uniform_int(1, 4);
  }

  if (instance.kind == FleetKind::kProbabilisticFaults) {
    // Both draws happen unconditionally so the stream shape is fixed;
    // one instance in five lands past the ladder threshold kappa^(-1/n)
    // (exercising the divergence contract), the rest stay comfortably
    // inside the convergent band.
    const bool divergent = rng.chance(0.2L);
    const Real unit = rng.uniform(0.0L, 1.0L);
    const Real threshold =
        expectation_convergence_threshold(instance.n, instance.f);
    instance.fault_p = divergent
                           ? threshold + (1 - threshold) * (0.05L + 0.9L * unit)
                           : threshold * 0.8L * unit;
  }

  if (instance.kind == FleetKind::kCrashInjected ||
      ((instance.kind == FleetKind::kServerQuery ||
        instance.kind == FleetKind::kChaosWire) &&
       instance.query_regime == svc::FaultRegime::kCrash)) {
    // Per-robot crash schedule; both draws happen unconditionally so
    // the stream shape is fixed regardless of which robots crash.
    for (int robot = 0; robot < instance.n; ++robot) {
      const bool crashes = rng.chance(0.6L);
      const Real at = rng.uniform(0.1L, 32.0L);
      instance.crash_times.push_back(crashes ? at : kInfinity);
    }
  }

  if (instance.kind == FleetKind::kByzantineLies) {
    // Seeded lie schedule on the shared substrate: one draw feeds the
    // dedicated generator, so the plan stays a pure function of the
    // instance seed and the shrinker can mutate the record directly.
    LiePlanConfig lies;
    lies.max_liars = instance.f;
    lies.max_claims_per_liar = 2;
    lies.claim_horizon = 32;
    lies.claim_extent = instance.window_hi;
    instance.lies = random_lie_plan(
        rng.next(), static_cast<std::size_t>(instance.n), lies);
  }

  // Adversarial targets: the +-window_lo boundary right-limits, the top
  // of the window, a couple of uniform draws, and right/left limits of a
  // few turning points of the actual fleet (the discontinuities of K).
  const Real lo = instance.window_lo;
  const Real hi = instance.window_hi;
  instance.targets = {lo * (1 + tol::kLimitProbe), -lo * (1 + tol::kLimitProbe),
                      hi * (1 - tol::kLimitProbe), -hi * (1 - tol::kLimitProbe)};
  instance.targets.push_back(rng.uniform(lo, hi));
  instance.targets.push_back(-rng.uniform(lo, hi));
  const Fleet fleet = build_fuzz_fleet(instance);
  for (const int side : {+1, -1}) {
    int taken = 0;
    // Windowed: finite on the analytic kind, and turns beyond the window
    // never pass the magnitude filter below anyway.
    for (const Real turn : fleet.turning_positions_in(side, 0, hi)) {
      const Real magnitude = std::fabs(turn);
      if (magnitude <= lo * Real{1.01L} || magnitude >= hi * Real{0.99L}) {
        continue;
      }
      instance.targets.push_back(turn * (1 + tol::kLimitProbe));
      instance.targets.push_back(turn * (1 - tol::kLimitProbe));
      if (++taken == 3) break;
    }
  }
  if (instance.kind == FleetKind::kKernelSoA) {
    // Exact duplicates on purpose: the SoA kernel's first-occurrence
    // dedup and the visit cache must treat a repeated position as one.
    const std::size_t unique_targets = instance.targets.size();
    for (std::size_t i = 0; i < unique_targets && i < 4; ++i) {
      instance.targets.push_back(instance.targets[i]);
    }
  }
  return instance;
}

Fleet build_fuzz_fleet(const FuzzInstance& instance) {
  Fleet fleet = [&instance]() -> Fleet {
    switch (instance.kind) {
      case FleetKind::kProportional:
      case FleetKind::kByzantineLies:
        // Lies never alter motion — the Byzantine fleet IS the A(n, f)
        // fleet; only the claim stream differs (diff_byzantine's job).
        return ProportionalAlgorithm(instance.n, instance.f)
            .build_fleet(instance.extent);
      case FleetKind::kPerturbedBeta:
      case FleetKind::kKernelSoA:
        return ProportionalAlgorithm(instance.n, instance.f, instance.beta)
            .build_fleet(instance.extent);
      case FleetKind::kCustomCone:
        return build_cone_fleet(instance.beta, instance.magnitudes,
                                instance.extent);
      case FleetKind::kGroupDoubling:
        return GroupDoubling(instance.n, instance.f)
            .build_fleet(instance.extent);
      case FleetKind::kClassicCowPath:
        return ClassicCowPath(instance.n, instance.f, instance.mirrored)
            .build_fleet(instance.extent);
      case FleetKind::kUniformOffset:
        return UniformOffsetZigzag(instance.n, instance.f)
            .build_fleet(instance.extent);
      case FleetKind::kAnalyticZigzag:
      case FleetKind::kProbabilisticFaults:
        // The same A(n, f) curves as kProportional, but on the analytic
        // backend with an unbounded horizon — every oracle downstream
        // must work through windowed queries only.  (The probabilistic
        // kind needs the unbounded backend: a finite visit list makes
        // the expectation infinite for every p > 0.)
        return ProportionalAlgorithm(instance.n, instance.f)
            .build_unbounded_fleet();
      case FleetKind::kCrashInjected:
        return build_crash_injected_fleet(instance);
      case FleetKind::kServerQuery:
      case FleetKind::kChaosWire: {
        // The fleet the wire query evaluates against: plain A(n, f) for
        // the none/byzantine regimes (lies never alter motion), the
        // analytic truncation for a crash query.
        Fleet built = ProportionalAlgorithm(instance.n, instance.f)
                          .build_fleet(instance.extent);
        if (instance.query_regime == svc::FaultRegime::kCrash) {
          return truncate_at_crashes(built, instance.crash_times);
        }
        return built;
      }
    }
    throw PreconditionError("build_fuzz_fleet: unknown kind");
  }();

  if (instance.injection == Injection::kConeEscape) {
    std::vector<Trajectory> robots = fleet.robots();
    // Coverage capped at 4: the violation is the FIRST waypoint, so the
    // minimal 4-segment zig-zag (1, -2, 4, -8) already exhibits it and
    // the shrunk repro stays minimal regardless of the instance extent.
    robots.front() = make_escape_zigzag(std::min(instance.extent, Real{4}));
    fleet = Fleet(std::move(robots));
  }
  return fleet;
}

Subject make_subject(const FuzzInstance& instance, const Fleet& fleet) {
  Subject subject;
  subject.fleet = &fleet;
  subject.f = instance.f;
  subject.coverage_extent = instance.extent;
  if (cone_kind(instance.kind)) subject.beta = instance.beta;
  switch (instance.kind) {
    case FleetKind::kProportional:
    case FleetKind::kByzantineLies:
      subject.proportional = true;
      subject.theory_cr = algorithm_cr(instance.n, instance.f);
      break;
    case FleetKind::kPerturbedBeta:
    case FleetKind::kKernelSoA:
      subject.proportional = true;
      subject.theory_cr = schedule_cr(instance.n, instance.f, instance.beta);
      break;
    case FleetKind::kGroupDoubling:
      subject.theory_cr = Real{9};
      break;
    case FleetKind::kClassicCowPath: {
      const auto theory =
          ClassicCowPath(instance.n, instance.f, instance.mirrored)
              .theoretical_cr();
      if (theory) subject.theory_cr = *theory;
      break;
    }
    case FleetKind::kAnalyticZigzag:
    case FleetKind::kProbabilisticFaults:
      // Genuinely proportional, but the structural re-derivation needs a
      // materialized waypoint list, which the unbounded backend refuses;
      // the dense-vs-analytic differential covers the structure instead.
      subject.theory_cr = algorithm_cr(instance.n, instance.f);
      break;
    case FleetKind::kCrashInjected:
      // Crashed robots stop short of the extent, so the coverage claim
      // is withdrawn (0 => inapplicable); the ladder is A(n, f) so the
      // cone claim stands — every truncated leg stays inside C_beta.
      subject.coverage_extent = 0;
      break;
    case FleetKind::kServerQuery:
    case FleetKind::kChaosWire:
      if (instance.query_regime == svc::FaultRegime::kCrash) {
        // Same reasoning as kCrashInjected: truncated legs stay in
        // C_beta but coverage is withdrawn.
        subject.coverage_extent = 0;
      } else {
        subject.proportional = true;
        subject.theory_cr = algorithm_cr(instance.n, instance.f);
      }
      break;
    case FleetKind::kCustomCone:
    case FleetKind::kUniformOffset:
      break;
  }
  return subject;
}

bool FuzzOutcome::ok() const {
  return verify::all_ok(invariants) && verify::all_ok(differentials);
}

std::string FuzzOutcome::primary_failure() const {
  for (const InvariantResult& result : invariants) {
    if (!result.ok()) return result.name;
  }
  for (const DifferentialResult& result : differentials) {
    if (!result.ok()) return result.name;
  }
  return "";
}

std::string FuzzOutcome::describe() const {
  std::string out = verify::describe_failures(invariants);
  const std::string diff = verify::describe_failures(differentials);
  if (!diff.empty()) {
    if (!out.empty()) out += '\n';
    out += diff;
  }
  return out;
}

FuzzOutcome run_instance(const FuzzInstance& instance) {
  LS_OBS_COUNT("verify.fuzz.instances", 1);
  if constexpr (obs::kEnabled) {
    obs::count_named(std::string("verify.fuzz.instances.") +
                     kind_name(instance.kind));
  }
  FuzzOutcome outcome;
  try {
    const Fleet fleet = build_fuzz_fleet(instance);
    const Subject subject = make_subject(instance, fleet);
    InvariantOptions options;
    options.window_lo = instance.window_lo;
    options.window_hi = instance.window_hi;
    options.samples = 16;
    options.extra_positions = instance.targets;
    // A crashed fleet can leave probes undetected forever; the adversary
    // game assumes a fully covering fleet, so crash kinds sit it out.
    options.run_theorem2_game =
        instance.kind != FleetKind::kCrashInjected &&
        !((instance.kind == FleetKind::kServerQuery ||
           instance.kind == FleetKind::kChaosWire) &&
          instance.query_regime == svc::FaultRegime::kCrash);
    outcome.invariants = run_invariants(subject, options);

    if (instance.injection == Injection::kNone) {
      CrEvalOptions eval;
      eval.window_lo = instance.window_lo;
      eval.window_hi = instance.window_hi;
      try {
        if (instance.kind == FleetKind::kCrashInjected) {
          // The generic engines demand finite detection everywhere; the
          // crash kind instead races the injected World run against the
          // analytic truncation of a clean run.
          outcome.differentials.push_back(diff_crash_injected(
              instance.n, instance.f, instance.extent,
              instance.crash_times, eval));
        } else if (instance.kind == FleetKind::kServerQuery ||
                   instance.kind == FleetKind::kChaosWire) {
          // Wire round trip vs the library on this instance's query —
          // over a clean in-process wire for kServerQuery, through the
          // seeded chaos channel + resilient client for kChaosWire.
          svc::CrQuery query;
          query.n = instance.n;
          query.f = instance.f;
          query.beta = instance.beta;
          query.window_lo = instance.window_lo;
          query.window_hi = instance.window_hi;
          query.regime = instance.query_regime;
          if (instance.query_regime == svc::FaultRegime::kCrash) {
            query.crash_times = instance.crash_times;
          }
          if (instance.kind == FleetKind::kChaosWire) {
            outcome.differentials.push_back(diff_chaos_vs_library(
                query, instance.chaos_seed, instance.chaos_fault_cap));
          } else {
            outcome.differentials.push_back(diff_server_vs_library(query));
          }
        } else {
          outcome.differentials =
              run_differentials(fleet, instance.f, eval, instance.targets);
        }
        if (instance.kind == FleetKind::kByzantineLies) {
          // Race the runtime claim arbiter against the analytic quorum
          // evaluation under this instance's lie schedule.
          outcome.differentials.push_back(
              diff_byzantine(instance.n, instance.f, instance.extent,
                             instance.lies, instance.targets, eval));
        }
        if (instance.kind == FleetKind::kProbabilisticFaults) {
          // Race the exact expectation engine against the seeded
          // Monte-Carlo realization at this instance's fault_p; the MC
          // seed is derived from the instance seed so the whole verdict
          // replays from the seed alone.
          outcome.differentials.push_back(diff_expectation_vs_montecarlo(
              instance.n, instance.f, instance.fault_p, instance.targets,
              instance.seed ^ 0x5eed0bab01234567ULL));
        }
        if (const std::unique_ptr<SearchStrategy> strategy =
                make_fuzz_strategy(instance)) {
          outcome.differentials.push_back(diff_dense_vs_analytic(
              *strategy, instance.extent, instance.f, eval));
        }
      } catch (const Error& error) {
        DifferentialResult failed;
        failed.name = "differential-exception";
        failed.passed = false;
        failed.message = error.what();
        outcome.differentials.push_back(std::move(failed));
      }
    }
  } catch (const Error& error) {
    InvariantResult failed;
    failed.name = "build";
    failed.passed = false;
    failed.message = error.what();
    outcome.invariants.push_back(std::move(failed));
  }
  return outcome;
}

namespace {

/// Re-clamp (n, f) after a robot drop so every builder precondition
/// still holds; regime kinds additionally need f < n < 2f+2, and kinds
/// whose builder derives beta from (n, f) get the claim re-derived so
/// the Subject keeps describing the fleet actually built.
void clamp_faults(FuzzInstance& instance) {
  instance.f = std::min(instance.f, instance.n - 1);
  if (regime_kind(instance.kind)) {
    instance.f = std::max({instance.f, regime_f_floor(instance.n), 1});
  }
  instance.f = std::max(instance.f, 0);
  if (instance.n < 2) instance.mirrored = false;
  if (instance.kind == FleetKind::kProportional ||
      instance.kind == FleetKind::kUniformOffset ||
      instance.kind == FleetKind::kAnalyticZigzag ||
      instance.kind == FleetKind::kCrashInjected ||
      instance.kind == FleetKind::kByzantineLies ||
      instance.kind == FleetKind::kServerQuery ||
      instance.kind == FleetKind::kProbabilisticFaults ||
      instance.kind == FleetKind::kChaosWire) {
    instance.beta = optimal_beta(instance.n, instance.f);
  }
  while (instance.crash_times.size() >
         static_cast<std::size_t>(instance.n)) {
    instance.crash_times.pop_back();
  }
  // Dropped robots take their lie schedules with them (liars sit at the
  // tail, so a drop sheds liars first and liar_count <= f is preserved
  // through the regime re-clamp above).
  while (instance.lies.size() > static_cast<std::size_t>(instance.n)) {
    instance.lies.liar.pop_back();
    instance.lies.claims.pop_back();
  }
  // A re-clamp can still shrink f below a surviving liar count (e.g. a
  // non-tail liar layout fed in by hand); demote the latest liars.
  for (std::size_t robot = instance.lies.size();
       instance.lies.liar_count() > instance.f && robot-- > 0;) {
    if (instance.lies.liar[robot]) {
      instance.lies.liar[robot] = false;
      instance.lies.claims[robot].clear();
    }
  }
}

/// Candidate shrink moves, smallest-first; each strictly reduces the
/// instance (fewer targets/robots, smaller extent/window, rounder
/// parameters), so greedy acceptance terminates.
std::vector<FuzzInstance> shrink_moves(const FuzzInstance& instance) {
  std::vector<FuzzInstance> moves;

  if (!instance.targets.empty()) {
    FuzzInstance cleared = instance;
    cleared.targets.clear();
    moves.push_back(std::move(cleared));
    FuzzInstance fewer = instance;
    fewer.targets.pop_back();
    moves.push_back(std::move(fewer));
  }

  if (instance.kind == FleetKind::kCustomCone) {
    if (instance.magnitudes.size() > 1) {
      FuzzInstance dropped = instance;
      dropped.magnitudes.pop_back();
      dropped.n = static_cast<int>(dropped.magnitudes.size());
      clamp_faults(dropped);
      moves.push_back(std::move(dropped));
    }
  } else if (instance.n > (regime_kind(instance.kind) ? 2 : 1)) {
    // Regime kinds bottom out at (n, f) = (2, 1), the smallest pair with
    // 1 <= f < n < 2f+2.
    FuzzInstance dropped = instance;
    dropped.n -= 1;
    clamp_faults(dropped);
    moves.push_back(std::move(dropped));
  }

  Real extent_floor = 4;
  if (instance.kind == FleetKind::kCustomCone || regime_kind(instance.kind)) {
    const Real kappa2 =
        expansion_factor(instance.beta) * expansion_factor(instance.beta);
    extent_floor = std::max(extent_floor, kappa2 * Real{1.25L});
  }
  const Real halved_extent = std::max(extent_floor, instance.extent / 2);
  if (halved_extent < instance.extent) {
    FuzzInstance smaller = instance;
    smaller.extent = halved_extent;
    moves.push_back(std::move(smaller));
  }

  const Real halved_window =
      std::max(std::max(Real{2}, instance.window_lo * 2),
               instance.window_hi / 2);
  if (halved_window < instance.window_hi) {
    FuzzInstance narrower = instance;
    narrower.window_hi = halved_window;
    narrower.extent = std::max(narrower.extent, halved_window * 2);
    moves.push_back(std::move(narrower));
  }

  if (instance.kind == FleetKind::kPerturbedBeta ||
      instance.kind == FleetKind::kCustomCone ||
      instance.kind == FleetKind::kKernelSoA) {
    const Real rounded = std::max(Real{1.5L}, std::round(instance.beta));
    if (!value_identical(rounded, instance.beta)) {
      FuzzInstance rounder = instance;
      rounder.beta = rounded;
      if (rounder.kind == FleetKind::kCustomCone) {
        const Real kappa2 =
            expansion_factor(rounder.beta) * expansion_factor(rounder.beta);
        for (Real& magnitude : rounder.magnitudes) {
          magnitude = std::min(magnitude, kappa2 * Real{0.999L});
        }
        rounder.extent = std::max(rounder.extent, kappa2 * Real{1.25L});
      }
      moves.push_back(std::move(rounder));
    }
  }

  if (instance.kind == FleetKind::kCustomCone) {
    FuzzInstance rounder = instance;
    bool changed = false;
    for (Real& magnitude : rounder.magnitudes) {
      const Real rounded =
          std::max(Real{1}, std::round(magnitude * 4) / 4);
      if (!value_identical(rounded, magnitude)) {
        magnitude = rounded;
        changed = true;
      }
    }
    if (changed) moves.push_back(std::move(rounder));
  }

  if (instance.kind == FleetKind::kChaosWire) {
    // Simplest first: the clean channel (chaos_seed = 0).  If the
    // failure survives, it is a server/protocol bug, not a fault-
    // injection artifact — a strictly simpler repro.
    if (instance.chaos_seed != 0) {
      FuzzInstance clean = instance;
      clean.chaos_seed = 0;
      moves.push_back(std::move(clean));
    }
    // Then a shorter fault script: walk the per-connection cap down to
    // one fault, minimizing the (seed, fault-script) pair in the repro.
    if (instance.chaos_seed != 0 && instance.chaos_fault_cap > 1) {
      FuzzInstance fewer = instance;
      fewer.chaos_fault_cap -= 1;
      moves.push_back(std::move(fewer));
    }
  }

  if ((instance.kind == FleetKind::kServerQuery ||
       instance.kind == FleetKind::kChaosWire) &&
      instance.query_regime != svc::FaultRegime::kNone) {
    // Simplest first: the plain regime (drops the crash schedule too).
    FuzzInstance plain = instance;
    plain.query_regime = svc::FaultRegime::kNone;
    plain.crash_times.clear();
    moves.push_back(std::move(plain));
  }

  if (instance.kind == FleetKind::kCrashInjected ||
      ((instance.kind == FleetKind::kServerQuery ||
        instance.kind == FleetKind::kChaosWire) &&
       instance.query_regime == svc::FaultRegime::kCrash)) {
    bool any_crash = false;
    for (const Real t : instance.crash_times) {
      if (std::isfinite(t)) any_crash = true;
    }
    if (any_crash) {
      // Simplest first: no crashes at all (a plain A(n, f) run).
      FuzzInstance healthy = instance;
      std::fill(healthy.crash_times.begin(), healthy.crash_times.end(),
                kInfinity);
      moves.push_back(std::move(healthy));
      // Then rounder crash times (quarter grid, floor 0.25).
      FuzzInstance rounder = instance;
      bool changed = false;
      for (Real& t : rounder.crash_times) {
        if (!std::isfinite(t)) continue;
        const Real rounded =
            std::max(Real{0.25L}, std::round(t * 4) / 4);
        if (!value_identical(rounded, t)) {
          t = rounded;
          changed = true;
        }
      }
      if (changed) moves.push_back(std::move(rounder));
    }
  }

  if (instance.kind == FleetKind::kProbabilisticFaults &&
      instance.fault_p > 0) {
    // Simplest first: no failures at all (the bitwise p = 0 branch).
    FuzzInstance faultfree = instance;
    faultfree.fault_p = 0;
    moves.push_back(std::move(faultfree));
    // Then a rounder p on the sixteenth grid, clamped inside (0, 1) so
    // the rounded instance keeps exercising the same engine branch.
    const Real rounded =
        std::min(std::max(std::round(instance.fault_p * 16) / 16,
                          Real{1} / 16),
                 Real{15} / 16);
    if (!value_identical(rounded, instance.fault_p)) {
      FuzzInstance rounder = instance;
      rounder.fault_p = rounded;
      moves.push_back(std::move(rounder));
    }
  }

  if (instance.kind == FleetKind::kByzantineLies &&
      instance.lies.liar_count() > 0) {
    // Simplest first: everyone honest (a plain A(n, f) instance).
    FuzzInstance honest = instance;
    std::fill(honest.lies.liar.begin(), honest.lies.liar.end(), false);
    for (auto& claims : honest.lies.claims) claims.clear();
    moves.push_back(std::move(honest));
    // Then one fabrication fewer — drop the last liar's last claim (a
    // claimless liar still suppresses its real find).
    for (std::size_t robot = instance.lies.size(); robot-- > 0;) {
      if (!instance.lies.claims[robot].empty()) {
        FuzzInstance fewer = instance;
        fewer.lies.claims[robot].pop_back();
        moves.push_back(std::move(fewer));
        break;
      }
    }
    // Then rounder fabrications (quarter grid, |position| floor 1).
    FuzzInstance rounder = instance;
    bool changed = false;
    for (auto& claims : rounder.lies.claims) {
      for (LieEvent& event : claims) {
        const Real time =
            std::max(Real{0.25L}, std::round(event.time * 4) / 4);
        const Real sign = event.position < 0 ? Real{-1} : Real{1};
        const Real magnitude = std::max(
            Real{1}, std::round(std::fabs(event.position) * 4) / 4);
        if (!value_identical(time, event.time)) {
          event.time = time;
          changed = true;
        }
        if (!value_identical(sign * magnitude, event.position)) {
          event.position = sign * magnitude;
          changed = true;
        }
      }
    }
    if (changed) moves.push_back(std::move(rounder));
  }

  return moves;
}

}  // namespace

ShrinkResult shrink_instance(const FuzzInstance& start) {
  ShrinkResult result;
  result.instance = start;
  result.failure = run_instance(start).primary_failure();
  expects(!result.failure.empty(),
          "shrink_instance: the starting instance must fail");

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (FuzzInstance& candidate : shrink_moves(result.instance)) {
      LS_OBS_COUNT("verify.fuzz.shrink_attempts", 1);
      const FuzzOutcome outcome = run_instance(candidate);
      bool preserved = false;
      for (const InvariantResult& r : outcome.invariants) {
        if (!r.ok() && r.name == result.failure) preserved = true;
      }
      for (const DifferentialResult& r : outcome.differentials) {
        if (!r.ok() && r.name == result.failure) preserved = true;
      }
      if (preserved) {
        result.instance = std::move(candidate);
        LS_OBS_COUNT("verify.fuzz.shrink_accepted", 1);
        result.accepted_moves += 1;
        progressed = true;
        break;
      }
    }
  }
  return result;
}

std::string instance_to_json(const FuzzInstance& instance,
                             const FuzzOutcome& outcome) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.field("seed", std::to_string(instance.seed));
  json.field("kind", kind_name(instance.kind));
  json.field("injection", injection_name(instance.injection));
  json.field("query_regime",
             svc::fault_regime_name(instance.query_regime));
  json.field("n", instance.n);
  json.field("f", instance.f);
  json.field("beta", instance.beta);
  json.field("fault_p", instance.fault_p);
  json.field("mirrored", instance.mirrored);
  json.field("chaos_seed", std::to_string(instance.chaos_seed));
  json.field("chaos_fault_cap", instance.chaos_fault_cap);
  json.key("chaos_scripts").begin_array();
  if (instance.kind == FleetKind::kChaosWire) {
    // The realized fault scripts for the first few connections: with
    // chaos_seed they ARE the minimal repro's fault script (a pure
    // function of (seed, connection, direction)).
    svc::ChaosConfig config;
    config.seed = instance.chaos_seed;
    config.fault_cap = instance.chaos_fault_cap;
    for (std::uint64_t connection = 0; connection < 4; ++connection) {
      for (const int direction : {0, 1}) {
        json.begin_object();
        json.field("connection", static_cast<int>(connection));
        json.field("direction",
                   direction == 0 ? "to-server" : "to-client");
        json.field("script", svc::describe_script(svc::fault_script(
                                 config, connection, direction)));
        json.end_object();
      }
    }
  }
  json.end_array();
  json.key("magnitudes").begin_array();
  for (const Real magnitude : instance.magnitudes) json.value(magnitude);
  json.end_array();
  json.field("extent", instance.extent);
  json.field("window_lo", instance.window_lo);
  json.field("window_hi", instance.window_hi);
  json.key("targets").begin_array();
  for (const Real target : instance.targets) json.value(target);
  json.end_array();
  json.key("crash_times").begin_array();
  for (const Real t : instance.crash_times) json.value(t);
  json.end_array();
  json.key("liars").begin_array();
  for (const bool liar : instance.lies.liar) json.value(liar ? 1 : 0);
  json.end_array();
  json.key("lie_claims").begin_array();
  for (std::size_t robot = 0; robot < instance.lies.size(); ++robot) {
    for (const LieEvent& event : instance.lies.claims[robot]) {
      json.begin_object();
      json.field("robot", static_cast<int>(robot));
      json.field("time", event.time);
      json.field("position", event.position);
      json.end_object();
    }
  }
  json.end_array();
  json.field("ok", outcome.ok());
  json.key("failures").begin_array();
  for (const InvariantResult& result : outcome.invariants) {
    if (result.ok()) continue;
    json.begin_object();
    json.field("check", result.name);
    json.field("message", result.message);
    json.end_object();
  }
  for (const DifferentialResult& result : outcome.differentials) {
    if (result.ok()) continue;
    json.begin_object();
    json.field("check", result.name);
    json.field("message", result.message);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  out << '\n';
  return out.str();
}

CorpusReport run_corpus(const std::uint64_t first_seed, const int count) {
  CorpusReport report;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = first_seed + static_cast<std::uint64_t>(i);
    const FuzzOutcome outcome = run_instance(generate_instance(seed));
    report.total += 1;
    if (!outcome.ok()) {
      report.failed += 1;
      report.failing_seeds.push_back(seed);
    }
  }
  return report;
}

}  // namespace verify
}  // namespace linesearch

// verify/differential.hpp — pit independent evaluator paths against each
// other on the same instance.
//
// The library computes sup K(x) = T_{f+1}(x)/|x| through four routes
// that share no implementation beyond the Fleet queries:
//
//   serial probe scan  (eval/cr_eval measure_cr)
//   batched probe scan (eval/batch, any thread count, memoized oracle)
//   certified suprema  (eval/exact, probe-free)
//   dense grid sweep   (eval/batch k_profile over a geometric grid)
//
// Differential engines demand the right relation between each pair:
// bit-identical where the contract is exact (thread counts, cache
// on/off, memo vs direct), tolerance-bounded where an epsilon is part of
// the design (probe scan sits 1e-9 below the certified sup; a finite
// grid sits at or below it).  A mismatch produces a structured report
// naming the job, the field and both values, so a fuzzer failure is
// immediately actionable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "eval/batch.hpp"
#include "eval/cr_eval.hpp"
#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "svc/query.hpp"
#include "util/real.hpp"

namespace linesearch {
namespace verify {

/// One field that disagreed between two paths.
struct FieldMismatch {
  std::size_t job = 0;    ///< index into the compared job/position list
  std::string field;      ///< "cr", "argmax", "probes", ...
  Real lhs = 0;           ///< value on the reference path
  Real rhs = 0;           ///< value on the path under test
};

/// Outcome of one differential engine.
struct DifferentialResult {
  std::string name;
  bool applicable = true;
  bool passed = true;
  std::string message;
  std::vector<FieldMismatch> mismatches;

  [[nodiscard]] bool ok() const noexcept { return !applicable || passed; }
};

/// Tolerances for the non-exact comparisons.
struct DifferentialOptions {
  /// Max relative gap certified sup may sit ABOVE the probe scan (the
  /// probe misses the sup by ~kLimitProbe; generous default covers
  /// non-zig-zag fleets whose K jumps are steeper).
  Real probe_gap_tol = 1e-6L;
  /// Slack for "a sample can never exceed the sup" directions (pure
  /// long-double round-off).
  Real sample_tol = 1e-15L;
  /// Grid density per side for the dense-sweep cross-check.
  int grid_points = 64;
  /// Thread counts the batch engine is raced at (first is reference).
  std::vector<int> thread_counts = {1, 2, 8};
};

/// Batch engine vs itself across thread counts: every CrEvalResult field
/// bit-identical to the serial (threads = 1) reference.
[[nodiscard]] DifferentialResult diff_batch_threads(
    const std::vector<CrBatchJob>& jobs, const DifferentialOptions& options = {});

/// Cached vs uncached batch paths at a fixed thread count: bit-identical.
[[nodiscard]] DifferentialResult diff_cache_on_off(
    const std::vector<CrBatchJob>& jobs, int threads = 8);

/// Memoized FleetVisitCache::detection_time vs direct Fleet queries at
/// explicit positions (queried twice: cold, then warm): bit-identical.
[[nodiscard]] DifferentialResult diff_cache_direct(
    const Fleet& fleet, int f, const std::vector<Real>& positions);

/// Probe scan vs certified suprema: measured <= certified (a probe is a
/// sample of the sup) and certified - measured <= probe_gap_tol relative.
[[nodiscard]] DifferentialResult diff_probe_vs_exact(
    const Fleet& fleet, int f, const CrEvalOptions& eval,
    const DifferentialOptions& options = {});

/// Dense geometric K(x) grid vs certified suprema: every grid sample
/// <= certified sup (within round-off).
[[nodiscard]] DifferentialResult diff_exact_vs_grid(
    const Fleet& fleet, int f, const CrEvalOptions& eval,
    const DifferentialOptions& options = {});

/// Dense vs analytic backend: build the strategy both ways and demand
/// (a) the shared waypoint prefix (up to 64 entries per robot) is
/// bit-identical and (b) measure_cr over the window agrees field by
/// field, bitwise.  Inapplicable when the strategy has no analytic path.
/// Callers should pass a power-of-two extent: straight-line (ray)
/// trajectories reproduce dense visit arithmetic exactly only then.
[[nodiscard]] DifferentialResult diff_dense_vs_analytic(
    const SearchStrategy& strategy, Real extent, int f,
    const CrEvalOptions& eval);

/// Crash-injected World run vs analytic truncation: execute the A(n, f)
/// controllers under a crash-stop FaultInjector, independently truncate
/// a CLEAN run at the same crash times (sim/faults truncate_at_crashes),
/// and demand (a) every robot's waypoint stream is value-identical and
/// (b) measure_cr over the window (require_finite off) agrees field by
/// field, bitwise.  crash_times[i] = kInfinity means robot i is healthy.
[[nodiscard]] DifferentialResult diff_crash_injected(
    int n, int f, Real extent, const std::vector<Real>& crash_times,
    const CrEvalOptions& eval);

/// Byzantine quorum cost, three independent routes on one instance:
/// execute the A(n, f) controllers in a World (lies never alter motion,
/// only claims), feed the executed fleet's claim stream — honest robots
/// claiming truthfully, `plan`'s liars fabricating — through the runtime
/// arbiter (runtime/arbitration), and demand per target
///   (a) the arbiter's confirm time at the true target is
///       value_identical to the analytic per-liar-set quorum
///       byzantine_quorum_time(fleet, x, plan.liar, f),
///   (b) no falsely claimed position is ever confirmed,
///   (c) arbitrating the WORST liar set (the f earliest visitors,
///       silent) lands exactly on the order statistic
///       detection_time(x, 2f), and
///   (d) the quorum CR scan (budget 2f) cannot tell the executed fleet
///       from the schedule builder's, field by field, bitwise.
/// Targets that collide with a fabricated claim position are skipped in
/// (a) — a lie that accidentally tells the truth may legitimately
/// accelerate confirmation.
[[nodiscard]] DifferentialResult diff_byzantine(
    int n, int f, Real extent, const LiePlan& plan,
    const std::vector<Real>& targets, const CrEvalOptions& eval);

/// Service wire round trip vs the library: render `query` as one wire
/// request line, run it through an in-process QueryServer (svc/server
/// handle_line — the full parse -> canonicalize -> cache -> evaluate ->
/// serialize path), parse the response, and demand every QueryResult
/// field value_identical to evaluate_query_direct on the same query.
/// The line is sent twice; the warm (cached) response must be
/// byte-identical to the cold one — the service determinism contract at
/// the wire level.
[[nodiscard]] DifferentialResult diff_server_vs_library(
    const svc::CrQuery& query);

/// Chaos wire round trip vs the library: answer `query` through the
/// resilient client (svc/client) talking to an in-process QueryServer
/// across svc/chaos's deterministic fault injector at `chaos_seed`
/// (garbage bytes, split/merged frames, stalls, mid-request
/// disconnects — all pure functions of the seed), and demand the
/// response line be BYTE-identical to the offline library's rendering
/// `render_response(id, evaluate_query_direct(query))` on every call.
/// Three calls run back to back (ids 1..3) so retries cross cache-warm
/// and cache-cold server states.  chaos_seed = 0 is the documented
/// clean channel (the shrinker's first move).  This is the
/// never-a-wrong-answer contract: the client either returns the
/// server's intended bytes or a structured failure — and with
/// fault-free connections guaranteed every clean_every-th attempt, a
/// structured failure here is itself a bug.
[[nodiscard]] DifferentialResult diff_chaos_vs_library(
    const svc::CrQuery& query, std::uint64_t chaos_seed, int fault_cap = 3);

/// Exact expectation engine (eval/expectation) vs a seeded Monte-Carlo
/// realization of the SAME per-visit fault model (eval/montecarlo
/// mc_expected_detection_time), on the unbounded A(n, f) backend at the
/// fuzzer's adversarial targets.  Per target:
///   * p == 0: expected_detection_time collapses to the fault-free first
///     visit, bit for bit (no sampling involved);
///   * p past the ladder threshold kappa^(-1/n): the engine must report
///     divergence (kInfinity), never a finite number;
///   * convergent p: the exact value dominates the first visit time, and
///     — only while the series' VARIANCE also converges comfortably
///     (p^(2n) kappa^4 <= 0.8; nearer the threshold the sample mean is
///     heavy-tailed and its CLT band meaningless) — the seeded MC mean
///     must sit within a wide CLT band of it.
/// Targets at 0 are skipped.
[[nodiscard]] DifferentialResult diff_expectation_vs_montecarlo(
    int n, int f, Real p, const std::vector<Real>& targets,
    std::uint64_t seed = 0x5eed0bab01234567ULL, int trials = 400);

/// SoA kernel path (eval/kernels measure_cr_kernel) vs the scalar
/// reference scan driven by direct Fleet queries: every CrEvalResult
/// field bit-identical, and every batched per-probe detection time
/// bit-identical to Fleet::detection_time at the same signed position.
/// This is the differential that licenses the configure-time SIMD
/// switch — it must hold on both LINESEARCH_SIMD builds.
[[nodiscard]] DifferentialResult diff_scalar_vs_simd(
    const Fleet& fleet, int f, const CrEvalOptions& eval);

/// Run every engine above on one (fleet, f, window) instance.  `targets`
/// adds fuzzer-chosen positions to the memo-vs-direct check.
[[nodiscard]] std::vector<DifferentialResult> run_differentials(
    const Fleet& fleet, int f, const CrEvalOptions& eval,
    const std::vector<Real>& targets = {},
    const DifferentialOptions& options = {});

/// True iff every result is ok.
[[nodiscard]] bool all_ok(const std::vector<DifferentialResult>& results);

/// One line per failed engine, empty when all ok.
[[nodiscard]] std::string describe_failures(
    const std::vector<DifferentialResult>& results);

}  // namespace verify
}  // namespace linesearch

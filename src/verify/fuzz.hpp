// verify/fuzz.hpp — seeded strategy fuzzer with greedy failure shrinking.
//
// A fuzz instance is a small record (strategy family, n, f, beta,
// magnitudes, window, adversarial targets) generated deterministically
// from a 64-bit seed: same seed, same instance, same verdict, on every
// machine.  Running an instance builds the fleet, runs every invariant
// oracle of verify/invariants and (for valid fleets) every differential
// engine of verify/differential.
//
// On failure the instance is shrunk greedily — drop robots, halve the
// extent and window, round parameters, drop targets — accepting a move
// only while the ORIGINAL failing oracle still fails, until no move
// applies.  The minimal repro is replayable from its seed alone
// (`tools/fuzz_main --seed S` re-runs generation and shrinking
// bit-identically) and is also emitted as JSON for bug reports.
//
// Injections deliberately corrupt a generated fleet (e.g. ConeEscape
// swaps robot 0 for a unit-speed classic cow-path zig-zag that leaves
// C_beta) so the oracle set and the shrinker themselves stay tested.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "svc/query.hpp"
#include "util/real.hpp"
#include "util/rng.hpp"
#include "verify/differential.hpp"
#include "verify/invariants.hpp"

namespace linesearch {
namespace verify {

/// Deterministic 64-bit generator — now the library-wide
/// linesearch::SplitMix64 (util/rng.hpp); the alias keeps the long-lived
/// verify::SplitMix64 spelling (and its streams) intact.
using ::linesearch::SplitMix64;

/// Strategy families the generator draws from.
enum class FleetKind {
  kProportional,    ///< A(n, f) — optimal beta
  kPerturbedBeta,   ///< S_beta(n) with a random beta != beta*
  kCustomCone,      ///< build_cone_fleet with random magnitudes
  kGroupDoubling,   ///< all robots on one cone-doubling zig-zag
  kClassicCowPath,  ///< non-cone Beck/Bellman doubling (optionally mirrored)
  kUniformOffset,   ///< arithmetic first-turn spread (ablation foil)
  kAnalyticZigzag,  ///< A(n, f) on the analytic (unbounded) backend
  kCrashInjected,   ///< A(n, f) executed under a crash-stop FaultInjector
  /// S_beta(n) with a random beta whose target list carries exact
  /// duplicates — aimed at the SoA kernel path (probe dedup, batched
  /// sweeps, scalar-vs-SIMD differential).
  kKernelSoA,
  /// A(n, f) with a seeded per-robot lie schedule (sim/faults LiePlan):
  /// the instance races the runtime claim arbiter against the analytic
  /// quorum-cost evaluation (diff_byzantine) on the fuzzer's adversarial
  /// targets, and the byzantine_bounds oracle checks the 1611.08209
  /// bounds on the same fleet.
  kByzantineLies,
  /// A random CrQuery (plain / byzantine / crash regime) round-tripped
  /// through the in-process query service wire (svc/server) and raced
  /// against evaluate_query_direct (diff_server_vs_library).
  kServerQuery,
  /// A(n, f) on the analytic backend under per-visit iid probe failures
  /// at the instance's fault_p: the exact expectation engine
  /// (eval/expectation) is raced against a seeded Monte-Carlo
  /// realization of the same fault model
  /// (diff_expectation_vs_montecarlo) on the adversarial targets, with
  /// occasional draws past the ladder threshold so the divergence
  /// branch stays exercised.
  kProbabilisticFaults,
  /// A random CrQuery answered through a CHAOS channel: the resilient
  /// client (svc/client) talks to the in-process server through
  /// svc/chaos's deterministic wire fault injector (garbage bytes,
  /// splits, merges, stalls, disconnects — a pure function of
  /// chaos_seed), and diff_chaos_vs_library demands the answer be
  /// byte-identical to the offline library's rendering anyway.
  kChaosWire,
};

/// Deliberate corruptions for testing the oracles and the shrinker.
enum class Injection {
  kNone,
  /// Replace robot 0 with a unit-speed classic cow-path zig-zag from the
  /// origin.  Its first waypoint (1, 1) sits below t = beta*|x| for every
  /// beta > 1, so cone containment must fail while speed validation
  /// passes.
  kConeEscape,
};

[[nodiscard]] const char* kind_name(FleetKind kind) noexcept;
[[nodiscard]] const char* injection_name(Injection injection) noexcept;

/// One fuzz case.  Every field is derived from `seed` by
/// generate_instance; the shrinker then mutates the record directly.
struct FuzzInstance {
  std::uint64_t seed = 0;
  FleetKind kind = FleetKind::kProportional;
  Injection injection = Injection::kNone;
  int n = 3;
  int f = 1;
  Real beta = 3;                ///< cone kinds; ignored by cow-path kinds
  bool mirrored = false;        ///< kClassicCowPath only
  std::vector<Real> magnitudes; ///< kCustomCone only, each in [1, kappa^2)
  Real extent = 64;
  Real window_lo = 1;
  Real window_hi = 16;
  std::vector<Real> targets;    ///< adversarial probe positions (signed)
  /// kCrashInjected only: per-robot crash-stop times (kInfinity =
  /// healthy).  Size n when present.
  std::vector<Real> crash_times;
  /// kByzantineLies only: per-robot lie schedule (size n when present;
  /// liar_count <= f always).
  LiePlan lies;
  /// kServerQuery / kChaosWire: which fault regime the wire query runs
  /// under (kCrash reuses crash_times as the query's schedule).
  svc::FaultRegime query_regime = svc::FaultRegime::kNone;
  /// kProbabilisticFaults only: per-visit failure probability in [0, 1).
  Real fault_p = 0;
  /// kChaosWire only: the wire fault injector's seed (0 = clean channel
  /// — the shrinker's first move, separating transport bugs from
  /// server bugs) and the per-connection fault-script cap the shrinker
  /// walks down to minimize the failing script.
  std::uint64_t chaos_seed = 0;
  int chaos_fault_cap = 3;
};

/// Everything one run produced.
struct FuzzOutcome {
  std::vector<InvariantResult> invariants;
  std::vector<DifferentialResult> differentials;

  [[nodiscard]] bool ok() const;
  /// Name of the first failing check ("" when ok) — the shrink predicate.
  [[nodiscard]] std::string primary_failure() const;
  /// One line per failure, empty when ok.
  [[nodiscard]] std::string describe() const;
};

/// Deterministic instance from a seed (never injected; set
/// instance.injection afterwards to corrupt it).
[[nodiscard]] FuzzInstance generate_instance(std::uint64_t seed);

/// Materialize the instance's fleet, applying its injection.
[[nodiscard]] Fleet build_fuzz_fleet(const FuzzInstance& instance);

/// The Subject (claims) the oracles check `fleet` against.
[[nodiscard]] Subject make_subject(const FuzzInstance& instance,
                                   const Fleet& fleet);

/// Build + run all oracles (+ differentials when not injected;
/// exceptions from any engine become failed results, never escape).
[[nodiscard]] FuzzOutcome run_instance(const FuzzInstance& instance);

/// Result of greedy shrinking.
struct ShrinkResult {
  FuzzInstance instance;  ///< minimal instance still failing
  int accepted_moves = 0; ///< shrink steps that preserved the failure
  std::string failure;    ///< the preserved primary failure name
};

/// Greedily minimize a failing instance; requires that run_instance
/// (start) currently fails.  Deterministic: replaying the same start
/// yields the same minimum.
[[nodiscard]] ShrinkResult shrink_instance(const FuzzInstance& start);

/// JSON repro record (instance + failures) via util/jsonio.
[[nodiscard]] std::string instance_to_json(const FuzzInstance& instance,
                                           const FuzzOutcome& outcome);

/// Corpus sweep over `count` consecutive seeds starting at first_seed.
struct CorpusReport {
  int total = 0;
  int failed = 0;
  std::vector<std::uint64_t> failing_seeds;
};
[[nodiscard]] CorpusReport run_corpus(std::uint64_t first_seed, int count);

}  // namespace verify
}  // namespace linesearch

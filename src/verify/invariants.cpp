#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "core/proportional.hpp"
#include "eval/byzantine.hpp"
#include "eval/cr_eval.hpp"
#include "eval/exact.hpp"
#include "eval/expectation.hpp"
#include "sim/faults.hpp"
#include "sim/zigzag.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace verify {
namespace {

InvariantResult inapplicable(const std::string& name) {
  InvariantResult result;
  result.name = name;
  result.applicable = false;
  return result;
}

InvariantResult pass(const std::string& name) {
  InvariantResult result;
  result.name = name;
  return result;
}

InvariantResult fail(const std::string& name, const std::string& message,
                     const Real worst = 0) {
  InvariantResult result;
  result.name = name;
  result.passed = false;
  result.message = message;
  result.worst = worst;
  return result;
}

/// The signed probe set a sampled oracle walks: a geometric grid on each
/// half-line plus the caller's extra positions clamped to the window.
std::vector<Real> sampled_positions(const InvariantOptions& options) {
  std::vector<Real> positions;
  const int count = std::max(2, options.samples);
  const Real ratio =
      std::pow(options.window_hi / options.window_lo,
               Real{1} / static_cast<Real>(count - 1));
  Real magnitude = options.window_lo;
  for (int i = 0; i < count; ++i) {
    const Real m = (i == count - 1) ? options.window_hi : magnitude;
    positions.push_back(m);
    positions.push_back(-m);
    magnitude *= ratio;
  }
  for (const Real x : options.extra_positions) {
    const Real m = std::fabs(x);
    if (m >= options.window_lo && m <= options.window_hi) {
      positions.push_back(x);
    }
  }
  return positions;
}

std::string real_str(const Real value) { return encode_real_field(value, 12); }

}  // namespace

InvariantResult check_kinematics(const Subject& subject,
                                 const InvariantOptions& options) {
  const std::string name = "kinematics";
  const Fleet& fleet = *subject.fleet;
  constexpr Real kSpeedSlack = 1e-9L;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Real speed = fleet.robot(id).max_speed();
    if (speed > 1 + kSpeedSlack) {
      return fail(name,
                  "robot " + std::to_string(id) + " max speed " +
                      real_str(speed) + " exceeds 1",
                  speed - 1);
    }
  }
  for (const Real x : sampled_positions(options)) {
    const Real time = fleet.detection_time(x, subject.f);
    if (std::isinf(time)) continue;  // coverage oracle's business
    const Real magnitude = std::fabs(x);
    if (time < magnitude * (1 - tol::kRelative)) {
      return fail(name,
                  "detection at x=" + real_str(x) + " takes " +
                      real_str(time) + " < |x| (faster than speed 1)",
                  magnitude - time);
    }
  }
  return pass(name);
}

InvariantResult check_cone_containment(const Subject& subject,
                                       const InvariantOptions& options) {
  (void)options;
  const std::string name = "lemma1_cone_containment";
  if (!subject.beta) return inapplicable(name);
  const Fleet& fleet = *subject.fleet;
  const Real beta = *subject.beta;
  Real worst = 0;
  RobotId worst_robot = 0;
  Real worst_position = 0;
  // Unbounded (analytic) backends have no full waypoint list; a 64-entry
  // prefix covers every head waypoint plus dozens of ladder rungs — the
  // cone constraint is scale-invariant along the ladder, so if any rung
  // escaped, the first ones would.
  constexpr std::size_t kUnboundedPrefix = 64;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Trajectory& robot = fleet.robot(id);
    const std::vector<Waypoint> prefix =
        robot.unbounded() ? robot.waypoint_prefix(kUnboundedPrefix)
                          : robot.waypoints();
    for (const Waypoint& w : prefix) {
      // Mirror sim/zigzag's within_cone slack exactly.
      const Real boundary = beta * std::fabs(w.position);
      const Real violation =
          boundary * (1 - tol::kRelative) - tol::kAbsolute - w.time;
      if (violation > worst) {
        worst = violation;
        worst_robot = id;
        worst_position = w.position;
      }
    }
  }
  if (worst > 0) {
    return fail(name,
                "robot " + std::to_string(worst_robot) + " waypoint at x=" +
                    real_str(worst_position) + " escapes C_beta(beta=" +
                    real_str(beta) + ") by " + real_str(worst),
                worst);
  }
  return pass(name);
}

InvariantResult check_proportional_structure(const Subject& subject,
                                             const InvariantOptions& options) {
  (void)options;
  const std::string name = "lemma2_proportional_structure";
  if (!subject.proportional || !subject.beta) return inapplicable(name);
  const Fleet& fleet = *subject.fleet;
  const ScheduleCheck check = check_schedule(
      fleet, static_cast<int>(fleet.size()), *subject.beta, Real{1});
  if (!check.all_ok()) {
    std::ostringstream message;
    message << "schedule re-derivation failed:";
    if (!check.within_cone) message << " within_cone";
    if (!check.unit_speed_legs) message << " unit_speed_legs";
    if (!check.proportional) message << " proportional(r)";
    if (!check.robots_interleaved) message << " robots_interleaved";
    message << " (max ratio error " << real_str(check.max_ratio_error) << ")";
    return fail(name, message.str(), check.max_ratio_error);
  }
  return pass(name);
}

InvariantResult check_first_visit_monotonicity(
    const Subject& subject, const InvariantOptions& options) {
  const std::string name = "first_visit_monotonicity";
  const Fleet& fleet = *subject.fleet;

  // Magnitudes, ascending, per side; monotonicity is per half-line.
  std::vector<Real> magnitudes;
  for (const Real x : sampled_positions(options)) {
    if (x > 0) magnitudes.push_back(x);
  }
  std::sort(magnitudes.begin(), magnitudes.end());

  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Trajectory& robot = fleet.robot(id);
    // The argument needs the robot to start strictly inside the probed
    // band: reaching a farther point then crosses every nearer one first.
    if (std::fabs(robot.start_position()) >= options.window_lo) continue;
    for (const int side : {+1, -1}) {
      Real previous = -kInfinity;
      Real previous_x = 0;
      for (const Real magnitude : magnitudes) {
        const Real x = static_cast<Real>(side) * magnitude;
        const std::optional<Real> visit = robot.first_visit_time(x);
        const Real time = visit ? *visit : kInfinity;
        if (std::isinf(previous) && previous > 0 && !std::isinf(time)) {
          return fail(name,
                      "robot " + std::to_string(id) + " never visits x=" +
                          real_str(previous_x) + " but visits farther x=" +
                          real_str(x));
        }
        if (!std::isinf(time) && time < previous) {
          return fail(name,
                      "robot " + std::to_string(id) + " first visit at x=" +
                          real_str(x) + " (" + real_str(time) +
                          ") precedes visit at nearer x=" +
                          real_str(previous_x) + " (" + real_str(previous) +
                          ")",
                      previous - time);
        }
        previous = time;
        previous_x = x;
      }
    }
  }
  return pass(name);
}

InvariantResult check_detection_order_statistics(
    const Subject& subject, const InvariantOptions& options) {
  const std::string name = "detection_order_statistics";
  const Fleet& fleet = *subject.fleet;
  const int n = static_cast<int>(fleet.size());

  for (const Real x : sampled_positions(options)) {
    const std::vector<VisitRecord> order = fleet.visit_order(x);
    Real previous = 0;
    for (int k = 0; k < n; ++k) {
      const Real time = fleet.detection_time(x, k);
      // Exactly the (k+1)-st distinct first visit...
      const Real expected = k < static_cast<int>(order.size())
                                ? order[static_cast<std::size_t>(k)].time
                                : kInfinity;
      if (!value_identical(time, expected)) {
        return fail(name,
                    "detection_time(x=" + real_str(x) + ", f=" +
                        std::to_string(k) + ") = " + real_str(time) +
                        " but the (f+1)-st distinct visit is at " +
                        real_str(expected),
                    std::fabs(time - expected));
      }
      // ...nondecreasing in the fault budget...
      if (time < previous) {
        return fail(name,
                    "detection_time at x=" + real_str(x) +
                        " decreases from f=" + std::to_string(k - 1) +
                        " to f=" + std::to_string(k),
                    previous - time);
      }
      // ...and witnessed by at least k+1 distinct visitors.
      if (!std::isinf(time) &&
          fleet.distinct_visitors_by(x, time) < k + 1) {
        return fail(name,
                    "fewer than f+1 distinct visitors by T_{f+1} at x=" +
                        real_str(x) + ", f=" + std::to_string(k));
      }
      previous = time;
    }
    if (!std::isinf(fleet.detection_time(x, n))) {
      return fail(name, "detection_time with f >= n must be infinite at x=" +
                            real_str(x));
    }
  }
  return pass(name);
}

InvariantResult check_coverage(const Subject& subject,
                               const InvariantOptions& options) {
  const std::string name = "coverage";
  if (subject.coverage_extent <= options.window_lo) return inapplicable(name);
  const Fleet& fleet = *subject.fleet;
  if (!fleet.covers(options.window_lo, subject.coverage_extent,
                    subject.f + 1)) {
    return fail(name,
                "fleet does not give " + std::to_string(subject.f + 1) +
                    "-fold distinct coverage of " +
                    real_str(options.window_lo) + " <= |x| <= " +
                    real_str(subject.coverage_extent));
  }
  return pass(name);
}

InvariantResult check_theorem1_agreement(const Subject& subject,
                                         const InvariantOptions& options) {
  const std::string name = "theorem1_closed_form";
  if (!subject.theory_cr) return inapplicable(name);
  const Real theory = *subject.theory_cr;
  ExactCrResult certified;
  try {
    certified = certified_cr(*subject.fleet, subject.f,
                             {.window_lo = options.window_lo,
                              .window_hi = options.window_hi,
                              .require_finite = true});
  } catch (const Error& error) {
    // A fleet that claims a finite CR but cannot even be evaluated over
    // the window (e.g. it fails (f+1)-coverage) refutes the claim.
    return fail(name, std::string("certified evaluation refused: ") +
                          error.what(),
                kInfinity);
  }
  const Real gap = relative_difference(certified.cr, theory);
  // The sup over any window is at most the true CR, always.
  if (certified.cr > theory * (1 + options.rel_tol)) {
    return fail(name,
                "certified sup " + real_str(certified.cr) + " at x=" +
                    real_str(certified.argsup) + " exceeds closed form " +
                    real_str(theory),
                gap);
  }
  // With a steady-state window the sup must also reach the closed form.
  if (subject.window_is_tight && certified.cr < theory * (1 - options.rel_tol)) {
    return fail(name,
                "certified sup " + real_str(certified.cr) +
                    " falls short of closed form " + real_str(theory) +
                    " in a window claimed tight",
                gap);
  }
  return pass(name);
}

InvariantResult check_lower_bound_dominance(const Subject& subject,
                                            const InvariantOptions& options) {
  const std::string name = "theorem2_lower_bound_dominance";
  const Fleet& fleet = *subject.fleet;
  const int n = static_cast<int>(fleet.size());
  if (n >= 2 * subject.f + 2) return inapplicable(name);  // trivial floor

  // Any claimed closed form must itself dominate the proved floor
  // (the Kupavskii-Welzl-style sanity direction: no strategy's book
  // value may undercut a proved lower bound).
  const Real floor = best_lower_bound(n, subject.f);
  if (subject.theory_cr && *subject.theory_cr < floor * (1 - options.rel_tol)) {
    return fail(name,
                "claimed CR " + real_str(*subject.theory_cr) +
                    " undercuts the proved lower bound " + real_str(floor),
                floor - *subject.theory_cr);
  }

  if (!options.run_theorem2_game) return pass(name);

  // Constructive dominance: pick the strongest feasible threat level
  // whose placements fit inside the fleet's coverage, and demand the
  // game force at least it.  x_0 = 2/(alpha-3) <= extent requires
  // alpha >= 3 + 2/extent.
  const Real alpha_star = theorem2_alpha(n);
  Real alpha = comfortable_alpha(n, 0.75L);
  if (subject.coverage_extent > 0 &&
      largest_placement(alpha) > subject.coverage_extent) {
    const Real alpha_fit = 3 + 2 / subject.coverage_extent;
    if (alpha_fit > alpha_star || !placements_feasible(n, alpha_fit)) {
      return inapplicable(name);  // extent too small for any feasible set
    }
    alpha = alpha_fit;
  }
  GameResult game;
  try {
    game = play_theorem2_game(fleet, subject.f, alpha,
                              {.keep_outcomes = false});
  } catch (const Error& error) {
    return fail(name,
                std::string("adversary game refused: ") + error.what(),
                kInfinity);
  }
  if (game.forced_ratio < alpha * (1 - options.rel_tol)) {
    return fail(name,
                "adversary at alpha=" + real_str(alpha) +
                    " only forces ratio " + real_str(game.forced_ratio) +
                    " (Theorem 2 guarantees >= alpha for n < 2f+2)",
                alpha - game.forced_ratio);
  }
  return pass(name);
}

InvariantResult check_fault_monotone_cr(const Subject& subject,
                                        const InvariantOptions& options) {
  const std::string name = "fault_monotone_cr";
  const Fleet& fleet = *subject.fleet;
  const CrEvalOptions eval{.window_lo = options.window_lo,
                           .window_hi = options.window_hi,
                           .interior_samples = 2,
                           .require_finite = false};
  Real previous = 0;
  int previous_f = 0;
  int previous_undetected = 0;
  for (int g = 0; g <= subject.f; ++g) {
    const CrEvalResult measured = measure_cr(fleet, g, eval);
    // Detection can only get harder with more faults: a probe undetected
    // at g stays undetected at g+1.
    if (measured.undetected_probes < previous_undetected) {
      return fail(name,
                  "probes detected again with more faults: " +
                      std::to_string(previous_undetected) + " undetected at f=" +
                      std::to_string(previous_f) + " but only " +
                      std::to_string(measured.undetected_probes) + " at f=" +
                      std::to_string(g),
                  static_cast<Real>(previous_undetected -
                                    measured.undetected_probes));
    }
    // The reported sup skips individually-undetected probes (a crashed
    // fleet can lose probes to infinity one by one), so the finite
    // number is only comparable while the detected probe set is
    // unchanged; a probe that escaped to infinity satisfies K >=
    // anything by itself.
    if (measured.undetected_probes == previous_undetected &&
        measured.cr < previous * (1 - tol::kRelative)) {
      return fail(name,
                  "measured sup K drops from " + real_str(previous) +
                      " (f=" + std::to_string(previous_f) + ") to " +
                      real_str(measured.cr) + " (f=" + std::to_string(g) +
                      ") — extra faults helped the searchers",
                  previous - measured.cr);
    }
    previous = measured.cr;
    previous_f = g;
    previous_undetected = measured.undetected_probes;
  }
  return pass(name);
}

InvariantResult check_probabilistic_monotone(const Subject& subject,
                                             const InvariantOptions& options) {
  const std::string name = "probabilistic_monotone";
  const Fleet& fleet = *subject.fleet;
  ExpectationOptions expectation;
  expectation.eval = CrEvalOptions{.window_lo = options.window_lo,
                                   .window_hi = options.window_hi,
                                   .interior_samples = 2,
                                   .require_finite = false};
  Real previous = 0;
  Real previous_p = 0;
  int previous_undetected = -1;
  // Every grid point sits below the smallest ladder threshold of any
  // regime pair (kappa^(-1/n) >= 4^(-1/3) ~ 0.63), so a convergent
  // subject stays convergent across the whole sweep; fleets with finite
  // visit lists go undetected at every p > 0, which the undetected leg
  // covers.
  for (const Real p : {Real{0}, Real{0.1L}, Real{0.25L}, Real{0.4L}}) {
    expectation.p = p;
    const CrEvalResult measured = measure_expected_cr(fleet, expectation);
    if (previous_undetected >= 0) {
      // Raising p only removes successful coins: a probe whose
      // expectation diverged cannot re-converge at larger p.
      if (measured.undetected_probes < previous_undetected) {
        return fail(name,
                    "probes re-converge with more failures: " +
                        std::to_string(previous_undetected) +
                        " undetected at p=" + real_str(previous_p) +
                        " but only " +
                        std::to_string(measured.undetected_probes) +
                        " at p=" + real_str(p),
                    static_cast<Real>(previous_undetected -
                                      measured.undetected_probes));
      }
      // The finite sup skips divergent probes individually, so it is
      // only comparable while the detected probe set is unchanged.
      if (measured.undetected_probes == previous_undetected &&
          measured.cr < previous * (1 - tol::kRelative)) {
        return fail(name,
                    "expected sup K drops from " + real_str(previous) +
                        " (p=" + real_str(previous_p) + ") to " +
                        real_str(measured.cr) + " (p=" + real_str(p) +
                        ") — likelier probe failures helped the searchers",
                    previous - measured.cr);
      }
    }
    previous = measured.cr;
    previous_p = p;
    previous_undetected = measured.undetected_probes;
  }
  return pass(name);
}

InvariantResult check_byzantine_bounds(const Subject& subject,
                                       const InvariantOptions& options) {
  const std::string name = "byzantine_bounds";
  if (subject.f < 1) return inapplicable(name);
  const Fleet& fleet = *subject.fleet;
  const int n = static_cast<int>(fleet.size());
  const int f = subject.f;
  const bool feasible = n >= 2 * f + 1;

  for (const Real x : sampled_positions(options)) {
    const Real quorum = byzantine_quorum_time(fleet, x, f);
    // B1 impossibility: fewer than f+1 honest corroborators can ever
    // exist when n < 2f+1, for EVERY target.
    if (!feasible && !std::isinf(quorum)) {
      return fail(name,
                  "n=" + std::to_string(n) + " < 2f+1 yet quorum forms at x=" +
                      real_str(x) + " (t=" + real_str(quorum) + ")",
                  quorum);
    }
    // Order-statistic identity: worst-case quorum == the (2f+1)-st
    // distinct first visit, bit for bit.
    const std::vector<VisitRecord> order = fleet.visit_order(x);
    const Real expected =
        2 * f < static_cast<int>(order.size())
            ? order[static_cast<std::size_t>(2 * f)].time
            : kInfinity;
    if (!value_identical(quorum, expected)) {
      return fail(name,
                  "quorum time at x=" + real_str(x) + " is " +
                      real_str(quorum) + " but the (2f+1)-st distinct " +
                      "visit is at " + real_str(expected),
                  std::fabs(quorum - expected));
    }
    // B3 ordering: lying faults are never cheaper than blind faults.
    const Real blind = fleet.detection_time(x, f);
    if (quorum < blind) {
      return fail(name,
                  "quorum at x=" + real_str(x) + " (" + real_str(quorum) +
                      ") beats blind detection (" + real_str(blind) + ")",
                  blind - quorum);
    }
  }

  // B2 upper bound, on the feasible diagonal of a proportional subject:
  // the measured quorum CR over the window must stay within the Lemma-5
  // closed form at the doubled budget.
  if (subject.proportional && subject.beta && n == 2 * f + 1 &&
      in_proportional_regime(n, f)) {
    const CrEvalOptions eval{.window_lo = options.window_lo,
                             .window_hi = options.window_hi,
                             .interior_samples = 2,
                             .require_finite = false};
    const ByzantineCrResult measured = measure_byzantine_cr(fleet, f, eval);
    // Probes lost to a too-small build extent are the coverage oracle's
    // business; the bound is only claimed where quorum actually forms.
    if (measured.undetected_probes == 0) {
      const Real bound = schedule_cr(n, 2 * f, *subject.beta);
      if (measured.cr > bound * (1 + options.rel_tol)) {
        return fail(name,
                    "measured quorum sup " + real_str(measured.cr) +
                        " at x=" + real_str(measured.argmax) +
                        " exceeds schedule_cr(n, 2f, beta) = " +
                        real_str(bound),
                    measured.cr - bound);
      }
    }
  }
  return pass(name);
}

std::vector<InvariantResult> run_invariants(const Subject& subject,
                                            const InvariantOptions& options) {
  expects(subject.fleet != nullptr, "run_invariants: null fleet");
  expects(subject.f >= 0, "run_invariants: fault budget must be >= 0");
  expects(options.window_lo > 0 && options.window_hi > options.window_lo,
          "run_invariants: bad window");
  std::vector<InvariantResult> results;
  results.push_back(check_kinematics(subject, options));
  results.push_back(check_cone_containment(subject, options));
  results.push_back(check_proportional_structure(subject, options));
  results.push_back(check_first_visit_monotonicity(subject, options));
  results.push_back(check_detection_order_statistics(subject, options));
  results.push_back(check_coverage(subject, options));
  results.push_back(check_theorem1_agreement(subject, options));
  results.push_back(check_lower_bound_dominance(subject, options));
  results.push_back(check_fault_monotone_cr(subject, options));
  results.push_back(check_probabilistic_monotone(subject, options));
  results.push_back(check_byzantine_bounds(subject, options));
  return results;
}

bool all_ok(const std::vector<InvariantResult>& results) {
  return std::all_of(results.begin(), results.end(),
                     [](const InvariantResult& r) { return r.ok(); });
}

std::string describe_failures(const std::vector<InvariantResult>& results) {
  std::string out;
  for (const InvariantResult& result : results) {
    if (result.ok()) continue;
    if (!out.empty()) out += '\n';
    out += result.name + ": " + result.message;
  }
  return out;
}

}  // namespace verify
}  // namespace linesearch

#include "analysis/roots.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {
namespace {

void require_bracket(const Real lo, const Real hi, const Real flo,
                     const Real fhi) {
  expects(lo < hi, "root bracket must satisfy lo < hi");
  if (sign_of(flo) * sign_of(fhi) > 0) {
    throw NumericError("root not bracketed on [" + sig(lo, 6) + ", " +
                       sig(hi, 6) + "]: f(lo)=" + sig(flo, 6) +
                       ", f(hi)=" + sig(fhi, 6));
  }
}

}  // namespace

RootResult bisect(const RealFn& f, Real lo, Real hi,
                  const RootOptions& options) {
  Real flo = f(lo);
  Real fhi = f(hi);
  require_bracket(lo, hi, flo, fhi);
  if (flo == 0) return {lo, 0, 0};
  if (fhi == 0) return {hi, 0, 0};

  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    const Real mid = lo + (hi - lo) / 2;
    const Real fmid = f(mid);
    ++result.iterations;
    if (fmid == 0 || (hi - lo) / 2 < options.tolerance * std::max(Real{1}, std::fabs(mid))) {
      result.x = mid;
      result.fx = fmid;
      return result;
    }
    if (sign_of(fmid) == sign_of(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
  }
  result.x = lo + (hi - lo) / 2;
  result.fx = f(result.x);
  return result;
}

RootResult brent(const RealFn& f, Real lo, Real hi,
                 const RootOptions& options) {
  Real a = lo, b = hi;
  Real fa = f(a), fb = f(b);
  require_bracket(lo, hi, fa, fb);
  if (fa == 0) return {a, 0, 0};
  if (fb == 0) return {b, 0, 0};

  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  Real c = a, fc = fa;
  bool used_bisection = true;
  Real d = 0;  // previous-previous b (only read when !used_bisection)

  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    ++result.iterations;
    Real s;
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // secant
      s = b - fb * (b - a) / (fb - fa);
    }

    const Real low = (3 * a + b) / 4;
    const bool out_of_range = (s < std::min(low, b) || s > std::max(low, b));
    const bool slow_progress =
        used_bisection ? std::fabs(s - b) >= std::fabs(b - c) / 2
                       : std::fabs(s - b) >= std::fabs(c - d) / 2;
    if (out_of_range || slow_progress) {
      s = (a + b) / 2;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const Real fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (sign_of(fa) * sign_of(fs) < 0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    if (fb == 0 ||
        std::fabs(b - a) < options.tolerance * std::max(Real{1}, std::fabs(b))) {
      result.x = b;
      result.fx = fb;
      return result;
    }
  }
  result.x = b;
  result.fx = fb;
  return result;
}

RootResult newton(const RealFn& f, const RealFn& df, const Real x0,
                  const RootOptions& options) {
  Real x = x0;
  Real fx = f(x);
  RootResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    ++result.iterations;
    const Real slope = df(x);
    if (slope == 0) throw NumericError("newton: zero derivative");
    Real step = fx / slope;
    // Damping: halve the step until the residual actually shrinks.
    Real next = x - step;
    Real fnext = f(next);
    int halvings = 0;
    while (std::fabs(fnext) > std::fabs(fx) && halvings < 60) {
      step /= 2;
      next = x - step;
      fnext = f(next);
      ++halvings;
    }
    if (halvings == 60) throw NumericError("newton: no descent direction");
    const bool converged =
        std::fabs(next - x) < options.tolerance * std::max(Real{1}, std::fabs(next));
    x = next;
    fx = fnext;
    if (converged || fx == 0) {
      result.x = x;
      result.fx = fx;
      return result;
    }
  }
  throw NumericError("newton: no convergence after max iterations");
}

RootResult bracket_and_solve(const RealFn& f, const Real lo,
                             const Real initial_width,
                             const RootOptions& options) {
  expects(initial_width > 0, "initial_width must be positive");
  const Real flo = f(lo);
  if (flo == 0) return {lo, 0, 0};
  Real width = initial_width;
  for (int i = 0; i < 200; ++i) {
    const Real hi = lo + width;
    const Real fhi = f(hi);
    if (sign_of(fhi) != sign_of(flo)) return brent(f, lo, hi, options);
    width *= 2;
  }
  throw NumericError("bracket_and_solve: no sign change found");
}

}  // namespace linesearch

#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {

Summary summarize(const std::vector<Real>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  Real sum = 0;
  s.min = values.front();
  s.max = values.front();
  for (const Real v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<Real>(values.size());

  if (values.size() >= 2) {
    Real ss = 0;
    for (const Real v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<Real>(values.size() - 1));
  } else {
    s.stddev = 0;
  }
  return s;
}

Real quantile(std::vector<Real> values, const Real q) {
  expects(!values.empty(), "quantile: empty sample");
  expects(q >= 0 && q <= 1, "quantile: q must be in [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const Real position = q * static_cast<Real>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(position));
  const auto upper = std::min(lower + 1, values.size() - 1);
  const Real fraction = position - static_cast<Real>(lower);
  return values[lower] + fraction * (values[upper] - values[lower]);
}

Real kth_smallest(std::vector<Real> values, const std::size_t k) {
  expects(k < values.size(), "kth_smallest: k out of range");
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return values[k];
}

}  // namespace linesearch

#include "analysis/convergence.hpp"

#include <cmath>

#include "analysis/series.hpp"
#include "util/error.hpp"

namespace linesearch {

std::vector<Real> aitken_pass(const std::vector<Real>& sequence) {
  expects(sequence.size() >= 3, "aitken_pass: need at least 3 terms");
  std::vector<Real> out;
  out.reserve(sequence.size() - 2);
  for (std::size_t i = 0; i + 2 < sequence.size(); ++i) {
    const Real d1 = sequence[i + 1] - sequence[i];
    const Real d2 = sequence[i + 2] - 2 * sequence[i + 1] + sequence[i];
    if (d2 == 0) {
      out.push_back(sequence[i + 2]);
    } else {
      out.push_back(sequence[i] - d1 * d1 / d2);
    }
  }
  return out;
}

Real aitken_limit(std::vector<Real> sequence, const int rounds) {
  expects(sequence.size() >= 3, "aitken_limit: need at least 3 terms");
  expects(rounds >= 1, "aitken_limit: rounds must be >= 1");
  for (int round = 0; round < rounds && sequence.size() >= 3; ++round) {
    sequence = aitken_pass(sequence);
  }
  return sequence.back();
}

Real richardson_step(const Real coarse, const Real fine, const Real order) {
  expects(order > 0, "richardson_step: order must be positive");
  const Real factor = std::pow(Real{2}, order);
  return (factor * fine - coarse) / (factor - 1);
}

Real richardson_limit(const std::vector<Real>& ladder,
                      const Real first_order) {
  expects(ladder.size() >= 2, "richardson_limit: need at least 2 terms");
  expects(first_order > 0, "richardson_limit: order must be positive");
  std::vector<Real> column = ladder;
  Real order = first_order;
  while (column.size() > 1) {
    std::vector<Real> next;
    next.reserve(column.size() - 1);
    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      next.push_back(richardson_step(column[i], column[i + 1], order));
    }
    column = std::move(next);
    order += 1;
  }
  return column.front();
}

}  // namespace linesearch

#include "analysis/grid.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace linesearch {

std::vector<Real> linspace(const Real lo, const Real hi, const int count) {
  expects(count >= 1, "linspace: count must be >= 1");
  if (count == 1) {
    // Tolerance policy (util/real.hpp): derived endpoints that agree up
    // to approx_equal ARE equal; exact == would reject e.g. a window
    // whose hi was recomputed through a root solve.
    expects(approx_equal(lo, hi), "linspace: count==1 requires lo==hi");
    return {lo};
  }
  expects(lo < hi, "linspace: need lo < hi");
  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(count));
  const Real step = (hi - lo) / static_cast<Real>(count - 1);
  for (int i = 0; i < count; ++i) {
    out.push_back(i == count - 1 ? hi : lo + step * static_cast<Real>(i));
  }
  return out;
}

std::vector<Real> geomspace(const Real lo, const Real hi, const int count) {
  expects(lo > 0 && hi > 0, "geomspace: endpoints must be positive");
  expects(count >= 2, "geomspace: count must be >= 2");
  expects(lo < hi, "geomspace: need lo < hi");
  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(count));
  const Real log_lo = std::log(lo);
  const Real log_hi = std::log(hi);
  const Real step = (log_hi - log_lo) / static_cast<Real>(count - 1);
  for (int i = 0; i < count; ++i) {
    out.push_back(i == count - 1
                      ? hi
                      : std::exp(log_lo + step * static_cast<Real>(i)));
  }
  return out;
}

std::vector<int> int_range(const int lo, const int hi) {
  expects(lo <= hi, "int_range: need lo <= hi");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(hi - lo + 1));
  for (int i = lo; i <= hi; ++i) out.push_back(i);
  return out;
}

std::vector<Real> sweep_grid(const std::vector<Real>& grid,
                             const std::function<Real(Real)>& fn,
                             const int threads) {
  return parallel_map(
      grid.size(), [&](const std::size_t i) { return fn(grid[i]); },
      threads);
}

std::vector<Real> sweep_grid(const std::vector<int>& grid,
                             const std::function<Real(int)>& fn,
                             const int threads) {
  return parallel_map(
      grid.size(), [&](const std::size_t i) { return fn(grid[i]); },
      threads);
}

std::vector<Real> open_linspace(const Real lo, const Real hi,
                                const int count) {
  expects(count >= 1, "open_linspace: count must be >= 1");
  expects(lo < hi, "open_linspace: need lo < hi");
  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(count));
  const Real step = (hi - lo) / static_cast<Real>(count + 1);
  for (int i = 1; i <= count; ++i) {
    out.push_back(lo + step * static_cast<Real>(i));
  }
  return out;
}

}  // namespace linesearch

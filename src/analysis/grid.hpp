// analysis/grid.hpp — parameter sweep grids.
//
// Figure reproductions sweep n (Fig. 5 left), a = n/f (Fig. 5 right), beta
// (ablation A1) and target positions (validation E1).  These helpers build
// the 1-D grids; logspace/geomspace matter because turning points grow
// geometrically, so uniform grids would under-sample near the origin.
#pragma once

#include <functional>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// `count` evenly spaced points from lo to hi inclusive (count >= 2),
/// or the single point lo when count == 1 and lo and hi agree up to the
/// library tolerance (approx_equal).
[[nodiscard]] std::vector<Real> linspace(Real lo, Real hi, int count);

/// `count` points geometrically spaced from lo to hi inclusive
/// (lo, hi > 0).
[[nodiscard]] std::vector<Real> geomspace(Real lo, Real hi, int count);

/// Integers lo..hi inclusive.
[[nodiscard]] std::vector<int> int_range(int lo, int hi);

/// `count` points evenly spaced strictly inside (lo, hi) — excludes both
/// endpoints.  Used for open-interval sweeps like a ∈ (1, 2) in Fig. 5
/// right, where the endpoints are singular.
[[nodiscard]] std::vector<Real> open_linspace(Real lo, Real hi, int count);

/// Evaluate `fn` at every grid point, fanning the points out over the
/// util/parallel pool (threads: explicit > LINESEARCH_THREADS > hardware;
/// 1 runs inline).  Results land in grid order, so a downstream argmax /
/// first-wins reduction is identical to the serial sweep's.
[[nodiscard]] std::vector<Real> sweep_grid(
    const std::vector<Real>& grid, const std::function<Real(Real)>& fn,
    int threads = 0);

/// Integer-grid overload (n or f sweeps).
[[nodiscard]] std::vector<Real> sweep_grid(
    const std::vector<int>& grid, const std::function<Real(int)>& fn,
    int threads = 0);

}  // namespace linesearch

// analysis/series.hpp — geometric sequences and sums.
//
// Proportional schedules are geometric through and through: turning points
// tau_i = tau_0 * r^i, segment lengths d * r^i (Lemma 2, Eq. 3), adversary
// placements x_i (Theorem 2).  These helpers keep the closed forms in one
// audited place.
#pragma once

#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Sum of the geometric series a + a*r + ... + a*r^(k-1)  (k terms).
/// Exact closed form; handles r == 1.
[[nodiscard]] Real geometric_sum(Real a, Real r, int k);

/// The k-th term a * r^k (k may be negative).
[[nodiscard]] Real geometric_term(Real a, Real r, int k);

/// First k terms of the sequence a, a*r, a*r^2, ...
[[nodiscard]] std::vector<Real> geometric_sequence(Real a, Real r, int k);

/// Smallest integer k >= 0 with a * r^k >= limit (a > 0, r > 1).
[[nodiscard]] int terms_until_at_least(Real a, Real r, Real limit);

/// Integer power with exact repeated squaring (exponent may be negative).
[[nodiscard]] Real ipow(Real base, int exponent);

}  // namespace linesearch

// analysis/stats.hpp — summary statistics.
//
// The Monte-Carlo fault study (bench A3) reports distributions of
// detection ratios; Summary collects the usual aggregates in one pass
// plus exact order statistics on demand.
#pragma once

#include <cstddef>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Aggregates of a sample of Reals.
struct Summary {
  std::size_t count = 0;
  Real mean = kNaN;
  Real stddev = kNaN;  ///< sample standard deviation (n-1 denominator)
  Real min = kNaN;
  Real max = kNaN;
};

/// Compute Summary over `values` (empty input yields count == 0, NaNs).
[[nodiscard]] Summary summarize(const std::vector<Real>& values);

/// Exact q-quantile (0 <= q <= 1) by linear interpolation between order
/// statistics; throws on empty input.
[[nodiscard]] Real quantile(std::vector<Real> values, Real q);

/// k-th smallest element, 0-based; throws if k >= size.  This is exactly
/// the worst-case detection time semantics: with f adversarial faults the
/// target is found at the (f+1)-st smallest first-visit time, i.e.
/// kth_smallest(times, f).
[[nodiscard]] Real kth_smallest(std::vector<Real> values, std::size_t k);

}  // namespace linesearch

#include "analysis/series.hpp"

#include <cmath>

#include "util/error.hpp"

namespace linesearch {

Real geometric_sum(const Real a, const Real r, const int k) {
  expects(k >= 0, "geometric_sum: k must be non-negative");
  if (k == 0) return 0;
  if (r == 1) return a * static_cast<Real>(k);
  return a * (ipow(r, k) - 1) / (r - 1);
}

Real geometric_term(const Real a, const Real r, const int k) {
  return a * ipow(r, k);
}

std::vector<Real> geometric_sequence(const Real a, const Real r,
                                     const int k) {
  expects(k >= 0, "geometric_sequence: k must be non-negative");
  std::vector<Real> out;
  out.reserve(static_cast<std::size_t>(k));
  Real term = a;
  for (int i = 0; i < k; ++i) {
    out.push_back(term);
    term *= r;
  }
  return out;
}

int terms_until_at_least(const Real a, const Real r, const Real limit) {
  expects(a > 0, "terms_until_at_least: a must be positive");
  expects(r > 1, "terms_until_at_least: r must exceed 1");
  if (a >= limit) return 0;
  // k >= log(limit/a) / log(r); compute then fix up rounding exactly.
  int k = static_cast<int>(std::ceil(std::log(limit / a) / std::log(r)));
  k = std::max(k, 0);
  while (geometric_term(a, r, k) < limit) ++k;
  while (k > 0 && geometric_term(a, r, k - 1) >= limit) --k;
  return k;
}

Real ipow(Real base, int exponent) {
  if (exponent < 0) {
    expects(base != 0, "ipow: zero base with negative exponent");
    base = 1 / base;
    exponent = -exponent;
  }
  Real result = 1;
  while (exponent > 0) {
    if (exponent & 1) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

}  // namespace linesearch

#include "analysis/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

constexpr Real kGoldenRatio = 0.6180339887498948482045868343656L;

}  // namespace

MinimizeResult golden_section(const std::function<Real(Real)>& f, Real lo,
                              Real hi, const MinimizeOptions& options) {
  expects(lo < hi, "golden_section: need lo < hi");
  Real a = lo, b = hi;
  Real x1 = b - kGoldenRatio * (b - a);
  Real x2 = a + kGoldenRatio * (b - a);
  Real f1 = f(x1);
  Real f2 = f(x2);

  MinimizeResult result;
  for (int i = 0; i < options.max_iterations; ++i) {
    ++result.iterations;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGoldenRatio * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGoldenRatio * (b - a);
      f2 = f(x2);
    }
    if ((b - a) < options.tolerance * std::max(Real{1}, std::fabs(a) + std::fabs(b))) {
      break;
    }
  }
  result.x = (a + b) / 2;
  result.fx = f(result.x);
  return result;
}

MinimizeResult golden_section_max(const std::function<Real(Real)>& f,
                                  const Real lo, const Real hi,
                                  const MinimizeOptions& options) {
  MinimizeResult r = golden_section([&](Real x) { return -f(x); }, lo, hi,
                                    options);
  r.fx = -r.fx;
  return r;
}

MinimizeNdResult nelder_mead(
    const std::function<Real(const std::vector<Real>&)>& f,
    std::vector<Real> start, const NelderMeadOptions& options) {
  expects(!start.empty(), "nelder_mead: empty start point");
  const std::size_t d = start.size();

  struct Vertex {
    std::vector<Real> x;
    Real fx;
  };
  MinimizeNdResult result;
  const auto evaluate = [&](const std::vector<Real>& x) {
    ++result.evaluations;
    return f(x);
  };

  // Initial simplex: start plus one step along each axis.
  std::vector<Vertex> simplex;
  simplex.push_back({start, evaluate(start)});
  for (std::size_t i = 0; i < d; ++i) {
    std::vector<Real> x = start;
    x[i] += options.initial_step;
    simplex.push_back({x, evaluate(x)});
  }

  const auto by_value = [](const Vertex& a, const Vertex& b) {
    return a.fx < b.fx;
  };

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    ++result.iterations;
    std::sort(simplex.begin(), simplex.end(), by_value);
    if (simplex.back().fx - simplex.front().fx <
        options.tolerance * (1 + std::fabs(simplex.front().fx))) {
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<Real> centroid(d, 0);
    for (std::size_t v = 0; v < simplex.size() - 1; ++v) {
      for (std::size_t i = 0; i < d; ++i) centroid[i] += simplex[v].x[i];
    }
    for (Real& c : centroid) c /= static_cast<Real>(d);

    const auto blend = [&](const Real factor) {
      std::vector<Real> x(d);
      for (std::size_t i = 0; i < d; ++i) {
        x[i] = centroid[i] + factor * (simplex.back().x[i] - centroid[i]);
      }
      return x;
    };

    const std::vector<Real> reflected = blend(-1);
    const Real f_reflected = evaluate(reflected);
    if (f_reflected < simplex.front().fx) {
      const std::vector<Real> expanded = blend(-2);
      const Real f_expanded = evaluate(expanded);
      simplex.back() = (f_expanded < f_reflected)
                           ? Vertex{expanded, f_expanded}
                           : Vertex{reflected, f_reflected};
      continue;
    }
    if (f_reflected < simplex[simplex.size() - 2].fx) {
      simplex.back() = {reflected, f_reflected};
      continue;
    }
    const std::vector<Real> contracted = blend(0.5L);
    const Real f_contracted = evaluate(contracted);
    if (f_contracted < simplex.back().fx) {
      simplex.back() = {contracted, f_contracted};
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v < simplex.size(); ++v) {
      for (std::size_t i = 0; i < d; ++i) {
        simplex[v].x[i] =
            simplex[0].x[i] + (simplex[v].x[i] - simplex[0].x[i]) / 2;
      }
      simplex[v].fx = evaluate(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  result.x = simplex.front().x;
  result.fx = simplex.front().fx;
  return result;
}

MinimizeResult grid_then_golden(const std::function<Real(Real)>& f,
                                const Real lo, const Real hi,
                                const int grid_points,
                                const MinimizeOptions& options) {
  expects(lo < hi, "grid_then_golden: need lo < hi");
  expects(grid_points >= 3, "grid_then_golden: need >= 3 grid points");
  const Real step = (hi - lo) / static_cast<Real>(grid_points - 1);
  Real best_x = lo;
  Real best_f = f(lo);
  for (int i = 1; i < grid_points; ++i) {
    const Real x = lo + step * static_cast<Real>(i);
    const Real fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  const Real a = std::max(lo, best_x - step);
  const Real b = std::min(hi, best_x + step);
  MinimizeResult refined = golden_section(f, a, b, options);
  if (best_f < refined.fx) {
    refined.x = best_x;
    refined.fx = best_f;
  }
  return refined;
}

}  // namespace linesearch

// analysis/convergence.hpp — sequence-limit acceleration.
//
// The asymptotic experiments (E3, Figure 5 right) compare finite-n
// values against their n -> infinity limits.  These helpers accelerate
// the finite sequences so tests can pin the limits much more tightly
// than the raw tail allows:
//   * Aitken delta-squared, iterated — general-purpose;
//   * Richardson extrapolation for sequences indexed by n, 2n, 4n, ...
//     with a known leading error order p (s_n = L + c/n^p + o(1/n^p)).
#pragma once

#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// One Aitken delta-squared pass: maps s_0..s_{m-1} to m-2 accelerated
/// terms.  Requires at least 3 terms; terms where the second difference
/// vanishes are passed through unchanged.
[[nodiscard]] std::vector<Real> aitken_pass(const std::vector<Real>& sequence);

/// Iterated Aitken: apply passes (at most `rounds`) while at least 3
/// terms remain; returns the last term of the final pass — the best
/// available limit estimate.
[[nodiscard]] Real aitken_limit(std::vector<Real> sequence, int rounds = 3);

/// Richardson step for a doubling ladder: given s(n) and s(2n) with
/// error ~ c/n^p, returns the estimate with the 1/n^p term eliminated:
/// (2^p * s(2n) - s(n)) / (2^p - 1).
[[nodiscard]] Real richardson_step(Real coarse, Real fine, Real order = 1);

/// Full Richardson tableau on a doubling ladder s(n0), s(2 n0), ...;
/// assumes error orders p, p+1, ... and returns the apex estimate.
[[nodiscard]] Real richardson_limit(const std::vector<Real>& ladder,
                                    Real first_order = 1);

}  // namespace linesearch

// analysis/roots.hpp — 1-D root finding.
//
// The paper needs two root solves:
//   * Theorem 2's lower bound: the alpha > 3 with
//     (alpha-1)^n (alpha-3) = 2^(n+1)  (strictly increasing on (3, inf)),
//   * inverting CR formulas in tests/ablations.
// We provide guaranteed-bracketing bisection, a Brent-style hybrid (the
// default), and damped Newton for callers that have derivatives.
#pragma once

#include <functional>

#include "util/real.hpp"

namespace linesearch {

/// A scalar function R -> R.
using RealFn = std::function<Real(Real)>;

/// Options shared by the root finders.
struct RootOptions {
  Real tolerance = tol::kSolver;  ///< |x step| termination threshold
  int max_iterations = 200;       ///< hard iteration cap
};

/// Result of a root solve.
struct RootResult {
  Real x = kNaN;        ///< the root
  Real fx = kNaN;       ///< residual f(x)
  int iterations = 0;   ///< iterations consumed
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs
/// (throws NumericError otherwise).  Always converges.
[[nodiscard]] RootResult bisect(const RealFn& f, Real lo, Real hi,
                                const RootOptions& options = {});

/// Brent's method (inverse quadratic / secant / bisection hybrid) on
/// [lo, hi]; same bracketing requirement as bisect, converges much faster
/// on smooth functions.
[[nodiscard]] RootResult brent(const RealFn& f, Real lo, Real hi,
                               const RootOptions& options = {});

/// Damped Newton from `x0`; falls back to halving the step while the
/// residual does not shrink.  Throws NumericError on divergence.
[[nodiscard]] RootResult newton(const RealFn& f, const RealFn& df, Real x0,
                                const RootOptions& options = {});

/// Expand [lo, hi] geometrically to the right until f changes sign, then
/// solve with brent.  Used when only a lower endpoint is known.
[[nodiscard]] RootResult bracket_and_solve(const RealFn& f, Real lo,
                                           Real initial_width,
                                           const RootOptions& options = {});

}  // namespace linesearch

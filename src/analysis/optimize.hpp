// analysis/optimize.hpp — 1-D minimization.
//
// Used to (a) verify numerically that beta* = (4f+4)/n - 1 minimizes the
// competitive-ratio function F(beta) of Lemma 5 (ablation A1), and (b)
// locate suprema of K(x) within intervals in the empirical CR evaluator.
#pragma once

#include <functional>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Result of a scalar minimization.
struct MinimizeResult {
  Real x = kNaN;       ///< argmin
  Real fx = kNaN;      ///< minimum value
  int iterations = 0;  ///< iterations consumed
};

/// Options for the minimizers.
struct MinimizeOptions {
  Real tolerance = 1e-12L;
  int max_iterations = 300;
};

/// Golden-section search for a minimum of a unimodal `f` on [lo, hi].
[[nodiscard]] MinimizeResult golden_section(
    const std::function<Real(Real)>& f, Real lo, Real hi,
    const MinimizeOptions& options = {});

/// Maximize by minimizing -f (convenience; returns the *maximum* in fx).
[[nodiscard]] MinimizeResult golden_section_max(
    const std::function<Real(Real)>& f, Real lo, Real hi,
    const MinimizeOptions& options = {});

/// Coarse grid scan followed by golden-section refinement around the best
/// grid cell; tolerant of mild non-unimodality.
[[nodiscard]] MinimizeResult grid_then_golden(
    const std::function<Real(Real)>& f, Real lo, Real hi, int grid_points,
    const MinimizeOptions& options = {});

/// Result of a multi-dimensional minimization.
struct MinimizeNdResult {
  std::vector<Real> x;  ///< argmin
  Real fx = kNaN;       ///< minimum value
  int iterations = 0;
  int evaluations = 0;
};

/// Options for nelder_mead.
struct NelderMeadOptions {
  Real initial_step = 0.5L;   ///< simplex edge length around the start
  Real tolerance = 1e-12L;    ///< f-spread termination threshold
  int max_iterations = 2000;
};

/// Derivative-free Nelder-Mead simplex minimization of f: R^d -> R from
/// `start` (d = start.size() >= 1).  Standard reflection / expansion /
/// contraction / shrink with adaptive termination on the simplex's
/// f-spread.  Used by eval/discover to search schedule-offset space.
[[nodiscard]] MinimizeNdResult nelder_mead(
    const std::function<Real(const std::vector<Real>&)>& f,
    std::vector<Real> start, const NelderMeadOptions& options = {});

}  // namespace linesearch

#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      alignments_(headers_.size(), Align::kRight) {
  expects(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::set_alignment(const std::size_t index,
                                 const Align alignment) {
  expects(index < alignments_.size(), "column index out of range");
  alignments_[index] = alignment;
}

void TablePrinter::set_caption(std::string caption) {
  caption_ = std::move(caption);
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(),
          "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << "  ";
      out << (alignments_[c] == Align::kLeft ? pad_right(row[c], widths[c])
                                             : pad_left(row[c], widths[c]));
    }
    out << '\n';
  };

  if (!caption_.empty()) out << caption_ << '\n';
  emit_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w;
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

std::string cell(const Real value, const int decimals) {
  return fixed(value, decimals);
}

std::string cell(const long long value) { return std::to_string(value); }

}  // namespace linesearch

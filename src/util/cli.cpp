#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

namespace linesearch {
namespace {

/// Strict whole-token numeric parse; empty optional on failure is
/// modelled by the `ok` out-param to keep the dependencies minimal.
long long parse_integer(const std::string& token, bool& ok) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const long long parsed = std::strtoll(begin, &end, 10);
  ok = !token.empty() && end != nullptr && *end == '\0';
  return parsed;
}

std::uint64_t parse_unsigned(const std::string& token, bool& ok) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(begin, &end, 10);
  ok = !token.empty() && token.front() != '-' && end != nullptr &&
       *end == '\0';
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

CliParser::CliParser(std::string tool, std::string summary)
    : tool_(std::move(tool)), summary_(std::move(summary)) {}

void CliParser::add_flag(const std::string& name, bool* target,
                         const std::string& help) {
  specs_.push_back({"--" + name, "", help,
                    [target](const std::string&) -> std::string {
                      *target = true;
                      return {};
                    }});
}

void CliParser::add_option(const std::string& name, std::string* target,
                           const std::string& value_name,
                           const std::string& help) {
  specs_.push_back({"--" + name, value_name, help,
                    [target](const std::string& value) -> std::string {
                      *target = value;
                      return {};
                    }});
}

void CliParser::add_option(const std::string& name, int* target,
                           const std::string& value_name,
                           const std::string& help, const int min) {
  const std::string flag = "--" + name;
  specs_.push_back(
      {flag, value_name, help,
       [target, flag, min](const std::string& value) -> std::string {
         bool ok = false;
         const long long parsed = parse_integer(value, ok);
         if (!ok) return flag + " expects an integer, got '" + value + "'";
         if (parsed < min) {
           return flag + " must be >= " + std::to_string(min) + ", got '" +
                  value + "'";
         }
         *target = static_cast<int>(parsed);
         return {};
       }});
}

void CliParser::add_option(const std::string& name, std::uint64_t* target,
                           const std::string& value_name,
                           const std::string& help) {
  const std::string flag = "--" + name;
  specs_.push_back(
      {flag, value_name, help,
       [target, flag](const std::string& value) -> std::string {
         bool ok = false;
         const std::uint64_t parsed = parse_unsigned(value, ok);
         if (!ok) {
           return flag + " expects a non-negative integer, got '" + value +
                  "'";
         }
         *target = parsed;
         return {};
       }});
}

void CliParser::add_passthrough_prefix(const std::string& prefix) {
  passthrough_prefixes_.push_back(prefix);
}

const CliParser::Spec* CliParser::find(const std::string& name) const {
  for (const Spec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string CliParser::known_options() const {
  std::string out;
  for (const Spec& spec : specs_) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  return out;
}

bool CliParser::fail(const std::string& message) {
  error_ = tool_ + ": " + message;
  return false;
}

bool CliParser::parse(const int argc, const char* const* argv) {
  error_.clear();
  passthrough_args_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool passed_through = false;
    for (const std::string& prefix : passthrough_prefixes_) {
      if (arg.rfind(prefix, 0) == 0) {
        passthrough_args_.push_back(arg);
        passed_through = true;
        break;
      }
    }
    if (passed_through) continue;

    std::string name = arg;
    std::string inline_value;
    bool has_inline_value = false;
    const std::size_t equals = arg.find('=');
    if (equals != std::string::npos) {
      name = arg.substr(0, equals);
      inline_value = arg.substr(equals + 1);
      has_inline_value = true;
    }

    const Spec* spec = find(name);
    if (spec == nullptr) {
      return fail("unknown argument '" + arg + "' (valid options: " +
                  known_options() + ")");
    }

    const bool is_flag = spec->value_name.empty();
    std::string value;
    if (is_flag) {
      if (has_inline_value) {
        return fail(name + " is a flag and takes no value");
      }
    } else if (has_inline_value) {
      value = inline_value;
    } else {
      if (i + 1 >= argc) {
        return fail(name + " expects a value (" + spec->value_name + ")");
      }
      value = argv[++i];
    }
    const std::string message = spec->apply(value);
    if (!message.empty()) return fail(message);
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << "usage: " << tool_ << " [options]\n" << summary_ << "\n\noptions:\n";
  for (const Spec& spec : specs_) {
    std::string left = "  " + spec.name;
    if (!spec.value_name.empty()) left += " <" + spec.value_name + ">";
    out << left;
    constexpr std::size_t kHelpColumn = 30;
    if (left.size() < kHelpColumn) {
      out << std::string(kHelpColumn - left.size(), ' ');
    } else {
      out << "\n" << std::string(kHelpColumn, ' ');
    }
    out << spec.help << '\n';
  }
  return out.str();
}

}  // namespace linesearch

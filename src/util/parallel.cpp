#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace linesearch {

int resolve_thread_count(const int requested) {
  int resolved = requested;
  if (resolved <= 0) {
    if (const char* env = std::getenv("LINESEARCH_THREADS")) {
      try {
        resolved = std::stoi(env);
      } catch (const std::exception&) {
        resolved = 0;  // unparsable values fall through to the hardware
      }
    }
  }
  if (resolved <= 0) {
    resolved = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::clamp(resolved, 1, kMaxThreads);
}

ThreadPool::ThreadPool(const int threads) {
  expects(threads >= 1, "ThreadPool: need at least one worker");
  ensure_workers(threads);
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::ensure_workers(const int threads) {
  const int target = std::clamp(threads, 1, kMaxThreads);
  const std::lock_guard<std::mutex> lock(mutex_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    expects(!stopping_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(resolve_thread_count());
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

// True while the current thread is executing parallel_for items.  A
// nested parallel_for would otherwise submit helper tasks and block on
// them while every pool worker is itself blocked the same way; nested
// calls therefore run inline (serial), which is also the deterministic
// reference behavior.
thread_local bool tl_inside_parallel_region = false;

}  // namespace

void parallel_for(const std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  const int threads) {
  if (count == 0) return;
  const int resolved = resolve_thread_count(threads);
  const auto workers = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(resolved), count));

  if (workers <= 1 || tl_inside_parallel_region) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  // Shared loop state: a dynamic index counter (no static partitioning, so
  // uneven item costs balance out) plus lowest-index exception capture.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::mutex done_mutex;
    std::condition_variable done_cv;
    int tasks_running = 0;
  };
  LoopState state;

  const auto drain = [&] {
    tl_inside_parallel_region = true;
    for (;;) {
      const std::size_t i =
          state.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state.error_mutex);
        if (i < state.error_index) {
          state.error_index = i;
          state.error = std::current_exception();
        }
      }
    }
    tl_inside_parallel_region = false;
  };

  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(workers);
  const int helpers = workers - 1;  // the caller is the remaining worker
  state.tasks_running = helpers;
  for (int t = 0; t < helpers; ++t) {
    pool.submit([&state, &drain] {
      drain();
      // Notify UNDER the lock: the caller destroys LoopState as soon as
      // its wait observes tasks_running == 0, and wait can only return
      // after reacquiring done_mutex — so signaling while holding it
      // guarantees the cv outlives the signal.
      const std::lock_guard<std::mutex> lock(state.done_mutex);
      --state.tasks_running;
      state.done_cv.notify_one();
    });
  }
  drain();
  {
    std::unique_lock<std::mutex> lock(state.done_mutex);
    state.done_cv.wait(lock, [&state] { return state.tasks_running == 0; });
  }
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace linesearch

// util/table.hpp — fixed-width console tables.
//
// Every bench binary reproduces one of the paper's tables or figure series;
// TablePrinter renders them with aligned columns, a header rule and an
// optional caption, so the output visually matches the paper's Table 1
// layout.  Cells are strings; numeric overloads format via util/format.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Column alignment inside a TablePrinter.
enum class Align { kLeft, kRight };

/// Builder for a fixed-width text table.
class TablePrinter {
 public:
  /// Create a table with the given column headers (all right-aligned by
  /// default; see set_alignment).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Override the alignment of column `index`.
  void set_alignment(std::size_t index, Align alignment);

  /// Optional caption printed above the table.
  void set_caption(std::string caption);

  /// Append a fully formatted row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render the table to `out`.
  void print(std::ostream& out) const;

  /// Render to a string (convenience for tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::string caption_;
  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<std::vector<std::string>> rows_;
};

/// Helper: format a Real for a table cell with `decimals` digits, or "-"
/// for NaN.
[[nodiscard]] std::string cell(Real value, int decimals = 3);

/// Helper: format an integer cell.
[[nodiscard]] std::string cell(long long value);

}  // namespace linesearch

// util/jsonio.hpp — minimal streaming JSON emission.
//
// Machine-readable artifacts (fuzzer repro instances, BENCH_perf.json)
// are JSON so CI can diff them and external tools can parse them without
// a CSV dialect.  This is emission only — nothing in the library needs a
// JSON parser, and keeping it write-only keeps it dependency-free.
//
// Non-finite Reals are representable: JSON has no inf/nan literals, so
// `value(Real)` emits them as the STRINGS "inf"/"-inf"/"nan" (the same
// spellings as util/csv's encode_real_field, so one codec governs every
// serialization).  Finite values are numbers with 21 significant digits
// and round-trip exactly through strtold.
#pragma once

#include <ostream>
#include <string>

#include "util/real.hpp"

namespace linesearch {

/// Escape a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Streaming writer producing pretty-printed (2-space) JSON.  The caller
/// is responsible for well-formedness (every begin has an end, keys only
/// inside objects); the writer handles commas, indentation and escaping.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(&out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit `"key":` — must be followed by a value or a begin_*.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(Real number);
  JsonWriter& value(int number);
  JsonWriter& value(long long number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(bool flag);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  void separate();  ///< comma + newline between siblings, then indent
  void open(char bracket);
  void close(char bracket);

  std::ostream* out_;
  int depth_ = 0;
  bool first_ = true;        ///< no sibling emitted yet at this depth
  bool after_key_ = false;   ///< next value sits on the key's line
};

}  // namespace linesearch

// util/jsonio.hpp — minimal streaming JSON emission + parsing.
//
// Machine-readable artifacts (fuzzer repro instances, BENCH_perf.json,
// the svc wire protocol) are JSON so CI can diff them and external tools
// can parse them without a CSV dialect.  Emission was the original
// scope; the service layer's newline-delimited wire format added the
// matching recursive-descent parser (`parse_json`), still dependency-free.
//
// Non-finite Reals are representable: JSON has no inf/nan literals, so
// `value(Real)` emits them as the STRINGS "inf"/"-inf"/"nan" (the same
// spellings as util/csv's encode_real_field, so one codec governs every
// serialization), and `JsonValue::as_real()` reads those strings back to
// kInfinity / -kInfinity / kNaN — CR = inf survives the wire losslessly.
// Finite values are numbers with 21 significant digits and round-trip
// exactly through strtold.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Escape a string for inclusion inside JSON double quotes.
[[nodiscard]] std::string json_escape(const std::string& text);

/// Streaming writer producing pretty-printed (2-space) JSON, or — in
/// compact mode — a single line with no whitespace at all (the service
/// wire format: one newline-delimited JSON document per message, where
/// the newline is the framing and must never appear inside a document).
/// The caller is responsible for well-formedness (every begin has an
/// end, keys only inside objects); the writer handles commas,
/// indentation and escaping.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out, const bool compact = false)
      : out_(&out), compact_(compact) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit `"key":` — must be followed by a value or a begin_*.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(Real number);
  JsonWriter& value(int number);
  JsonWriter& value(long long number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(bool flag);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

 private:
  void separate();  ///< comma + newline between siblings, then indent
  void open(char bracket);
  void close(char bracket);

  std::ostream* out_;
  bool compact_ = false;     ///< single line, no indentation or spaces
  int depth_ = 0;
  bool first_ = true;        ///< no sibling emitted yet at this depth
  bool after_key_ = false;   ///< next value sits on the key's line
};

/// Parsed JSON document node.  Objects preserve key order (the writer is
/// deterministic, so replayed fixtures stay byte-comparable after a
/// parse → re-emit round trip).  Numbers keep their source text so
/// integer fields exceeding double precision survive via as_uint64.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Bool value; throws PreconditionError on kind mismatch.
  [[nodiscard]] bool as_bool() const;

  /// Real value.  Accepts numbers AND the codec strings "inf" / "-inf" /
  /// "nan" emitted by JsonWriter::value(Real) — the lossless non-finite
  /// round trip.  Throws PreconditionError otherwise.
  [[nodiscard]] Real as_real() const;

  /// Integer value (number with no fractional part); throws otherwise.
  [[nodiscard]] long long as_int() const;

  /// Non-negative integer value; throws on sign/kind mismatch.
  [[nodiscard]] std::uint64_t as_uint64() const;

  /// String value; throws on kind mismatch.
  [[nodiscard]] const std::string& as_string() const;

  /// Array elements; throws on kind mismatch.
  [[nodiscard]] const Array& as_array() const;

  /// Object members in source order; throws on kind mismatch.
  [[nodiscard]] const Object& as_object() const;

  /// Lookup in an object: nullptr if `name` is absent (first match wins).
  [[nodiscard]] const JsonValue* find(const std::string& name) const;

  /// Lookup in an object; throws PreconditionError if absent.
  [[nodiscard]] const JsonValue& at(const std::string& name) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  ///< number source text, or string payload
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse one JSON document (the whole string except trailing whitespace
/// must be consumed).  Throws PreconditionError with a byte offset on
/// malformed input.  Depth is bounded (kMaxJsonDepth) so hostile wire
/// input cannot blow the stack.
[[nodiscard]] JsonValue parse_json(const std::string& text);

/// Maximum nesting depth parse_json accepts.
inline constexpr std::size_t kMaxJsonDepth = 64;

}  // namespace linesearch

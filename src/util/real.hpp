// util/real.hpp — numeric foundation for the linesearch library.
//
// All geometry in this library (trajectory waypoints, turning points,
// competitive ratios) is computed in `Real` (long double).  Tolerances are
// centralized here so every module agrees on what "equal" means; they are
// *relative* tolerances except where a quantity is naturally anchored at
// zero, in which case the absolute floor kicks in.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace linesearch {

/// Scalar type used throughout the library.
using Real = long double;

namespace tol {

/// Default relative tolerance for comparing derived quantities
/// (competitive ratios, visit times).  ~1e-9 leaves ample headroom above
/// long-double epsilon while catching genuine formula errors.
inline constexpr Real kRelative = 1e-9L;

/// Absolute floor used when both operands are close to zero.
inline constexpr Real kAbsolute = 1e-12L;

/// Relative offset used to probe one-sided limits around the
/// discontinuities of K(x) = T_{f+1}(x)/|x| at turning points (Lemma 3).
inline constexpr Real kLimitProbe = 1e-9L;

/// Tolerance for root finding / optimization termination.
inline constexpr Real kSolver = 1e-13L;

}  // namespace tol

/// True if |a - b| is within `rel`-relative (or `abs`-absolute) distance.
[[nodiscard]] bool approx_equal(Real a, Real b, Real rel = tol::kRelative,
                                Real abs = tol::kAbsolute) noexcept;

/// True if a <= b up to tolerance (a may exceed b by the allowed slack).
[[nodiscard]] bool approx_le(Real a, Real b, Real rel = tol::kRelative,
                             Real abs = tol::kAbsolute) noexcept;

/// True if a >= b up to tolerance.
[[nodiscard]] bool approx_ge(Real a, Real b, Real rel = tol::kRelative,
                             Real abs = tol::kAbsolute) noexcept;

/// Sign of x as -1, 0, +1.
[[nodiscard]] constexpr int sign_of(Real x) noexcept {
  if (x > 0) return 1;
  if (x < 0) return -1;
  return 0;
}

/// Relative difference |a-b| / max(|a|,|b|,1).
[[nodiscard]] Real relative_difference(Real a, Real b) noexcept;

/// Not-a-number constant (used as "no value" marker in dense tables only;
/// APIs prefer std::optional).
inline constexpr Real kNaN = std::numeric_limits<Real>::quiet_NaN();

/// Positive infinity (time of a visit that never happens).
inline constexpr Real kInfinity = std::numeric_limits<Real>::infinity();

}  // namespace linesearch

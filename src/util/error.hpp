// util/error.hpp — error types and contract checks.
//
// Per the C++ Core Guidelines (I.5/I.6, E.2) we state preconditions
// explicitly and throw on violation; `expects()` / `ensures()` are plain
// functions (no macros) that capture the call site via
// std::source_location.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace linesearch {

/// Base class of all linesearch errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed (library bug, not caller error).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// A numeric routine failed to converge / bracket.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// Throw PreconditionError with location info unless `condition` holds.
void expects(bool condition, std::string_view message,
             std::source_location where = std::source_location::current());

/// Throw InvariantError with location info unless `condition` holds.
void ensures(bool condition, std::string_view message,
             std::source_location where = std::source_location::current());

}  // namespace linesearch

// util/format.hpp — small formatting helpers shared by the table/CSV
// emitters and the bench binaries.  Numbers are formatted from Real
// (long double) without ever silently narrowing.
#pragma once

#include <string>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Format with a fixed number of digits after the decimal point
/// (e.g. fixed(3.14159, 2) == "3.14").  NaN renders as "-".
[[nodiscard]] std::string fixed(Real value, int decimals);

/// Format with `digits` significant digits (general format).
[[nodiscard]] std::string sig(Real value, int digits);

/// Format in scientific notation with `decimals` mantissa digits.
[[nodiscard]] std::string scientific(Real value, int decimals);

/// Pad/align a string to `width` (left- or right-aligned).
[[nodiscard]] std::string pad_left(const std::string& s, std::size_t width);
[[nodiscard]] std::string pad_right(const std::string& s, std::size_t width);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& pieces,
                               const std::string& separator);

/// Render a duration in seconds as a compact human string ("1.24s").
[[nodiscard]] std::string seconds(Real value);

}  // namespace linesearch

// util/parallel.hpp — fixed-size thread pool and deterministic parallel
// loops.
//
// Every sweep in this library (CR grids, adversary placement scans,
// profile batches) is embarrassingly parallel over independent points, so
// the whole parallel substrate is two primitives: `parallel_for` runs a
// body over [0, count) on a shared pool, and `parallel_map` additionally
// collects results INTO INPUT ORDER — each worker writes slot i of a
// pre-sized output vector, so reductions downstream (argmax scans,
// first-wins tie-breaks) see exactly the sequence the serial loop would
// have produced, regardless of thread count or completion order.
//
// Worker-count resolution: an explicit `threads` argument wins; otherwise
// the LINESEARCH_THREADS environment variable; otherwise the hardware
// concurrency.  A resolved count of 1 bypasses the pool entirely and runs
// inline (no thread is ever spawned), which is both the serial fallback
// and the reference semantics every parallel run must reproduce.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace linesearch {

/// Hard cap on pool width (backstop against absurd env values).
inline constexpr int kMaxThreads = 64;

/// Resolve a worker count: `requested` if > 0, else the
/// LINESEARCH_THREADS environment variable if set and positive, else
/// std::thread::hardware_concurrency().  Always in [1, kMaxThreads].
[[nodiscard]] int resolve_thread_count(int requested = 0);

/// A reusable fixed-size pool of worker threads draining a task queue.
/// Construction spawns the workers; destruction drains and joins.  The
/// process-wide instance behind `parallel_for` lives in `global()` and
/// grows on demand (never shrinks) up to kMaxThreads.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Current number of worker threads.
  [[nodiscard]] int size() const;

  /// Grow the pool to at least `threads` workers (capped at kMaxThreads).
  void ensure_workers(int threads);

  /// Enqueue a task; it runs on some worker, eventually.
  void submit(std::function<void()> task);

  /// The process-wide pool (lazily created on first use).
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Run body(i) for every i in [0, count) using up to `threads` workers
/// (see resolve_thread_count).  The calling thread participates, so the
/// call always completes even if the pool is saturated (this also makes
/// nested parallel_for safe: the inner call drains its own items).
/// If any body throws, every item still runs and the exception raised at
/// the LOWEST index is rethrown — the same exception the serial loop
/// would surface first.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  int threads = 0);

/// Map fn over [0, count) and return the results in input order.  The
/// result type must be default-constructible; slot i is written only by
/// the worker that ran item i, so the output is bit-identical to the
/// serial loop's for any thread count.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t count, Fn&& fn, int threads = 0)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> out(count);
  parallel_for(
      count, [&](const std::size_t i) { out[i] = fn(i); }, threads);
  return out;
}

}  // namespace linesearch

#include "util/real.hpp"

#include <algorithm>

namespace linesearch {

bool approx_equal(const Real a, const Real b, const Real rel,
                  const Real abs) noexcept {
  if (a == b) return true;  // covers exact matches and matching infinities
  if (std::isnan(a) || std::isnan(b)) return false;
  if (std::isinf(a) || std::isinf(b)) return false;
  const Real diff = std::fabs(a - b);
  if (diff <= abs) return true;
  const Real scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= rel * scale;
}

bool approx_le(const Real a, const Real b, const Real rel,
               const Real abs) noexcept {
  return a <= b || approx_equal(a, b, rel, abs);
}

bool approx_ge(const Real a, const Real b, const Real rel,
               const Real abs) noexcept {
  return a >= b || approx_equal(a, b, rel, abs);
}

Real relative_difference(const Real a, const Real b) noexcept {
  const Real scale = std::max({std::fabs(a), std::fabs(b), Real{1}});
  return std::fabs(a - b) / scale;
}

}  // namespace linesearch

#include "util/csv.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {
namespace {

/// Split one CSV line into fields, honoring RFC 4180 quoting (the inverse
/// of CsvWriter::escape; embedded newlines are not supported because no
/// writer in this library produces them inside numeric/series rows).
std::vector<std::string> split_csv_line(const std::string& line,
                                        const std::string& context) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        field += ch;
      }
    } else if (ch == '"' && field.empty()) {
      quoted = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field += ch;
    }
  }
  expects(!quoted, "csv: unterminated quote at " + context);
  fields.push_back(std::move(field));
  return fields;
}

}  // namespace

std::string encode_real_field(const Real value, const int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  return sig(value, digits);
}

Real parse_real_field(const std::string& field) {
  expects(!field.empty(), "csv: empty numeric field");
  // Legacy NaN marker of the human-facing tables (util/format renders
  // NaN as "-"); accept it so old table-derived CSVs stay readable.
  if (field == "-") return kNaN;
  char* end = nullptr;
  const Real value = std::strtold(field.c_str(), &end);
  // strtold itself accepts "inf"/"infinity"/"nan" (any case, signed), so
  // the only job left is rejecting partial parses like "1.5x".
  expects(end != nullptr && *end == '\0',
          "csv: malformed number '" + field + "'");
  return value;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void write_series_csv(std::ostream& out, const std::vector<Series>& series) {
  CsvWriter csv(out);
  csv.write_row({"series", "x", "y"});
  for (const auto& s : series) {
    expects(s.x.size() == s.y.size(), "series x/y length mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      csv.write_row({s.name, encode_real_field(s.x[i], 12),
                     encode_real_field(s.y[i], 12)});
    }
  }
}

std::vector<Series> read_series_csv(std::istream& in) {
  std::string line;
  expects(static_cast<bool>(std::getline(in, line)),
          "csv: empty series input");
  if (!line.empty() && line.back() == '\r') line.pop_back();
  expects(line == "series,x,y",
          "csv: expected header 'series,x,y', got '" + line + "'");

  std::vector<Series> series;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string context = "line " + std::to_string(line_number);
    const std::vector<std::string> fields = split_csv_line(line, context);
    expects(fields.size() == 3, "csv: expected 3 fields at " + context);

    Series* current = nullptr;
    for (Series& s : series) {
      if (s.name == fields[0]) {
        current = &s;
        break;
      }
    }
    if (current == nullptr) {
      series.push_back({fields[0], {}, {}});
      current = &series.back();
    }
    current->x.push_back(parse_real_field(fields[1]));
    current->y.push_back(parse_real_field(fields[2]));
  }
  return series;
}

}  // namespace linesearch

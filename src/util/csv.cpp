#include "util/csv.hpp"

#include <ostream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) *out_ << ',';
    *out_ << escape(fields[i]);
  }
  *out_ << '\n';
}

void write_series_csv(std::ostream& out, const std::vector<Series>& series) {
  CsvWriter csv(out);
  csv.write_row({"series", "x", "y"});
  for (const auto& s : series) {
    expects(s.x.size() == s.y.size(), "series x/y length mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      csv.write_row({s.name, sig(s.x[i], 12), sig(s.y[i], 12)});
    }
  }
}

}  // namespace linesearch

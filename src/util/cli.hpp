// util/cli.hpp — shared command-line parsing for the tool binaries.
//
// Every tool (fuzz_main, stats_main, serve_main, bench_perf) used to
// hand-roll the same argv loop with slightly different conventions; this
// parser unifies them.  Both `--name value` and `--name=value` spellings
// are accepted for options, flags take no value, and an unknown argument
// produces an error that NAMES THE TOOL and lists every valid option —
// the difference between a usable CLI and a guessing game.
//
// Numeric options parse strictly (the whole token must be a number) and
// report the offending value in the error.  A passthrough prefix (e.g.
// "--benchmark_" for google-benchmark) collects matching args unparsed
// so wrapper binaries can forward them to an inner library.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace linesearch {

/// Declarative argv parser.  Register flags/options, then `parse`; on
/// failure `error()` holds a tool-prefixed message and `usage()` the
/// option list.  Targets are plain pointers written during parse, so the
/// caller's option struct stays a simple aggregate.
class CliParser {
 public:
  /// `tool` names the binary in errors/usage; `summary` is the one-line
  /// description printed at the top of usage().
  CliParser(std::string tool, std::string summary);

  /// Boolean flag: present -> true.  No value accepted.
  void add_flag(const std::string& name, bool* target,
                const std::string& help);

  /// String option (`--name value` or `--name=value`).
  void add_option(const std::string& name, std::string* target,
                  const std::string& value_name, const std::string& help);

  /// Integer option; parse fails (with the bad token in the error) on
  /// non-numeric input or values below `min`.
  void add_option(const std::string& name, int* target,
                  const std::string& value_name, const std::string& help,
                  int min = 0);

  /// Unsigned 64-bit option (seeds).
  void add_option(const std::string& name, std::uint64_t* target,
                  const std::string& value_name, const std::string& help);

  /// Arguments starting with `prefix` are collected verbatim into
  /// passthrough() instead of being parsed (and instead of erroring).
  void add_passthrough_prefix(const std::string& prefix);

  /// Parse argv (argv[0] ignored).  Returns false on the first error;
  /// error() then describes it.  Targets touched before the error keep
  /// their parsed values.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Tool-prefixed description of the parse failure (empty on success).
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Multi-line usage text: summary + one line per registered option.
  [[nodiscard]] std::string usage() const;

  /// Args captured by add_passthrough_prefix, in order of appearance.
  [[nodiscard]] const std::vector<std::string>& passthrough() const {
    return passthrough_args_;
  }

 private:
  struct Spec {
    std::string name;        ///< including the leading "--"
    std::string value_name;  ///< empty for flags
    std::string help;
    /// Consume the value (flags receive ""); returns an error message or
    /// empty on success.
    std::function<std::string(const std::string&)> apply;
  };

  [[nodiscard]] const Spec* find(const std::string& name) const;
  [[nodiscard]] std::string known_options() const;
  bool fail(const std::string& message);

  std::string tool_;
  std::string summary_;
  std::vector<Spec> specs_;
  std::vector<std::string> passthrough_prefixes_;
  std::vector<std::string> passthrough_args_;
  std::string error_;
};

}  // namespace linesearch

// util/csv.hpp — minimal CSV emission and parsing.
//
// Bench binaries print a machine-readable CSV block after each
// human-readable table so figure series can be piped straight into a
// plotting tool.  Quoting follows RFC 4180 (quote iff the field contains
// a comma, quote, or newline).
//
// Numeric fields round-trip LOSSLESSLY, including the non-finite values
// that became representable once undetected half-lines started reporting
// cr = inf: `encode_real_field` spells them "inf" / "-inf" / "nan" and
// `parse_real_field` reads those (plus the legacy "-" NaN marker of the
// human-facing tables) back.  Every text serialization of a Real in the
// library goes through this one codec (series CSV here, fleet CSV in
// sim/serialize, JSON in util/jsonio).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Encode one Real as a CSV/JSON-safe text field: finite values with
/// `digits` significant digits (21 = max_digits10 of 80-bit long double,
/// the exact-round-trip default), non-finite as "inf"/"-inf"/"nan".
[[nodiscard]] std::string encode_real_field(Real value, int digits = 21);

/// Parse a field written by encode_real_field (or any strtold-legal
/// number).  Accepts "inf"/"-inf"/"infinity"/"nan" case-insensitively and
/// the legacy "-" NaN marker; throws PreconditionError on anything else
/// that is not a full number.
[[nodiscard]] Real parse_real_field(const std::string& field);

/// Streaming CSV writer bound to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a row of raw string fields (quoted as needed).
  void write_row(const std::vector<std::string>& fields);

  /// Escape one field per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
};

/// One named series of (x, y) points — the unit of "figure" output.
struct Series {
  std::string name;
  std::vector<Real> x;
  std::vector<Real> y;
};

/// Emit series as long-format CSV: header `series,x,y` then one row per
/// point, 12 significant digits (non-finite values per encode_real_field).
void write_series_csv(std::ostream& out, const std::vector<Series>& series);

/// Parse the output of write_series_csv back into series (grouped by
/// name, first-appearance order).  Non-finite y values (cr = inf rows)
/// round-trip exactly.  Throws PreconditionError on malformed input.
[[nodiscard]] std::vector<Series> read_series_csv(std::istream& in);

}  // namespace linesearch

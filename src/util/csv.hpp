// util/csv.hpp — minimal CSV emission.
//
// Bench binaries print a machine-readable CSV block after each
// human-readable table so figure series can be piped straight into a
// plotting tool.  Quoting follows RFC 4180 (quote iff the field contains
// a comma, quote, or newline).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Streaming CSV writer bound to an ostream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Write a row of raw string fields (quoted as needed).
  void write_row(const std::vector<std::string>& fields);

  /// Escape one field per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ostream* out_;
};

/// One named series of (x, y) points — the unit of "figure" output.
struct Series {
  std::string name;
  std::vector<Real> x;
  std::vector<Real> y;
};

/// Emit series as long-format CSV: header `series,x,y` then one row per
/// point, 12 significant digits.
void write_series_csv(std::ostream& out, const std::vector<Series>& series);

}  // namespace linesearch

// util/simd.hpp — the configure-time SIMD switch for the SoA kernels.
//
// The hot kernels (eval/kernels, eval/interval_lines) are written as
// structure-of-arrays loops annotated with LS_SIMD_LOOP.  With
// LINESEARCH_SIMD=ON (the default) the macro expands to
// `#pragma omp simd` — the portable, library-free vectorization hint
// enabled by -fopenmp-simd, which needs no OpenMP runtime — and with
// LINESEARCH_SIMD=OFF it expands to nothing, giving a pure scalar build
// of the very same source.  Both builds must produce bit-identical
// results: `omp simd` on an elementwise loop (no reduction clause)
// licenses no re-association, and `Real` is long double, which the
// hardware cannot contract anyway.  The scalar build exists so CI can
// prove that claim rather than assume it.
//
// Code that needs to report which variant it is running (the perf
// report, the differential harness) should use kSimdCompiled instead of
// testing the macro at each site.
#pragma once

#if defined(LINESEARCH_SIMD_ENABLED) && LINESEARCH_SIMD_ENABLED
#define LS_SIMD_LOOP _Pragma("omp simd")
#else
#define LS_SIMD_LOOP
#endif

namespace linesearch {

/// True when this build annotates the SoA kernels with `#pragma omp simd`
/// (LINESEARCH_SIMD=ON); false in the scalar-fallback build.
#if defined(LINESEARCH_SIMD_ENABLED) && LINESEARCH_SIMD_ENABLED
inline constexpr bool kSimdCompiled = true;
#else
inline constexpr bool kSimdCompiled = false;
#endif

}  // namespace linesearch

#include "util/jsonio.hpp"

#include <cmath>
#include <cstdio>

#include "util/csv.hpp"

namespace linesearch {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value belongs on the key's line
  }
  if (!first_) *out_ << ',';
  if (depth_ > 0) {
    *out_ << '\n' << std::string(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  first_ = false;
}

void JsonWriter::open(const char bracket) {
  separate();
  *out_ << bracket;
  ++depth_;
  first_ = true;
}

void JsonWriter::close(const char bracket) {
  --depth_;
  if (!first_) {
    *out_ << '\n' << std::string(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  *out_ << bracket;
  first_ = false;
  if (depth_ == 0) *out_ << '\n';
}

JsonWriter& JsonWriter::begin_object() { open('{'); return *this; }
JsonWriter& JsonWriter::end_object() { close('}'); return *this; }
JsonWriter& JsonWriter::begin_array() { open('['); return *this; }
JsonWriter& JsonWriter::end_array() { close(']'); return *this; }

JsonWriter& JsonWriter::key(const std::string& name) {
  separate();
  *out_ << '"' << json_escape(name) << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  separate();
  *out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(const Real number) {
  separate();
  // Non-finite values have no JSON literal; the shared codec spelling
  // goes out as a string so consumers see "inf" rather than invalid JSON.
  if (std::isnan(number) || std::isinf(number)) {
    *out_ << '"' << encode_real_field(number) << '"';
  } else {
    *out_ << encode_real_field(number);
  }
  return *this;
}

JsonWriter& JsonWriter::value(const int number) {
  separate();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(const long long number) {
  separate();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(const std::size_t number) {
  separate();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(const bool flag) {
  separate();
  *out_ << (flag ? "true" : "false");
  return *this;
}

}  // namespace linesearch

#include "util/jsonio.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace linesearch {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buffer;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // value belongs on the key's line
  }
  if (!first_) *out_ << ',';
  if (!compact_ && depth_ > 0) {
    *out_ << '\n' << std::string(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  first_ = false;
}

void JsonWriter::open(const char bracket) {
  separate();
  *out_ << bracket;
  ++depth_;
  first_ = true;
}

void JsonWriter::close(const char bracket) {
  --depth_;
  if (!compact_ && !first_) {
    *out_ << '\n' << std::string(static_cast<std::size_t>(depth_) * 2, ' ');
  }
  *out_ << bracket;
  first_ = false;
  if (!compact_ && depth_ == 0) *out_ << '\n';
}

JsonWriter& JsonWriter::begin_object() { open('{'); return *this; }
JsonWriter& JsonWriter::end_object() { close('}'); return *this; }
JsonWriter& JsonWriter::begin_array() { open('['); return *this; }
JsonWriter& JsonWriter::end_array() { close(']'); return *this; }

JsonWriter& JsonWriter::key(const std::string& name) {
  separate();
  *out_ << '"' << json_escape(name) << (compact_ ? "\":" : "\": ");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  separate();
  *out_ << '"' << json_escape(text) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(const Real number) {
  separate();
  // Non-finite values have no JSON literal; the shared codec spelling
  // goes out as a string so consumers see "inf" rather than invalid JSON.
  if (std::isnan(number) || std::isinf(number)) {
    *out_ << '"' << encode_real_field(number) << '"';
  } else {
    *out_ << encode_real_field(number);
  }
  return *this;
}

JsonWriter& JsonWriter::value(const int number) {
  separate();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(const long long number) {
  separate();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(const std::size_t number) {
  separate();
  *out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(const bool flag) {
  separate();
  *out_ << (flag ? "true" : "false");
  return *this;
}

bool JsonValue::as_bool() const {
  expects(kind_ == Kind::kBool, "json: value is not a bool");
  return bool_;
}

Real JsonValue::as_real() const {
  // A string payload is legal here iff it parses under the shared codec:
  // that is how JsonWriter spells inf/-inf/nan, the values JSON itself
  // cannot carry as numbers.
  expects(kind_ == Kind::kNumber || kind_ == Kind::kString,
          "json: value is not a number (or codec string)");
  return parse_real_field(text_);
}

long long JsonValue::as_int() const {
  expects(kind_ == Kind::kNumber, "json: value is not a number");
  const char* begin = text_.c_str();
  char* end = nullptr;
  const long long parsed = std::strtoll(begin, &end, 10);
  expects(end != nullptr && *end == '\0',
          "json: number is not an integer: " + text_);
  return parsed;
}

std::uint64_t JsonValue::as_uint64() const {
  expects(kind_ == Kind::kNumber, "json: value is not a number");
  expects(!text_.empty() && text_.front() != '-',
          "json: number is negative: " + text_);
  const char* begin = text_.c_str();
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(begin, &end, 10);
  expects(end != nullptr && *end == '\0',
          "json: number is not an unsigned integer: " + text_);
  return static_cast<std::uint64_t>(parsed);
}

const std::string& JsonValue::as_string() const {
  expects(kind_ == Kind::kString, "json: value is not a string");
  return text_;
}

const JsonValue::Array& JsonValue::as_array() const {
  expects(kind_ == Kind::kArray, "json: value is not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  expects(kind_ == Kind::kObject, "json: value is not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& name) const {
  expects(kind_ == Kind::kObject, "json: value is not an object");
  for (const auto& [key, member] : *object_) {
    if (key == name) return &member;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& name) const {
  const JsonValue* found = find(name);
  expects(found != nullptr, "json: missing key \"" + name + "\"");
  return *found;
}

/// Recursive-descent parser over the whole input string.  Private API:
/// only parse_json constructs one.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(&text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_whitespace();
    expects(pos_ == text_->size(),
            "json: trailing garbage at offset " + std::to_string(pos_));
    return value;
  }

 private:
  [[nodiscard]] std::string offset() const { return std::to_string(pos_); }

  void skip_whitespace() {
    while (pos_ < text_->size()) {
      const char ch = (*text_)[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    expects(pos_ < text_->size(), "json: unexpected end of input");
    return (*text_)[pos_];
  }

  void consume(const char expected) {
    expects(peek() == expected, std::string("json: expected '") + expected +
                                    "' at offset " + offset());
    ++pos_;
  }

  bool try_consume(const char expected) {
    if (peek() != expected) return false;
    ++pos_;
    return true;
  }

  void consume_literal(const std::string& literal) {
    expects(text_->compare(pos_, literal.size(), literal) == 0,
            "json: bad literal at offset " + offset());
    pos_ += literal.size();
  }

  JsonValue parse_value(const std::size_t depth) {
    expects(depth < kMaxJsonDepth, "json: nesting deeper than kMaxJsonDepth");
    const char head = peek();
    switch (head) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        JsonValue value;
        value.kind_ = JsonValue::Kind::kString;
        value.text_ = parse_string();
        return value;
      }
      case 't': {
        consume_literal("true");
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        value.bool_ = true;
        return value;
      }
      case 'f': {
        consume_literal("false");
        JsonValue value;
        value.kind_ = JsonValue::Kind::kBool;
        return value;
      }
      case 'n': {
        consume_literal("null");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object(const std::size_t depth) {
    consume('{');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kObject;
    value.object_ = std::make_shared<JsonValue::Object>();
    if (try_consume('}')) return value;
    while (true) {
      std::string key = parse_string();
      consume(':');
      value.object_->emplace_back(std::move(key), parse_value(depth + 1));
      if (try_consume('}')) return value;
      consume(',');
    }
  }

  JsonValue parse_array(const std::size_t depth) {
    consume('[');
    JsonValue value;
    value.kind_ = JsonValue::Kind::kArray;
    value.array_ = std::make_shared<JsonValue::Array>();
    if (try_consume(']')) return value;
    while (true) {
      value.array_->push_back(parse_value(depth + 1));
      if (try_consume(']')) return value;
      consume(',');
    }
  }

  std::string parse_string() {
    consume('"');
    std::string out;
    while (true) {
      expects(pos_ < text_->size(), "json: unterminated string");
      const char ch = (*text_)[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        expects(static_cast<unsigned char>(ch) >= 0x20,
                "json: raw control character in string at offset " + offset());
        out += ch;
        continue;
      }
      expects(pos_ < text_->size(), "json: unterminated escape");
      const char escape = (*text_)[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default:
          expects(false, "json: bad escape at offset " + offset());
      }
    }
  }

  std::string parse_unicode_escape() {
    expects(pos_ + 4 <= text_->size(), "json: truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char ch = (*text_)[pos_++];
      code <<= 4u;
      if (ch >= '0' && ch <= '9') {
        code |= static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        code |= static_cast<unsigned>(ch - 'a' + 10);
      } else if (ch >= 'A' && ch <= 'F') {
        code |= static_cast<unsigned>(ch - 'A' + 10);
      } else {
        expects(false, "json: bad \\u digit at offset " + offset());
      }
    }
    // UTF-8 encode.  The writer only emits \u00xx control escapes, but
    // arbitrary BMP code points from external clients decode correctly
    // (surrogate pairs are rejected rather than silently mangled).
    expects(code < 0xD800 || code > 0xDFFF,
            "json: surrogate escapes unsupported at offset " + offset());
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0u | (code >> 6u));
      out += static_cast<char>(0x80u | (code & 0x3Fu));
    } else {
      out += static_cast<char>(0xE0u | (code >> 12u));
      out += static_cast<char>(0x80u | ((code >> 6u) & 0x3Fu));
      out += static_cast<char>(0x80u | (code & 0x3Fu));
    }
    return out;
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_->size() && (*text_)[pos_] == '-') ++pos_;
    const auto eat_digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_->size() &&
             std::isdigit(static_cast<unsigned char>((*text_)[pos_])) != 0) {
        ++pos_;
      }
      expects(pos_ > before, "json: expected digit at offset " + offset());
    };
    eat_digits();
    if (pos_ < text_->size() && (*text_)[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_->size() &&
        ((*text_)[pos_] == 'e' || (*text_)[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_->size() &&
          ((*text_)[pos_] == '+' || (*text_)[pos_] == '-')) {
        ++pos_;
      }
      eat_digits();
    }
    JsonValue value;
    value.kind_ = JsonValue::Kind::kNumber;
    value.text_ = text_->substr(start, pos_ - start);
    return value;
  }

  const std::string* text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace linesearch

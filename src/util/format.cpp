#include "util/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace linesearch {
namespace {

std::string printf_real(const char* spec, const int precision,
                        const Real value) {
  char buffer[128];
  const int written =
      std::snprintf(buffer, sizeof buffer, spec, precision, value);
  ensures(written > 0 && static_cast<std::size_t>(written) < sizeof buffer,
          "number formatting overflow");
  return std::string(buffer);
}

}  // namespace

std::string fixed(const Real value, const int decimals) {
  expects(decimals >= 0 && decimals <= 30, "decimals out of range");
  if (std::isnan(value)) return "-";
  return printf_real("%.*Lf", decimals, value);
}

std::string sig(const Real value, const int digits) {
  expects(digits >= 1 && digits <= 30, "digits out of range");
  if (std::isnan(value)) return "-";
  return printf_real("%.*Lg", digits, value);
}

std::string scientific(const Real value, const int decimals) {
  expects(decimals >= 0 && decimals <= 30, "decimals out of range");
  if (std::isnan(value)) return "-";
  return printf_real("%.*Le", decimals, value);
}

std::string pad_left(const std::string& s, const std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, const std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string join(const std::vector<std::string>& pieces,
                 const std::string& separator) {
  std::ostringstream out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out << separator;
    out << pieces[i];
  }
  return out.str();
}

std::string seconds(const Real value) {
  if (std::isnan(value)) return "-";
  return fixed(value, 3) + "s";
}

}  // namespace linesearch

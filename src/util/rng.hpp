// util/rng.hpp — deterministic 64-bit generator (SplitMix64).
//
// Tiny state, full period, and — unlike std::mt19937_64 +
// std::uniform_real_distribution — identical streams on every platform
// and standard library.  Both the verify fuzzer and the runtime fault
// injector derive their randomness from it, so a seed alone replays an
// instance bit-identically anywhere.
#pragma once

#include <cstdint>

#include "util/real.hpp"

namespace linesearch {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform Real in [lo, hi).
  [[nodiscard]] Real uniform(const Real lo, const Real hi) noexcept {
    const Real unit = static_cast<Real>(next() >> 11) * 0x1.0p-53L;
    return lo + (hi - lo) * unit;
  }

  /// Uniform int in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] int uniform_int(const int lo, const int hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
  }

  /// True with probability p.
  [[nodiscard]] bool chance(const Real p) noexcept {
    return uniform(0, 1) < p;
  }

 private:
  std::uint64_t state_;
};

}  // namespace linesearch

#include "util/error.hpp"

namespace linesearch {
namespace {

std::string describe(const std::string_view message,
                     const std::source_location& where) {
  std::string out;
  out += message;
  out += " [";
  out += where.file_name();
  out += ":";
  out += std::to_string(where.line());
  out += " in ";
  out += where.function_name();
  out += "]";
  return out;
}

}  // namespace

void expects(const bool condition, const std::string_view message,
             const std::source_location where) {
  if (!condition) throw PreconditionError(describe(message, where));
}

void ensures(const bool condition, const std::string_view message,
             const std::source_location where) {
  if (!condition) throw InvariantError(describe(message, where));
}

}  // namespace linesearch

// core/competitive.hpp — closed-form competitive ratios (Section 3).
//
// Lemma 5:   CR of the schedule S_beta(n) with f faults is
//            F(beta) = (beta+1)^((2f+2)/n) (beta-1)^(1-(2f+2)/n) + 1.
// Optimum:   F'(beta*) = 0  at  beta* = (4f+4)/n - 1   (valid, i.e.
//            beta* > 1, exactly when n < 2f+2).
// Theorem 1: CR(A(n,f)) = F(beta*)
//            = ((4f+4)/n)^((2f+2)/n) ((4f+4)/n - 2)^(1-(2f+2)/n) + 1.
// Special cases: n = f+1 gives 9 (the classic cow-path doubling bound);
// n = 2f+1 gives (2+2/n)^(1+1/n) (2/n)^(-1/n) + 1 -> 3 (Figure 5 left),
// bounded by 3 + 4 ln n / n + O(1)/n (Corollary 1).  With a = n/f fixed,
// CR -> (4/a)^(2/a) (4/a-2)^(1-2/a) + 1 (Figure 5 right).
#pragma once

#include "util/real.hpp"

namespace linesearch {

/// True when the pair is in the paper's interesting regime f < n < 2f+2.
[[nodiscard]] constexpr bool in_proportional_regime(const int n,
                                                    const int f) noexcept {
  return f >= 1 && f < n && n < 2 * f + 2;
}

/// Lemma 5: competitive ratio of S_beta(n) with f faults, any beta > 1.
/// Requires f < n < 2f+2.
[[nodiscard]] Real schedule_cr(int n, int f, Real beta);

/// The optimal cone parameter beta* = (4f+4)/n - 1; requires n < 2f+2 so
/// that beta* > 1.
[[nodiscard]] Real optimal_beta(int n, int f);

/// Theorem 1: CR of the proportional schedule algorithm A(n,f).
[[nodiscard]] Real algorithm_cr(int n, int f);

/// Expansion factor of A(n,f): kappa(beta*) = (beta*+1)/(beta*-1)
/// = (2f+2)/(2f+2-n).  Equals 2 when n = f+1 and n+1 when n = 2f+1
/// (Table 1's last column).
[[nodiscard]] Real optimal_expansion_factor(int n, int f);

/// Best known upper bound for any (n, f) with f < n: 1 when n >= 2f+2
/// (two-group split), Theorem 1 otherwise.
[[nodiscard]] Real best_known_cr(int n, int f);

/// Figure 5 left: CR of A(2f+1, f) as a function of n = 2f+1 (n odd,
/// >= 3):  (2 + 2/n)^(1 + 1/n) (2/n)^(-1/n) + 1.
[[nodiscard]] Real cr_half_faulty(int n);

/// Corollary 1: the explicit upper bound 3 + 4 ln n / n (low-order terms
/// dropped) for n = 2f+1.
[[nodiscard]] Real corollary1_bound(int n);

/// Figure 5 right: asymptotic CR for n = a*f robots, 1 < a < 2:
/// (4/a)^(2/a) (4/a - 2)^(1 - 2/a) + 1.
[[nodiscard]] Real asymptotic_cr(Real a);

}  // namespace linesearch

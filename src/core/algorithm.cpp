#include "core/algorithm.hpp"

#include <sstream>

#include "core/competitive.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

ProportionalAlgorithm::ProportionalAlgorithm(const int n, const int f)
    : n_(n),
      f_(f),
      optimal_beta_(true),
      schedule_(n, optimal_beta(n, f)) {}

ProportionalAlgorithm::ProportionalAlgorithm(const int n, const int f,
                                             const Real beta)
    : n_(n), f_(f), optimal_beta_(false), schedule_(n, beta) {
  expects(in_proportional_regime(n, f),
          "S_beta(n) strategy requires f < n < 2f+2");
}

std::string ProportionalAlgorithm::name() const {
  std::ostringstream out;
  if (optimal_beta_) {
    out << "A(" << n_ << "," << f_ << ")";
  } else {
    out << "S_beta(" << n_ << "), beta=" << fixed(beta(), 4) << ", f=" << f_;
  }
  return out.str();
}

Fleet ProportionalAlgorithm::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  // Every robot's zig-zag covers both half-lines up to `extent`, so every
  // target with |x| <= extent is visited by all n >= f+1 robots.
  return schedule_.build_fleet(extent);
}

Fleet ProportionalAlgorithm::build_unbounded_fleet() const {
  return schedule_.build_unbounded_fleet();
}

std::optional<Real> ProportionalAlgorithm::theoretical_cr() const {
  return schedule_cr(n_, f_, beta());
}

Real ProportionalAlgorithm::beta() const noexcept {
  return schedule_.cone().beta();
}

}  // namespace linesearch

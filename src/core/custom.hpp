// core/custom.hpp — cone fleets with ARBITRARY first-turn offsets.
//
// A proportional schedule is one particular choice of the robots' first
// positive turning magnitudes (the geometric s_i = r^i).  This module
// builds Definition-4-style fleets for ANY magnitude vector in
// [1, kappa^2): each robot is extended backward through the cone until
// its turning magnitude drops below 1 and started from the origin at
// speed 1/beta — exactly like A(n, f), minus the proportionality
// assumption.  It is the search space in which eval/discover's optimizer
// rediscovers the paper's schedule.
#pragma once

#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Trajectory of one robot whose first positive turning point in
/// [1, kappa^2) has magnitude `s`, in cone C_beta, covering both
/// half-lines past `extent`.  The robot leaves the origin at t = 0.
[[nodiscard]] Trajectory make_offset_robot(Real beta, Real s, Real extent);

/// Whole fleet from a magnitude vector (ascending order not required;
/// duplicates allowed but produce coinciding trajectories).  Requires
/// beta > 1, every magnitude in [1, kappa^2), extent > kappa^2.
[[nodiscard]] Fleet build_cone_fleet(Real beta,
                                     const std::vector<Real>& magnitudes,
                                     Real extent);

/// Analytic counterparts with an UNBOUNDED horizon: the same curves,
/// bit-identical on every shared waypoint, generated from O(1) state.
[[nodiscard]] Trajectory make_analytic_offset_robot(Real beta, Real s);
[[nodiscard]] Fleet build_analytic_cone_fleet(
    Real beta, const std::vector<Real>& magnitudes);

}  // namespace linesearch

// core/bounded.hpp — search with a known upper bound on the target
// distance (extension study).
//
// The paper's related work cites Bose, De Carufel and Durocher
// ("Revisiting the problem of searching on a line"): when the searcher
// knows an upper bound D on the target distance, slightly better
// competitive ratios are possible because no trajectory ever needs to
// overshoot +-D.  BoundedProportional realizes the natural bounded
// version of A(n, f): every robot follows its proportional zig-zag until
// its next turning point would leave [-D, D]; it then turns at the
// barrier +-D instead, crosses to the other barrier, and stops — at
// which point it has personally swept the entire arena.
//
// The measured effect (bench_bounded): the competitive ratio over
// [1, D] is at most the unbounded Theorem-1 value, with the gain
// concentrated on targets in the last expansion step before D.
#pragma once

#include "core/proportional.hpp"
#include "core/strategy.hpp"

namespace linesearch {

/// Bounded-arena variant of A(n, f).
class BoundedProportional final : public SearchStrategy {
 public:
  /// Requires f < n < 2f+2 and distance_bound > 1.
  BoundedProportional(int n, int f, Real distance_bound);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }

  /// The arena bound D the strategy was built for.
  [[nodiscard]] Real distance_bound() const noexcept { return bound_; }

  /// Materializes the bounded trajectories.  `extent` must be <= the
  /// distance bound (there is nothing beyond the barrier).
  [[nodiscard]] Fleet build_fleet(Real extent) const override;

  /// The same trajectories as closed-form barrier-mode analytic
  /// schedules.  A bounded arena has no unbounded horizon — the complete
  /// schedule (ladder + barrier sweeps) IS the full extent-D fleet, so
  /// no extent argument is needed.
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;

  /// The unbounded Theorem-1 value — an upper bound for the bounded
  /// variant too (clamping only ever helps).
  [[nodiscard]] std::optional<Real> theoretical_cr() const override;

 private:
  int n_;
  int f_;
  Real bound_;
  ProportionalSchedule schedule_;
};

}  // namespace linesearch

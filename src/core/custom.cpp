#include "core/custom.hpp"

#include <cmath>

#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {

Trajectory make_offset_robot(const Real beta, const Real s,
                             const Real extent) {
  const Real kappa = expansion_factor(beta);
  expects(s >= 1 && s < kappa * kappa,
          "make_offset_robot: magnitude must lie in [1, kappa^2)");
  expects(extent > kappa * kappa,
          "make_offset_robot: extent must exceed kappa^2");

  // Backward extension: predecessors of +s have magnitude s/kappa^m and
  // sign (-1)^m; the first with magnitude < 1 is the start turn.  Since
  // s < kappa^2, m is 1 or 2 (and exactly 1 when s < kappa).
  Real first = s;
  int m = 0;
  while (std::fabs(first) >= 1) {
    first = -first / kappa;
    ++m;
  }
  ensures(m >= 1 && m <= 2, "backward extension out of expected range");

  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  builder.move_to_at(first, beta * std::fabs(first));
  extend_zigzag(builder, beta, extent);
  return std::move(builder).build();
}

Fleet build_cone_fleet(const Real beta, const std::vector<Real>& magnitudes,
                       const Real extent) {
  expects(!magnitudes.empty(), "build_cone_fleet: need at least one robot");
  std::vector<Trajectory> robots;
  robots.reserve(magnitudes.size());
  for (const Real s : magnitudes) {
    robots.push_back(make_offset_robot(beta, s, extent));
  }
  return Fleet(std::move(robots));
}

Trajectory make_analytic_offset_robot(const Real beta, const Real s) {
  const Real kappa = expansion_factor(beta);
  expects(s >= 1 && s < kappa * kappa,
          "make_analytic_offset_robot: magnitude must lie in [1, kappa^2)");
  // Same backward extension as make_offset_robot, minus the extent.
  Real first = s;
  int m = 0;
  while (std::fabs(first) >= 1) {
    first = -first / kappa;
    ++m;
  }
  ensures(m >= 1 && m <= 2, "backward extension out of expected range");
  return make_analytic_origin_zigzag({.beta = beta, .first_turn = first});
}

Fleet build_analytic_cone_fleet(const Real beta,
                                const std::vector<Real>& magnitudes) {
  expects(!magnitudes.empty(),
          "build_analytic_cone_fleet: need at least one robot");
  std::vector<Trajectory> robots;
  robots.reserve(magnitudes.size());
  for (const Real s : magnitudes) {
    robots.push_back(make_analytic_offset_robot(beta, s));
  }
  return Fleet(std::move(robots));
}

}  // namespace linesearch

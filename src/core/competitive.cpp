#include "core/competitive.hpp"

#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

void require_regime(const int n, const int f) {
  expects(in_proportional_regime(n, f),
          "requires the proportional regime f < n < 2f+2 (with f >= 1)");
}

}  // namespace

Real schedule_cr(const int n, const int f, const Real beta) {
  require_regime(n, f);
  expects(beta > 1, "schedule_cr: beta must exceed 1");
  const Real exponent =
      static_cast<Real>(2 * f + 2) / static_cast<Real>(n);
  return std::pow(beta + 1, exponent) * std::pow(beta - 1, 1 - exponent) + 1;
}

Real optimal_beta(const int n, const int f) {
  require_regime(n, f);
  return static_cast<Real>(4 * f + 4) / static_cast<Real>(n) - 1;
}

Real algorithm_cr(const int n, const int f) {
  return schedule_cr(n, f, optimal_beta(n, f));
}

Real optimal_expansion_factor(const int n, const int f) {
  require_regime(n, f);
  // kappa = (beta*+1)/(beta*-1) with beta* = (4f+4)/n - 1 simplifies to
  // (2f+2)/(2f+2-n); the denominator is positive exactly in the regime.
  return static_cast<Real>(2 * f + 2) / static_cast<Real>(2 * f + 2 - n);
}

Real best_known_cr(const int n, const int f) {
  expects(f >= 0 && f < n, "best_known_cr: need 0 <= f < n");
  if (n >= 2 * f + 2) return 1;  // two-group split, Section 1
  return algorithm_cr(n, f);
}

Real cr_half_faulty(const int n) {
  expects(n >= 3 && n % 2 == 1, "cr_half_faulty: n must be odd and >= 3");
  const Real nn = static_cast<Real>(n);
  return std::pow(2 + 2 / nn, 1 + 1 / nn) * std::pow(2 / nn, -1 / nn) + 1;
}

Real corollary1_bound(const int n) {
  expects(n >= 2, "corollary1_bound: n must be >= 2");
  const Real nn = static_cast<Real>(n);
  return 3 + 4 * std::log(nn) / nn;
}

Real asymptotic_cr(const Real a) {
  expects(a > 1 && a < 2, "asymptotic_cr: a must lie in (1, 2)");
  return std::pow(4 / a, 2 / a) * std::pow(4 / a - 2, 1 - 2 / a) + 1;
}

}  // namespace linesearch

#include "core/strategy.hpp"

#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "util/error.hpp"

namespace linesearch {

Fleet SearchStrategy::build_unbounded_fleet() const {
  expects(false, "build_unbounded_fleet: strategy '" + name() +
                     "' does not support analytic (unbounded) schedules");
  // expects(false, ...) always throws; build_fleet keeps working.
  return build_fleet(2);  // unreachable
}

StrategyPtr make_optimal_strategy(const int n, const int f) {
  expects(f >= 0 && f < n, "make_optimal_strategy: need 0 <= f < n");
  if (n >= 2 * f + 2) return std::make_unique<TwoGroupSplit>(n, f);
  return std::make_unique<ProportionalAlgorithm>(n, f);
}

}  // namespace linesearch

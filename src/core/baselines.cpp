#include "core/baselines.hpp"

#include <memory>
#include <sstream>
#include <utility>

#include "core/competitive.hpp"
#include "sim/analytic.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

TwoGroupSplit::TwoGroupSplit(const int n, const int f) : n_(n), f_(f) {
  expects(f >= 0, "TwoGroupSplit: f must be >= 0");
  expects(n >= 2 * f + 2, "TwoGroupSplit requires n >= 2f+2");
}

std::string TwoGroupSplit::name() const {
  std::ostringstream out;
  out << "two-group split(" << n_ << "," << f_ << ")";
  return out.str();
}

Fleet TwoGroupSplit::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    // Robots 0..f sweep right, f+1..2f+1 sweep left; any extras alternate
    // so both groups keep at least f+1 members.
    const bool rightward =
        (i <= f_) || (i > 2 * f_ + 1 && (i % 2 == 0));
    TrajectoryBuilder builder;
    builder.start_at(0, 0);
    builder.move_to(rightward ? extent : -extent);
    robots.push_back(std::move(builder).build());
  }
  return Fleet(std::move(robots));
}

Fleet TwoGroupSplit::build_unbounded_fleet() const {
  const Trajectory right(std::make_shared<AnalyticRay>(+1));
  const Trajectory left(std::make_shared<AnalyticRay>(-1));
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const bool rightward =
        (i <= f_) || (i > 2 * f_ + 1 && (i % 2 == 0));
    robots.push_back(rightward ? right : left);
  }
  return Fleet(std::move(robots));
}

GroupDoubling::GroupDoubling(const int n, const int f) : n_(n), f_(f) {
  expects(f >= 0 && f < n, "GroupDoubling: need 0 <= f < n");
}

std::string GroupDoubling::name() const {
  std::ostringstream out;
  out << "group doubling(" << n_ << "," << f_ << ")";
  return out.str();
}

Fleet GroupDoubling::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    // beta = 3 realizes the classic doubling strategy (kappa = 2); the
    // whole pack shares one trajectory.
    robots.push_back(make_origin_zigzag({.beta = 3,
                                         .first_turn = 1,
                                         .min_coverage = extent}));
  }
  return Fleet(std::move(robots));
}

Fleet GroupDoubling::build_unbounded_fleet() const {
  // The whole pack shares ONE analytic backend: n views over the same
  // O(1) schedule state (and the same visit-cache slots downstream).
  const Trajectory shared =
      make_analytic_origin_zigzag({.beta = 3, .first_turn = 1});
  return Fleet(std::vector<Trajectory>(static_cast<std::size_t>(n_), shared));
}

ClassicCowPath::ClassicCowPath(const int n, const int f,
                               const bool mirrored)
    : n_(n), f_(f), mirrored_(mirrored) {
  expects(f >= 0 && f < n, "ClassicCowPath: need 0 <= f < n");
  expects(!mirrored || n >= 2, "ClassicCowPath: mirroring needs n >= 2");
}

std::string ClassicCowPath::name() const {
  std::ostringstream out;
  out << (mirrored_ ? "mirrored " : "") << "classic cow-path(" << n_ << ","
      << f_ << ")";
  return out.str();
}

std::optional<Real> ClassicCowPath::theoretical_cr() const {
  // The classic single-trajectory bound; with mirroring the worst case
  // depends on which group the adversary depletes — no closed form here.
  if (mirrored_) return std::nullopt;
  return Real{9};
}

Fleet ClassicCowPath::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  const auto build_one = [extent](const int direction) {
    TrajectoryBuilder builder;
    builder.start_at(0, 0);
    Real turn = direction;  // +-1, then doubling with alternating sign
    Real reach_positive = 0, reach_negative = 0;
    while (reach_positive < extent || reach_negative < extent) {
      builder.move_to(turn);
      if (turn > 0) {
        reach_positive = std::max(reach_positive, turn);
      } else {
        reach_negative = std::max(reach_negative, -turn);
      }
      turn *= -2;
    }
    builder.move_to(turn);  // final turn interior-izing leg (cf. zigzag)
    return std::move(builder).build();
  };

  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const int direction = (mirrored_ && i % 2 == 1) ? -1 : +1;
    robots.push_back(build_one(direction));
  }
  return Fleet(std::move(robots));
}

Fleet ClassicCowPath::build_unbounded_fleet() const {
  // Non-cone ladder: full speed to +-1 at t = 1, then turning points
  // -2, 4, -8, ... — `turn *= -2` in the dense builder, i.e. kappa = 2
  // with a unit-speed (not 1/beta) start leg.
  const auto build_one = [](const int direction) {
    AnalyticZigzagSpec spec;
    spec.head = {{0, 0}, {1, static_cast<Real>(direction)}};
    spec.kappa = 2;
    return Trajectory(std::make_shared<AnalyticZigzag>(std::move(spec)));
  };
  const Trajectory forward = build_one(+1);
  const Trajectory backward = mirrored_ ? build_one(-1) : forward;
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    robots.push_back((mirrored_ && i % 2 == 1) ? backward : forward);
  }
  return Fleet(std::move(robots));
}

StaggeredDoubling::StaggeredDoubling(const int n, const int f,
                                     const Real delay_step)
    : n_(n), f_(f), delay_(delay_step) {
  expects(f >= 0 && f < n, "StaggeredDoubling: need 0 <= f < n");
  expects(delay_step > 0, "StaggeredDoubling: delay_step must be positive");
}

std::string StaggeredDoubling::name() const {
  std::ostringstream out;
  out << "staggered doubling(" << n_ << "," << f_ << ",d=" << fixed(delay_, 1)
      << ")";
  return out.str();
}

Fleet StaggeredDoubling::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    TrajectoryBuilder builder;
    builder.start_at(0, 0);
    if (i > 0) builder.wait_until(delay_ * static_cast<Real>(i));
    Real turn = 1;
    Real reach_positive = 0, reach_negative = 0;
    while (reach_positive < extent || reach_negative < extent) {
      builder.move_to(turn);
      if (turn > 0) {
        reach_positive = std::max(reach_positive, turn);
      } else {
        reach_negative = std::max(reach_negative, -turn);
      }
      turn *= -2;
    }
    builder.move_to(turn);
    robots.push_back(std::move(builder).build());
  }
  return Fleet(std::move(robots));
}

Fleet StaggeredDoubling::build_unbounded_fleet() const {
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    AnalyticZigzagSpec spec;
    spec.head.push_back({0, 0});
    if (i > 0) spec.head.push_back({delay_ * static_cast<Real>(i), 0});
    // move_to(1) semantics: arrive at +1 one time unit after the wait.
    spec.head.push_back({spec.head.back().time + 1, 1});
    spec.kappa = 2;
    robots.emplace_back(std::make_shared<AnalyticZigzag>(std::move(spec)));
  }
  return Fleet(std::move(robots));
}

UniformOffsetZigzag::UniformOffsetZigzag(const int n, const int f)
    : n_(n), f_(f), beta_(optimal_beta(n, f)) {}

std::string UniformOffsetZigzag::name() const {
  std::ostringstream out;
  out << "uniform-offset(" << n_ << "," << f_ << ")";
  return out.str();
}

Fleet UniformOffsetZigzag::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  const Real kappa = expansion_factor(beta_);
  const Real span = kappa * kappa - 1;  // first turns live in [1, kappa^2)
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    // Arithmetic magnitudes, alternating initial sides — a "reasonable"
    // non-proportional schedule (the proportional one also spreads its
    // robots over both sides via the backward extension).
    const Real magnitude =
        1 + span * static_cast<Real>(i) / static_cast<Real>(n_);
    const Real first_turn = (i % 2 == 0) ? magnitude : -magnitude;
    robots.push_back(make_origin_zigzag(
        {.beta = beta_, .first_turn = first_turn, .min_coverage = extent}));
  }
  return Fleet(std::move(robots));
}

Fleet UniformOffsetZigzag::build_unbounded_fleet() const {
  const Real kappa = expansion_factor(beta_);
  const Real span = kappa * kappa - 1;
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const Real magnitude =
        1 + span * static_cast<Real>(i) / static_cast<Real>(n_);
    const Real first_turn = (i % 2 == 0) ? magnitude : -magnitude;
    robots.push_back(
        make_analytic_origin_zigzag({.beta = beta_, .first_turn = first_turn}));
  }
  return Fleet(std::move(robots));
}

}  // namespace linesearch

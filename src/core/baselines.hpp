// core/baselines.hpp — comparison strategies.
//
// * TwoGroupSplit — the trivial optimum for n >= 2f+2 (Section 1): two
//   groups of >= f+1 robots march in opposite directions; CR = 1.
// * GroupDoubling — all n robots move together following the classic
//   cow-path doubling strategy (expansion factor 2, i.e. beta = 3).
//   Identical trajectories mean the (f+1)-st distinct visit coincides
//   with the first, so CR = 9 for every f < n — the paper's remark that
//   doubling "in a pack" already achieves 9.
// * UniformOffsetZigzag — ablation foil: same cone as A(n,f) but the
//   robots' first turning points are spread arithmetically instead of
//   geometrically, breaking Definition 2's proportionality.  Its measured
//   CR exceeds Theorem 1's value (bench A2).
#pragma once

#include "core/strategy.hpp"

namespace linesearch {

/// CR-1 strategy for n >= 2f+2: robots 0..f sweep right, f+1..2f+1 sweep
/// left, extras alternate.
class TwoGroupSplit final : public SearchStrategy {
 public:
  /// Requires n >= 2f+2, f >= 0.
  TwoGroupSplit(int n, int f);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }
  [[nodiscard]] Fleet build_fleet(Real extent) const override;
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;
  [[nodiscard]] std::optional<Real> theoretical_cr() const override {
    return Real{1};
  }

 private:
  int n_;
  int f_;
};

/// All robots together on one doubling zig-zag (beta = 3, first turn +1).
class GroupDoubling final : public SearchStrategy {
 public:
  /// Requires 0 <= f < n.
  GroupDoubling(int n, int f);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }
  [[nodiscard]] Fleet build_fleet(Real extent) const override;
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;
  [[nodiscard]] std::optional<Real> theoretical_cr() const override {
    return Real{9};
  }

 private:
  int n_;
  int f_;
};

/// The CLASSIC cow-path doubling trajectory (Beck/Bellman): full speed
/// from the origin to +1, then turning points -2, 4, -8, ... — unlike
/// the cone-based doubling (GroupDoubling), the first leg is not slowed
/// to 1/beta, so the trajectory does NOT live in any cone; the turn at
/// x_k happens at time 3|x_k| - 2.  Its competitive ratio is still 9
/// (approached from below: the ratio just past x_k is 9 - 2/|x_k|).
/// All n robots move together; with `mirrored`, half start leftward,
/// halving the worst case on one side at the cost of the other group's
/// size.  A non-cone stress test for every generic analysis path.
class ClassicCowPath final : public SearchStrategy {
 public:
  /// Requires 0 <= f < n; mirrored additionally requires n >= 2.
  ClassicCowPath(int n, int f, bool mirrored = false);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }
  [[nodiscard]] Fleet build_fleet(Real extent) const override;
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;
  [[nodiscard]] std::optional<Real> theoretical_cr() const override;

  [[nodiscard]] bool mirrored() const noexcept { return mirrored_; }

 private:
  int n_;
  int f_;
  bool mirrored_;
};

/// The intro's naive "same expansion factor, start at different times"
/// family: robot i waits i*delay_step time units at the origin, then
/// runs the classic doubling trajectory.  Linear time stagger delays the
/// (f+1)-st visit of EVERY point by f*delay_step, so its ratio blows up
/// near the minimum distance — the measured contrast motivates the
/// paper's geometric (proportional) stagger, where the shifts scale with
/// the turning points themselves.
class StaggeredDoubling final : public SearchStrategy {
 public:
  /// Requires 0 <= f < n and delay_step > 0.
  StaggeredDoubling(int n, int f, Real delay_step = 2);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }
  [[nodiscard]] Fleet build_fleet(Real extent) const override;
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;

  [[nodiscard]] Real delay_step() const noexcept { return delay_; }

 private:
  int n_;
  int f_;
  Real delay_;
};

/// Same cone as A(n,f) but first turning points of magnitude
/// 1 + i*(kappa^2-1)/n on alternating sides — arithmetic instead of
/// geometric interleaving.  No proven CR; evaluated empirically.
class UniformOffsetZigzag final : public SearchStrategy {
 public:
  /// Requires f < n < 2f+2 (same regime as A(n,f), for comparability).
  UniformOffsetZigzag(int n, int f);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }
  [[nodiscard]] Fleet build_fleet(Real extent) const override;
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;

  [[nodiscard]] Real beta() const noexcept { return beta_; }

 private:
  int n_;
  int f_;
  Real beta_;
};

}  // namespace linesearch

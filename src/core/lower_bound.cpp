#include "core/lower_bound.hpp"

#include <cmath>

#include "analysis/roots.hpp"
#include "analysis/series.hpp"
#include "util/error.hpp"

namespace linesearch {

Real theorem2_residual(const int n, const Real alpha) {
  expects(n >= 1, "theorem2_residual: n must be >= 1");
  expects(alpha > 3, "theorem2_residual: alpha must exceed 3");
  const Real nn = static_cast<Real>(n);
  return nn * std::log(alpha - 1) + std::log(alpha - 3) -
         (nn + 1) * std::log(Real{2});
}

Real theorem2_alpha(const int n) {
  expects(n >= 1, "theorem2_alpha: n must be >= 1");
  // Residual at 9: (2n-1) ln 2 + ln 6 > 0; residual -> -inf as alpha->3+.
  const RootResult root = brent(
      [n](const Real alpha) { return theorem2_residual(n, alpha); },
      Real{3} + Real{1e-15L}, Real{9});
  ensures(root.x > 3 && root.x <= 9, "theorem2_alpha: root out of range");
  return root.x;
}

Real corollary2_bound(const int n) {
  expects(n >= 2, "corollary2_bound: n must be >= 2");
  const Real nn = static_cast<Real>(n);
  return 3 + 2 * std::log(nn) / nn - 2 * std::log(std::log(nn)) / nn;
}

Real best_lower_bound(const int n, const int f) {
  expects(f >= 0 && f < n, "best_lower_bound: need 0 <= f < n");
  if (n >= 2 * f + 2) return 1;
  if (n == f + 1) return 9;
  return theorem2_alpha(n);
}

Real theorem2_placement(const int n, const Real alpha, const int i) {
  expects(n >= 1, "theorem2_placement: n must be >= 1");
  expects(alpha > 3, "theorem2_placement: alpha must exceed 3");
  expects(i >= 0 && i < n, "theorem2_placement: index out of range");
  return ipow(Real{2}, i + 1) / (ipow(alpha - 1, i) * (alpha - 3));
}

}  // namespace linesearch

#include "core/bounded.hpp"

#include <cmath>
#include <memory>
#include <sstream>
#include <utility>

#include "core/competitive.hpp"
#include "sim/analytic.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

BoundedProportional::BoundedProportional(const int n, const int f,
                                         const Real distance_bound)
    : n_(n),
      f_(f),
      bound_(distance_bound),
      schedule_(n, optimal_beta(n, f)) {
  expects(distance_bound > 1,
          "BoundedProportional: distance bound must exceed 1");
}

std::string BoundedProportional::name() const {
  std::ostringstream out;
  out << "bounded A(" << n_ << "," << f_ << "), D=" << fixed(bound_, 2);
  return out.str();
}

std::optional<Real> BoundedProportional::theoretical_cr() const {
  return algorithm_cr(n_, f_);
}

Fleet BoundedProportional::build_fleet(const Real extent) const {
  expects(extent > 1, "build_fleet: extent must exceed 1");
  expects(extent <= bound_ * (1 + tol::kRelative),
          "build_fleet: extent beyond the arena bound D");

  const Real kappa = schedule_.expansion_factor();
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    TrajectoryBuilder builder;
    builder.start_at(0, 0);
    const Real first = schedule_.initial_turn(i);
    builder.move_to_at(first, schedule_.cone().boundary_time(first));

    // Zig-zag until the NEXT turning point would overshoot the barrier;
    // then sweep barrier-to-barrier and stop (everything is now covered
    // by this robot personally).
    Real turn = first;
    while (std::fabs(turn * kappa) < bound_) {
      turn = -turn * kappa;
      builder.move_to(turn);
    }
    const Real barrier = (turn > 0) ? -bound_ : bound_;
    builder.move_to(barrier);
    builder.move_to(-barrier);
    robots.push_back(std::move(builder).build());
  }
  return Fleet(std::move(robots));
}

Fleet BoundedProportional::build_unbounded_fleet() const {
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    const Real first = schedule_.initial_turn(i);
    AnalyticZigzagSpec spec;
    spec.head = {{0, 0}, {schedule_.cone().boundary_time(first), first}};
    spec.kappa = schedule_.expansion_factor();
    spec.barrier = bound_;
    robots.emplace_back(std::make_shared<AnalyticZigzag>(std::move(spec)));
  }
  return Fleet(std::move(robots));
}

}  // namespace linesearch

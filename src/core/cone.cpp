#include "core/cone.hpp"

#include <cmath>
#include <sstream>

#include "sim/zigzag.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

Cone::Cone(const Real beta)
    : beta_(beta), kappa_(linesearch::expansion_factor(beta)) {
  // The free function validates beta > 1.
}

Real Cone::boundary_time(const Real x) const noexcept {
  return beta_ * std::fabs(x);
}

bool Cone::contains(const Real x, const Real t,
                    const Real relative_slack) const noexcept {
  const Real boundary = boundary_time(x);
  return t >= boundary * (1 - relative_slack) - tol::kAbsolute;
}

Cone Cone::from_expansion_factor(const Real kappa) {
  return Cone(beta_for_expansion(kappa));
}

std::string Cone::describe() const {
  std::ostringstream out;
  out << "C_beta(beta=" << fixed(beta_, 4) << ", kappa=" << fixed(kappa_, 4)
      << ")";
  return out.str();
}

}  // namespace linesearch

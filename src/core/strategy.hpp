// core/strategy.hpp — the public strategy interface.
//
// A SearchStrategy is a *factory of fleets*: given a coverage extent it
// materializes the trajectories of its robots so that every target with
// 1 <= |x| <= extent is eventually visited by at least fault_budget()+1
// distinct robots.  Everything downstream — the exact evaluator, the
// event engine, the adversary, the benches — works on the produced Fleet,
// so user-defined strategies plug in with no other integration.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Abstract parallel search strategy for n robots, up to f faulty.
class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;

  /// Human-readable name ("A(5,2)", "two-group split", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of robots n.
  [[nodiscard]] virtual int robot_count() const = 0;

  /// Fault budget f the strategy is designed for (f < n).
  [[nodiscard]] virtual int fault_budget() const = 0;

  /// Materialize trajectories guaranteeing (f+1)-fold distinct coverage
  /// of 1 <= |x| <= extent.  Requires extent > 1.  This is the dense
  /// compatibility path: it eagerly builds O(log extent) waypoints per
  /// robot and remains the independent reference the analytic backends
  /// are differentially tested against.
  [[nodiscard]] virtual Fleet build_fleet(Real extent) const = 0;

  /// True when the strategy can emit closed-form (analytic) schedules
  /// with an unbounded horizon via build_unbounded_fleet().
  [[nodiscard]] virtual bool supports_unbounded() const { return false; }

  /// The same fleet as build_fleet but backed by analytic schedule
  /// sources with an UNBOUNDED horizon: coverage extent becomes a
  /// query-time window, O(1) state per robot, and no under-built-fleet
  /// failures.  Bit-identical to the dense fleet on every shared
  /// waypoint and every visit query (the verify subsystem enforces
  /// this).  Throws PreconditionError unless supports_unbounded().
  [[nodiscard]] virtual Fleet build_unbounded_fleet() const;

  /// Proven competitive ratio, if the strategy has one.
  [[nodiscard]] virtual std::optional<Real> theoretical_cr() const {
    return std::nullopt;
  }
};

/// Owning handle used by factories.
using StrategyPtr = std::unique_ptr<SearchStrategy>;

/// The paper's best strategy for any (n, f) with 0 <= f < n:
/// the two-group split when n >= 2f+2, otherwise the proportional
/// schedule algorithm A(n, f).
[[nodiscard]] StrategyPtr make_optimal_strategy(int n, int f);

}  // namespace linesearch

// core/cone.hpp — the cone C_beta of Section 2.
//
// For a fixed beta > 1, C_beta is the region of the space/time half-plane
// above both lines t = beta*x (x >= 0) and t = -beta*x (x < 0).  All of
// the paper's proportional schedules confine every robot's zig-zag to a
// shared cone; the cone fixes the expansion factor
// kappa = (beta+1)/(beta-1) of every robot (Lemma 1).
#pragma once

#include <string>

#include "util/real.hpp"

namespace linesearch {

/// Value type describing one cone C_beta.
class Cone {
 public:
  /// Requires beta > 1 (beta == 1 would be the light-cone of the robots
  /// themselves; no zig-zag fits inside).
  explicit Cone(Real beta);

  [[nodiscard]] Real beta() const noexcept { return beta_; }

  /// Expansion factor kappa = (beta+1)/(beta-1) (Lemma 1).
  [[nodiscard]] Real expansion_factor() const noexcept { return kappa_; }

  /// Time at which the boundary passes position x: beta * |x|.
  [[nodiscard]] Real boundary_time(Real x) const noexcept;

  /// True if the space/time point (x, t) lies inside or on the cone.
  [[nodiscard]] bool contains(Real x, Real t,
                              Real relative_slack = tol::kRelative) const
      noexcept;

  /// The cone whose zig-zags have expansion factor kappa (inverse map).
  [[nodiscard]] static Cone from_expansion_factor(Real kappa);

  /// e.g. "C_beta(beta=1.667, kappa=4)".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Cone&, const Cone&) = default;

 private:
  Real beta_;
  Real kappa_;
};

}  // namespace linesearch

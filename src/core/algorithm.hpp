// core/algorithm.hpp — the proportional schedule algorithm A(n, f)
// (Definition 4 + Theorem 1), packaged as a SearchStrategy.
//
// A(n, f) runs the proportional schedule S_beta(n) with the optimal cone
// beta* = (4f+4)/n - 1 and tau_0 = 1 (targets are assumed at distance at
// least 1, the paper's choice over an additive constant).  A custom-beta
// variant exposes the whole S_beta(n) family for the beta ablation
// (bench A1).
#pragma once

#include "core/proportional.hpp"
#include "core/strategy.hpp"

namespace linesearch {

/// A(n, f), or with an explicit beta, the schedule strategy S_beta(n)
/// used with fault budget f.
class ProportionalAlgorithm final : public SearchStrategy {
 public:
  /// The paper's A(n, f): optimal beta.  Requires f < n < 2f+2.
  ProportionalAlgorithm(int n, int f);

  /// S_beta(n) with explicit cone parameter (ablations); requires
  /// beta > 1 and f < n < 2f+2.
  ProportionalAlgorithm(int n, int f, Real beta);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] int robot_count() const override { return n_; }
  [[nodiscard]] int fault_budget() const override { return f_; }
  [[nodiscard]] Fleet build_fleet(Real extent) const override;
  [[nodiscard]] bool supports_unbounded() const override { return true; }
  [[nodiscard]] Fleet build_unbounded_fleet() const override;
  [[nodiscard]] std::optional<Real> theoretical_cr() const override;

  /// The underlying schedule generator.
  [[nodiscard]] const ProportionalSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] Real beta() const noexcept;
  [[nodiscard]] bool uses_optimal_beta() const noexcept {
    return optimal_beta_;
  }

 private:
  int n_;
  int f_;
  bool optimal_beta_;
  ProportionalSchedule schedule_;
};

}  // namespace linesearch

#include "core/proportional.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "analysis/series.hpp"
#include "sim/analytic.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {

Real proportionality_ratio(const int n, const Real beta) {
  expects(n >= 1, "proportionality_ratio: n must be >= 1");
  expects(beta > 1, "proportionality_ratio: beta must exceed 1");
  return std::pow((beta + 1) / (beta - 1), Real{2} / static_cast<Real>(n));
}

ProportionalSchedule::ProportionalSchedule(const int n, const Real beta,
                                           const Real tau0)
    : n_(n),
      cone_(beta),
      tau0_(tau0),
      r_(linesearch::proportionality_ratio(n, beta)) {
  expects(tau0 > 0, "proportional schedule: tau0 must be positive");
}

Real ProportionalSchedule::turning_point(const int j) const {
  return tau0_ * ipow(r_, j);
}

Real ProportionalSchedule::turning_time(const int j) const {
  return cone_.beta() * turning_point(j);
}

RobotId ProportionalSchedule::robot_of(const int j) const noexcept {
  const int m = ((j % n_) + n_) % n_;
  return static_cast<RobotId>(m);
}

Real ProportionalSchedule::initial_turn(const int i) const {
  expects(i >= 0 && i < n_, "initial_turn: robot index out of range");
  if (i == 0) return tau0_;  // a_0 heads straight to tau_0 (Definition 4)
  // Backward turning points of robot i have magnitude tau0 * r^(i - m*n/2)
  // and sign (-1)^m.  Magnitude < tau0 iff 2i - m*n < 0, so the first such
  // m is floor(2i/n) + 1 — exact in integers, no rounding hazard at the
  // 2i == m*n boundary (where the magnitude equals tau0 exactly).
  const int m = (2 * i) / n_ + 1;
  // magnitude = tau0 * r^i / kappa^m, kappa = r^(n/2); computed via the
  // half-exponent grid r^((2i - m*n)/2) to stay in one formula.
  const Real magnitude =
      tau0_ * std::pow(r_, static_cast<Real>(2 * i - m * n_) / 2);
  ensures(magnitude < tau0_, "backward extension did not shrink below tau0");
  return (m % 2 == 0) ? magnitude : -magnitude;
}

Real ProportionalSchedule::lemma4_detection_time(const int f) const {
  expects(f >= 0, "lemma4_detection_time: f must be >= 0");
  const Real beta = cone_.beta();
  // T_{f+1} = tau0 * (r^(f+1) * (beta - 1) + 1); equivalent to the
  // (beta+1)^((2f+2)/n) (beta-1)^(1-(2f+2)/n) + 1 form in the paper.
  return tau0_ * (ipow(r_, f + 1) * (beta - 1) + 1);
}

Trajectory ProportionalSchedule::robot_trajectory(const int i,
                                                  const Real extent) const {
  expects(extent > tau0_, "robot_trajectory: extent must exceed tau0");
  const Real first = initial_turn(i);
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  builder.move_to_at(first, cone_.boundary_time(first));
  extend_zigzag(builder, cone_.beta(), extent);
  return std::move(builder).build();
}

Fleet ProportionalSchedule::build_fleet(const Real extent) const {
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    robots.push_back(robot_trajectory(i, extent));
  }
  return Fleet(std::move(robots));
}

Trajectory ProportionalSchedule::analytic_robot_trajectory(const int i) const {
  const Real first = initial_turn(i);
  AnalyticZigzagSpec spec;
  spec.head = {{0, 0}, {cone_.boundary_time(first), first}};
  spec.kappa = cone_.expansion_factor();
  return Trajectory(std::make_shared<AnalyticZigzag>(std::move(spec)));
}

Fleet ProportionalSchedule::build_unbounded_fleet() const {
  std::vector<Trajectory> robots;
  robots.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    robots.push_back(analytic_robot_trajectory(i));
  }
  return Fleet(std::move(robots));
}

ScheduleCheck check_schedule(const Fleet& fleet, const int n,
                             const Real beta, const Real ignore_below) {
  expects(n >= 1, "check_schedule: n must be >= 1");
  expects(beta > 1, "check_schedule: beta must exceed 1");
  expects(ignore_below > 0, "check_schedule: ignore_below must be positive");

  ScheduleCheck check;
  const Real r = proportionality_ratio(n, beta);

  // (1) Cone containment of every robot.
  check.within_cone = true;
  for (const Trajectory& t : fleet.robots()) {
    if (!within_cone(t, beta)) check.within_cone = false;
  }

  // (2) Unit speed on every leg after each robot's first turning point.
  check.unit_speed_legs = true;
  for (const Trajectory& t : fleet.robots()) {
    const auto& wps = t.waypoints();
    for (std::size_t s = 1; s + 1 < wps.size(); ++s) {  // skip prefix leg 0
      const Real speed = std::fabs(wps[s + 1].position - wps[s].position) /
                         (wps[s + 1].time - wps[s].time);
      if (!approx_equal(speed, 1)) check.unit_speed_legs = false;
    }
  }

  // (3) Proportionality of the global positive turning sequence at or
  // above ignore_below, re-derived from raw waypoints.  (4) Interleaving:
  // every n consecutive turns belong to n distinct robots.
  struct Turn {
    Real position;
    RobotId robot;
  };
  std::vector<Turn> turns;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    for (const Waypoint& w : fleet.robot(id).turning_waypoints()) {
      if (w.position >= ignore_below * (1 - tol::kRelative)) {
        turns.push_back({w.position, id});
      }
    }
  }
  std::sort(turns.begin(), turns.end(),
            [](const Turn& a, const Turn& b) { return a.position < b.position; });

  // Trajectories stop at different magnitudes once they have covered the
  // requested extent, so the global grid has holes in its tail.  Restrict
  // both the proportionality and the interleaving checks to the window
  // every robot's positive turning sequence reaches.
  Real common_reach = kInfinity;
  for (const Trajectory& t : fleet.robots()) {
    Real reach = 0;
    for (const Waypoint& w : t.turning_waypoints()) {
      reach = std::max(reach, w.position);
    }
    common_reach = std::min(common_reach, reach);
  }
  std::vector<Turn> window;
  for (const Turn& turn : turns) {
    if (turn.position <= common_reach * (1 + tol::kRelative)) {
      window.push_back(turn);
    }
  }

  check.proportional = window.size() >= 2;
  for (std::size_t i = 0; i + 1 < window.size(); ++i) {
    const Real ratio = window[i + 1].position / window[i].position;
    const Real error = std::fabs(ratio - r) / r;
    check.max_ratio_error = std::max(check.max_ratio_error, error);
    if (error > 1e-6L) check.proportional = false;
  }

  check.robots_interleaved = true;
  const std::size_t span = static_cast<std::size_t>(n);
  if (window.size() < span) {
    check.robots_interleaved = false;
  } else {
    for (std::size_t i = 0; i + span <= window.size(); ++i) {
      std::vector<bool> seen(fleet.size(), false);
      for (std::size_t k = 0; k < span; ++k) {
        const RobotId id = window[i + k].robot;
        if (seen[id]) check.robots_interleaved = false;
        seen[id] = true;
      }
    }
  }
  return check;
}

}  // namespace linesearch

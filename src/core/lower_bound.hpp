// core/lower_bound.hpp — lower bounds on the competitive ratio (Section 4).
//
// Theorem 2: any algorithm for n < 2f+2 robots (f faulty) has CR >= alpha
// for every alpha > 3 with (alpha-1)^n (alpha-3) <= 2^(n+1).  The best
// such bound is the root of the equality, which we solve in the log
// domain (the residual n*ln(alpha-1) + ln(alpha-3) - (n+1)*ln 2 is
// strictly increasing on (3, inf)).
//
// Corollary 2: asymptotically CR >= 3 + 2 ln n / n - 2 ln ln n / n.
//
// For n = f+1 the paper's stronger observation applies: any CR < 9 would
// beat the optimal single-robot cow-path bound of 9 [Beck-Newman 1970],
// since the single reliable robot may be the one whose trajectory you
// follow.  best_lower_bound combines all three regimes.
#pragma once

#include "util/real.hpp"

namespace linesearch {

/// Log-domain residual of Theorem 2's equality at `alpha` (> 3):
/// n*ln(alpha-1) + ln(alpha-3) - (n+1)*ln 2.  Negative below the root,
/// positive above it.
[[nodiscard]] Real theorem2_residual(int n, Real alpha);

/// The root alpha(n) of (alpha-1)^n (alpha-3) = 2^(n+1) on (3, 9];
/// i.e. the strongest Theorem-2 bound for n robots.  Requires n >= 1.
[[nodiscard]] Real theorem2_alpha(int n);

/// Corollary 2's closed-form asymptotic bound
/// 3 + 2 ln n / n - 2 ln ln n / n  (requires n >= 2 so ln ln n exists;
/// the expression is only meaningful for larger n).
[[nodiscard]] Real corollary2_bound(int n);

/// Best lower bound proved by the paper for (n, f) with 0 <= f < n:
///  * 1 when n >= 2f+2 (trivially tight),
///  * 9 when n == f+1 (single-robot argument),
///  * theorem2_alpha(n) otherwise.
[[nodiscard]] Real best_lower_bound(int n, int f);

/// The adversarial target placements of Theorem 2's proof:
/// x_i = 2^(i+1) / ((alpha-1)^i (alpha-3)) for i = 0..n-1, satisfying
/// x_i = (alpha-1)/2 * x_{i+1} (Eq. 16) and
/// x_0 > x_1 > ... > x_{n-1} > 1 (Eq. 20) whenever
/// (alpha-1)^n (alpha-3) <= 2^(n+1) and alpha > 3.
/// Declared here because it is pure formula; the game logic that uses it
/// lives in adversary/.
[[nodiscard]] Real theorem2_placement(int n, Real alpha, int i);

}  // namespace linesearch

// core/proportional.hpp — proportional schedules S_beta(n) (Section 3).
//
// A proportional schedule assigns all n robots zig-zags in one cone C_beta
// such that the global sequence of positive turning points
// tau_0 < tau_1 < ... has constant ratio (Definition 2):
//     tau_{i+1} / tau_i = r = ((beta+1)/(beta-1))^(2/n)      (Lemma 2)
// with turning point tau_i belonging to robot (i mod n), visited at time
// t_i = beta * tau_i, and per-robot expansion factor kappa = r^(n/2).
//
// This class generates the schedule exactly from these invariants (tests
// independently re-derive all of them from the raw trajectories) and
// implements Definition 4's conversion into the runnable algorithm
// A(n, f): each robot is extended backward through turning points of
// magnitude r^(i - m*n/2) until the magnitude drops below tau_0, then
// started from the origin at speed 1/beta so that it reaches that first
// turning point exactly on the cone boundary.
#pragma once

#include <vector>

#include "core/cone.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Generator for the proportional schedule S_beta(n), anchored at
/// tau_0 (robot 0's reference turning point, the paper uses tau_0 = 1).
class ProportionalSchedule {
 public:
  /// Requires n >= 1, beta > 1, tau0 > 0.
  ProportionalSchedule(int n, Real beta, Real tau0 = 1);

  [[nodiscard]] int robot_count() const noexcept { return n_; }
  [[nodiscard]] const Cone& cone() const noexcept { return cone_; }
  [[nodiscard]] Real tau0() const noexcept { return tau0_; }

  /// Proportionality ratio r = ((beta+1)/(beta-1))^(2/n)  (Lemma 2).
  [[nodiscard]] Real proportionality_ratio() const noexcept { return r_; }

  /// Per-robot expansion factor kappa = (beta+1)/(beta-1) = r^(n/2).
  [[nodiscard]] Real expansion_factor() const noexcept {
    return cone_.expansion_factor();
  }

  /// j-th positive turning point tau0 * r^j (j may be negative).
  [[nodiscard]] Real turning_point(int j) const;

  /// Visit time of the j-th positive turning point: beta * tau_j.
  [[nodiscard]] Real turning_time(int j) const;

  /// Robot owning the j-th positive turning point: (j mod n).
  [[nodiscard]] RobotId robot_of(int j) const noexcept;

  /// Definition 4: the signed first turning point tau'_i of robot i with
  /// magnitude strictly below tau0 (for i == 0, tau0 itself: robot a_0
  /// heads straight to its reference point).  The backward step count is
  /// m = floor(2i/n) + 1, decided in exact integer arithmetic so the
  /// i == n/2 boundary case (magnitude exactly tau0) is never
  /// misclassified by rounding.
  [[nodiscard]] Real initial_turn(int i) const;

  /// Closed-form time at which the (f+1)-st distinct robot visits tau_0
  /// (Lemma 4):  tau0 * ((beta+1)^((2f+2)/n) (beta-1)^(1-(2f+2)/n) + 1).
  /// Requires 0 <= f < n... the derivation needs robots a_1..a_{f+1} to
  /// exist modulo wrap-around, which holds for all f < n.
  [[nodiscard]] Real lemma4_detection_time(int f) const;

  /// The full trajectory of robot i per Definition 4 (origin prefix at
  /// speed 1/beta, then unit-speed zig-zag) extended until both
  /// half-lines are covered past `extent`.
  [[nodiscard]] Trajectory robot_trajectory(int i, Real extent) const;

  /// Robot i as a closed-form analytic schedule with an UNBOUNDED
  /// horizon: the same Definition-4 curve as robot_trajectory —
  /// bit-identical on every shared waypoint — but generated on demand
  /// from O(1) state (start leg + ladder seed + kappa).
  [[nodiscard]] Trajectory analytic_robot_trajectory(int i) const;

  /// The whole algorithm-A(n,f) fleet covering |x| <= extent.
  [[nodiscard]] Fleet build_fleet(Real extent) const;

  /// The analytic A(n,f) fleet: unbounded horizon, coverage extent is a
  /// query-time window.
  [[nodiscard]] Fleet build_unbounded_fleet() const;

 private:
  int n_;
  Cone cone_;
  Real tau0_;
  Real r_;
};

/// Free-function form of Lemma 2's ratio, usable without a schedule
/// object:  r(n, beta) = ((beta+1)/(beta-1))^(2/n).
[[nodiscard]] Real proportionality_ratio(int n, Real beta);

/// Verification report for a schedule materialized as trajectories; all
/// properties are re-derived from raw waypoints, independent of the
/// generator.  Used by tests and the `verify`-style example.
struct ScheduleCheck {
  bool within_cone = false;        ///< every waypoint inside C_beta
  bool unit_speed_legs = false;    ///< all post-prefix legs at speed ~1
  bool proportional = false;       ///< positive turn ratios all equal r
  bool robots_interleaved = false; ///< consecutive turns belong to
                                   ///< distinct robots, cycling mod n
  Real max_ratio_error = 0;        ///< worst |ratio - r| / r observed

  [[nodiscard]] bool all_ok() const noexcept {
    return within_cone && unit_speed_legs && proportional &&
           robots_interleaved;
  }
};

/// Re-derive schedule properties from the materialized fleet.
/// `ignore_below` excludes the origin prefixes (turns of magnitude below
/// tau0 may not be part of the interleaving pattern... they are, but the
/// very first prefix leg is not unit speed) from the speed check.
[[nodiscard]] ScheduleCheck check_schedule(const Fleet& fleet, int n,
                                           Real beta, Real ignore_below);

}  // namespace linesearch

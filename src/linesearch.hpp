// linesearch.hpp — the umbrella header: one include for the whole
// public API.  Fine-grained headers remain available for faster builds;
// this exists for examples, quick experiments and downstream users who
// prefer convenience over compile time.
#pragma once

// util — numerics, errors, formatting
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/format.hpp"
#include "util/real.hpp"
#include "util/table.hpp"

// analysis — solvers, optimization, statistics
#include "analysis/convergence.hpp"
#include "analysis/grid.hpp"
#include "analysis/optimize.hpp"
#include "analysis/roots.hpp"
#include "analysis/series.hpp"
#include "analysis/stats.hpp"

// sim — the exact trajectory substrate
#include "sim/engine.hpp"
#include "sim/events.hpp"
#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "sim/recorder.hpp"
#include "sim/serialize.hpp"
#include "sim/svg.hpp"
#include "sim/trajectory.hpp"
#include "sim/zigzag.hpp"

// core — the paper's algorithms and bounds
#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/bounded.hpp"
#include "core/competitive.hpp"
#include "core/cone.hpp"
#include "core/custom.hpp"
#include "core/lower_bound.hpp"
#include "core/proportional.hpp"
#include "core/strategy.hpp"

// adversary — Theorem 2 as an executable opponent
#include "adversary/classify.hpp"
#include "adversary/game.hpp"
#include "adversary/placements.hpp"

// runtime — robots as online programs
#include "runtime/controller.hpp"
#include "runtime/world.hpp"

// eval — measurement, certification, experiments
#include "eval/cr_eval.hpp"
#include "eval/discover.hpp"
#include "eval/exact.hpp"
#include "eval/group_search.hpp"
#include "eval/montecarlo.hpp"
#include "eval/profile.hpp"
#include "eval/randomized.hpp"
#include "eval/turn_cost.hpp"
#include "eval/validation.hpp"

// star — the m-ray generalization
#include "star/search.hpp"
#include "star/trajectory.hpp"

#include "eval/turn_cost.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"
#include "util/error.hpp"

namespace linesearch {

Real turn_cost_first_visit(const Trajectory& robot, const Real x,
                           const Real cost_per_turn) {
  expects(cost_per_turn >= 0, "turn cost must be non-negative");
  const std::optional<Real> visit = robot.first_visit_time(x);
  if (!visit) return kInfinity;
  int turns_before = 0;
  for (const Waypoint& w : robot.turning_waypoints()) {
    if (w.time < *visit) ++turns_before;
  }
  return *visit + cost_per_turn * static_cast<Real>(turns_before);
}

Real turn_cost_detection(const Fleet& fleet, const Real x, const int faults,
                         const Real cost_per_turn) {
  expects(faults >= 0, "turn_cost_detection: faults must be >= 0");
  const auto k = static_cast<std::size_t>(faults);
  if (k >= fleet.size()) return kInfinity;
  std::vector<Real> times;
  times.reserve(fleet.size());
  for (const Trajectory& robot : fleet.robots()) {
    times.push_back(turn_cost_first_visit(robot, x, cost_per_turn));
  }
  return kth_smallest(std::move(times), k);
}

CrEvalResult measure_cr_with_turn_cost(const Fleet& fleet, const int faults,
                                       const Real cost_per_turn,
                                       const CrEvalOptions& options) {
  expects(cost_per_turn >= 0, "turn cost must be non-negative");
  expects(options.window_lo > 0 && options.window_hi > options.window_lo,
          "measure_cr_with_turn_cost: bad window");

  // Reuse measure_cr's probe placement by probing the same positions:
  // turning magnitudes (right limits), window endpoints, interior
  // samples.  The probe set is reconstructed here because the effective
  // time is not a Fleet query.
  CrEvalResult result;
  for (const int side : {+1, -1}) {
    std::vector<Real> magnitudes = fleet.turning_positions_in(
        side, options.window_lo * (1 - tol::kRelative), options.window_hi);
    magnitudes.push_back(options.window_lo);
    magnitudes.push_back(options.window_hi);
    std::sort(magnitudes.begin(), magnitudes.end());

    std::vector<Real> probes;
    for (std::size_t i = 0; i < magnitudes.size(); ++i) {
      probes.push_back(magnitudes[i]);
      const Real just_past = magnitudes[i] * (1 + tol::kLimitProbe);
      if (just_past <= options.window_hi) probes.push_back(just_past);
      if (i + 1 < magnitudes.size()) {
        for (int s = 1; s <= options.interior_samples; ++s) {
          probes.push_back(magnitudes[i] +
                           (magnitudes[i + 1] - magnitudes[i]) *
                               static_cast<Real>(s) /
                               static_cast<Real>(options.interior_samples + 1));
        }
      }
    }

    Real best = 0, best_x = 0;
    for (const Real magnitude : probes) {
      const Real x = static_cast<Real>(side) * magnitude;
      const Real time = turn_cost_detection(fleet, x, faults, cost_per_turn);
      ++result.probes;
      if (std::isinf(time)) {
        if (options.require_finite) {
          throw NumericError(
              "measure_cr_with_turn_cost: undetected probe — fleet extent "
              "too small");
        }
        continue;
      }
      const Real ratio = time / magnitude;
      if (ratio > best) {
        best = ratio;
        best_x = x;
      }
    }
    if (side > 0) {
      result.cr_positive = best;
    } else {
      result.cr_negative = best;
    }
    if (best > result.cr) {
      result.cr = best;
      result.argmax = best_x;
    }
  }
  return result;
}

}  // namespace linesearch

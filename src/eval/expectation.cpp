#include "eval/expectation.hpp"

#include <algorithm>
#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/validation.hpp"
#include "analysis/grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace linesearch {

namespace {

/// Consecutive non-contracting period sums before the series is declared
/// divergent.  The measured period ratio approaches the true contraction
/// factor from above (the affine offset c of t_(k+2n) = kappa^2 t_k + c
/// decays relative to t_k by kappa^2 per period), so a handful of early
/// windows can sit at or above 1 even when the series converges; a
/// sustained run cannot.
constexpr int kDivergingWindows = 16;

/// Merged finite visit times at `target` with a per-robot cap.
/// `truncated` reports whether more visits exist beyond what was
/// materialized (cap hit, or a ladder time overflowing Real range).
std::vector<Real> merged_visits(const Fleet& fleet, const Real target,
                                const std::size_t cap, bool* truncated) {
  std::vector<Real> merged;
  *truncated = false;
  for (std::size_t robot = 0; robot < fleet.size(); ++robot) {
    const std::vector<Real> visits =
        fleet.robot(static_cast<RobotId>(robot)).visit_times(target, cap);
    if (visits.size() == cap) *truncated = true;
    for (const Real t : visits) {
      if (!std::isfinite(t)) {
        *truncated = true;
        break;
      }
      merged.push_back(t);
    }
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

/// One summation pass over a merged visit prefix.
struct SeriesPass {
  Real sum = 0;         ///< partial sum of t_k (1-p) p^(k-1)
  Real tail = kNaN;     ///< closed-form geometric tail at the last window
  bool converged = false;
  bool divergent = false;
};

SeriesPass sum_series(const std::vector<Real>& merged, const Real p,
                      const std::size_t window, const Real rel_tol) {
  SeriesPass pass;
  // term_(k+1) = term_k * p * (t_(k+1)/t_k) keeps the running term in
  // representable range even where t_k alone would overflow and p^k
  // alone would underflow (their product is bounded by the series'
  // behaviour, not by either factor).
  Real term = 0;
  Real prev_t = 0;
  Real window_sum = 0;
  Real prev_window = 0;
  Real q = kNaN;
  std::size_t in_window = 0;
  int diverging_streak = 0;
  for (std::size_t k = 0; k < merged.size(); ++k) {
    const Real t = merged[k];
    term = (k == 0) ? (1 - p) * t : term * p * (t / prev_t);
    prev_t = t;
    pass.sum += term;
    window_sum += term;
    if (++in_window < window) continue;
    if (prev_window > 0) {
      q = window_sum / prev_window;
      if (q < 1) {
        diverging_streak = 0;
        pass.tail = window_sum * q / (1 - q);
        if (pass.tail <= rel_tol * pass.sum) {
          pass.converged = true;
          return pass;
        }
      } else if (++diverging_streak >= kDivergingWindows) {
        pass.divergent = true;
        return pass;
      }
    }
    prev_window = window_sum;
    window_sum = 0;
    in_window = 0;
  }
  // Cap decision material: the last full-window tail estimate (NaN when
  // no contracting window was ever seen).
  if (!(q < 1)) pass.tail = kNaN;
  return pass;
}

}  // namespace

Real expected_detection_time(const Fleet& fleet, const Real target,
                             const ExpectationOptions& options) {
  expects(target != 0, "expected_detection_time: target must be nonzero");
  expects(options.p >= 0 && options.p <= 1,
          "expected_detection_time: p must be in [0, 1]");
  expects(options.rel_tol > 0 && options.max_visits >= 16,
          "expected_detection_time: need rel_tol > 0, max_visits >= 16");
  LS_OBS_COUNT("eval.expectation.evaluations", 1);
  const Real p = options.p;
  // p == 0: the series collapses to t_1 — the fault-free first visit,
  // bit-identical to the measure_cr oracle at budget 0.
  if (p == 0) return fleet.detection_time(target, 0);
  if (p == 1) {
    LS_OBS_COUNT("eval.expectation.divergent", 1);
    return kInfinity;
  }

  // A fully bounded fleet visits every target finitely often, so the
  // never-detect mass p^K is positive and E[T] is infinite outright.
  // This must be decided BEFORE the series pass: a long finite list can
  // satisfy the geometric tail bound (which presumes the ladder
  // continues) without ever revealing its end.
  bool any_unbounded = false;
  for (std::size_t robot = 0; robot < fleet.size(); ++robot) {
    if (fleet.robot(static_cast<RobotId>(robot)).unbounded()) {
      any_unbounded = true;
      break;
    }
  }
  if (!any_unbounded) {
    LS_OBS_COUNT("eval.expectation.divergent", 1);
    return kInfinity;
  }

  // One expansion period contributes two visits per robot on the zigzag
  // ladder; 4 floors the window for degenerate single-robot fleets.
  const std::size_t window = std::max<std::size_t>(2 * fleet.size(), 4);
  std::size_t cap = 64;
  std::size_t last_merged = 0;
  for (;;) {
    bool truncated = false;
    const std::vector<Real> merged =
        merged_visits(fleet, target, cap, &truncated);
    if (merged.empty()) return kInfinity;  // never visited
    const SeriesPass pass =
        sum_series(merged, p, window, options.rel_tol);
    if (pass.divergent) {
      LS_OBS_COUNT("eval.expectation.divergent", 1);
      LS_OBS_COUNT("eval.expectation.visits", merged.size());
      return kInfinity;
    }
    if (pass.converged) {
      LS_OBS_COUNT("eval.expectation.visits", merged.size());
      return pass.sum;
    }
    if (!truncated) {
      // The visit list is genuinely finite: mass p^K never detects, so
      // the expectation is infinite for any p > 0.
      LS_OBS_COUNT("eval.expectation.divergent", 1);
      LS_OBS_COUNT("eval.expectation.visits", merged.size());
      return kInfinity;
    }
    const bool stalled = merged.size() == last_merged;
    if (merged.size() >= options.max_visits || stalled) {
      // Cap (or ladder-overflow stall): the last period ratio decides.
      // A contracting tail extrapolates in closed form; anything else —
      // including a pass too short to measure one — is divergent-side.
      LS_OBS_COUNT("eval.expectation.visits", merged.size());
      if (std::isnan(pass.tail)) {
        LS_OBS_COUNT("eval.expectation.divergent", 1);
        return kInfinity;
      }
      return pass.sum + pass.tail;
    }
    last_merged = merged.size();
    cap = std::min(cap * 4, options.max_visits);
  }
}

CrEvalResult measure_expected_cr(const Fleet& fleet,
                                 const ExpectationOptions& options) {
  LS_OBS_SPAN("eval.expectation.scan");
  LS_OBS_COUNT("eval.expectation.scans", 1);
  return detail::measure_cr_with(
      fleet, 0, options.eval,
      [&](const Real x) { return expected_detection_time(fleet, x, options); });
}

Real expectation_convergence_threshold(const int n, const int f) {
  expects(in_proportional_regime(n, f),
          "expectation_convergence_threshold: (n, f) must be in regime");
  const Real kappa = optimal_expansion_factor(n, f);
  return std::pow(kappa, Real{-1} / static_cast<Real>(n));
}

bool expectation_converges(const int n, const int f, const Real p) {
  expects(p >= 0 && p <= 1, "expectation_converges: p must be in [0, 1]");
  if (p == 0) return true;
  return p < expectation_convergence_threshold(n, f);
}

std::vector<ExpectationSweepRow> expectation_sweep(
    const ExpectationSweepOptions& options) {
  LS_OBS_SPAN("eval.expectation.sweep");
  expects(options.p_count >= 1, "expectation sweep: need p_count >= 1");
  expects(options.p_max >= 0 && options.p_max < 1,
          "expectation sweep: need 0 <= p_max < 1");
  expects(options.window_hi > 1, "expectation sweep: need window_hi > 1");
  const std::vector<Real> p_grid =
      options.p_count == 1 ? std::vector<Real>{options.p_max}
                           : linspace(0, options.p_max, options.p_count);
  std::vector<ExpectationSweepRow> rows;
  for (const auto& [n, f] : proportional_regime_pairs(options.n_max)) {
    const Fleet fleet = ProportionalAlgorithm(n, f).build_unbounded_fleet();
    for (const Real p : p_grid) {
      ExpectationSweepRow row;
      row.n = n;
      row.f = f;
      row.p = p;
      row.converges = expectation_converges(n, f, p);
      ExpectationOptions eval;
      eval.p = p;
      eval.eval.window_hi = options.window_hi;
      const CrEvalResult scan = measure_expected_cr(fleet, eval);
      row.expected_cr = scan.cr;
      row.argmax = scan.argmax;
      row.undetected_probes = scan.undetected_probes;
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace linesearch

#include "eval/visit_cache.hpp"

#include <algorithm>
#include <cstring>
#include <optional>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace linesearch {

FleetVisitCache::FleetVisitCache(const Fleet& fleet)
    : fleet_(fleet), slot_of_(fleet.size()) {
  // Backend-identity keying: robots sharing one ScheduleSource object
  // answer every visit query identically, so they share a memo slot.
  std::unordered_map<const ScheduleSource*, std::size_t> slots;
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const auto [it, inserted] = slots.try_emplace(
        fleet.robot(id).source_ptr().get(), slots.size());
    slot_of_[id] = it->second;
  }
  stripes_ = std::vector<Stripe>(slots.size() * kStripes);
  slot_lookups_ = std::vector<std::atomic<std::size_t>>(slots.size());
}

std::uint64_t FleetVisitCache::quantize(const Real x) noexcept {
  // Quantize to double: distinct probes differ by >= ~1e-9 relative (the
  // evaluator's own dedupe tolerance), double resolves ~2e-16, so honest
  // collisions only happen for positions the evaluator treats as equal
  // anyway — and even those are verified against the exact stored x.
  const double quantized = static_cast<double>(x);
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(quantized));
  std::memcpy(&bits, &quantized, sizeof(bits));
  return bits;
}

FleetVisitCache::Stripe& FleetVisitCache::stripe_for(
    const RobotId id, const std::uint64_t key) const noexcept {
  // Fibonacci scramble of the mantissa bits spreads geometric probe
  // sequences (which share exponent bytes) across stripes.
  const std::uint64_t mixed = key * 0x9e3779b97f4a7c15ULL;
  // top 6 bits: 64 stripes
  return stripes_[slot_of_[id] * kStripes + (mixed >> 58)];
}

Real FleetVisitCache::first_visit(const RobotId id, const Real x) const {
  LS_OBS_COUNT("eval.visit_cache.lookups", 1);
  return lookup_impl(id, x);
}

Real FleetVisitCache::lookup_impl(const RobotId id, const Real x) const {
  const std::uint64_t key = quantize(x);
  Stripe& stripe = stripe_for(id, key);
  slot_lookups_[slot_of_[id]].fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    const auto it = stripe.map.find(key);
    if (it != stripe.map.end()) {
      if (it->second.x == x) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second.time;
      }
      // Quantization collision: a DIFFERENT exact position owns the key;
      // this probe bypasses the cache permanently.
      LS_OBS_COUNT("eval.visit_cache.collision_bypasses", 1);
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  const std::optional<Real> visit = fleet_.robot(id).first_visit_time(x);
  const Real time = visit ? *visit : kInfinity;
  {
    const std::lock_guard<std::mutex> lock(stripe.mutex);
    // try_emplace keeps the first entry on a quantization collision; the
    // colliding position simply stays uncached (exactness over hit rate).
    const auto [it, inserted] = stripe.map.try_emplace(key, Entry{x, time});
    (void)it;
    if (inserted) LS_OBS_COUNT("eval.visit_cache.inserts", 1);
  }
  return time;
}

Real FleetVisitCache::detection_time(const Real x, const int faults) const {
  // Mirrors Fleet::detection_time exactly, robot order and all, so the
  // kth_smallest reduction sees the same sequence of values.
  expects(faults >= 0, "detection_time: faults must be >= 0");
  const auto k = static_cast<std::size_t>(faults);
  if (k >= fleet_.size()) return kInfinity;
  // One batched metric add for the whole query (lookup totals are
  // identical to per-robot counting; the hot path stays lean).
  LS_OBS_COUNT("eval.visit_cache.lookups", fleet_.size());
  // Thread-local selection buffer: this is the batch engine's innermost
  // query and a heap allocation per probe dominated its memo-hit cost.
  // nth_element over the same value multiset returns the identical k-th
  // smallest VALUE as analysis/stats kth_smallest did here — selection
  // does no arithmetic on the times, so the result is bit-equal.
  static thread_local std::vector<Real> times;
  times.clear();
  times.reserve(fleet_.size());
  for (RobotId id = 0; id < fleet_.size(); ++id) {
    times.push_back(lookup_impl(id, x));
  }
  std::nth_element(times.begin(),
                   times.begin() + static_cast<std::ptrdiff_t>(k),
                   times.end());
  return times[static_cast<std::ptrdiff_t>(k)];
}

std::size_t FleetVisitCache::CacheStats::lookups() const noexcept {
  std::size_t total = 0;
  for (const SlotStats& slot : slots) total += slot.lookups;
  return total;
}

std::size_t FleetVisitCache::CacheStats::entries() const noexcept {
  std::size_t total = 0;
  for (const SlotStats& slot : slots) total += slot.entries;
  return total;
}

std::size_t FleetVisitCache::CacheStats::hits() const noexcept {
  std::size_t total = 0;
  for (const SlotStats& slot : slots) total += slot.hits();
  return total;
}

FleetVisitCache::CacheStats FleetVisitCache::stats() const {
  CacheStats out;
  out.slots.resize(slot_lookups_.size());
  for (std::size_t slot = 0; slot < out.slots.size(); ++slot) {
    out.slots[slot].lookups =
        slot_lookups_[slot].load(std::memory_order_relaxed);
    std::size_t entries = 0;
    for (std::size_t s = 0; s < kStripes; ++s) {
      Stripe& stripe = stripes_[slot * kStripes + s];
      const std::lock_guard<std::mutex> lock(stripe.mutex);
      entries += stripe.map.size();
    }
    out.slots[slot].entries = entries;
  }
  return out;
}

void FleetVisitCache::warm(const std::vector<Real>& positions) const {
  for (const Real x : positions) {
    for (RobotId id = 0; id < fleet_.size(); ++id) {
      (void)first_visit(id, x);
    }
  }
}

}  // namespace linesearch

// eval/exact.hpp — certified (probe-free) competitive-ratio evaluation.
//
// measure_cr approaches the supremum of K(x) = T_{f+1}(x)/|x| through
// right-limit probes at tau*(1+1e-9).  This module computes the sup
// EXACTLY by exploiting structure instead of sampling:
//
//   Between two adjacent "critical magnitudes" (turning points, initial
//   and final waypoint positions, window endpoints) no robot's
//   first-visit leg changes, so each robot's first-visit time is LINEAR
//   in x (slope = 1/leg speed — exactly 1 for unit-speed legs, beta for
//   the Definition-4 prefixes).  The (f+1)-st order statistic of linear
//   functions is piecewise linear with breakpoints at pairwise line
//   crossings, and K = T/x is monotone between breakpoints, so the
//   supremum over the whole window is attained in the limit at interval
//   endpoints or at breakpoints — a finite, exactly computable set.
//
// The result is the true sup over the half-open intervals (approached at
// discontinuities, attained elsewhere), with NO epsilon anywhere: on
// proportional schedules it matches Lemma 5's closed form to long-double
// round-off (~1e-18 relative), three orders tighter than measure_cr.
#pragma once

#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Result of a certified evaluation.
struct ExactCrResult {
  Real cr = 0;          ///< exact supremum of K over the window
  Real argsup = 0;      ///< signed x whose (one-sided) limit attains it
  int intervals = 0;    ///< critical intervals analyzed
  int breakpoints = 0;  ///< order-statistic breakpoints examined
};

/// Options for certified_cr.
struct ExactCrOptions {
  Real window_lo = 1;
  Real window_hi = 64;
  /// Throw NumericError when some x in the window is never visited by
  /// f+1 distinct robots (an under-built fleet); with false such
  /// intervals are skipped.
  bool require_finite = true;
};

/// Compute the exact supremum of detection_time(x, f)/|x| over
/// window_lo <= |x| <= window_hi on both half-lines.
[[nodiscard]] ExactCrResult certified_cr(const Fleet& fleet, int f,
                                         const ExactCrOptions& options = {});

}  // namespace linesearch

#include "eval/batch.hpp"

#include <cmath>
#include <map>
#include <memory>

#include "eval/visit_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace linesearch {
namespace {

// One shared memo table per distinct fleet in the batch.  Built up front
// (serially) so workers only ever read the map structure itself; the
// caches' striped locks handle concurrent entry inserts.
using CacheMap = std::map<const Fleet*, std::shared_ptr<FleetVisitCache>>;

CacheMap build_caches(const std::vector<CrBatchJob>& jobs) {
  CacheMap caches;
  for (const CrBatchJob& job : jobs) {
    if (caches.find(job.fleet) == caches.end()) {
      caches.emplace(job.fleet, std::make_shared<FleetVisitCache>(*job.fleet));
    }
  }
  return caches;
}

}  // namespace

std::vector<CrEvalResult> measure_cr_batch(const std::vector<CrBatchJob>& jobs,
                                           const BatchOptions& batch) {
  for (const CrBatchJob& job : jobs) {
    expects(job.fleet != nullptr, "measure_cr_batch: null fleet in job");
  }
  LS_OBS_SPAN("eval.batch.run");
  LS_OBS_COUNT("eval.batch.jobs", jobs.size());
  const CacheMap caches = batch.use_cache ? build_caches(jobs) : CacheMap{};
  LS_OBS_COUNT("eval.batch.cached_fleets", caches.size());

  return parallel_map(
      jobs.size(),
      [&](const std::size_t i) {
        const CrBatchJob& job = jobs[i];
        if (batch.use_cache) {
          const FleetVisitCache& cache = *caches.at(job.fleet);
          return detail::measure_cr_with(
              *job.fleet, job.f, job.options, [&cache, &job](const Real x) {
                return cache.detection_time(x, job.f);
              });
        }
        return measure_cr(*job.fleet, job.f, job.options);
      },
      batch.threads);
}

std::vector<CrEvalResult> measure_cr_batch(const Fleet& fleet,
                                           const std::vector<int>& fault_budgets,
                                           const CrEvalOptions& options,
                                           const BatchOptions& batch) {
  std::vector<CrBatchJob> jobs;
  jobs.reserve(fault_budgets.size());
  for (const int f : fault_budgets) {
    jobs.push_back({&fleet, f, options});
  }
  return measure_cr_batch(jobs, batch);
}

std::vector<Real> k_profile_batch(const Fleet& fleet, const int f,
                                  const std::vector<Real>& positions,
                                  const BatchOptions& batch) {
  expects(f >= 0, "k_profile_batch: f must be >= 0");
  for (const Real x : positions) {
    expects(x != 0, "k_profile_batch: positions must be non-zero");
  }
  const FleetVisitCache cache(fleet);
  return parallel_map(
      positions.size(),
      [&](const std::size_t i) {
        const Real x = positions[i];
        const Real time = batch.use_cache ? cache.detection_time(x, f)
                                          : fleet.detection_time(x, f);
        return time / std::fabs(x);
      },
      batch.threads);
}

}  // namespace linesearch

// eval/interval_lines.hpp — shared internals of the exact evaluators.
//
// Between adjacent "critical magnitudes" (waypoint positions of any
// robot, plus window endpoints) every robot's first-visit time is linear
// in |x|.  This header provides the critical-grid collection and the
// per-interval line fitting used by eval/exact (certified suprema) and
// eval/profile (exact piecewise profiles).  It is an implementation
// detail shared between those translation units; external users should
// prefer the two public facades.
#pragma once

#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch::detail {

/// A robot's first-visit time restricted to one critical interval:
/// t(x) = value + slope * (x - anchor), or "never" (infinite).
struct VisitLine {
  bool finite = false;
  Real anchor = 0;
  Real value = 0;  ///< t(anchor)
  Real slope = 0;

  [[nodiscard]] Real at(const Real x) const {
    if (!finite) return kInfinity;
    return value + slope * (x - anchor);
  }
};

/// Sorted, deduplicated critical magnitudes on `side` within
/// [window_lo, window_hi] (inclusive of the window endpoints).
[[nodiscard]] std::vector<Real> critical_magnitudes(const Fleet& fleet,
                                                    int side, Real window_lo,
                                                    Real window_hi);

/// Fit each robot's visit line on the open interval (a, b), with x
/// measured as magnitude on `side`.
[[nodiscard]] std::vector<VisitLine> visit_lines(const Fleet& fleet,
                                                 int side, Real a, Real b);

/// The k-th smallest (0-based) of the line values at magnitude x.
[[nodiscard]] Real order_statistic_at(const std::vector<VisitLine>& lines,
                                      Real x, std::size_t k);

/// Index of the line realizing the k-th smallest value at x (ties by
/// smallest index).
[[nodiscard]] std::size_t order_statistic_line(
    const std::vector<VisitLine>& lines, Real x, std::size_t k);

/// All pairwise crossings of distinct-slope finite lines strictly inside
/// (a, b), unsorted.
[[nodiscard]] std::vector<Real> line_crossings(
    const std::vector<VisitLine>& lines, Real a, Real b);

}  // namespace linesearch::detail

// eval/interval_lines.hpp — shared internals of the exact evaluators.
//
// Between adjacent "critical magnitudes" (waypoint positions of any
// robot, plus window endpoints) every robot's first-visit time is linear
// in |x|.  This header provides the critical-grid collection and the
// per-interval line fitting used by eval/exact (certified suprema) and
// eval/profile (exact piecewise profiles).  It is an implementation
// detail shared between those translation units; external users should
// prefer the two public facades.
#pragma once

#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch::detail {

/// A robot's first-visit time restricted to one critical interval:
/// t(x) = value + slope * (x - anchor), or "never" (infinite).
struct VisitLine {
  bool finite = false;
  Real anchor = 0;
  Real value = 0;  ///< t(anchor)
  Real slope = 0;

  [[nodiscard]] Real at(const Real x) const {
    if (!finite) return kInfinity;
    return value + slope * (x - anchor);
  }
};

/// Sorted, deduplicated critical magnitudes on `side` within
/// [window_lo, window_hi] (inclusive of the window endpoints).
[[nodiscard]] std::vector<Real> critical_magnitudes(const Fleet& fleet,
                                                    int side, Real window_lo,
                                                    Real window_hi);

/// Fit each robot's visit line on the open interval (a, b), with x
/// measured as magnitude on `side`.
[[nodiscard]] std::vector<VisitLine> visit_lines(const Fleet& fleet,
                                                 int side, Real a, Real b);

/// The k-th smallest (0-based) of the line values at magnitude x.
[[nodiscard]] Real order_statistic_at(const std::vector<VisitLine>& lines,
                                      Real x, std::size_t k);

/// Index of the line realizing the k-th smallest value at x.  Tie-break
/// is PINNED to lowest-index-among-attainers: of all lines whose value
/// at x equals the order statistic bit-for-bit, the smallest index wins
/// — the same line on the AoS and SoA paths, in both SIMD and scalar
/// builds.
[[nodiscard]] std::size_t order_statistic_line(
    const std::vector<VisitLine>& lines, Real x, std::size_t k);

/// All pairwise crossings of distinct-slope finite lines strictly inside
/// (a, b), sorted ascending with exact duplicates removed (several line
/// pairs can cross at the bit-identical abscissa; reporting it once
/// keeps certified intervals from being split twice at the same point).
[[nodiscard]] std::vector<Real> line_crossings(
    const std::vector<VisitLine>& lines, Real a, Real b);

/// SoA layout of one interval's visit lines — the VisitLine fields in
/// parallel columns plus reused evaluation buffers, so the certified
/// evaluators run their order-statistic scans as flat elementwise passes
/// (LS_SIMD_LOOP) with no per-candidate allocation.  Bit-identity:
/// every query below equals its AoS counterpart exactly — the evaluated
/// expression, the selection and the tie-break are the same.
struct LineColumns {
  std::vector<Real> anchor;
  std::vector<Real> value;
  std::vector<Real> slope;
  std::vector<unsigned char> finite;
  std::vector<Real> at;      ///< scratch: last evaluate() result
  std::vector<Real> ranked;  ///< scratch: nth_element working copy

  [[nodiscard]] std::size_t size() const noexcept { return value.size(); }
};

/// Fit each robot's visit line on (a, b) directly into columns
/// (visit_lines in SoA form; one batched first-visit query per sample
/// abscissa instead of a per-robot segment walk).
void fill_line_columns(const Fleet& fleet, int side, Real a, Real b,
                       LineColumns& columns);

/// Evaluate every line at x into columns.at (elementwise SoA pass;
/// entries match VisitLine::at bit-for-bit).
void evaluate_lines(LineColumns& columns, Real x);

/// SoA order_statistic_at (uses columns scratch; no allocation after
/// the first call at a given fleet size).
[[nodiscard]] Real order_statistic_at(LineColumns& columns, Real x,
                                      std::size_t k);

/// SoA order_statistic_line — lowest-index-among-attainers, like the
/// AoS overload.
[[nodiscard]] std::size_t order_statistic_line(LineColumns& columns, Real x,
                                               std::size_t k);

/// SoA line_crossings: sorted ascending, exact duplicates removed,
/// appended into `out` (cleared first).
void line_crossings_into(const LineColumns& columns, Real a, Real b,
                         std::vector<Real>& out);

}  // namespace linesearch::detail

// eval/kernels.hpp — structure-of-arrays kernels behind measure_cr.
//
// The scalar probe scan (eval/cr_eval detail::measure_cr_with) asks the
// fleet one detection time per probe; every such query allocates a times
// vector, walks every robot's segment list from the start, and goes
// through a std::function oracle.  The kernels here restructure the same
// computation as three flat passes over parallel arrays:
//
//   1. ProbeBatch — probe classification fused into one emission pass
//      (magnitudes and side tags in parallel arrays, both half-lines,
//      scan order);
//   2. VisitColumns — per-robot first-visit rows at the position-sorted
//      probes (both half-lines in one sorted array), each filled by ONE
//      frontier sweep (ScheduleSource::first_visit_times_into) into a
//      reused row and streamed straight into the per-probe (f+1)-st
//      order statistic — a bounded-buffer selection over the cheaper
//      side of the statistic, never materializing the visit matrix;
//   3. the unchanged supremum scan over the precomputed columns.
//
// Bit-identity contract: measure_cr_kernel(fleet, f, options) equals
// detail::measure_cr_with with the direct Fleet::detection_time oracle
// on EVERY result field, bitwise, in both the SIMD and the scalar
// fallback build (util/simd.hpp).  The contract is enforced by the
// scalar-vs-SIMD differential engine (verify/differential) and the
// kernel test suite; the speed comes from eliminating per-probe heap
// allocation and per-probe segment walks, with LS_SIMD_LOOP annotating
// the elementwise passes.
#pragma once

#include <cstdint>
#include <vector>

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch::kernels {

/// SoA probe layout for one CR scan: parallel arrays over BOTH
/// half-lines, in the scalar scan's emission order (side +1 first).
/// Magnitudes are window-clamped and exact-deduplicated per side.
struct ProbeBatch {
  std::vector<Real> magnitudes;    ///< |x| per probe, emission order
  std::vector<std::int8_t> sides;  ///< +1 / -1, parallel to magnitudes
  std::size_t positive_count = 0;  ///< probes [0, positive_count) are side +1

  [[nodiscard]] std::size_t size() const noexcept { return magnitudes.size(); }
};

/// Fused probe emission for both half-lines (one
/// detail::probe_magnitudes pass per side, concatenated with side tags).
[[nodiscard]] ProbeBatch build_probe_batch(const Fleet& fleet,
                                           const CrEvalOptions& options);

/// SoA visit-time columns for a probe batch.  `detection` is the result
/// (parallel to the batch arrays, emission order); the remaining members
/// are reusable working storage so a sweep amortizes its allocations.
struct VisitColumns {
  std::vector<Real> detection;  ///< T_{f+1} per probe, emission order

  std::vector<std::uint32_t> order;  ///< slice permutation, position-sorted
  std::vector<Real> sorted_x;        ///< signed positions, ascending
  std::vector<Real> first_visits;    ///< one robot's visit row, reused
  std::vector<Real> selection;       ///< per-probe order-statistic scratch
};

/// Fill columns.detection with the worst-case detection time of every
/// probe in `batch`: bit-identical to Fleet::detection_time(side *
/// magnitude, f) per probe, computed with ONE frontier sweep per robot
/// covering both half-lines of the position-sorted batch, streamed
/// through a bounded-buffer order-statistic selection.
void fill_visit_columns(const Fleet& fleet, int f, const ProbeBatch& batch,
                        VisitColumns& columns);

/// The SoA fast path behind measure_cr: identical contract, identical
/// result fields (bitwise), identical obs counters.
[[nodiscard]] CrEvalResult measure_cr_kernel(const Fleet& fleet, int f,
                                             const CrEvalOptions& options);

/// True when the kernels were compiled with `#pragma omp simd`
/// (LINESEARCH_SIMD=ON); false in the scalar fallback build.
[[nodiscard]] bool simd_compiled() noexcept;

}  // namespace linesearch::kernels

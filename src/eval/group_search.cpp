#include "eval/group_search.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {

Real last_arrival_time(const Fleet& fleet, const Real x) {
  Real latest = 0;
  for (const Trajectory& robot : fleet.robots()) {
    const std::optional<Real> visit = robot.first_visit_time(x);
    if (!visit) return kInfinity;
    latest = std::max(latest, *visit);
  }
  return latest;
}

CrEvalResult measure_group_cr(const Fleet& fleet,
                              const CrEvalOptions& options) {
  // Last arrival == detection with f = n-1 adversarial faults (the
  // (n-1+1)-st = n-th distinct first visit), so reuse measure_cr.
  return measure_cr(fleet, static_cast<int>(fleet.size()) - 1, options);
}

}  // namespace linesearch

// eval/visit_cache.hpp — memoized first-visit queries for a fleet.
//
// CR sweeps evaluate T_{f+1}(x)/|x| at probe positions that repeat
// massively: every (n, f) job over the same fleet re-probes the same
// turning-point right-limits, and a k-profile revisits positions that the
// CR scan already touched.  Each probe walks every robot's segment list,
// so memoizing per-robot first-visit times turns an O(segments) query
// into a hash lookup after the first evaluation.
//
// Exactness contract: a cache hit returns the BIT-IDENTICAL value the
// uncached Trajectory::first_visit_time would produce.  Keys are the
// probe position quantized to double (52-bit mantissa — far finer than
// the 1e-9 probe offsets the evaluator distinguishes), but every entry
// also stores the exact long-double position; a quantization collision
// between genuinely different positions is detected and bypasses the
// cache entirely, so quantization can never alias two distinct probes.
//
// Concurrency: the table is striped — each stripe owns a mutex and a hash
// map — so concurrent readers on different stripes never contend and the
// structure is safe for the batch engine's workers with no warm phase.
// Values are deterministic functions of the key, so racing inserts of the
// same position are benign (both compute the identical value).
//
// Backend identity: robots are keyed by their ScheduleSource, not their
// index.  Robots sharing one backend object (e.g. a group strategy that
// hands the same analytic schedule to every member) share a memo slot —
// a probe computed for one is a hit for all of them, exactly, because
// identical backends answer every visit query identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Striped memo table of per-robot first-visit times for one fleet.
/// The fleet must outlive the cache.  All methods are thread-safe.
class FleetVisitCache {
 public:
  explicit FleetVisitCache(const Fleet& fleet);

  [[nodiscard]] const Fleet& fleet() const noexcept { return fleet_; }

  /// Memoized Trajectory::first_visit_time(x) of robot `id`; kInfinity
  /// when the robot never visits x (mirroring Fleet::first_visit_times).
  [[nodiscard]] Real first_visit(RobotId id, Real x) const;

  /// Memoized Fleet::detection_time(x, faults) — bit-identical to the
  /// uncached query for any thread count.
  [[nodiscard]] Real detection_time(Real x, int faults) const;

  /// Pre-populate the table for a set of positions (optional warm phase;
  /// the striped locks make cold concurrent use equally correct).
  void warm(const std::vector<Real>& positions) const;

  /// Lookup statistics (approximate under concurrency; for tests/benches).
  /// Under a concurrent workload two workers may both miss on the same
  /// key before either inserts, so hits()/misses() can differ slightly
  /// between thread counts; use stats() for the deterministic accounting.
  [[nodiscard]] std::size_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

  /// Deterministic per-slot accounting: every quantity below is a pure
  /// function of the query multiset, bit-identical for any thread count.
  /// `hits()` is DERIVED (lookups - entries): with no quantization
  /// collisions it equals the serial hit count exactly, and unlike the
  /// racy counters above it cannot be skewed by concurrent double-misses.
  struct SlotStats {
    std::size_t lookups = 0;  ///< first_visit calls routed to this slot
    std::size_t entries = 0;  ///< distinct memoized keys in the slot
    [[nodiscard]] std::size_t hits() const noexcept {
      return lookups > entries ? lookups - entries : 0;
    }
  };
  struct CacheStats {
    std::vector<SlotStats> slots;  ///< one per schedule backend slot
    [[nodiscard]] std::size_t lookups() const noexcept;
    [[nodiscard]] std::size_t entries() const noexcept;
    [[nodiscard]] std::size_t hits() const noexcept;
  };
  [[nodiscard]] CacheStats stats() const;

  /// Number of DISTINCT schedule backends in the fleet (== number of memo
  /// slots).  Less than fleet().size() when robots share a backend.
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return stripes_.size() / kStripes;
  }

 private:
  struct Entry {
    Real x = 0;     ///< exact queried position (collision check)
    Real time = 0;  ///< memoized first-visit time
  };
  struct Stripe {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> map;
  };

  static constexpr std::size_t kStripes = 64;

  [[nodiscard]] static std::uint64_t quantize(Real x) noexcept;
  [[nodiscard]] Stripe& stripe_for(RobotId id,
                                   std::uint64_t key) const noexcept;
  /// first_visit without the aggregate lookup metric — detection_time
  /// batches that one add per call instead of per robot (the memo-hit
  /// path is hot enough for the difference to show up in bench_perf).
  [[nodiscard]] Real lookup_impl(RobotId id, Real x) const;

  const Fleet& fleet_;
  /// Robot index -> memo slot; robots with the same ScheduleSource map to
  /// the same slot (computed once at construction).
  std::vector<std::size_t> slot_of_;
  /// stripes_[slot * kStripes + stripe]; per-slot striping keeps keys
  /// from different backends out of each other's maps.
  mutable std::vector<Stripe> stripes_;
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
  /// Per-slot lookup tally (deterministic: the query stream per slot is
  /// fixed by the workload, however it is partitioned across threads).
  mutable std::vector<std::atomic<std::size_t>> slot_lookups_;
};

}  // namespace linesearch

// eval/expectation.hpp — exact expected-CR evaluation under per-visit
// probabilistic faults (arXiv:2002.07797, arXiv:2303.15608).
//
// Model: every visit to the target is an independent probe that fails
// with probability p (sim/faults.hpp ProbabilisticFaults realizes one
// such schedule).  Let t_1 <= t_2 <= ... be the team's merged visit
// times at x.  Detection happens at the first successful probe, so
//
//   E[T(x)] = sum_k t_k * (1 - p) * p^(k-1).
//
// No Monte Carlo is needed: on the zigzag/analytic ladder families the
// visit times obey an affine-geometric recurrence — one expansion period
// multiplies positions by kappa = (2f+2)/(2f+2-n), every robot crosses x
// twice per period, so t_(k+2n) = kappa^2 * t_k + c — which makes the
// series a geometric ladder.  Consecutive period sums contract by
// q -> p^(2n) * kappa^2, so the series converges iff
//
//   p < kappa^(-1/n)        (equivalently p^(2n) * kappa^2 < 1)
//
// and the evaluator sums terms until the closed-form geometric tail
// bound drops below rel_tol, or certifies divergence (E[T] = kInfinity)
// when period sums stop contracting.  A FINITE visit list (a bounded /
// dense fleet, or a ray that passes x once) leaves never-detect mass
// p^K > 0, so E[T] is kInfinity for every p > 0 — the expected-CR
// evaluator is meant for the unbounded analytic backends.
//
// At p == 0 the series collapses to t_1 = Fleet::detection_time(x, 0)
// and the scan below runs detail::measure_cr_with with exactly the
// fault-free oracle — bit-identical to measure_cr(fleet, 0, options).
#pragma once

#include <cstddef>
#include <vector>

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Options for the expectation engine.
struct ExpectationOptions {
  Real p = 0;  ///< per-visit failure probability in [0, 1]
  /// Probe-scan window and sampling (require_finite defaults OFF here:
  /// for p > 0 divergent probes are expected output, not an error).
  CrEvalOptions eval = {.window_lo = 1,
                        .window_hi = 64,
                        .interior_samples = 4,
                        .require_finite = false};
  /// Relative truncation tolerance of the geometric tail bound.
  Real rel_tol = 1e-9L;
  /// Merged-visit hard cap per evaluation; past it the last measured
  /// period ratio decides (contracting: extrapolate the closed-form
  /// tail; otherwise kInfinity).
  std::size_t max_visits = 1u << 16;
};

/// E[T(target)] under per-visit iid failures — the series above, exact
/// up to rel_tol.  kInfinity when the series diverges (p at or past the
/// ladder threshold), when the visit list is finite (never-detect mass),
/// or when the target is never visited.  p == 0 returns
/// Fleet::detection_time(target, 0) bit-identically.
[[nodiscard]] Real expected_detection_time(const Fleet& fleet, Real target,
                                           const ExpectationOptions& options);

/// Expected competitive ratio sup_x E[T(x)]/|x| over the options'
/// window: the measure_cr probe scan (same probes, same tie-breaks,
/// same counters) with the expectation oracle above.
[[nodiscard]] CrEvalResult measure_expected_cr(
    const Fleet& fleet, const ExpectationOptions& options);

/// Closed-form convergence threshold of A(n, f)'s ladder: E[T] is
/// finite for p < kappa^(-1/n) with kappa = optimal_expansion_factor.
/// Requires the proportional regime.
[[nodiscard]] Real expectation_convergence_threshold(int n, int f);

/// True iff the expected-CR series of A(n, f) converges at p (p below
/// the threshold above; p == 0 always converges).
[[nodiscard]] bool expectation_converges(int n, int f, Real p);

/// One row of the p-sweep grid.
struct ExpectationSweepRow {
  int n = 0;
  int f = 0;
  Real p = 0;
  bool converges = false;   ///< closed-form criterion at this p
  Real expected_cr = kInfinity;
  Real argmax = 0;
  int undetected_probes = 0;
};

struct ExpectationSweepOptions {
  int n_max = 8;        ///< regime grid bound (41 pairs at 12)
  int p_count = 5;      ///< p grid resolution (linspace 0..p_max)
  Real p_max = 0.5L;    ///< largest failure probability swept
  Real window_hi = 16;  ///< CR measurement window
};

/// Sweep every regime pair (n <= n_max) times the p grid: expected CR of
/// A(n, f)'s unbounded analytic backend at each failure probability.
[[nodiscard]] std::vector<ExpectationSweepRow> expectation_sweep(
    const ExpectationSweepOptions& options = {});

}  // namespace linesearch

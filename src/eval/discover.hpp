// eval/discover.hpp — rediscovering the proportional schedule by
// numerical optimization.
//
// The paper DERIVES the geometric interleaving (Definition 2) and then
// proves it optimal within its family.  This module attacks the question
// from the other side: fix the optimal cone beta* and treat the robots'
// first-turn magnitudes s_1 < ... < s_{n-1} in (1, kappa^2) as FREE
// parameters (s_0 = 1 anchored); minimize the certified competitive
// ratio with Nelder-Mead over log-gap shares (an unconstrained
// parameterization of the ordered offsets).  Because the turning grid
// {s_i * kappa^(2k)} repeats
// multiplicatively with period kappa^2, the certified CR over one period
// equals the true supremum — so the optimizer sees the exact objective.
//
// Result (bench_discovery, discover_test): the optimizer converges to
// s_i = r^i with r = ((beta+1)/(beta-1))^(2/n) and CR = Theorem 1's
// value, i.e. it *rediscovers* the paper's algorithm from scratch.
#pragma once

#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// Options for the schedule search.
struct DiscoveryOptions {
  int max_sweeps = 24;      ///< Nelder-Mead restarts around the optimum
  Real tolerance = 1e-10L;  ///< stop when a restart improves less
};

/// Result of a schedule search.
struct DiscoveryResult {
  std::vector<Real> magnitudes;  ///< optimized s_0 = 1 <= ... < kappa^2
  std::vector<Real> ratios;      ///< consecutive ratios s_{i+1}/s_i,
                                 ///< plus the wrap s_0*kappa^2/s_{n-1}
  Real cr = 0;                   ///< certified CR of the optimum
  Real initial_cr = 0;           ///< certified CR of the starting point
  int sweeps = 0;                ///< Nelder-Mead restarts performed
  int evaluations = 0;           ///< objective evaluations
};

/// Search for the best first-turn offsets for n robots, f faults, in the
/// optimal cone beta* = (4f+4)/n - 1.  The starting point is the
/// UNIFORM (arithmetic) offset vector — the natural naive guess.
/// Requires f < n < 2f+2.
[[nodiscard]] DiscoveryResult discover_schedule(
    int n, int f, const DiscoveryOptions& options = {});

/// The certified CR of an arbitrary magnitude vector in the cone beta
/// (helper shared with benches/tests); magnitudes in [1, kappa^2).
[[nodiscard]] Real offsets_cr(Real beta, const std::vector<Real>& magnitudes,
                              int f);

}  // namespace linesearch

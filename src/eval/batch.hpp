// eval/batch.hpp — parallel batched CR evaluation.
//
// Every reproduction in this repo reduces to evaluating K(x) =
// T_{f+1}(x)/|x| over a grid of (fleet, f, window) points; this module
// runs those points concurrently on the util/parallel pool while keeping
// the results indistinguishable from the serial path:
//
//   * jobs fan out across workers, results land in JOB ORDER
//     (parallel_map writes slot i from the worker that ran job i), so any
//     downstream argmax/tie-break scan sees the serial sequence;
//   * each job runs the EXACT probe scan of eval/cr_eval
//     (detail::measure_cr_with) against a memoized detection oracle
//     (eval/visit_cache) shared by all jobs over the same fleet — probe
//     positions repeat massively across (n, f) sweeps, and the memo value
//     is a deterministic function of the position, so caching changes
//     wall-clock, never results;
//   * thread count comes from BatchOptions::threads, the
//     LINESEARCH_THREADS env var, or the hardware, in that order; 1 means
//     fully serial (no thread ever spawned), and any other count is
//     bit-identical to it.
#pragma once

#include <vector>

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// One unit of batched CR work: measure `fleet` with fault budget `f`
/// over `options`'s window.  The fleet pointer must stay valid for the
/// duration of the batch call; jobs may freely share fleets (sharing is
/// what makes the visit cache pay off).
struct CrBatchJob {
  const Fleet* fleet = nullptr;
  int f = 0;
  CrEvalOptions options;
};

/// Execution options for the batch layer.
struct BatchOptions {
  /// Worker count; 0 defers to LINESEARCH_THREADS, then the hardware.
  int threads = 0;
  /// Memoize per-robot first-visit times across jobs on the same fleet.
  bool use_cache = true;
};

/// Evaluate every job; result i corresponds to jobs[i].  Bit-identical
/// to calling measure_cr serially on each job, for any thread count.
[[nodiscard]] std::vector<CrEvalResult> measure_cr_batch(
    const std::vector<CrBatchJob>& jobs, const BatchOptions& batch = {});

/// Convenience: one fleet, many fault budgets (the Table-1 / ratio-curve
/// shape of sweep).
[[nodiscard]] std::vector<CrEvalResult> measure_cr_batch(
    const Fleet& fleet, const std::vector<int>& fault_budgets,
    const CrEvalOptions& options = {}, const BatchOptions& batch = {});

/// Batched K(x) profile: k_profile with the positions fanned out across
/// workers and first visits memoized.  Entries match k_profile exactly.
[[nodiscard]] std::vector<Real> k_profile_batch(
    const Fleet& fleet, int f, const std::vector<Real>& positions,
    const BatchOptions& batch = {});

}  // namespace linesearch

// eval/randomized.hpp — randomized schedules (extension study A6).
//
// The deterministic cow-path bound is 9, but a randomized searcher that
// scales its doubling schedule by kappa^U with U ~ Uniform[0, 1) (and
// flips its initial direction with a fair coin) achieves a much better
// EXPECTED competitive ratio: sup_x E[T(x)]/|x| ~ 4.5911 at the optimal
// expansion factor kappa ~ 3.59 (Kao-Reif-Tate).  This module measures
// expected ratios for randomly-scaled cone schedules — the single-robot
// classic, and the same trick applied to the paper's A(n, f) — by exact
// quadrature over the scale offset (no sampling noise: U is discretized
// on a uniform grid, and each grid point is an exact fleet evaluation).
//
// The target phase: the schedule's behavior is log-periodic with period
// kappa (single robot) or r (proportional schedules), so the supremum
// over x reduces to a sweep over one period of the phase of |x|.
#pragma once

#include "util/real.hpp"

namespace linesearch {

/// Options for the expected-ratio measurements.
struct RandomizedOptions {
  int offset_samples = 64;  ///< quadrature points for U ~ Uniform[0,1)
  int phase_samples = 64;   ///< target phases probed within one period
  Real base_distance = 16;  ///< targets live near this magnitude
};

/// Result of an expected-ratio measurement.
struct RandomizedResult {
  Real expected_cr = 0;     ///< sup over phases of mean over offsets
  Real mean_expected_cr = 0;///< mean over phases (the theoretical E is
                            ///< phase-independent; this estimator has
                            ///< far less offset-lattice bias)
  Real worst_phase = 0;     ///< the phase attaining the sup (in [0, 1))
  Real deterministic = 0;   ///< the U = 0 schedule's worst ratio on the
                            ///< same probe set, for contrast
};

/// Expected competitive ratio of the randomly-scaled single-robot
/// doubling-style schedule with expansion factor kappa (> 1): the robot
/// runs the cone zig-zag seeded at kappa^U and a uniformly random
/// initial direction.
[[nodiscard]] RandomizedResult randomized_single_cr(
    Real kappa, const RandomizedOptions& options = {});

/// Same randomization applied to the paper's A(n, f): the whole
/// proportional schedule is scaled by r^U (r = the proportionality
/// ratio) and mirrored with probability 1/2.  Faults remain adversarial
/// PER REALIZATION (the adversary sees the sampled schedule).
[[nodiscard]] RandomizedResult randomized_proportional_cr(
    int n, int f, const RandomizedOptions& options = {});

}  // namespace linesearch

#include "eval/profile.hpp"

#include <algorithm>
#include <cmath>

#include "eval/interval_lines.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

// Append a piece, coalescing with the previous one when it is the exact
// linear continuation.
void push_piece(std::vector<ProfilePiece>& pieces, const ProfilePiece& piece,
                const bool coalesce) {
  if (coalesce && !pieces.empty()) {
    ProfilePiece& last = pieces.back();
    if (last.slope == piece.slope && last.hi == piece.lo &&
        approx_equal(last.value_at_hi(), piece.value_at_lo, 1e-15L)) {
      last.hi = piece.hi;
      return;
    }
  }
  pieces.push_back(piece);
}

}  // namespace

std::vector<ProfilePiece> detection_profile(const Fleet& fleet,
                                            const int faults, const int side,
                                            const ProfileOptions& options) {
  expects(faults >= 0, "detection_profile: faults must be >= 0");
  expects(side == 1 || side == -1, "detection_profile: side must be +-1");
  const auto k = static_cast<std::size_t>(faults);
  expects(k < fleet.size(),
          "detection_profile: fault budget >= fleet size");

  // Build pieces on the MAGNITUDE axis first.  The SoA columns and the
  // cut list are reused across intervals (eval/interval_lines).
  std::vector<ProfilePiece> magnitude_pieces;
  detail::LineColumns columns;
  std::vector<Real> crossings;
  const std::vector<Real> criticals = detail::critical_magnitudes(
      fleet, side, options.window_lo, options.window_hi);
  for (std::size_t i = 0; i + 1 < criticals.size(); ++i) {
    const Real a = criticals[i];
    const Real b = criticals[i + 1];
    // Sub-epsilon bands (e.g. when a turning point's floating value is
    // one ulp away from the window edge) cannot be line-fitted — the two
    // sample abscissae would coincide after rounding.  They have measure
    // ~1e-17 and are skipped.
    if (b - a < std::max(a, Real{1}) * 1e-15L) continue;
    detail::fill_line_columns(fleet, side, a, b, columns);

    // Sub-intervals delimited by order-statistic breakpoints (the
    // crossings arrive sorted and deduplicated; merging the endpoints
    // keeps the cut list sorted-unique).
    std::vector<Real> cuts{a, b};
    detail::line_crossings_into(columns, a, b, crossings);
    cuts.insert(cuts.end(), crossings.begin(), crossings.end());
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    for (std::size_t c = 0; c + 1 < cuts.size(); ++c) {
      const Real lo = cuts[c];
      const Real hi = cuts[c + 1];
      const Real mid = lo + (hi - lo) / 2;
      const Real t_mid = detail::order_statistic_at(columns, mid, k);
      if (std::isinf(t_mid)) {
        if (options.require_finite) {
          throw NumericError(
              "detection_profile: window not (faults+1)-covered");
        }
        continue;
      }
      const std::size_t line_index =
          detail::order_statistic_line(columns, mid, k);
      // line.at(lo) / line.slope, read off the columns.
      const Real value_at_lo =
          columns.value[line_index] +
          columns.slope[line_index] * (lo - columns.anchor[line_index]);
      push_piece(magnitude_pieces,
                 {lo, hi, value_at_lo, columns.slope[line_index]},
                 options.coalesce);
    }
  }
  if (side == 1) return magnitude_pieces;

  // Mirror onto the negative half-line, ordered by increasing signed x.
  std::vector<ProfilePiece> mirrored;
  mirrored.reserve(magnitude_pieces.size());
  for (auto it = magnitude_pieces.rbegin(); it != magnitude_pieces.rend();
       ++it) {
    ProfilePiece piece;
    piece.lo = -it->hi;
    piece.hi = -it->lo;
    piece.value_at_lo = it->value_at_hi();
    piece.slope = -it->slope;
    mirrored.push_back(piece);
  }
  return mirrored;
}

Real profile_max_error(const Fleet& fleet, const int faults,
                       const std::vector<ProfilePiece>& pieces,
                       const int samples_per_piece) {
  expects(samples_per_piece >= 1, "profile_max_error: need >= 1 sample");
  Real worst = 0;
  for (const ProfilePiece& piece : pieces) {
    for (int s = 0; s < samples_per_piece; ++s) {
      const Real x = piece.lo + (piece.hi - piece.lo) *
                                    (static_cast<Real>(s) + 0.5L) /
                                    static_cast<Real>(samples_per_piece);
      // Pieces describe open-interval behavior; a sample that rounds
      // onto the boundary would compare against the other regime.
      if (x <= piece.lo || x >= piece.hi) continue;
      const Real expected = fleet.detection_time(x, faults);
      worst = std::max(worst, std::fabs(piece.at(x) - expected));
    }
  }
  return worst;
}

}  // namespace linesearch

// eval/validation.hpp — theory-vs-measurement validation (experiment E1).
//
// For each (n, f) pair the validator builds the paper's best strategy,
// measures its competitive ratio with the exact evaluator, and compares
// against the closed form (Theorem 1, or 1 for the two-group split).
// The measured value approaches the closed form from below — the supremum
// is a right-limit, so measured = theory * (1 - O(eps)) — and the report
// records the relative gap.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/strategy.hpp"
#include "util/real.hpp"

namespace linesearch {

/// One validated configuration.
struct ValidationRow {
  int n = 0;
  int f = 0;
  std::string strategy;
  Real theory_cr = 0;    ///< closed-form CR (Theorem 1 / trivial 1)
  Real measured_cr = 0;  ///< empirical sup K from measure_cr (probed)
  Real certified_cr = 0; ///< exact sup K from eval/exact (probe-free)
  Real lower_bound = 0;  ///< best proved lower bound for (n, f)
  Real relative_gap = 0; ///< |measured - theory| / theory
  Real certified_gap = 0;///< |certified - theory| / theory
  Real argmax = 0;       ///< placement attaining the measured sup
};

/// Options for the validation sweep.
struct ValidationOptions {
  Real window_hi = 64;      ///< measurement window upper end
  /// Fleet extent = window_hi * factor.  Must exceed r^(f+1) (the probe
  /// just past a turning point tau is detected by the robot turning at
  /// tau * r^(f+1)), which is at most kappa^2 = 16 for the doubling
  /// schedules; 32 leaves margin for every (n, f).
  Real extent_factor = 32;
  Real tolerance = 1e-6L;   ///< max acceptable relative gap
};

/// Validate a single (n, f) configuration with the paper's strategy.
[[nodiscard]] ValidationRow validate_pair(int n, int f,
                                          const ValidationOptions& options = {});

/// Validate every pair in `pairs` (first = n, second = f).
[[nodiscard]] std::vector<ValidationRow> validate_grid(
    const std::vector<std::pair<int, int>>& pairs,
    const ValidationOptions& options = {});

/// All pairs with f < n < 2f+2 for n up to n_max (the proportional
/// regime grid used by benches and property tests).
[[nodiscard]] std::vector<std::pair<int, int>> proportional_regime_pairs(
    int n_max);

}  // namespace linesearch

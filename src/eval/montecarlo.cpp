#include "eval/montecarlo.hpp"

#include <cmath>

#include "eval/cr_eval.hpp"
#include "obs/metrics.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace linesearch {

MonteCarloResult random_fault_study(const Fleet& fleet, const int f,
                                    const MonteCarloOptions& options) {
  expects(f >= 0 && static_cast<std::size_t>(f) < fleet.size(),
          "random_fault_study: need 0 <= f < n");
  expects(options.trials >= 1, "random_fault_study: trials must be >= 1");
  expects(options.target_lo > 0 && options.target_hi > options.target_lo,
          "random_fault_study: bad target window");

  // SplitMix64 end to end (this used to run on std::mt19937_64 +
  // std::uniform_real_distribution / std::bernoulli_distribution, whose
  // streams are implementation-defined — the same seed produced
  // different studies on different standard libraries).
  SplitMix64 rng(options.seed);
  RandomFaults faults(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const Real log_lo = std::log(options.target_lo);
  const Real log_hi = std::log(options.target_hi);

  std::vector<Real> ratios;
  ratios.reserve(static_cast<std::size_t>(options.trials));
  for (int trial = 0; trial < options.trials; ++trial) {
    const Real magnitude = std::exp(rng.uniform(log_lo, log_hi));
    const Real target = rng.chance(0.5L) ? magnitude : -magnitude;
    const std::vector<bool> faulty = faults.choose_faults(fleet, target, f);
    const Real time = fleet.detection_time_with_faults(target, faulty);
    ensures(!std::isinf(time),
            "random_fault_study: undetected target — fleet extent too small");
    ratios.push_back(time / magnitude);
  }

  MonteCarloResult result;
  result.ratio = summarize(ratios);
  result.worst_sample = result.ratio.max;
  result.median = quantile(ratios, 0.5L);
  result.p95 = quantile(ratios, 0.95L);

  CrEvalOptions eval;
  eval.window_lo = options.target_lo;
  eval.window_hi = options.target_hi;
  result.adversarial_cr = measure_cr(fleet, f, eval).cr;
  return result;
}

ProbabilisticMcResult mc_expected_detection_time(
    const Fleet& fleet, const Real target,
    const ProbabilisticMcOptions& options) {
  expects(target != 0, "mc_expected_detection_time: target must be nonzero");
  expects(options.p >= 0 && options.p < 1,
          "mc_expected_detection_time: need 0 <= p < 1");
  expects(options.trials >= 1,
          "mc_expected_detection_time: trials must be >= 1");

  // One fresh schedule per trial: trial seeds come off a SplitMix64
  // sequence so the whole study is a pure function of (seed, trials).
  SplitMix64 seeds(options.seed);
  std::vector<Real> times;
  times.reserve(static_cast<std::size_t>(options.trials));
  ProbabilisticMcResult result;
  result.trials = options.trials;
  for (int trial = 0; trial < options.trials; ++trial) {
    ProbabilisticFaults model({.p = options.p,
                               .seed = seeds.next(),
                               .max_visits = options.max_visits});
    const Real time = model.detection_time(fleet, target, 0);
    if (std::isinf(time)) {
      ++result.undetected;
      continue;
    }
    times.push_back(time);
  }
  LS_OBS_COUNT("eval.montecarlo.probabilistic_trials", options.trials);
  if (!times.empty()) {
    const Summary summary = summarize(times);
    result.mean = summary.mean;
    result.stddev = summary.stddev;
  }
  return result;
}

}  // namespace linesearch

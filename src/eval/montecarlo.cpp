#include "eval/montecarlo.hpp"

#include <cmath>
#include <random>

#include "eval/cr_eval.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"

namespace linesearch {

MonteCarloResult random_fault_study(const Fleet& fleet, const int f,
                                    const MonteCarloOptions& options) {
  expects(f >= 0 && static_cast<std::size_t>(f) < fleet.size(),
          "random_fault_study: need 0 <= f < n");
  expects(options.trials >= 1, "random_fault_study: trials must be >= 1");
  expects(options.target_lo > 0 && options.target_hi > options.target_lo,
          "random_fault_study: bad target window");

  std::mt19937_64 rng(options.seed);
  RandomFaults faults(options.seed ^ 0x9e3779b97f4a7c15ULL);
  std::uniform_real_distribution<double> log_position(
      std::log(static_cast<double>(options.target_lo)),
      std::log(static_cast<double>(options.target_hi)));
  std::bernoulli_distribution coin(0.5);

  std::vector<Real> ratios;
  ratios.reserve(static_cast<std::size_t>(options.trials));
  for (int trial = 0; trial < options.trials; ++trial) {
    const Real magnitude = std::exp(static_cast<Real>(log_position(rng)));
    const Real target = coin(rng) ? magnitude : -magnitude;
    const std::vector<bool> faulty = faults.choose_faults(fleet, target, f);
    const Real time = fleet.detection_time_with_faults(target, faulty);
    ensures(!std::isinf(time),
            "random_fault_study: undetected target — fleet extent too small");
    ratios.push_back(time / magnitude);
  }

  MonteCarloResult result;
  result.ratio = summarize(ratios);
  result.worst_sample = result.ratio.max;
  result.median = quantile(ratios, 0.5L);
  result.p95 = quantile(ratios, 0.95L);

  CrEvalOptions eval;
  eval.window_lo = options.target_lo;
  eval.window_hi = options.target_hi;
  result.adversarial_cr = measure_cr(fleet, f, eval).cr;
  return result;
}

}  // namespace linesearch

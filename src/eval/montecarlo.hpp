// eval/montecarlo.hpp — random-fault studies (extension experiment A3).
//
// The paper's analysis is worst case: the adversary picks the f faulty
// robots.  A natural follow-up question — how much of the competitive
// ratio is adversarial pessimism? — is answered empirically by sampling
// the fault set uniformly at random and recording the distribution of
// detection ratios over random targets.  The worst-case value upper-
// bounds every sample; the gap between the mean and the worst case is
// the "price of adversity".
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/stats.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Options for a Monte-Carlo run.
struct MonteCarloOptions {
  int trials = 1000;          ///< (fault-set, target) samples
  Real target_lo = 1;         ///< targets drawn log-uniform in [lo, hi]
  Real target_hi = 64;
  std::uint64_t seed = 0x5eed'1e55'0123'4567ULL;
};

/// Result of a Monte-Carlo run.
struct MonteCarloResult {
  Summary ratio;            ///< detection_time/|target| over all samples
  Real worst_sample = 0;    ///< max sampled ratio
  Real median = 0;
  Real p95 = 0;
  Real adversarial_cr = 0;  ///< exact worst case on the same window
};

/// Sample detection ratios of `fleet` under uniformly random fault sets
/// of size exactly f and log-uniform random signed targets.  All
/// randomness comes from util/rng.hpp (SplitMix64), so a seed replays
/// the study bit-identically on every platform.
[[nodiscard]] MonteCarloResult random_fault_study(
    const Fleet& fleet, int f, const MonteCarloOptions& options = {});

/// Options of the seeded Monte-Carlo cross-check of eval/expectation.
struct ProbabilisticMcOptions {
  Real p = 0.1L;      ///< per-visit failure probability in [0, 1)
  int trials = 2000;  ///< realized fail schedules sampled
  std::uint64_t seed = 0x5eed'0bab'0123'4567ULL;
  /// Realized visits examined per robot and trial (ProbabilisticFaults'
  /// horizon); a trial whose whole horizon fails counts as undetected.
  std::size_t max_visits = 4096;
};

/// Result of the probabilistic cross-check at one target.
struct ProbabilisticMcResult {
  Real mean = kNaN;    ///< sample mean of the realized detection time
  Real stddev = kNaN;  ///< sample standard deviation (n-1 denominator)
  int trials = 0;
  int undetected = 0;  ///< trials with no successful probe in horizon
};

/// Monte-Carlo estimate of E[T(target)] under per-visit iid failures:
/// each trial realizes one ProbabilisticFaults schedule (trial-indexed
/// SplitMix64 seeds) and records its detection time.  The exact engine
/// (eval/expectation) must agree within the usual CLT bounds — that
/// agreement is the expectation_vs_montecarlo differential.
[[nodiscard]] ProbabilisticMcResult mc_expected_detection_time(
    const Fleet& fleet, Real target,
    const ProbabilisticMcOptions& options = {});

}  // namespace linesearch

#include "eval/validation.hpp"

#include <cmath>

#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/cr_eval.hpp"
#include "eval/exact.hpp"
#include "util/error.hpp"

namespace linesearch {

ValidationRow validate_pair(const int n, const int f,
                            const ValidationOptions& options) {
  expects(options.window_hi > 1, "validate: window_hi must exceed 1");
  expects(options.extent_factor > 1, "validate: extent_factor must exceed 1");

  const StrategyPtr strategy = make_optimal_strategy(n, f);
  const Fleet fleet =
      strategy->build_fleet(options.window_hi * options.extent_factor);

  CrEvalOptions eval;
  eval.window_hi = options.window_hi;
  const CrEvalResult measured = measure_cr(fleet, f, eval);
  const ExactCrResult exact =
      certified_cr(fleet, f, {.window_hi = options.window_hi});

  ValidationRow row;
  row.n = n;
  row.f = f;
  row.strategy = strategy->name();
  row.theory_cr = strategy->theoretical_cr().value_or(kNaN);
  row.measured_cr = measured.cr;
  row.certified_cr = exact.cr;
  row.lower_bound = best_lower_bound(n, f);
  row.argmax = measured.argmax;
  if (std::isnan(row.theory_cr)) {
    row.relative_gap = kNaN;
    row.certified_gap = kNaN;
  } else {
    row.relative_gap =
        std::fabs(row.measured_cr - row.theory_cr) / row.theory_cr;
    row.certified_gap =
        std::fabs(row.certified_cr - row.theory_cr) / row.theory_cr;
  }
  return row;
}

std::vector<ValidationRow> validate_grid(
    const std::vector<std::pair<int, int>>& pairs,
    const ValidationOptions& options) {
  std::vector<ValidationRow> rows;
  rows.reserve(pairs.size());
  for (const auto& [n, f] : pairs) {
    rows.push_back(validate_pair(n, f, options));
  }
  return rows;
}

std::vector<std::pair<int, int>> proportional_regime_pairs(const int n_max) {
  expects(n_max >= 2, "proportional_regime_pairs: n_max must be >= 2");
  std::vector<std::pair<int, int>> pairs;
  for (int n = 2; n <= n_max; ++n) {
    for (int f = 1; f < n; ++f) {
      if (in_proportional_regime(n, f)) pairs.emplace_back(n, f);
    }
  }
  return pairs;
}

}  // namespace linesearch

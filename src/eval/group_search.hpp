// eval/group_search.hpp — the LAST-arrival ("group search") variant.
//
// The paper's related work cites Chrobak, Gasieniec, Gorry and Martin
// ("Group search on the line", SOFSEM 2015): the search ends only when
// the LAST searcher reaches the target (think: the whole team must
// assemble at the exit).  Their result — having many searchers does not
// beat the single-robot bound 9 — is reproduced here empirically:
//
//   * group doubling (everyone together) achieves exactly 9 under
//     last-arrival semantics, and
//   * the paper's A(n, f), optimized for FIRST-reliable-arrival, is much
//     worse under last-arrival (robots are spread out by design, so the
//     farthest-committed robot pays a long detour), quantifying how the
//     two objectives pull schedules in opposite directions.
//
// Faults are irrelevant to last-arrival semantics (every robot must
// arrive anyway), so the API takes no fault budget.
#pragma once

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Time by which EVERY robot of the fleet has visited x at least once
/// (kInfinity if any robot never does).
[[nodiscard]] Real last_arrival_time(const Fleet& fleet, Real x);

/// Empirical competitive ratio under last-arrival semantics:
/// sup over the window of last_arrival_time(x)/|x|, probed like
/// measure_cr (turning-point right-limits + interior samples).
[[nodiscard]] CrEvalResult measure_group_cr(const Fleet& fleet,
                                            const CrEvalOptions& options = {});

}  // namespace linesearch

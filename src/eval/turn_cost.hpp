// eval/turn_cost.hpp — search with turn cost (extension study).
//
// The paper's related work cites Demaine, Fekete and Gal, "Online
// searching with turn cost": every direction reversal costs an extra
// `c` time units (deceleration/turnaround).  Under this model a robot's
// effective arrival at x is its geometric visit time plus c times the
// number of turns it performed strictly before that visit, and the
// fault-tolerant detection time is the usual (f+1)-st order statistic of
// the effective first visits.
//
// The interesting effect for proportional schedules: turn cost penalizes
// small expansion factors (many turns per distance).  Near the minimum
// target distance every schedule's detector has performed the same two
// prefix turns, so beta* stays optimal there; on target windows away
// from the origin the accumulated turn charge dominates and the optimal
// cone parameter shifts BELOW the paper's beta* = (4f+4)/n - 1 (smaller
// beta => larger kappa => sparser turning points).  bench_turn_cost
// sweeps (beta, c) to exhibit the shifted optimum.
#pragma once

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Effective first-visit time of `robot` at x under turn cost c:
/// first geometric visit time + c * (turns strictly before it).
/// Returns kInfinity if the robot never reaches x.
[[nodiscard]] Real turn_cost_first_visit(const Trajectory& robot, Real x,
                                         Real cost_per_turn);

/// Worst-case detection time at x with up to `faults` adversarial faults
/// under turn cost c: the (faults+1)-st smallest effective first visit.
[[nodiscard]] Real turn_cost_detection(const Fleet& fleet, Real x,
                                       int faults, Real cost_per_turn);

/// Empirical competitive ratio under turn cost: sup over the window of
/// turn_cost_detection(x)/|x|, probed like measure_cr (turning-point
/// right-limits + interior samples).  With cost_per_turn == 0 this
/// coincides with measure_cr exactly.
[[nodiscard]] CrEvalResult measure_cr_with_turn_cost(
    const Fleet& fleet, int faults, Real cost_per_turn,
    const CrEvalOptions& options = {});

}  // namespace linesearch

// eval/profile.hpp — exact piecewise-linear detection-time profiles.
//
// T_k(x), the time by which k distinct robots have visited x, is
// piecewise linear in x: within a critical interval (no waypoint
// positions inside) every robot's first-visit time is linear, and the
// k-th order statistic of linear functions is piecewise linear with
// breakpoints at line crossings.  This module extracts that structure
// EXACTLY — a list of linear pieces — instead of sampling it.  It is the
// geometry of the paper's Figure-4 "tower" (the boundary of the region
// seen by >= f+1 robots), and the same machinery behind eval/exact's
// certified suprema, exposed as a reusable artifact for plots, SVG
// export and downstream analysis.
#pragma once

#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// One maximal linear piece of a profile: t(x) = value_at_lo + slope *
/// (x - lo) for lo <= x < hi.  `x` here is the SIGNED position.
struct ProfilePiece {
  Real lo = 0;
  Real hi = 0;
  Real value_at_lo = 0;
  Real slope = 0;

  [[nodiscard]] Real at(const Real x) const {
    return value_at_lo + slope * (x - lo);
  }
  [[nodiscard]] Real value_at_hi() const { return at(hi); }
};

/// Options for profile extraction.
struct ProfileOptions {
  Real window_lo = 1;   ///< smallest |x|
  Real window_hi = 16;  ///< largest |x|
  /// Pieces whose detection never happens are dropped when false;
  /// with true they trigger a NumericError.
  bool require_finite = true;
  /// Merge adjacent pieces that continue each other (same slope, value
  /// continuous) into one.
  bool coalesce = true;
};

/// Exact piecewise representation of T_{faults+1}(x) on one side of the
/// line (side = +1: window_lo <= x <= window_hi; side = -1: mirrored,
/// pieces reported with negative coordinates, lo > hi magnitudes kept
/// ordered by increasing signed x).
[[nodiscard]] std::vector<ProfilePiece> detection_profile(
    const Fleet& fleet, int faults, int side,
    const ProfileOptions& options = {});

/// Verification helper: maximum |piece value - fleet.detection_time|
/// over `samples` per piece (tests use it to certify the extraction).
[[nodiscard]] Real profile_max_error(const Fleet& fleet, int faults,
                                     const std::vector<ProfilePiece>& pieces,
                                     int samples_per_piece = 4);

}  // namespace linesearch

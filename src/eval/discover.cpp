#include "eval/discover.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/optimize.hpp"
#include "core/competitive.hpp"
#include "core/custom.hpp"
#include "eval/exact.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {

Real offsets_cr(const Real beta, const std::vector<Real>& magnitudes,
                const int f) {
  const Real kappa = expansion_factor(beta);
  const Real period = kappa * kappa;
  // One multiplicative period of the turning grid captures the sup; the
  // extent leaves room for the (f+1)-st visitor of the farthest probe.
  const Real window_hi = period * 1.05L;
  const Fleet fleet =
      build_cone_fleet(beta, magnitudes, window_hi * period * 2);
  return certified_cr(fleet, f, {.window_hi = window_hi}).cr;
}

namespace {

// The search space: n positive "gap shares".  Shares map to log-space
// gaps g_i = log_period * w_i / sum(w), and the magnitudes are the
// cumulative exponentials s_k = exp(g_0 + ... + g_{k-1}), s_0 = 1.  The
// map is shift-invariant in z (one redundant dimension), unconstrained,
// and the proportional schedule is exactly the all-equal-shares point.
std::vector<Real> shares_to_magnitudes(const std::vector<Real>& z,
                                       const Real log_period) {
  std::vector<Real> weights;
  weights.reserve(z.size());
  Real total = 0;
  for (const Real zi : z) {
    const Real w = std::exp(zi);
    weights.push_back(w);
    total += w;
  }
  std::vector<Real> magnitudes;
  magnitudes.reserve(z.size());
  Real theta = 0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    magnitudes.push_back(std::exp(theta));
    theta += log_period * weights[i] / total;
  }
  return magnitudes;
}

}  // namespace

DiscoveryResult discover_schedule(const int n, const int f,
                                  const DiscoveryOptions& options) {
  expects(in_proportional_regime(n, f),
          "discover_schedule requires f < n < 2f+2");
  expects(options.max_sweeps >= 1, "discover: need at least one sweep");

  const Real beta = optimal_beta(n, f);
  const Real kappa = expansion_factor(beta);
  const Real log_period = 2 * std::log(kappa);

  DiscoveryResult result;
  const auto objective = [&](const std::vector<Real>& z) {
    ++result.evaluations;
    return offsets_cr(beta, shares_to_magnitudes(z, log_period), f);
  };

  // Naive starting point: UNIFORM (arithmetic) magnitudes 1 + i*span/n,
  // expressed as gap shares.
  std::vector<Real> start(static_cast<std::size_t>(n), 0);
  {
    std::vector<Real> theta(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 1; i < n; ++i) {
      theta[static_cast<std::size_t>(i)] =
          std::log(1 + (kappa * kappa - 1) * static_cast<Real>(i) /
                           static_cast<Real>(n));
    }
    theta[static_cast<std::size_t>(n)] = log_period;
    for (int i = 0; i < n; ++i) {
      const auto index = static_cast<std::size_t>(i);
      start[index] = std::log(theta[index + 1] - theta[index]);
    }
  }
  result.initial_cr =
      offsets_cr(beta, shares_to_magnitudes(start, log_period), f);

  // Nelder-Mead over gap shares (unconstrained, so no ordering coupling),
  // restarted around its own optimum to escape the simplex collapsing on
  // one of the sawtooth ridges.
  NelderMeadOptions nm;
  nm.tolerance = 1e-13L;
  nm.max_iterations = 500 * n;
  std::vector<Real> best_z = start;
  Real best = result.initial_cr;
  for (int restart = 0; restart < options.max_sweeps; ++restart) {
    ++result.sweeps;
    nm.initial_step = (restart == 0) ? 0.6L : 0.15L;
    const MinimizeNdResult found = nelder_mead(objective, best_z, nm);
    if (found.fx < best - options.tolerance) {
      best = found.fx;
      best_z = found.x;
    } else {
      if (found.fx < best) {
        best = found.fx;
        best_z = found.x;
      }
      break;
    }
  }

  result.cr = best;
  result.magnitudes = shares_to_magnitudes(best_z, log_period);
  std::sort(result.magnitudes.begin(), result.magnitudes.end());
  for (std::size_t i = 0; i + 1 < result.magnitudes.size(); ++i) {
    result.ratios.push_back(result.magnitudes[i + 1] /
                            result.magnitudes[i]);
  }
  result.ratios.push_back(kappa * kappa / result.magnitudes.back());
  return result;
}

}  // namespace linesearch

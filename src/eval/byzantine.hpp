// eval/byzantine.hpp — Byzantine (quorum) competitive-ratio evaluation.
//
// Under the lying fault model (sim/faults.hpp, arXiv:1611.08209) the
// team confirms the target only at the quorum instant: the (f+1)-st
// distinct corroborating visit among honest robots, worst case over
// liar sets = the (2f+1)-st distinct first visit overall.  The quorum
// CR is therefore sup K_q(x) = T_{2f+1}(x)/|x| — the SAME probe scan as
// measure_cr, run at the doubled budget 2f, so every analytic backend
// answers it exactly:
//
//   * feasibility: n >= 2f+1 robots or no quorum ever forms (CR = inf,
//     the impossibility half of the reproduced bounds);
//   * within the paper's proportional regime f < n < 2f+2, the only
//     feasible pairs sit on the diagonal n = 2f+1, where the Lemma-5
//     machinery applies verbatim at budget 2f:
//         CR_byz(2f+1, f) = schedule_cr(2f+1, 2f, beta)
//     (the pair (2f+1, 2f) is itself in regime) — the upper-bound half,
//     which byzantine_theory_cr exposes and the sweep certifies.
#pragma once

#include <vector>

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Result of one Byzantine CR measurement.
struct ByzantineCrResult {
  bool feasible = false;  ///< n >= 2f+1 (quorum reachable at all)
  Real cr = kInfinity;    ///< sup T_{2f+1}(x)/|x|; kInfinity if infeasible
  Real argmax = 0;        ///< signed probe attaining it (when finite)
  int probes = 0;
  int undetected_probes = 0;  ///< probes whose quorum never forms
};

/// Measure the quorum CR of `fleet` with lie budget f over the options'
/// window.  Answered analytically as measure_cr at budget 2f with
/// require_finite forced off (infeasible teams report kInfinity instead
/// of throwing).
[[nodiscard]] ByzantineCrResult measure_byzantine_cr(
    const Fleet& fleet, int f, const CrEvalOptions& options = {});

/// The reproduced upper bound: schedule_cr(n, 2f, beta*(n, f)) on the
/// feasible diagonal n = 2f+1 of the proportional regime, kInfinity
/// everywhere else (n < 2f+1 is the impossibility bound; n > 2f+1
/// leaves the regime).
[[nodiscard]] Real byzantine_theory_cr(int n, int f);

/// One row of the Byzantine sweep.
struct ByzantineSweepRow {
  int n = 0;
  int f = 0;
  bool feasible = false;       ///< n >= 2f+1
  Real measured_cr = kInfinity;
  Real theory_cr = kInfinity;  ///< byzantine_theory_cr(n, f)
  Real ratio_to_theory = kNaN; ///< measured / theory when both finite
};

struct ByzantineSweepOptions {
  int n_max = 8;       ///< regime grid bound (41 pairs at 12)
  Real window_hi = 16; ///< CR measurement window
};

/// Sweep every regime pair (n <= n_max): quorum CR of A(n, f) on the
/// unbounded analytic backend vs. the reproduced bound.
[[nodiscard]] std::vector<ByzantineSweepRow> byzantine_sweep(
    const ByzantineSweepOptions& options = {});

}  // namespace linesearch

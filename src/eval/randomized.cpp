#include "eval/randomized.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/competitive.hpp"
#include "core/custom.hpp"
#include "core/proportional.hpp"
#include "sim/fleet.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

void check_options(const RandomizedOptions& options) {
  expects(options.offset_samples >= 2, "randomized: need >= 2 offsets");
  expects(options.phase_samples >= 2, "randomized: need >= 2 phases");
  expects(options.base_distance > 1, "randomized: base distance > 1");
}

}  // namespace

RandomizedResult randomized_single_cr(const Real kappa,
                                      const RandomizedOptions& options) {
  expects(kappa > 1, "randomized_single_cr: kappa must exceed 1");
  check_options(options);
  const Real beta = beta_for_expansion(kappa);

  // The same-side turning lattice has multiplicative period kappa^2, so
  // the scale is kappa^(2U), U ~ Uniform[0,1) — midpoint quadrature.
  std::vector<Fleet> realizations;
  realizations.reserve(static_cast<std::size_t>(options.offset_samples));
  const Real extent = options.base_distance * kappa * kappa * kappa;
  for (int j = 0; j < options.offset_samples; ++j) {
    const Real u = (static_cast<Real>(j) + 0.5L) /
                   static_cast<Real>(options.offset_samples);
    const Real seed = std::pow(kappa, 2 * u);
    realizations.emplace_back(std::vector<Trajectory>{make_cone_zigzag(
        {.beta = beta, .first_turn = seed, .min_coverage = extent})});
  }

  // Deterministic contrast: the U = 0 schedule (seed 1, no mirror).
  const Fleet deterministic(std::vector<Trajectory>{make_cone_zigzag(
      {.beta = beta, .first_turn = 1, .min_coverage = extent})});

  RandomizedResult result;
  for (int p = 0; p < options.phase_samples; ++p) {
    const Real phase = static_cast<Real>(p) /
                       static_cast<Real>(options.phase_samples);
    const Real x = options.base_distance * std::pow(kappa, 2 * phase);
    Real mean = 0;
    for (const Fleet& fleet : realizations) {
      // Coin-flip mirror == averaging the two target signs.
      const Real plus = fleet.detection_time(x, 0) / x;
      const Real minus = fleet.detection_time(-x, 0) / x;
      ensures(std::isfinite(plus) && std::isfinite(minus),
              "randomized_single_cr: extent too small");
      mean += (plus + minus) / 2;
    }
    mean /= static_cast<Real>(options.offset_samples);
    result.mean_expected_cr += mean / static_cast<Real>(options.phase_samples);
    if (mean > result.expected_cr) {
      result.expected_cr = mean;
      result.worst_phase = phase;
    }
    result.deterministic = std::max(
        result.deterministic,
        std::max(deterministic.detection_time(x, 0) / x,
                 deterministic.detection_time(-x, 0) / x));
  }
  return result;
}

RandomizedResult randomized_proportional_cr(
    const int n, const int f, const RandomizedOptions& options) {
  expects(in_proportional_regime(n, f),
          "randomized_proportional_cr requires f < n < 2f+2");
  check_options(options);
  const Real beta = optimal_beta(n, f);
  const Real r = proportionality_ratio(n, beta);

  // The global positive turning grid has multiplicative period r, so
  // scaling every first turn by r^U uniformizes the phase.
  const Real extent =
      options.base_distance * std::pow(r, static_cast<Real>(f) + 3) * 2;
  std::vector<Fleet> realizations;
  realizations.reserve(static_cast<std::size_t>(options.offset_samples));
  for (int j = 0; j < options.offset_samples; ++j) {
    const Real u = (static_cast<Real>(j) + 0.5L) /
                   static_cast<Real>(options.offset_samples);
    std::vector<Real> magnitudes;
    for (int i = 0; i < n; ++i) {
      magnitudes.push_back(std::pow(r, u + static_cast<Real>(i)));
    }
    realizations.push_back(build_cone_fleet(beta, magnitudes, extent));
  }
  const Fleet deterministic = build_cone_fleet(
      beta,
      [&] {
        std::vector<Real> magnitudes;
        for (int i = 0; i < n; ++i) {
          magnitudes.push_back(std::pow(r, static_cast<Real>(i)));
        }
        return magnitudes;
      }(),
      extent);

  RandomizedResult result;
  for (int p = 0; p < options.phase_samples; ++p) {
    const Real phase = static_cast<Real>(p) /
                       static_cast<Real>(options.phase_samples);
    const Real x = options.base_distance * std::pow(r, phase);
    Real mean = 0;
    for (const Fleet& fleet : realizations) {
      const Real plus = fleet.detection_time(x, f) / x;
      const Real minus = fleet.detection_time(-x, f) / x;
      ensures(std::isfinite(plus) && std::isfinite(minus),
              "randomized_proportional_cr: extent too small");
      mean += (plus + minus) / 2;
    }
    mean /= static_cast<Real>(options.offset_samples);
    result.mean_expected_cr += mean / static_cast<Real>(options.phase_samples);
    if (mean > result.expected_cr) {
      result.expected_cr = mean;
      result.worst_phase = phase;
    }
    result.deterministic = std::max(
        result.deterministic,
        std::max(deterministic.detection_time(x, f) / x,
                 deterministic.detection_time(-x, f) / x));
  }
  return result;
}

}  // namespace linesearch

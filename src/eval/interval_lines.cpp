#include "eval/interval_lines.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace linesearch::detail {

std::vector<Real> critical_magnitudes(const Fleet& fleet, const int side,
                                      const Real window_lo,
                                      const Real window_hi) {
  expects(side == 1 || side == -1, "critical_magnitudes: side must be +-1");
  expects(window_lo > 0 && window_hi > window_lo,
          "critical_magnitudes: bad window");
  std::vector<Real> criticals{window_lo, window_hi};
  for (const Trajectory& robot : fleet.robots()) {
    // Windowed enumeration: finite even on unbounded analytic backends,
    // and the same waypoint set a dense backend would yield.
    for (const Real position : robot.waypoint_positions_within(window_hi)) {
      if (sign_of(position) == side) {
        const Real magnitude = std::fabs(position);
        if (magnitude > window_lo && magnitude < window_hi) {
          criticals.push_back(magnitude);
        }
      }
    }
  }
  std::sort(criticals.begin(), criticals.end());
  criticals.erase(std::unique(criticals.begin(), criticals.end()),
                  criticals.end());
  LS_OBS_COUNT("eval.interval_lines.critical_magnitudes", criticals.size());
  return criticals;
}

std::vector<VisitLine> visit_lines(const Fleet& fleet, const int side,
                                   const Real a, const Real b) {
  const Real x1 = a + (b - a) / 2;
  const Real x2 = a + (b - a) / 4;
  std::vector<VisitLine> lines;
  lines.reserve(fleet.size());
  for (const Trajectory& robot : fleet.robots()) {
    const std::optional<Real> t1 =
        robot.first_visit_time(static_cast<Real>(side) * x1);
    const std::optional<Real> t2 =
        robot.first_visit_time(static_cast<Real>(side) * x2);
    VisitLine line;
    if (t1 && t2) {
      line.finite = true;
      line.anchor = x1;
      line.value = *t1;
      line.slope = (*t1 - *t2) / (x1 - x2);
    }
    lines.push_back(line);
  }
  // One interval-line segment per robot per inter-critical interval: the
  // certified evaluator's unit of work (Theorem-1-style decomposition).
  LS_OBS_COUNT("eval.interval_lines.segments", lines.size());
  return lines;
}

Real order_statistic_at(const std::vector<VisitLine>& lines, const Real x,
                        const std::size_t k) {
  std::vector<Real> values;
  values.reserve(lines.size());
  for (const VisitLine& line : lines) values.push_back(line.at(x));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return values[static_cast<std::ptrdiff_t>(k)];
}

std::size_t order_statistic_line(const std::vector<VisitLine>& lines,
                                 const Real x, const std::size_t k) {
  const Real value = order_statistic_at(lines, x, k);
  // Pinned tie-break: the LOWEST index whose value at x equals the
  // statistic bit-for-bit.  The forward scan re-evaluates the identical
  // expression VisitLine::at used inside order_statistic_at, so the
  // first hit is exactly the lowest-index attainer.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].at(x) == value) return i;
  }
  ensures(false, "order statistic line not found");
  return 0;
}

std::vector<Real> line_crossings(const std::vector<VisitLine>& lines,
                                 const Real a, const Real b) {
  std::vector<Real> crossings;
  for (std::size_t p = 0; p < lines.size(); ++p) {
    if (!lines[p].finite) continue;
    for (std::size_t q = p + 1; q < lines.size(); ++q) {
      if (!lines[q].finite) continue;
      const Real slope_gap = lines[p].slope - lines[q].slope;
      if (slope_gap == 0) continue;
      const Real cross = lines[p].anchor +
                         (lines[q].at(lines[p].anchor) - lines[p].value) /
                             slope_gap;
      if (cross > a && cross < b) crossings.push_back(cross);
    }
  }
  // Sorted, exact-deduplicated: symmetric fleets routinely cross several
  // line pairs at the bit-identical abscissa, and a duplicate crossing
  // would double-split every downstream certified interval.
  std::sort(crossings.begin(), crossings.end());
  crossings.erase(std::unique(crossings.begin(), crossings.end()),
                  crossings.end());
  LS_OBS_COUNT("eval.interval_lines.crossings", crossings.size());
  return crossings;
}

void fill_line_columns(const Fleet& fleet, const int side, const Real a,
                       const Real b, LineColumns& columns) {
  const Real x1 = a + (b - a) / 2;
  const Real x2 = a + (b - a) / 4;
  const std::size_t robots = fleet.size();
  columns.anchor.assign(robots, 0);
  columns.value.assign(robots, 0);
  columns.slope.assign(robots, 0);
  columns.finite.assign(robots, 0);
  // Both sample abscissae in one sorted batch: a single frontier sweep
  // per robot answers them together, bit-identical to two scalar
  // first_visit_time calls (x1 > x2 > a > 0, so the signed order is
  // fixed by the side).
  std::array<Real, 2> xs{static_cast<Real>(side) * x1,
                         static_cast<Real>(side) * x2};
  if (xs[0] > xs[1]) std::swap(xs[0], xs[1]);
  const std::size_t slot1 = side > 0 ? 1 : 0;  // index of side*x1 in xs
  std::array<Real, 2> times{};
  for (std::size_t r = 0; r < robots; ++r) {
    fleet.robot(r).first_visit_times_into(xs.data(), 2, times.data());
    const Real t1 = times[slot1];
    const Real t2 = times[1 - slot1];
    if (!std::isinf(t1) && !std::isinf(t2)) {
      columns.finite[r] = 1;
      columns.anchor[r] = x1;
      columns.value[r] = t1;
      columns.slope[r] = (t1 - t2) / (x1 - x2);
    }
  }
  // Same unit-of-work counter as the AoS visit_lines fit.
  LS_OBS_COUNT("eval.interval_lines.segments", robots);
}

void evaluate_lines(LineColumns& columns, const Real x) {
  const std::size_t count = columns.size();
  columns.at.resize(count);
  const Real* anchor = columns.anchor.data();
  const Real* value = columns.value.data();
  const Real* slope = columns.slope.data();
  const unsigned char* finite = columns.finite.data();
  Real* at = columns.at.data();
  // Elementwise VisitLine::at — identical expression, parallel arrays.
  LS_SIMD_LOOP
  for (std::size_t i = 0; i < count; ++i) {
    at[i] = finite[i] != 0 ? value[i] + slope[i] * (x - anchor[i])
                           : kInfinity;
  }
}

Real order_statistic_at(LineColumns& columns, const Real x,
                        const std::size_t k) {
  evaluate_lines(columns, x);
  columns.ranked = columns.at;
  std::nth_element(columns.ranked.begin(),
                   columns.ranked.begin() + static_cast<std::ptrdiff_t>(k),
                   columns.ranked.end());
  return columns.ranked[static_cast<std::ptrdiff_t>(k)];
}

std::size_t order_statistic_line(LineColumns& columns, const Real x,
                                 const std::size_t k) {
  const Real value = order_statistic_at(columns, x, k);
  // Lowest-index-among-attainers over the evaluated column — the pinned
  // tie-break shared with the AoS overload.
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns.at[i] == value) return i;
  }
  ensures(false, "order statistic line not found");
  return 0;
}

void line_crossings_into(const LineColumns& columns, const Real a,
                         const Real b, std::vector<Real>& out) {
  out.clear();
  const std::size_t count = columns.size();
  for (std::size_t p = 0; p < count; ++p) {
    if (columns.finite[p] == 0) continue;
    for (std::size_t q = p + 1; q < count; ++q) {
      if (columns.finite[q] == 0) continue;
      const Real slope_gap = columns.slope[p] - columns.slope[q];
      if (slope_gap == 0) continue;
      // lines[q].at(lines[p].anchor), spelled over the columns.
      const Real q_at_p = columns.value[q] +
                          columns.slope[q] * (columns.anchor[p] -
                                              columns.anchor[q]);
      const Real cross =
          columns.anchor[p] + (q_at_p - columns.value[p]) / slope_gap;
      if (cross > a && cross < b) out.push_back(cross);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  LS_OBS_COUNT("eval.interval_lines.crossings", out.size());
}

}  // namespace linesearch::detail

#include "eval/interval_lines.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace linesearch::detail {

std::vector<Real> critical_magnitudes(const Fleet& fleet, const int side,
                                      const Real window_lo,
                                      const Real window_hi) {
  expects(side == 1 || side == -1, "critical_magnitudes: side must be +-1");
  expects(window_lo > 0 && window_hi > window_lo,
          "critical_magnitudes: bad window");
  std::vector<Real> criticals{window_lo, window_hi};
  for (const Trajectory& robot : fleet.robots()) {
    // Windowed enumeration: finite even on unbounded analytic backends,
    // and the same waypoint set a dense backend would yield.
    for (const Real position : robot.waypoint_positions_within(window_hi)) {
      if (sign_of(position) == side) {
        const Real magnitude = std::fabs(position);
        if (magnitude > window_lo && magnitude < window_hi) {
          criticals.push_back(magnitude);
        }
      }
    }
  }
  std::sort(criticals.begin(), criticals.end());
  criticals.erase(std::unique(criticals.begin(), criticals.end()),
                  criticals.end());
  LS_OBS_COUNT("eval.interval_lines.critical_magnitudes", criticals.size());
  return criticals;
}

std::vector<VisitLine> visit_lines(const Fleet& fleet, const int side,
                                   const Real a, const Real b) {
  const Real x1 = a + (b - a) / 2;
  const Real x2 = a + (b - a) / 4;
  std::vector<VisitLine> lines;
  lines.reserve(fleet.size());
  for (const Trajectory& robot : fleet.robots()) {
    const std::optional<Real> t1 =
        robot.first_visit_time(static_cast<Real>(side) * x1);
    const std::optional<Real> t2 =
        robot.first_visit_time(static_cast<Real>(side) * x2);
    VisitLine line;
    if (t1 && t2) {
      line.finite = true;
      line.anchor = x1;
      line.value = *t1;
      line.slope = (*t1 - *t2) / (x1 - x2);
    }
    lines.push_back(line);
  }
  // One interval-line segment per robot per inter-critical interval: the
  // certified evaluator's unit of work (Theorem-1-style decomposition).
  LS_OBS_COUNT("eval.interval_lines.segments", lines.size());
  return lines;
}

Real order_statistic_at(const std::vector<VisitLine>& lines, const Real x,
                        const std::size_t k) {
  std::vector<Real> values;
  values.reserve(lines.size());
  for (const VisitLine& line : lines) values.push_back(line.at(x));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(k),
                   values.end());
  return values[static_cast<std::ptrdiff_t>(k)];
}

std::size_t order_statistic_line(const std::vector<VisitLine>& lines,
                                 const Real x, const std::size_t k) {
  const Real value = order_statistic_at(lines, x, k);
  // Among lines attaining <= value, the k-th in sorted order is the one
  // whose value equals the order statistic; pick the first such line.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].at(x) == value) return i;
  }
  ensures(false, "order statistic line not found");
  return 0;
}

std::vector<Real> line_crossings(const std::vector<VisitLine>& lines,
                                 const Real a, const Real b) {
  std::vector<Real> crossings;
  for (std::size_t p = 0; p < lines.size(); ++p) {
    if (!lines[p].finite) continue;
    for (std::size_t q = p + 1; q < lines.size(); ++q) {
      if (!lines[q].finite) continue;
      const Real slope_gap = lines[p].slope - lines[q].slope;
      if (slope_gap == 0) continue;
      const Real cross = lines[p].anchor +
                         (lines[q].at(lines[p].anchor) - lines[p].value) /
                             slope_gap;
      if (cross > a && cross < b) crossings.push_back(cross);
    }
  }
  LS_OBS_COUNT("eval.interval_lines.crossings", crossings.size());
  return crossings;
}

}  // namespace linesearch::detail

#include "eval/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace linesearch::kernels {

bool simd_compiled() noexcept { return kSimdCompiled; }

ProbeBatch build_probe_batch(const Fleet& fleet,
                             const CrEvalOptions& options) {
  ProbeBatch batch;
  for (const int side : {+1, -1}) {
    const std::vector<Real> magnitudes =
        detail::probe_magnitudes(fleet, side, options);
    if (side > 0) batch.positive_count = magnitudes.size();
    batch.magnitudes.insert(batch.magnitudes.end(), magnitudes.begin(),
                            magnitudes.end());
    batch.sides.insert(batch.sides.end(), magnitudes.size(),
                       static_cast<std::int8_t>(side));
  }
  return batch;
}

void fill_visit_columns(const Fleet& fleet, const int f,
                        const ProbeBatch& batch, VisitColumns& columns) {
  expects(f >= 0, "fill_visit_columns: f must be >= 0");
  const std::size_t robots = fleet.size();
  const std::size_t total = batch.size();
  columns.detection.assign(total, kInfinity);
  const auto k = static_cast<std::size_t>(f);
  // Mirrors Fleet::detection_time: with fewer than f+1 robots every
  // probe stays undetected.
  if (k >= robots || total == 0) return;

  // Position-sorted permutation over the WHOLE batch.  Each side is
  // sorted by magnitude separately (the emission order is nearly
  // sorted, which std::sort digests well; sorting the concatenated
  // signed positions directly would hand introsort an organ-pipe input
  // that degenerates to heapsort), then the negative side is reversed
  // into place: descending magnitude = ascending signed position.
  // Magnitudes are positive and exact-deduplicated per side, so the
  // order is strict and unambiguous.
  const Real* magnitudes = batch.magnitudes.data();
  const std::int8_t* sides = batch.sides.data();
  const std::size_t positives = batch.positive_count;
  columns.order.resize(total);
  std::uint32_t* order = columns.order.data();
  std::iota(order, order + total, 0U);
  const auto by_magnitude = [magnitudes](const std::uint32_t p,
                                         const std::uint32_t q) {
    return magnitudes[p] < magnitudes[q];
  };
  // iota seeded batch order, so positive-probe indices occupy
  // order[0, positives) and negative-probe indices the rest.
  std::sort(order, order + positives, by_magnitude);
  std::sort(order + positives, order + total, by_magnitude);
  std::reverse(order + positives, order + total);
  // Negatives come first on the signed line; rotate them to the front.
  std::rotate(order, order + positives, order + total);
  columns.sorted_x.resize(total);
  for (std::size_t p = 0; p < total; ++p) {
    // Same product the scalar scan feeds its oracle.
    const std::uint32_t i = order[p];
    columns.sorted_x[p] = static_cast<Real>(sides[i]) * magnitudes[i];
  }

  // Per-probe (f+1)-st order statistic, streamed: ONE frontier sweep
  // per robot answers both half-lines at once (the sweep's coverage
  // interval grows both ways from the start, walking the segment list a
  // single time with early exit) into a single reused row, and the row
  // is folded into the selection scratch before the next robot sweeps.
  // The robots x probes visit matrix is never materialized.
  //
  // The selection keeps a sorted scratch of each probe's
  // min(k + 1, robots - k) extreme values — whichever side of the order
  // statistic is cheaper — and reads the answer off its edge.  Like
  // nth_element, this returns the k-th smallest VALUE of the probe's
  // multiset with no arithmetic on the times, so any exact selection
  // algorithm (this one, nth_element, analysis/stats kth_smallest) is
  // bit-identical.
  const bool from_below = k + 1 <= robots - k;
  const std::size_t limit = from_below ? k + 1 : robots - k;
  columns.first_visits.resize(total);
  columns.selection.resize(limit * total);
  Real* row = columns.first_visits.data();
  Real* scratch = columns.selection.data();
  // Row r's fill level is uniformly min(r, limit) across every probe's
  // scratch (the contiguous `limit` entries at p * limit) — no
  // per-probe counters.
  for (std::size_t r = 0; r < robots; ++r) {
    fleet.robot(r).first_visit_times_into(columns.sorted_x.data(), total, row);
    const std::size_t filled = r < limit ? r : limit;
    if (from_below) {
      // scratch = the `limit` smallest seen, ascending; answer is the
      // last entry (rank k).
      for (std::size_t p = 0; p < total; ++p) {
        Real* s = scratch + p * limit;
        const Real time = row[p];
        std::size_t at;
        if (filled < limit) {
          at = filled;
        } else if (time < s[limit - 1]) {
          at = limit - 1;
        } else {
          continue;
        }
        while (at > 0 && s[at - 1] > time) {
          s[at] = s[at - 1];
          --at;
        }
        s[at] = time;
      }
    } else {
      // scratch = the `limit` largest seen, ascending; the first entry
      // has rank robots - limit = k.
      for (std::size_t p = 0; p < total; ++p) {
        Real* s = scratch + p * limit;
        const Real time = row[p];
        std::size_t at;
        if (filled < limit) {
          at = filled;
          while (at > 0 && s[at - 1] > time) {
            s[at] = s[at - 1];
            --at;
          }
        } else if (time > s[0]) {
          at = 0;
          while (at + 1 < limit && s[at + 1] < time) {
            s[at] = s[at + 1];
            ++at;
          }
        } else {
          continue;
        }
        s[at] = time;
      }
    }
  }
  const std::size_t answer_at = from_below ? limit - 1 : 0;
  for (std::size_t p = 0; p < total; ++p) {
    columns.detection[columns.order[p]] = scratch[p * limit + answer_at];
  }
}

CrEvalResult measure_cr_kernel(const Fleet& fleet, const int f,
                               const CrEvalOptions& options) {
  // Same preconditions, span, counters and scan semantics as
  // detail::measure_cr_with — only the detection times are precomputed
  // in bulk instead of queried one probe at a time.
  expects(f >= 0, "measure_cr: f must be >= 0");
  expects(options.window_lo > 0, "measure_cr: window_lo must be positive");
  expects(options.window_hi > options.window_lo,
          "measure_cr: window_hi must exceed window_lo");
  LS_OBS_SPAN("eval.cr.scan");

  const ProbeBatch batch = build_probe_batch(fleet, options);
  // Reused across calls on each thread so the robots x probes matrix is
  // allocated once per thread, not once per scan.  Results are written
  // before they are read each call, so reuse cannot leak state.
  static thread_local VisitColumns columns;
  fill_visit_columns(fleet, f, batch, columns);

  CrEvalResult result;
  Real pos_best_x = 0;
  Real neg_best_x = 0;
  std::uint64_t refinements = 0;
  for (const int side : {+1, -1}) {
    const std::size_t begin = side > 0 ? 0 : batch.positive_count;
    const std::size_t end = side > 0 ? batch.positive_count : batch.size();
    Real best = 0;
    Real best_x = 0;
    bool any_detected = false;
    Real first_undetected_x = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const Real magnitude = batch.magnitudes[i];
      const Real x = static_cast<Real>(side) * magnitude;
      const Real time = columns.detection[i];
      ++result.probes;
      if (std::isinf(time)) {
        if (options.require_finite) {
          throw NumericError(
              "measure_cr: undetected probe — fleet extent too small for "
              "the measurement window");
        }
        ++result.undetected_probes;
        if (first_undetected_x == 0) first_undetected_x = x;
        continue;
      }
      any_detected = true;
      const Real ratio = time / magnitude;
      if (ratio > best) {
        best = ratio;
        best_x = x;
        ++refinements;
      }
    }
    if (!any_detected && first_undetected_x != 0) {
      best = kInfinity;
      best_x = first_undetected_x;
    }
    if (side > 0) {
      result.cr_positive = best;
      pos_best_x = best_x;
    } else {
      result.cr_negative = best;
      neg_best_x = best_x;
    }
  }
  if (result.cr_negative > result.cr_positive) {
    result.cr = result.cr_negative;
    result.argmax = neg_best_x;
  } else {
    result.cr = result.cr_positive;
    result.argmax = pos_best_x;
  }
  LS_OBS_COUNT("eval.cr.probes", result.probes);
  LS_OBS_COUNT("eval.cr.undetected_probes", result.undetected_probes);
  LS_OBS_COUNT("eval.cr.supremum_refinements", refinements);
  LS_OBS_OBSERVE("eval.cr.probes_per_scan", result.probes,
                 {16, 64, 256, 1024, 4096});
  return result;
}

}  // namespace linesearch::kernels

#include "eval/cr_eval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "eval/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace linesearch {
namespace detail {

// Collect the probe magnitudes for one half-line.
std::vector<Real> probe_magnitudes(const Fleet& fleet, const int side,
                                   const CrEvalOptions& options) {
  // Windowed turning enumeration: exact on dense fleets (same filter the
  // scan used to apply itself) and the only finite query on unbounded
  // (analytic) fleets.  The slack band just below window_lo admits a
  // turning point whose RIGHT-LIMIT lands inside the window; the turn
  // itself (and any probe derived from it) is clamped below.
  std::vector<Real> turns = fleet.turning_positions_in(
      side, options.window_lo * (1 - tol::kRelative), options.window_hi);
  turns.push_back(options.window_lo);
  turns.push_back(options.window_hi);
  std::sort(turns.begin(), turns.end());
  turns.erase(std::unique(turns.begin(), turns.end(),
                          [](const Real a, const Real b) {
                            return approx_equal(a, b);
                          }),
              turns.end());

  // The Lemma-3 right-limits tau*(1+eps) for ALL turns, one fused
  // elementwise pass over the turn grid instead of a multiply inside the
  // emission loop.
  std::vector<Real> limits(turns.size());
  {
    const Real* tau = turns.data();
    Real* limit = limits.data();
    const std::size_t count = turns.size();
    LS_SIMD_LOOP
    for (std::size_t i = 0; i < count; ++i) {
      limit[i] = tau[i] * (1 + tol::kLimitProbe);
    }
  }

  // Every probe must stay inside [window_lo, window_hi]: turns from the
  // slack band (and interior samples toward them) would otherwise leak
  // probes strictly below window_lo, silently widening the measurement
  // window the caller asked for.
  const auto in_window = [&](const Real magnitude) {
    return magnitude >= options.window_lo && magnitude <= options.window_hi;
  };

  std::vector<Real> probes;
  probes.reserve(turns.size() *
                 (2 + static_cast<std::size_t>(
                          std::max(options.interior_samples, 0))));
  for (std::size_t i = 0; i < turns.size(); ++i) {
    // Right-limit just past the turning point (the jump of Lemma 3)...
    if (in_window(limits[i])) probes.push_back(limits[i]);
    // ...the point itself...
    if (in_window(turns[i])) probes.push_back(turns[i]);
    // ...and interior samples up to the next turning point.
    if (i + 1 < turns.size() && options.interior_samples > 0) {
      const Real lo = turns[i];
      const Real hi = turns[i + 1];
      const int k = options.interior_samples;
      for (int s = 1; s <= k; ++s) {
        const Real sample = lo + (hi - lo) * static_cast<Real>(s) /
                                     static_cast<Real>(k + 1);
        if (in_window(sample)) probes.push_back(sample);
      }
    }
  }

  // Exact-duplicate pass: tau*(1+eps) can collide bit-for-bit with a
  // window endpoint or an adjacent interior sample (e.g. when tau*(1+eps)
  // rounds to the endpoint value), and the turning-point grid itself may
  // carry the same magnitude from several robots.  Evaluating such a
  // probe twice double-counts it in `probes` and makes the reported count
  // depend on rounding accidents.  Keep the FIRST occurrence only —
  // order is preserved, so the argmax (first strict maximum) is
  // untouched.  Exact equality only: approx-equal probes (the point vs
  // its right-limit) are exactly the distinction the limit probes exist
  // to test.  A (value, index)-sorted permutation finds every duplicate
  // run in O(P log P); the first element of a run is the first
  // occurrence, so the kept set — and the output order — match the old
  // quadratic std::find scan exactly.
  const std::size_t count = probes.size();
  std::vector<std::uint32_t> by_value(count);
  std::iota(by_value.begin(), by_value.end(), 0U);
  std::sort(by_value.begin(), by_value.end(),
            [&](const std::uint32_t p, const std::uint32_t q) {
              if (probes[p] != probes[q]) return probes[p] < probes[q];
              return p < q;
            });
  std::vector<char> keep(count, 1);
  for (std::size_t i = 1; i < count; ++i) {
    if (probes[by_value[i]] == probes[by_value[i - 1]]) {
      keep[by_value[i]] = 0;
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (keep[i]) probes[kept++] = probes[i];
  }
  probes.resize(kept);
  return probes;
}

CrEvalResult measure_cr_with(const Fleet& fleet, const int f,
                             const CrEvalOptions& options,
                             const DetectionOracle& oracle) {
  expects(f >= 0, "measure_cr: f must be >= 0");
  expects(options.window_lo > 0, "measure_cr: window_lo must be positive");
  expects(options.window_hi > options.window_lo,
          "measure_cr: window_hi must exceed window_lo");
  LS_OBS_SPAN("eval.cr.scan");

  CrEvalResult result;
  Real pos_best_x = 0;
  Real neg_best_x = 0;
  // Counters are accumulated locally and recorded once per scan below:
  // per-probe relaxed adds are cheap but not free, and this loop is the
  // library's hottest (the sums are identical either way).
  std::uint64_t refinements = 0;
  for (const int side : {+1, -1}) {
    Real best = 0;
    Real best_x = 0;
    bool any_detected = false;
    Real first_undetected_x = 0;
    for (const Real magnitude : probe_magnitudes(fleet, side, options)) {
      const Real x = static_cast<Real>(side) * magnitude;
      const Real time = oracle(x);
      ++result.probes;
      if (std::isinf(time)) {
        if (options.require_finite) {
          throw NumericError(
              "measure_cr: undetected probe — fleet extent too small for "
              "the measurement window");
        }
        ++result.undetected_probes;
        if (first_undetected_x == 0) first_undetected_x = x;
        continue;
      }
      any_detected = true;
      const Real ratio = time / magnitude;
      if (ratio > best) {
        best = ratio;
        best_x = x;
        ++refinements;
      }
    }
    // A half-line where NO probe is ever detected has sup K = infinity
    // (the target there is simply never found); reporting 0 would be a
    // silently optimistic lie.
    if (!any_detected && first_undetected_x != 0) {
      best = kInfinity;
      best_x = first_undetected_x;
    }
    if (side > 0) {
      result.cr_positive = best;
      pos_best_x = best_x;
    } else {
      result.cr_negative = best;
      neg_best_x = best_x;
    }
  }
  // Overall worst case.  Tie-break is pinned: when both half-lines attain
  // the same supremum, the POSITIVE side's witness wins — independent of
  // the side evaluation order above.
  if (result.cr_negative > result.cr_positive) {
    result.cr = result.cr_negative;
    result.argmax = neg_best_x;
  } else {
    result.cr = result.cr_positive;
    result.argmax = pos_best_x;
  }
  LS_OBS_COUNT("eval.cr.probes", result.probes);
  LS_OBS_COUNT("eval.cr.undetected_probes", result.undetected_probes);
  LS_OBS_COUNT("eval.cr.supremum_refinements", refinements);
  LS_OBS_OBSERVE("eval.cr.probes_per_scan", result.probes,
                 {16, 64, 256, 1024, 4096});
  return result;
}

}  // namespace detail

CrEvalResult measure_cr(const Fleet& fleet, const int f,
                        const CrEvalOptions& options) {
  // SoA fast path (eval/kernels): same probes, same scan, detection
  // times batched through one frontier sweep per robot.  The scalar
  // reference below it stays reachable through detail::measure_cr_with
  // with a direct oracle — the scalar-vs-SIMD differential holds the two
  // bit-identical.
  return kernels::measure_cr_kernel(fleet, f, options);
}

std::vector<Real> k_profile(const Fleet& fleet, const int f,
                            const std::vector<Real>& positions) {
  expects(f >= 0, "k_profile: f must be >= 0");
  std::vector<Real> profile;
  profile.reserve(positions.size());
  for (const Real x : positions) {
    expects(x != 0, "k_profile: positions must be non-zero");
    profile.push_back(fleet.detection_time(x, f) / std::fabs(x));
  }
  return profile;
}

}  // namespace linesearch

#include "eval/cr_eval.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace detail {

// Collect the probe magnitudes for one half-line.
std::vector<Real> probe_magnitudes(const Fleet& fleet, const int side,
                                   const CrEvalOptions& options) {
  std::vector<Real> turns;
  for (const Real magnitude : fleet.turning_positions(side)) {
    if (magnitude >= options.window_lo * (1 - tol::kRelative) &&
        magnitude <= options.window_hi) {
      turns.push_back(magnitude);
    }
  }
  turns.push_back(options.window_lo);
  turns.push_back(options.window_hi);
  std::sort(turns.begin(), turns.end());
  turns.erase(std::unique(turns.begin(), turns.end(),
                          [](const Real a, const Real b) {
                            return approx_equal(a, b);
                          }),
              turns.end());

  std::vector<Real> probes;
  for (std::size_t i = 0; i < turns.size(); ++i) {
    // Right-limit just past the turning point (the jump of Lemma 3)...
    const Real just_past = turns[i] * (1 + tol::kLimitProbe);
    if (just_past <= options.window_hi) probes.push_back(just_past);
    // ...the point itself...
    probes.push_back(turns[i]);
    // ...and interior samples up to the next turning point.
    if (i + 1 < turns.size() && options.interior_samples > 0) {
      const Real lo = turns[i];
      const Real hi = turns[i + 1];
      const int k = options.interior_samples;
      for (int s = 1; s <= k; ++s) {
        probes.push_back(lo + (hi - lo) * static_cast<Real>(s) /
                                  static_cast<Real>(k + 1));
      }
    }
  }
  return probes;
}

CrEvalResult measure_cr_with(const Fleet& fleet, const int f,
                             const CrEvalOptions& options,
                             const DetectionOracle& oracle) {
  expects(f >= 0, "measure_cr: f must be >= 0");
  expects(options.window_lo > 0, "measure_cr: window_lo must be positive");
  expects(options.window_hi > options.window_lo,
          "measure_cr: window_hi must exceed window_lo");

  CrEvalResult result;
  for (const int side : {+1, -1}) {
    Real best = 0;
    Real best_x = 0;
    bool any_detected = false;
    Real first_undetected_x = 0;
    for (const Real magnitude : probe_magnitudes(fleet, side, options)) {
      const Real x = static_cast<Real>(side) * magnitude;
      const Real time = oracle(x);
      ++result.probes;
      if (std::isinf(time)) {
        if (options.require_finite) {
          throw NumericError(
              "measure_cr: undetected probe — fleet extent too small for "
              "the measurement window");
        }
        ++result.undetected_probes;
        if (first_undetected_x == 0) first_undetected_x = x;
        continue;
      }
      any_detected = true;
      const Real ratio = time / magnitude;
      if (ratio > best) {
        best = ratio;
        best_x = x;
      }
    }
    // A half-line where NO probe is ever detected has sup K = infinity
    // (the target there is simply never found); reporting 0 would be a
    // silently optimistic lie.
    if (!any_detected && first_undetected_x != 0) {
      best = kInfinity;
      best_x = first_undetected_x;
    }
    if (side > 0) {
      result.cr_positive = best;
    } else {
      result.cr_negative = best;
    }
    if (best > result.cr) {
      result.cr = best;
      result.argmax = best_x;
    }
  }
  return result;
}

}  // namespace detail

CrEvalResult measure_cr(const Fleet& fleet, const int f,
                        const CrEvalOptions& options) {
  return detail::measure_cr_with(
      fleet, f, options,
      [&fleet, f](const Real x) { return fleet.detection_time(x, f); });
}

std::vector<Real> k_profile(const Fleet& fleet, const int f,
                            const std::vector<Real>& positions) {
  expects(f >= 0, "k_profile: f must be >= 0");
  std::vector<Real> profile;
  profile.reserve(positions.size());
  for (const Real x : positions) {
    expects(x != 0, "k_profile: positions must be non-zero");
    profile.push_back(fleet.detection_time(x, f) / std::fabs(x));
  }
  return profile;
}

}  // namespace linesearch

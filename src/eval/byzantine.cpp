#include "eval/byzantine.hpp"

#include <cmath>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/validation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace linesearch {

ByzantineCrResult measure_byzantine_cr(const Fleet& fleet, const int f,
                                       const CrEvalOptions& options) {
  LS_OBS_SPAN("eval.byzantine.measure");
  expects(f >= 0, "measure_byzantine_cr: f must be >= 0");
  ByzantineCrResult result;
  result.feasible =
      fleet.size() >= static_cast<std::size_t>(2 * f) + 1;

  CrEvalOptions quorum = options;
  quorum.require_finite = false;  // infeasibility reports inf, not throw
  const CrEvalResult scan = measure_cr(fleet, 2 * f, quorum);
  result.probes = scan.probes;
  result.undetected_probes = scan.undetected_probes;
  if (result.feasible && scan.undetected_probes == 0) {
    result.cr = scan.cr;
    result.argmax = scan.argmax;
  }
  return result;
}

Real byzantine_theory_cr(const int n, const int f) {
  expects(n >= 1 && f >= 0, "byzantine_theory_cr: need n >= 1, f >= 0");
  if (n != 2 * f + 1 || !in_proportional_regime(n, f)) return kInfinity;
  // (2f+1, 2f) is itself in regime, so Lemma 5 applies verbatim at the
  // doubled budget with the pair's own optimal ladder parameter.
  return schedule_cr(n, 2 * f, optimal_beta(n, f));
}

std::vector<ByzantineSweepRow> byzantine_sweep(
    const ByzantineSweepOptions& options) {
  LS_OBS_SPAN("eval.byzantine.sweep");
  expects(options.window_hi > 1, "byzantine sweep: need window_hi > 1");
  std::vector<ByzantineSweepRow> rows;
  for (const auto& [n, f] : proportional_regime_pairs(options.n_max)) {
    ByzantineSweepRow row;
    row.n = n;
    row.f = f;
    const Fleet fleet =
        ProportionalAlgorithm(n, f).build_unbounded_fleet();
    CrEvalOptions eval;
    eval.window_hi = options.window_hi;
    const ByzantineCrResult measured = measure_byzantine_cr(fleet, f, eval);
    row.feasible = measured.feasible;
    row.measured_cr = measured.cr;
    row.theory_cr = byzantine_theory_cr(n, f);
    if (std::isfinite(row.measured_cr) && std::isfinite(row.theory_cr)) {
      row.ratio_to_theory = row.measured_cr / row.theory_cr;
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace linesearch

#include "eval/exact.hpp"

#include <algorithm>
#include <cmath>

#include "eval/interval_lines.hpp"
#include "util/error.hpp"

namespace linesearch {

ExactCrResult certified_cr(const Fleet& fleet, const int f,
                           const ExactCrOptions& options) {
  expects(f >= 0, "certified_cr: f must be >= 0");
  expects(options.window_lo > 0 &&
              options.window_hi > options.window_lo,
          "certified_cr: bad window");
  const auto k = static_cast<std::size_t>(f);
  expects(k < fleet.size(), "certified_cr: fault budget >= fleet size");

  ExactCrResult result;
  // SoA working set, reused across every interval of both sides (no
  // per-interval allocation churn; see eval/interval_lines LineColumns).
  detail::LineColumns columns;
  std::vector<Real> crossings;
  std::vector<Real> candidates;
  for (const int side : {+1, -1}) {
    const std::vector<Real> criticals = detail::critical_magnitudes(
        fleet, side, options.window_lo, options.window_hi);

    for (std::size_t i = 0; i + 1 < criticals.size(); ++i) {
      const Real a = criticals[i];
      const Real b = criticals[i + 1];
      ++result.intervals;
      detail::fill_line_columns(fleet, side, a, b, columns);

      // Candidate extrema: interval endpoints (as one-sided limits) and
      // every pairwise crossing of lines with distinct slopes.
      candidates.assign({a, b});
      detail::line_crossings_into(columns, a, b, crossings);
      result.breakpoints += static_cast<int>(crossings.size());
      candidates.insert(candidates.end(), crossings.begin(),
                        crossings.end());

      for (const Real x : candidates) {
        const Real time = detail::order_statistic_at(columns, x, k);
        if (std::isinf(time)) {
          if (options.require_finite) {
            throw NumericError(
                "certified_cr: window not (f+1)-covered — fleet extent "
                "too small");
          }
          continue;
        }
        const Real ratio = time / x;
        if (ratio > result.cr) {
          result.cr = ratio;
          result.argsup = static_cast<Real>(side) * x;
        }
      }
    }
  }
  return result;
}

}  // namespace linesearch

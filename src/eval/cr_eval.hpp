// eval/cr_eval.hpp — empirical competitive-ratio measurement.
//
// For an arbitrary fleet with fault budget f, the competitive ratio is
// sup over |x| >= 1 of K(x) = T_{f+1}(x)/|x|.  By Lemma 3, K is
// decreasing between turning points and jumps UP just after each turning
// point, so the supremum is approached as a right-limit at turning-point
// magnitudes.  The evaluator therefore probes, on each half-line:
//   * tau * (1 + eps) just past every turning-point magnitude tau inside
//     the window (the discontinuity right-limits),
//   * the window endpoints, and
//   * a few interior samples per inter-turn interval (safety net for
//     non-zig-zag fleets whose K need not obey Lemma 3).
// All probes use the fleet's exact detection_time; the only approximation
// is the eps offset (relative 1e-9).
//
// The probe scan itself is detection-oracle-agnostic (detail::
// measure_cr_with): the batch engine in eval/batch.hpp runs the same scan
// against a memoized oracle, so both paths share one implementation and
// produce bit-identical results.
#pragma once

#include <functional>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Options for measure_cr.
struct CrEvalOptions {
  Real window_lo = 1;   ///< smallest target magnitude (the paper fixes 1)
  Real window_hi = 64;  ///< largest target magnitude probed
  int interior_samples = 4;  ///< extra probes per inter-turn interval
  bool require_finite = true; ///< throw if any probe is undetected
};

/// Result of an empirical CR measurement.
struct CrEvalResult {
  Real cr = 0;        ///< max of K over all probes
  Real argmax = 0;    ///< signed probe position attaining it
  int probes = 0;     ///< number of evaluated placements
  Real cr_positive = 0;  ///< supremum restricted to x > 0
  Real cr_negative = 0;  ///< supremum restricted to x < 0
  /// Probes whose detection never happens (only reachable with
  /// require_finite == false).  A half-line whose EVERY probe is
  /// undetected reports its side supremum — and hence cr — as kInfinity
  /// rather than silently pretending the side costs nothing.
  int undetected_probes = 0;
};

/// Measure sup K(x) over window_lo <= |x| <= window_hi.
/// The fleet must have been built to an extent comfortably beyond
/// window_hi (enough that T_{f+1} is realized inside the horizon); with
/// require_finite the evaluator throws NumericError if it ever sees an
/// undetected probe, which is the symptom of an under-built fleet.
[[nodiscard]] CrEvalResult measure_cr(const Fleet& fleet, int f,
                                      const CrEvalOptions& options = {});

/// The profile K(x) sampled at explicit positions (for Figure-4-style
/// plots); entries are detection_time(x, f)/|x|.
[[nodiscard]] std::vector<Real> k_profile(const Fleet& fleet, int f,
                                          const std::vector<Real>& positions);

namespace detail {

/// Detection-time oracle: must agree bit-for-bit with
/// Fleet::detection_time(x, f) of the fleet being measured.
using DetectionOracle = std::function<Real(Real x)>;

/// The probe magnitudes measure_cr evaluates on one half-line (exposed
/// for the batch engine and tests).
[[nodiscard]] std::vector<Real> probe_magnitudes(const Fleet& fleet,
                                                 int side,
                                                 const CrEvalOptions& options);

/// The probe scan behind measure_cr, parameterized over the oracle.
[[nodiscard]] CrEvalResult measure_cr_with(const Fleet& fleet, int f,
                                           const CrEvalOptions& options,
                                           const DetectionOracle& oracle);

}  // namespace detail

}  // namespace linesearch

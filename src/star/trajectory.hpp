// star/trajectory.hpp — trajectories on a star of m rays.
//
// The classic generalization of linear search (m = 2 is the line):
// m half-lines ("rays") share the origin; a searcher must pass through
// the origin to change rays.  A point is (ray, distance).  This module
// is the star analogue of sim/trajectory: exact piecewise-linear motion,
// closed-form visit queries, no time-stepping.
//
// Representation: waypoints (time, ray, distance) with
//   * strictly increasing time,
//   * speed |d_distance| / d_time <= 1 within a leg,
//   * ray changes only across a waypoint AT the origin (distance 0) —
//     the physical constraint of the star.
// The origin itself belongs to every ray: a visit query for distance 0
// matches any ray.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// A point of the star: ray index in [0, m) and distance >= 0.
struct StarPoint {
  int ray = 0;
  Real distance = 0;

  friend bool operator==(const StarPoint&, const StarPoint&) = default;
};

/// One waypoint of a star trajectory.
struct StarWaypoint {
  Real time = 0;
  int ray = 0;
  Real distance = 0;
};

/// Immutable piecewise-linear star trajectory.
class StarTrajectory {
 public:
  /// Validates the waypoint list (see header comment); throws
  /// PreconditionError on violations.
  explicit StarTrajectory(std::vector<StarWaypoint> waypoints);

  [[nodiscard]] const std::vector<StarWaypoint>& waypoints() const noexcept {
    return waypoints_;
  }
  [[nodiscard]] Real start_time() const noexcept {
    return waypoints_.front().time;
  }
  [[nodiscard]] Real end_time() const noexcept {
    return waypoints_.back().time;
  }

  /// First time the robot is at `point` (nullopt if never).  Distance-0
  /// queries match regardless of the queried ray.
  [[nodiscard]] std::optional<Real> first_visit_time(StarPoint point) const;

  /// Deepest distance reached on `ray`.
  [[nodiscard]] Real reach(int ray) const;

  /// Outward turning depths on `ray` (local maxima of the distance),
  /// ascending.
  [[nodiscard]] std::vector<Real> turning_depths(int ray) const;

 private:
  std::vector<StarWaypoint> waypoints_;
};

/// Builder for excursion-style star trajectories (the shape of every
/// classic m-ray strategy: out along a ray, back to the origin, repeat).
class StarTrajectoryBuilder {
 public:
  /// Start at the origin at t = 0.
  StarTrajectoryBuilder();

  /// Unit-speed excursion: origin -> (ray, depth) -> origin.
  StarTrajectoryBuilder& excursion(int ray, Real depth);

  /// Unit-speed one-way leg out to (ray, depth) WITHOUT returning — used
  /// for a final leg.  Requires the builder to sit at the origin.
  StarTrajectoryBuilder& final_out(int ray, Real depth);

  [[nodiscard]] StarTrajectory build() &&;

 private:
  bool finalized_ = false;
  Real now_ = 0;
  std::vector<StarWaypoint> waypoints_;
};

}  // namespace linesearch

// star/search.hpp — fleets, strategies and evaluation on the m-ray star.
//
// * StarFleet — the fault-aware detection query, exactly as on the line:
//   with up to f adversarial faults, the target at (ray, d) is found at
//   the (f+1)-st smallest first-visit time over distinct robots.
// * star_sweep — the classic single-robot strategy: geometric excursion
//   depths kappa^k visiting rays round-robin.  Its worst ratio just past
//   a depth is 1 + 2 kappa^m/(kappa-1) (approached from below),
//   minimized at kappa* = m/(m-1) with the textbook value
//   1 + 2 m^m/(m-1)^(m-1)  (m = 2: the cow-path 9).
// * star_proportional — this library's faulty-robot generalization: a
//   global geometric depth grid rho^g, excursion g performed by robot
//   (g mod n) on ray (g mod m).  Robot i then serves rays in the residue
//   class i mod gcd(n, m), so every ray is covered by n/gcd(n,m) robots;
//   (f+1)-coverage requires n/gcd(n,m) >= f+1.
// * star_cr — empirical competitive ratio: sup over probed targets of
//   detection_time/(distance), probing just past every excursion depth
//   on every ray (the star analogue of Lemma 3's right limits).
#pragma once

#include <vector>

#include "star/trajectory.hpp"
#include "util/real.hpp"

namespace linesearch {

/// A team of star searchers.
class StarFleet {
 public:
  explicit StarFleet(std::vector<StarTrajectory> robots);

  [[nodiscard]] std::size_t size() const noexcept { return robots_.size(); }
  [[nodiscard]] const StarTrajectory& robot(std::size_t id) const;

  /// Worst-case detection time with up to `faults` adversarial faults.
  [[nodiscard]] Real detection_time(StarPoint point, int faults) const;

  /// All outward turning depths on `ray`, across robots, ascending.
  [[nodiscard]] std::vector<Real> turning_depths(int ray) const;

 private:
  std::vector<StarTrajectory> robots_;
};

/// Classic single-robot m-ray sweep: excursion g has depth
/// depth0 * kappa^g on ray (g mod m), until every ray reaches `extent`
/// (plus one interior-izing extra excursion per the line convention).
[[nodiscard]] StarTrajectory star_sweep(int rays, Real kappa, Real depth0,
                                        Real extent);

/// The faulty-robot generalization (see header comment).  Requires
/// rays >= 2, f < n, n/gcd(n, rays) >= f+1, rho > 1.
[[nodiscard]] StarFleet star_proportional(int rays, int n, Real rho,
                                          Real extent);

/// Empirical competitive ratio over targets with distance in
/// [window_lo, window_hi] on every ray.
struct StarCrResult {
  Real cr = 0;
  StarPoint argmax;
  int probes = 0;
};
[[nodiscard]] StarCrResult star_cr(const StarFleet& fleet, int rays,
                                   int faults, Real window_lo,
                                   Real window_hi);

/// Closed forms for the classic single-robot sweep.
[[nodiscard]] Real star_sweep_cr(int rays, Real kappa);  ///< 1+2k^m/(k-1)
[[nodiscard]] Real star_optimal_kappa(int rays);         ///< m/(m-1)
[[nodiscard]] Real star_optimal_cr(int rays);  ///< 1+2m^m/(m-1)^(m-1)

}  // namespace linesearch

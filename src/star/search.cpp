#include "star/search.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "analysis/series.hpp"
#include "analysis/stats.hpp"
#include "util/error.hpp"

namespace linesearch {

StarFleet::StarFleet(std::vector<StarTrajectory> robots)
    : robots_(std::move(robots)) {
  expects(!robots_.empty(), "star fleet needs at least one robot");
}

const StarTrajectory& StarFleet::robot(const std::size_t id) const {
  expects(id < robots_.size(), "robot id out of range");
  return robots_[id];
}

Real StarFleet::detection_time(const StarPoint point,
                               const int faults) const {
  expects(faults >= 0, "detection_time: faults must be >= 0");
  const auto k = static_cast<std::size_t>(faults);
  if (k >= robots_.size()) return kInfinity;
  std::vector<Real> times;
  times.reserve(robots_.size());
  for (const StarTrajectory& robot : robots_) {
    const std::optional<Real> visit = robot.first_visit_time(point);
    times.push_back(visit ? *visit : kInfinity);
  }
  return kth_smallest(std::move(times), k);
}

std::vector<Real> StarFleet::turning_depths(const int ray) const {
  std::vector<Real> depths;
  for (const StarTrajectory& robot : robots_) {
    const std::vector<Real> own = robot.turning_depths(ray);
    depths.insert(depths.end(), own.begin(), own.end());
  }
  std::sort(depths.begin(), depths.end());
  return depths;
}

StarTrajectory star_sweep(const int rays, const Real kappa,
                          const Real depth0, const Real extent) {
  expects(rays >= 2, "star_sweep: need >= 2 rays");
  expects(kappa > 1, "star_sweep: kappa must exceed 1");
  expects(depth0 > 0 && extent > depth0, "star_sweep: bad depths");

  StarTrajectoryBuilder builder;
  std::vector<Real> reach(static_cast<std::size_t>(rays), 0);
  Real depth = depth0;
  int g = 0;
  while (*std::min_element(reach.begin(), reach.end()) < extent) {
    const int ray = g % rays;
    builder.excursion(ray, depth);
    reach[static_cast<std::size_t>(ray)] =
        std::max(reach[static_cast<std::size_t>(ray)], depth);
    depth *= kappa;
    ++g;
  }
  builder.excursion(g % rays, depth);  // interior-izing extra excursion
  return std::move(builder).build();
}

StarFleet star_proportional(const int rays, const int n, const Real rho,
                            const Real extent) {
  expects(rays >= 2, "star_proportional: need >= 2 rays");
  expects(n >= 1, "star_proportional: need >= 1 robot");
  expects(rho > 1, "star_proportional: rho must exceed 1");
  expects(extent > 1, "star_proportional: extent must exceed 1");

  std::vector<StarTrajectoryBuilder> builders(
      static_cast<std::size_t>(n));
  // Global excursion grid: excursion g has depth rho^g on ray g mod m,
  // performed by robot g mod n.  Continue until every (robot, ray it
  // serves) pair reaches the extent, plus one extra grid round.
  std::vector<Real> ray_reach(static_cast<std::size_t>(rays), kInfinity);
  // Track the minimum over robots serving each ray of their reach there.
  std::vector<std::vector<Real>> reach(
      static_cast<std::size_t>(n),
      std::vector<Real>(static_cast<std::size_t>(rays), 0));

  const int gcd = std::gcd(n, rays);
  const int robots_per_ray = n / gcd;
  (void)robots_per_ray;

  const auto min_served_reach = [&] {
    // For each ray, the (f+1)-coverage depends on every robot serving
    // it; conservatively require EVERY serving robot to reach extent.
    Real worst = kInfinity;
    for (int ray = 0; ray < rays; ++ray) {
      for (int i = 0; i < n; ++i) {
        // Robot i serves ray iff i ≡ ray (mod gcd).
        if (i % gcd == ray % gcd) {
          worst = std::min(worst,
                           reach[static_cast<std::size_t>(i)]
                                [static_cast<std::size_t>(ray)]);
        }
      }
    }
    return worst;
  };

  int g = 0;
  Real depth = 1;
  while (min_served_reach() < extent) {
    const int robot = g % n;
    const int ray = g % rays;
    builders[static_cast<std::size_t>(robot)].excursion(ray, depth);
    reach[static_cast<std::size_t>(robot)][static_cast<std::size_t>(ray)] =
        std::max(reach[static_cast<std::size_t>(robot)]
                      [static_cast<std::size_t>(ray)],
                 depth);
    depth *= rho;
    ++g;
    expects(g < 100000, "star_proportional: runaway generation");
  }
  // One extra full robot round so final excursions are interior.
  for (int extra = 0; extra < n; ++extra) {
    builders[static_cast<std::size_t>(g % n)].excursion(g % rays, depth);
    depth *= rho;
    ++g;
  }

  std::vector<StarTrajectory> robots;
  robots.reserve(static_cast<std::size_t>(n));
  for (StarTrajectoryBuilder& builder : builders) {
    robots.push_back(std::move(builder).build());
  }
  return StarFleet(std::move(robots));
}

StarCrResult star_cr(const StarFleet& fleet, const int rays,
                     const int faults, const Real window_lo,
                     const Real window_hi) {
  expects(rays >= 2, "star_cr: need >= 2 rays");
  expects(window_lo > 0 && window_hi > window_lo, "star_cr: bad window");

  StarCrResult result;
  for (int ray = 0; ray < rays; ++ray) {
    std::vector<Real> probes{window_lo, window_hi};
    for (const Real depth : fleet.turning_depths(ray)) {
      if (depth >= window_lo && depth <= window_hi) {
        probes.push_back(depth);
        const Real just_past = depth * (1 + tol::kLimitProbe);
        if (just_past <= window_hi) probes.push_back(just_past);
      }
    }
    for (const Real d : probes) {
      const Real time = fleet.detection_time({ray, d}, faults);
      ++result.probes;
      if (std::isinf(time)) {
        throw NumericError("star_cr: window not covered — extent too "
                           "small or coverage requirement violated");
      }
      const Real ratio = time / d;
      if (ratio > result.cr) {
        result.cr = ratio;
        result.argmax = {ray, d};
      }
    }
  }
  return result;
}

Real star_sweep_cr(const int rays, const Real kappa) {
  expects(rays >= 2, "star_sweep_cr: need >= 2 rays");
  expects(kappa > 1, "star_sweep_cr: kappa must exceed 1");
  return 1 + 2 * ipow(kappa, rays) / (kappa - 1);
}

Real star_optimal_kappa(const int rays) {
  expects(rays >= 2, "star_optimal_kappa: need >= 2 rays");
  return static_cast<Real>(rays) / static_cast<Real>(rays - 1);
}

Real star_optimal_cr(const int rays) {
  expects(rays >= 2, "star_optimal_cr: need >= 2 rays");
  const Real m = static_cast<Real>(rays);
  return 1 + 2 * std::pow(m, m) / std::pow(m - 1, m - 1);
}

}  // namespace linesearch

#include "star/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {

StarTrajectory::StarTrajectory(std::vector<StarWaypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  expects(!waypoints_.empty(), "star trajectory needs >= 1 waypoint");
  for (const StarWaypoint& w : waypoints_) {
    expects(w.distance >= 0, "star distances are non-negative");
    expects(w.ray >= 0, "ray indices are non-negative");
  }
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const StarWaypoint& a = waypoints_[i - 1];
    const StarWaypoint& b = waypoints_[i];
    expects(b.time > a.time, "star waypoints need increasing time");
    if (a.ray != b.ray) {
      // A ray change must happen at the origin.
      expects(a.distance == 0,
              "ray changes are only allowed at the origin");
    }
    const Real speed = std::fabs(b.distance - a.distance) / (b.time - a.time);
    expects(speed <= 1 + 1e-9L, "star leg exceeds unit speed");
  }
}

std::optional<Real> StarTrajectory::first_visit_time(
    const StarPoint point) const {
  expects(point.distance >= 0, "first_visit_time: negative distance");
  for (std::size_t i = 0; i + 1 <= waypoints_.size(); ++i) {
    const StarWaypoint& w = waypoints_[i];
    // Exact waypoint hit (covers single-point trajectories and origin).
    const bool ray_matches = (w.distance == 0 && point.distance == 0) ||
                             (w.ray == point.ray);
    if (ray_matches && w.distance == point.distance) return w.time;
    if (i + 1 == waypoints_.size()) break;
    const StarWaypoint& b = waypoints_[i + 1];
    // Legs live on b.ray when leaving the origin, else on w.ray; both
    // endpoints share the ray unless the leg starts at the origin.
    const int leg_ray = (w.distance == 0) ? b.ray : w.ray;
    if (leg_ray != point.ray && point.distance != 0) continue;
    const Real lo = std::min(w.distance, b.distance);
    const Real hi = std::max(w.distance, b.distance);
    if (point.distance < lo || point.distance > hi) continue;
    if (w.distance == b.distance) return w.time;  // dwell on the point
    const Real fraction =
        (point.distance - w.distance) / (b.distance - w.distance);
    if (fraction < 0 || fraction > 1) continue;
    const Real t = w.time + fraction * (b.time - w.time);
    if (fraction == 0 && point.distance == w.distance) return w.time;
    return t;
  }
  return std::nullopt;
}

Real StarTrajectory::reach(const int ray) const {
  Real best = 0;
  for (const StarWaypoint& w : waypoints_) {
    if (w.ray == ray) best = std::max(best, w.distance);
  }
  return best;
}

std::vector<Real> StarTrajectory::turning_depths(const int ray) const {
  std::vector<Real> depths;
  for (std::size_t i = 1; i + 1 < waypoints_.size(); ++i) {
    const StarWaypoint& w = waypoints_[i];
    if (w.ray != ray || w.distance == 0) continue;
    const Real before = w.distance - waypoints_[i - 1].distance;
    const Real after = waypoints_[i + 1].distance - w.distance;
    if (before > 0 && after < 0) depths.push_back(w.distance);
  }
  std::sort(depths.begin(), depths.end());
  return depths;
}

StarTrajectoryBuilder::StarTrajectoryBuilder() {
  waypoints_.push_back({0, 0, 0});
}

StarTrajectoryBuilder& StarTrajectoryBuilder::excursion(const int ray,
                                                        const Real depth) {
  expects(!finalized_, "builder already finalized");
  expects(depth > 0, "excursion depth must be positive");
  expects(ray >= 0, "ray index must be non-negative");
  waypoints_.push_back({now_ + depth, ray, depth});
  waypoints_.push_back({now_ + 2 * depth, ray, 0});
  now_ += 2 * depth;
  return *this;
}

StarTrajectoryBuilder& StarTrajectoryBuilder::final_out(const int ray,
                                                        const Real depth) {
  expects(!finalized_, "builder already finalized");
  expects(depth > 0, "final leg depth must be positive");
  waypoints_.push_back({now_ + depth, ray, depth});
  now_ += depth;
  finalized_ = true;
  return *this;
}

StarTrajectory StarTrajectoryBuilder::build() && {
  return StarTrajectory(std::move(waypoints_));
}

}  // namespace linesearch

// sim/schedule.hpp — trajectory backends (schedule sources).
//
// A ScheduleSource is the storage/generation strategy behind a Trajectory:
// it answers the same exact per-segment queries (position, visit times)
// but may either hold a materialized waypoint vector (DenseSchedule) or
// generate the waypoints on demand from closed-form parameters
// (AnalyticZigzag / AnalyticRay in sim/analytic.hpp).  Analytic backends
// may have an UNBOUNDED horizon: end_time() == kInfinity and
// waypoint_count() == kUnboundedCount.  Queries that would enumerate an
// unbounded schedule in full (waypoints(), turning_waypoints(), uncapped
// visit_times) throw PreconditionError; windowed queries
// (turning_magnitudes_in, waypoint_positions_within, waypoint_prefix) are
// the unbounded-safe replacements and are exact on both backends.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// One point of a robot's space/time curve.
struct Waypoint {
  Real time = 0;
  Real position = 0;

  friend bool operator==(const Waypoint&, const Waypoint&) = default;
};

/// waypoint_count() of a schedule with an unbounded horizon.
inline constexpr std::size_t kUnboundedCount = SIZE_MAX;

/// Abstract trajectory backend.  Implementations are immutable after
/// construction; all queries are const and thread-safe.
class ScheduleSource {
 public:
  /// Maximum speed a robot may use; the paper's robots all have speed 1.
  static constexpr Real kMaxSpeed = 1;

  virtual ~ScheduleSource() = default;

  /// Short identifier ("dense", "analytic-zigzag", "analytic-ray").
  [[nodiscard]] virtual std::string backend_name() const = 0;

  /// True when the schedule extends forever (end_time() == kInfinity).
  [[nodiscard]] virtual bool unbounded() const = 0;

  /// Number of waypoints; kUnboundedCount when unbounded.
  [[nodiscard]] virtual std::size_t waypoint_count() const = 0;

  [[nodiscard]] virtual Real start_time() const = 0;
  [[nodiscard]] virtual Real end_time() const = 0;
  [[nodiscard]] virtual Real start_position() const = 0;

  /// Final position; requires a bounded schedule.
  [[nodiscard]] virtual Real end_position() const = 0;

  /// Largest |position| ever reached (kInfinity when unbounded).
  [[nodiscard]] virtual Real max_abs_position() const = 0;

  /// Largest per-segment speed (<= kMaxSpeed by construction).
  [[nodiscard]] virtual Real max_speed() const = 0;

  /// Position at time t; requires start_time() <= t <= end_time().
  [[nodiscard]] virtual Real position_at(Real t) const = 0;

  /// All visit times to x in increasing order (touching turning points
  /// deduplicated), capped at `max_count` entries.  An unbounded schedule
  /// requires a finite cap (max_count < kUnboundedCount).
  [[nodiscard]] virtual std::vector<Real> visit_times(
      Real x, std::size_t max_count) const = 0;

  /// Batched first visits: out[i] = first visit time to xs[i], or
  /// kInfinity when xs[i] is never reached.  `xs` must be sorted
  /// ascending (duplicates allowed); every entry is bit-identical to
  /// visit_times(xs[i], 1).  The base implementation loops the scalar
  /// query; backends override with a single frontier sweep over their
  /// segments (O(segments + count) instead of O(segments * count)), which
  /// is what makes the SoA probe kernels in eval/kernels pay off.
  virtual void first_visit_times_into(const Real* xs, std::size_t count,
                                      Real* out) const;

  /// The full materialized waypoint list; requires a bounded schedule.
  [[nodiscard]] virtual const std::vector<Waypoint>& waypoints() const = 0;

  /// The first min(k, waypoint_count()) waypoints, materialized.  Safe on
  /// unbounded backends for finite k.
  [[nodiscard]] virtual std::vector<Waypoint> waypoint_prefix(
      std::size_t k) const = 0;

  /// Waypoints at which the direction of motion reverses (pauses skipped;
  /// the first and last waypoints never register).  Cached at
  /// construction; requires a bounded schedule.
  [[nodiscard]] virtual const std::vector<Waypoint>& turning_waypoints()
      const = 0;

  /// Magnitudes of the turning waypoints on one side (sign_of(position)
  /// == side) with lo <= magnitude <= hi, sorted increasing.  Exact on
  /// unbounded backends: the window makes the enumeration finite.
  [[nodiscard]] virtual std::vector<Real> turning_magnitudes_in(
      int side, Real lo, Real hi) const = 0;

  /// Signed positions of every waypoint with |position| <= max_magnitude,
  /// in schedule order (duplicates preserved).  Unbounded-safe.
  [[nodiscard]] virtual std::vector<Real> waypoint_positions_within(
      Real max_magnitude) const = 0;

  /// Approximate resident size of the backend in bytes (state + caches);
  /// used by the perf bench to compare dense vs analytic footprints.
  [[nodiscard]] virtual std::size_t footprint_bytes() const = 0;
};

/// The classic backend: a validated, materialized waypoint vector.
/// Construction enforces >= 1 waypoint, strictly increasing time and
/// segment speed <= kMaxSpeed (with a hair of relative slack), exactly as
/// the pre-backend Trajectory did.  Turning waypoints are computed once
/// here and served as a const reference.
class DenseSchedule final : public ScheduleSource {
 public:
  explicit DenseSchedule(std::vector<Waypoint> waypoints);

  [[nodiscard]] std::string backend_name() const override { return "dense"; }
  [[nodiscard]] bool unbounded() const override { return false; }
  [[nodiscard]] std::size_t waypoint_count() const override {
    return waypoints_.size();
  }
  [[nodiscard]] Real start_time() const override {
    return waypoints_.front().time;
  }
  [[nodiscard]] Real end_time() const override {
    return waypoints_.back().time;
  }
  [[nodiscard]] Real start_position() const override {
    return waypoints_.front().position;
  }
  [[nodiscard]] Real end_position() const override {
    return waypoints_.back().position;
  }
  [[nodiscard]] Real max_abs_position() const override { return max_abs_; }
  [[nodiscard]] Real max_speed() const override { return max_speed_; }
  [[nodiscard]] Real position_at(Real t) const override;
  [[nodiscard]] std::vector<Real> visit_times(
      Real x, std::size_t max_count) const override;
  void first_visit_times_into(const Real* xs, std::size_t count,
                              Real* out) const override;
  [[nodiscard]] const std::vector<Waypoint>& waypoints() const override {
    return waypoints_;
  }
  [[nodiscard]] std::vector<Waypoint> waypoint_prefix(
      std::size_t k) const override;
  [[nodiscard]] const std::vector<Waypoint>& turning_waypoints()
      const override {
    return turns_;
  }
  [[nodiscard]] std::vector<Real> turning_magnitudes_in(
      int side, Real lo, Real hi) const override;
  [[nodiscard]] std::vector<Real> waypoint_positions_within(
      Real max_magnitude) const override;
  [[nodiscard]] std::size_t footprint_bytes() const override;

 private:
  std::vector<Waypoint> waypoints_;
  std::vector<Waypoint> turns_;
  Real max_abs_ = 0;
  Real max_speed_ = 0;
};

}  // namespace linesearch

// sim/analytic.hpp — closed-form trajectory backends.
//
// The paper's schedules are geometric zig-zag ladders (Lemma 2 /
// Definitions 2-4): after a short start prefix, the robot's turning
// points follow the exact recurrence
//     x_{k+1} = -(x_k * kappa),   t_{k+1} = t_k + |x_{k+1} - x_k|,
// which is precisely how the dense builders materialize them
// (extend_zigzag's `turn = -turn * kappa` and the cow-path's
// `turn *= -2`; IEEE negation commutes with multiplication, so the forms
// are bit-identical).  AnalyticZigzag stores only the prefix, the ladder
// seed and kappa — O(1) state — and regenerates any waypoint on demand,
// so the horizon is UNBOUNDED: coverage extent becomes a query-time
// window instead of a build-time commitment, and the under-built-fleet
// failure class (NumericError from cr_eval on a too-small extent)
// disappears.  With a positive `barrier` D the ladder instead stops
// before overshooting [-D, D] and finishes with the two barrier sweeps of
// the bounded variant — a finite schedule, still generated from closed
// form.
//
// AnalyticRay is the degenerate one-direction case used by the two-group
// split: a unit-speed ray from the origin with no turning points.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/schedule.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Parameters of an analytic zig-zag schedule.
struct AnalyticZigzagSpec {
  /// Waypoints up to AND INCLUDING the ladder seed (the robot's first
  /// turning point): e.g. {(0,0), (beta*|s|, s)} for a Definition-4 start
  /// leg, or a single on-cone waypoint for cone-anchored zig-zags.
  /// Requires >= 1 waypoint, strictly increasing times, speeds <= 1, and
  /// a non-zero final (seed) position.
  std::vector<Waypoint> head;

  /// Per-robot expansion factor kappa = (beta+1)/(beta-1) > 1.
  Real kappa = 0;

  /// 0 for an unbounded horizon; a bound D > |seed| makes the schedule
  /// finite: the ladder stops when the next turn would leave [-D, D],
  /// then the robot sweeps barrier-to-barrier and stops (the bounded
  /// variant of A(n,f)).
  Real barrier = 0;
};

/// Closed-form zig-zag backend.  All queries regenerate waypoints from
/// the recurrence; nothing beyond the head is stored for unbounded
/// schedules, so the footprint is O(|head|) regardless of how far any
/// query reaches.
class AnalyticZigzag final : public ScheduleSource {
 public:
  explicit AnalyticZigzag(AnalyticZigzagSpec spec);

  [[nodiscard]] std::string backend_name() const override {
    return "analytic-zigzag";
  }
  [[nodiscard]] bool unbounded() const override { return barrier_ == 0; }
  [[nodiscard]] std::size_t waypoint_count() const override { return count_; }
  [[nodiscard]] Real start_time() const override {
    return head_.front().time;
  }
  [[nodiscard]] Real end_time() const override;
  [[nodiscard]] Real start_position() const override {
    return head_.front().position;
  }
  [[nodiscard]] Real end_position() const override;
  [[nodiscard]] Real max_abs_position() const override;
  [[nodiscard]] Real max_speed() const override;
  [[nodiscard]] Real position_at(Real t) const override;
  [[nodiscard]] std::vector<Real> visit_times(
      Real x, std::size_t max_count) const override;
  void first_visit_times_into(const Real* xs, std::size_t count,
                              Real* out) const override;
  [[nodiscard]] const std::vector<Waypoint>& waypoints() const override;
  [[nodiscard]] std::vector<Waypoint> waypoint_prefix(
      std::size_t k) const override;
  [[nodiscard]] const std::vector<Waypoint>& turning_waypoints()
      const override;
  [[nodiscard]] std::vector<Real> turning_magnitudes_in(
      int side, Real lo, Real hi) const override;
  [[nodiscard]] std::vector<Real> waypoint_positions_within(
      Real max_magnitude) const override;
  [[nodiscard]] std::size_t footprint_bytes() const override;

  [[nodiscard]] Real kappa() const noexcept { return kappa_; }
  [[nodiscard]] Real barrier() const noexcept { return barrier_; }
  [[nodiscard]] const Waypoint& seed() const noexcept {
    return head_.back();
  }

 private:
  class Walker;

  /// Materialized only in barrier mode (the schedule is finite there);
  /// unbounded schedules carry just the null pointer, keeping their
  /// resident state at O(|head|).
  struct BoundedCache {
    std::vector<Waypoint> waypoints;
    std::vector<Waypoint> turns;
    Real max_abs = 0;
  };

  std::vector<Waypoint> head_;
  Real kappa_ = 0;
  Real barrier_ = 0;
  std::vector<Waypoint> head_turns_;  ///< direction reversals inside head
  bool seed_is_turn_ = false;
  Real head_max_speed_ = 0;
  std::unique_ptr<const BoundedCache> bounded_;
  std::size_t count_ = kUnboundedCount;
};

/// Unit-speed ray from the origin toward +infinity (direction = +1) or
/// -infinity (direction = -1), leaving at t = 0.  The two-group split's
/// analytic backend.
class AnalyticRay final : public ScheduleSource {
 public:
  explicit AnalyticRay(int direction);

  [[nodiscard]] std::string backend_name() const override {
    return "analytic-ray";
  }
  [[nodiscard]] bool unbounded() const override { return true; }
  [[nodiscard]] std::size_t waypoint_count() const override {
    return kUnboundedCount;
  }
  [[nodiscard]] Real start_time() const override { return 0; }
  [[nodiscard]] Real end_time() const override { return kInfinity; }
  [[nodiscard]] Real start_position() const override { return 0; }
  [[nodiscard]] Real end_position() const override;
  [[nodiscard]] Real max_abs_position() const override { return kInfinity; }
  [[nodiscard]] Real max_speed() const override { return 1; }
  [[nodiscard]] Real position_at(Real t) const override;
  [[nodiscard]] std::vector<Real> visit_times(
      Real x, std::size_t max_count) const override;
  void first_visit_times_into(const Real* xs, std::size_t count,
                              Real* out) const override;
  [[nodiscard]] const std::vector<Waypoint>& waypoints() const override;
  [[nodiscard]] std::vector<Waypoint> waypoint_prefix(
      std::size_t k) const override;
  [[nodiscard]] const std::vector<Waypoint>& turning_waypoints()
      const override;
  [[nodiscard]] std::vector<Real> turning_magnitudes_in(
      int side, Real lo, Real hi) const override;
  [[nodiscard]] std::vector<Real> waypoint_positions_within(
      Real max_magnitude) const override;
  [[nodiscard]] std::size_t footprint_bytes() const override {
    return sizeof(AnalyticRay);
  }

  [[nodiscard]] int direction() const noexcept { return direction_; }

 private:
  int direction_ = 1;
};

}  // namespace linesearch

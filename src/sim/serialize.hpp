// sim/serialize.hpp — persistence for trajectories and fleets.
//
// The on-disk format is deliberately trivial: CSV with one row per
// waypoint (`robot,time,position`, 21 significant digits — max_digits10 of 80-bit
// long double, so values round-trip through text exactly).
// This allows externally-generated strategies (a Python prototype, a
// solver, a student's hand-crafted schedule) to be dropped into the
// evaluator, the adversary and the renderer unchanged, and allows our
// fleets to be exported to plotting tools.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/fleet.hpp"
#include "sim/trajectory.hpp"

namespace linesearch {

/// Write one trajectory as waypoint CSV rows with the given robot id
/// (no header).
void write_trajectory_csv(std::ostream& out, const Trajectory& trajectory,
                          RobotId robot = 0);

/// Write a whole fleet: header `robot,time,position`, then one row per
/// waypoint of every robot, grouped by robot id.
void write_fleet_csv(std::ostream& out, const Fleet& fleet);

/// Parse a fleet back from the format written by write_fleet_csv.
/// Robots may appear in any order but each robot's waypoints must be in
/// time order (as written).  Throws PreconditionError on malformed input
/// (bad header, non-numeric fields, gaps in robot ids, speed violations).
[[nodiscard]] Fleet read_fleet_csv(std::istream& in);

/// Convenience: serialize to / parse from a string.
[[nodiscard]] std::string fleet_to_csv(const Fleet& fleet);
[[nodiscard]] Fleet fleet_from_csv(const std::string& text);

}  // namespace linesearch

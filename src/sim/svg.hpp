// sim/svg.hpp — publication-style SVG rendering of space/time diagrams.
//
// The ASCII renderer (sim/recorder.hpp) is for terminals; this one emits
// standalone SVG matching the paper's figure conventions: space
// horizontal, time flowing DOWNWARD, the cone C_beta as dashed rays from
// the origin, robots as colored polylines, the target as a vertical
// line.  The figure benches write these next to their stdout tables so a
// reproduction run leaves real figure artifacts behind.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Options for render_svg.
struct SvgOptions {
  Real max_time = 20;      ///< vertical span [0, max_time]
  Real max_position = 10;  ///< horizontal span [-max_position, +max_position]
  int width = 640;         ///< pixel width
  int height = 480;        ///< pixel height
  Real cone_beta = 0;      ///< if > 1, draw the cone boundary rays
  Real target = kNaN;      ///< if finite, draw a target line
  std::string title;       ///< optional caption

  /// Extra (x, t) polylines drawn in bold black over the robots — used
  /// e.g. for the Figure-4 "tower" boundary T_{f+1}(x).
  std::vector<std::vector<std::pair<Real, Real>>> overlays;
};

/// Render the fleet to a standalone SVG document.
[[nodiscard]] std::string render_svg(const Fleet& fleet,
                                     const SvgOptions& options);

/// Write an SVG document to `path`, creating parent directories;
/// throws NumericError when the file cannot be written.
void write_svg_file(const std::string& path, const std::string& svg);

}  // namespace linesearch

#include "sim/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"
#include "util/error.hpp"

namespace linesearch {

Fleet::Fleet(std::vector<Trajectory> robots) : robots_(std::move(robots)) {
  expects(!robots_.empty(), "fleet needs at least one robot");
  for (const Trajectory& t : robots_) {
    if (t.unbounded()) unbounded_ = true;
    horizon_ = std::max(horizon_, t.end_time());
  }
}

const Trajectory& Fleet::robot(const RobotId id) const {
  expects(id < robots_.size(), "robot id out of range");
  return robots_[id];
}

std::vector<Real> Fleet::first_visit_times(const Real x) const {
  std::vector<Real> times;
  times.reserve(robots_.size());
  for (const Trajectory& t : robots_) {
    const std::optional<Real> visit = t.first_visit_time(x);
    times.push_back(visit ? *visit : kInfinity);
  }
  return times;
}

std::vector<VisitRecord> Fleet::visit_order(const Real x) const {
  const std::vector<Real> times = first_visit_times(x);
  std::vector<VisitRecord> order;
  order.reserve(times.size());
  for (RobotId id = 0; id < times.size(); ++id) {
    order.push_back({id, times[id]});
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const VisitRecord& a, const VisitRecord& b) {
                     return a.time < b.time;
                   });
  return order;
}

Real Fleet::detection_time(const Real x, const int faults) const {
  expects(faults >= 0, "detection_time: faults must be >= 0");
  const auto k = static_cast<std::size_t>(faults);
  if (k >= robots_.size()) return kInfinity;
  return kth_smallest(first_visit_times(x), k);
}

std::optional<RobotId> Fleet::worst_case_detector(const Real x,
                                                  const int faults) const {
  expects(faults >= 0, "worst_case_detector: faults must be >= 0");
  const auto k = static_cast<std::size_t>(faults);
  if (k >= robots_.size()) return std::nullopt;
  const std::vector<VisitRecord> order = visit_order(x);
  if (std::isinf(order[k].time)) return std::nullopt;
  return order[k].robot;
}

Real Fleet::detection_time_with_faults(
    const Real x, const std::vector<bool>& faulty) const {
  expects(faulty.size() == robots_.size(),
          "fault vector size must match fleet size");
  Real best = kInfinity;
  for (RobotId id = 0; id < robots_.size(); ++id) {
    if (faulty[id]) continue;
    const std::optional<Real> visit = robots_[id].first_visit_time(x);
    if (visit) best = std::min(best, *visit);
  }
  return best;
}

int Fleet::distinct_visitors_by(const Real x, const Real deadline) const {
  int count = 0;
  for (const Trajectory& t : robots_) {
    const std::optional<Real> visit = t.first_visit_time(x);
    if (visit && *visit <= deadline) ++count;
  }
  return count;
}

bool Fleet::covers(const Real min_x, const Real extent, const int required,
                   const int probes_per_side) const {
  expects(min_x > 0 && extent > min_x, "covers: need 0 < min_x < extent");
  expects(required >= 1, "covers: required must be >= 1");
  expects(probes_per_side >= 2, "covers: need at least 2 probes");

  // Geometric probe grid on each side + right-limits past each turning
  // point (the places where coverage can drop, cf. Lemma 3).  The final
  // probe is pinned to `extent` exactly (as geomspace does): accumulated
  // rounding in the repeated multiplication can otherwise leave it short
  // of — or one ulp PAST — the extent, probing a point the fleet was
  // never asked to cover.
  const Real ratio = std::pow(extent / min_x,
                              Real{1} / static_cast<Real>(probes_per_side - 1));
  std::vector<Real> probes;
  Real p = min_x;
  for (int i = 0; i < probes_per_side; ++i) {
    probes.push_back(i == probes_per_side - 1 ? extent : p);
    p *= ratio;
  }
  for (const int side : {+1, -1}) {
    // Windowed turning query so unbounded (analytic) fleets enumerate
    // only the finitely many turns that matter; turns beyond `extent`
    // would fail the just-past filter below anyway.
    for (const Real magnitude : turning_positions_in(side, 0, extent)) {
      const Real just_past = magnitude * (1 + tol::kLimitProbe);
      if (just_past >= min_x && just_past <= extent) {
        probes.push_back(just_past);
      }
    }
  }
  // Dedupe the merged grid: the pinned extent probe and turning-point
  // right-limits routinely coincide (and turns repeat across robots).
  // Exact equality only — an approx dedupe could swallow a just-past
  // probe in favor of the 1e-9-smaller turning point itself, which is
  // precisely the distinction the limit probes exist to test.
  std::sort(probes.begin(), probes.end());
  probes.erase(std::unique(probes.begin(), probes.end()), probes.end());

  for (const Real magnitude : probes) {
    for (const int side : {+1, -1}) {
      const Real x = static_cast<Real>(side) * magnitude;
      if (distinct_visitors_by(x, horizon_) < required) return false;
    }
  }
  return true;
}

std::vector<Real> Fleet::turning_positions(const int side) const {
  expects(side == 1 || side == -1, "turning_positions: side must be +-1");
  std::vector<Real> magnitudes;
  for (const Trajectory& t : robots_) {
    for (const Waypoint& w : t.turning_waypoints()) {
      if (sign_of(w.position) == side) {
        magnitudes.push_back(std::fabs(w.position));
      }
    }
  }
  std::sort(magnitudes.begin(), magnitudes.end());
  return magnitudes;
}

std::vector<Real> Fleet::turning_positions_in(const int side, const Real lo,
                                              const Real hi) const {
  expects(side == 1 || side == -1, "turning_positions_in: side must be +-1");
  std::vector<Real> magnitudes;
  for (const Trajectory& t : robots_) {
    const std::vector<Real> own = t.turning_magnitudes_in(side, lo, hi);
    magnitudes.insert(magnitudes.end(), own.begin(), own.end());
  }
  std::sort(magnitudes.begin(), magnitudes.end());
  return magnitudes;
}

}  // namespace linesearch

// sim/faults.hpp — fault models.
//
// The paper's analysis is worst-case: the adversary decides which f robots
// are faulty after seeing the algorithm (equivalently, faults can be
// "assigned" retroactively because faulty robots behave identically to
// reliable ones until the target is hit).  AdversarialFaults implements
// exactly that.  FixedFaults and RandomFaults support the extension
// experiments (explicit scenarios and Monte-Carlo studies of *average*
// behaviour under random faults, bench A3).
#pragma once

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Strategy object deciding which robots are faulty for a given target.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Choose the fault assignment (size == fleet.size(), at most
  /// `max_faults` entries true) for a target at x.
  [[nodiscard]] virtual std::vector<bool> choose_faults(const Fleet& fleet,
                                                        Real target,
                                                        int max_faults) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Worst case: make faulty the `max_faults` robots whose first visits to
/// the target are earliest (delaying detection as much as possible).
class AdversarialFaults final : public FaultModel {
 public:
  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] std::string name() const override { return "adversarial"; }
};

/// A fixed, target-independent fault set.
class FixedFaults final : public FaultModel {
 public:
  explicit FixedFaults(std::vector<bool> faulty);

  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  std::vector<bool> faulty_;
};

/// A uniformly random subset of exactly `max_faults` robots, drawn from a
/// seeded engine (deterministic and reproducible).
class RandomFaults final : public FaultModel {
 public:
  explicit RandomFaults(std::uint64_t seed);

  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  std::mt19937_64 rng_;
};

/// Convenience: detection time at x under `model` with up to f faults.
[[nodiscard]] Real detection_time_under(FaultModel& model, const Fleet& fleet,
                                        Real target, int max_faults);

}  // namespace linesearch

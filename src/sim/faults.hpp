// sim/faults.hpp — fault models.
//
// The paper's analysis is worst-case: the adversary decides which f robots
// are faulty after seeing the algorithm (equivalently, faults can be
// "assigned" retroactively because faulty robots behave identically to
// reliable ones until the target is hit).  AdversarialFaults implements
// exactly that.  FixedFaults and RandomFaults support the extension
// experiments (explicit scenarios and Monte-Carlo studies of *average*
// behaviour under random faults, bench A3).
//
// CrashFaults extends the taxonomy beyond the paper: a crash-stop robot
// halts at its crash time and contributes NO visits afterwards (its past
// visits still count — a crashed robot was sensing-reliable while it
// moved; the blind budget is separate and unchanged).  The model reduces
// crashes to the existing machinery by truncating trajectories at the
// crash times (truncate_at_crashes) and answering every query against
// the truncated fleet, which makes the mixed regime (f blind faults +
// any number of crashes) exact by construction.
//
// ProbabilisticFaults weakens blindness to PER-VISIT failure
// (arXiv:2002.07797, arXiv:2303.15608): every visit to the target is an
// independent probe that fails with probability p — a robot that misses
// the target on one pass may still catch it on a later one, so there is
// no static faulty set and no fault budget; detection is the first visit
// whose probe succeeds.  The realized fail schedule is a pure function
// of (seed, robot, visit index) on the shared SplitMix64 substrate, so a
// seed alone replays a run bit-identically anywhere and each robot's
// marginal schedule is independent of the rest of the fleet.
//
// ByzantineFaults strengthens blindness to LYING (arXiv:1611.08209):
// a Byzantine robot may fabricate a target claim at an adversarially
// chosen time and position (false positive) and suppresses its real
// find (false negative).  No single claim can be trusted, so the team
// confirms a position only after a QUORUM of f+1 distinct corroborating
// robots — at most f can lie, so f+1 matching claims contain at least
// one honest witness.  The model again reduces to order statistics:
// with liar set L the confirmation waits for the (f+1)-st distinct
// first visit among the non-liars (worst case: every liar stays
// silent), and the worst case over all |L| <= f makes liars of the f
// earliest visitors, which is exactly the (2f+1)-st distinct first
// visit — Fleet::detection_time(x, 2f).  Quorum is therefore
// unreachable for every target when n < 2f+1 (fewer than f+1 honest
// corroborators exist at all), the impossibility half of the
// reproduced bounds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "util/real.hpp"
#include "util/rng.hpp"

namespace linesearch {

/// Strategy object deciding which robots are faulty for a given target.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Choose the fault assignment (size == fleet.size(), at most
  /// `max_faults` entries true) for a target at x.
  [[nodiscard]] virtual std::vector<bool> choose_faults(const Fleet& fleet,
                                                        Real target,
                                                        int max_faults) = 0;

  /// Detection time at `target` under this model with up to `max_faults`
  /// sensor-blind robots.  The default evaluates the chosen assignment
  /// on `fleet` directly; models that alter the MOTION regime (crashes)
  /// override this to answer against their own view of the fleet.
  [[nodiscard]] virtual Real detection_time(const Fleet& fleet, Real target,
                                            int max_faults);

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Worst case: make faulty the `max_faults` robots whose first visits to
/// the target are earliest (delaying detection as much as possible).
class AdversarialFaults final : public FaultModel {
 public:
  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] std::string name() const override { return "adversarial"; }
};

/// A fixed, target-independent fault set.
class FixedFaults final : public FaultModel {
 public:
  explicit FixedFaults(std::vector<bool> faulty);

  /// Throws PreconditionError (with the offending counts in the message)
  /// when the fixed set is larger than the permitted budget.
  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  std::vector<bool> faulty_;
};

/// A uniformly random subset of exactly `max_faults` robots, drawn from
/// the shared SplitMix64 substrate (deterministic, and — unlike the
/// std::mt19937_64 + std::shuffle it used to run on — identical across
/// platforms and standard libraries, so seeded studies replay anywhere).
class RandomFaults final : public FaultModel {
 public:
  explicit RandomFaults(std::uint64_t seed);

  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  SplitMix64 rng_;
};

/// The fleet as it actually moves when robot i crash-stops at
/// crash_times[i]: each trajectory is cut at its crash time (the cut
/// waypoint is interpolated with DenseSchedule::position_at's exact
/// arithmetic, so the result is value_identical to a World run under a
/// crash FaultInjector).  kInfinity entries leave the robot untouched
/// (the backend is shared, not copied).
[[nodiscard]] Fleet truncate_at_crashes(const Fleet& fleet,
                                        const std::vector<Real>& crash_times);

/// Mixed regime: crash-stop schedule plus up to `max_faults` adversarial
/// sensor-blind robots.  Visits after a robot's crash never happen;
/// visits before it count (crashed != blind).  Queries are answered
/// against the truncated fleet, with the blind assignment chosen
/// adversarially (earliest truncated visitors first).
class CrashFaults final : public FaultModel {
 public:
  explicit CrashFaults(std::vector<Real> crash_times);

  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] Real detection_time(const Fleet& fleet, Real target,
                                    int max_faults) override;
  [[nodiscard]] std::string name() const override { return "crash"; }

  [[nodiscard]] const std::vector<Real>& crash_times() const noexcept {
    return crash_times_;
  }

 private:
  /// Truncated view of `fleet`, cached per fleet identity (the model is
  /// typically interrogated many times about one fleet).
  [[nodiscard]] const Fleet& truncated_for(const Fleet& fleet);

  std::vector<Real> crash_times_;
  const Fleet* cached_key_ = nullptr;
  std::unique_ptr<Fleet> truncated_;
};

/// Convenience: detection time at x under `model` with up to f faults.
[[nodiscard]] Real detection_time_under(FaultModel& model, const Fleet& fleet,
                                        Real target, int max_faults);

/// One fabricated claim in a Byzantine robot's lie schedule.
struct LieEvent {
  Real time = 0;      ///< announcement instant (>= 0)
  Real position = 0;  ///< the falsely claimed target position
};

/// Per-robot Byzantine behaviour.  A robot with liar[i] true suppresses
/// its real find and announces claims[i] instead; honest robots carry no
/// events.  The plan is data, not behaviour — the runtime arbiter
/// (runtime/arbitration) and the adversary game consume it.
struct LiePlan {
  std::vector<bool> liar;                     ///< size n
  std::vector<std::vector<LieEvent>> claims;  ///< size n; empty unless liar

  [[nodiscard]] std::size_t size() const noexcept { return liar.size(); }
  [[nodiscard]] int liar_count() const noexcept;
};

/// Parameters of the seeded lie-schedule generator.
struct LiePlanConfig {
  int max_liars = 1;            ///< liars drawn in [1, max_liars]
  int max_claims_per_liar = 2;  ///< fabrications per liar in [1, max]
  Real claim_horizon = 32;      ///< fabricated claim times in (0, horizon]
  Real claim_extent = 16;       ///< fabricated |positions| in [1, extent]
};

/// Deterministic lie plan on the shared SplitMix64 substrate: a pure
/// function of (seed, robots, config) — same triple, same plan, on every
/// machine.  Every per-robot draw happens unconditionally so the stream
/// shape is independent of which robots end up lying.
[[nodiscard]] LiePlan random_lie_plan(std::uint64_t seed, std::size_t robots,
                                      const LiePlanConfig& config = {});

/// Quorum time with an EXPLICIT liar set: the (f+1)-st distinct first
/// visit to `target` among the non-liar robots (worst case: every liar
/// suppresses; a lying corroboration could only make this earlier).
/// kInfinity when fewer than f+1 non-liars ever visit.
[[nodiscard]] Real byzantine_quorum_time(const Fleet& fleet, Real target,
                                         const std::vector<bool>& liars,
                                         int f);

/// Worst case over every liar set of size <= f: making liars of the f
/// earliest visitors delays the honest (f+1)-st corroboration the most,
/// so this is exactly the (2f+1)-st distinct first visit —
/// Fleet::detection_time(target, 2f).  kInfinity for every target when
/// n < 2f+1 (the impossibility bound).
[[nodiscard]] Real byzantine_quorum_time(const Fleet& fleet, Real target,
                                         int f);

/// Byzantine fault model: choose_faults exposes the plan's liar set and
/// detection_time answers the QUORUM time (f+1 corroborating visits)
/// under that set — the lying analogue of sensor-blind detection.
class ByzantineFaults final : public FaultModel {
 public:
  explicit ByzantineFaults(LiePlan plan);

  /// The plan's liar mask.  Throws PreconditionError when the plan lies
  /// more than the permitted budget.
  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;
  [[nodiscard]] Real detection_time(const Fleet& fleet, Real target,
                                    int max_faults) override;
  [[nodiscard]] std::string name() const override { return "byzantine"; }

  [[nodiscard]] const LiePlan& plan() const noexcept { return plan_; }

 private:
  LiePlan plan_;
};

/// Parameters of the probabilistic (per-visit) fault regime.
struct ProbabilisticFaultConfig {
  Real p = 0;  ///< each visit independently fails with probability p
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;  ///< fail-schedule seed
  /// Realized visits examined per robot before the run is declared
  /// undetected (kInfinity).  With p < 1 the residual miss probability
  /// is p^max_visits per robot — negligible for every practical p.
  std::size_t max_visits = 4096;
};

/// The per-(robot, visit) failure coin: true when robot `robot`'s
/// `visit`-th visit (0-based, in the robot's OWN visit order) fails.  A
/// pure O(1) function of (seed, robot, visit, p) — no shared stream, so
/// any subset of coins can be queried in any order and a robot's
/// marginal schedule does not depend on how many other robots exist.
[[nodiscard]] bool probabilistic_visit_fails(std::uint64_t seed,
                                             std::size_t robot,
                                             std::size_t visit, Real p);

/// Per-visit probabilistic faults: detection is the FIRST visit (in time
/// order, over the whole team) whose coin succeeds.  The blind budget of
/// the base interface does not apply — failures are transient and
/// per-probe, not per-robot — so choose_faults reports no robot as
/// (statically) faulty and detection_time ignores max_faults.
class ProbabilisticFaults final : public FaultModel {
 public:
  explicit ProbabilisticFaults(ProbabilisticFaultConfig config);

  /// All-false: no robot is permanently faulty under this model.
  [[nodiscard]] std::vector<bool> choose_faults(const Fleet& fleet,
                                                Real target,
                                                int max_faults) override;

  /// First successful probe time at `target` under the realized fail
  /// schedule, kInfinity when every examined visit fails (or the target
  /// is never visited).  Equals min over robots of each robot's first
  /// successful visit — coins are indexed per (robot, visit), so the
  /// merged order never has to be materialized.
  [[nodiscard]] Real detection_time(const Fleet& fleet, Real target,
                                    int max_faults) override;
  [[nodiscard]] std::string name() const override { return "probabilistic"; }

  [[nodiscard]] const ProbabilisticFaultConfig& config() const noexcept {
    return config_;
  }

 private:
  ProbabilisticFaultConfig config_;
};

}  // namespace linesearch

// sim/engine.hpp — discrete-event replay of a search scenario.
//
// Given a fleet, a target position and a fault assignment, the engine
// merges every robot's departures, turns and target visits into one
// chronological stream, dispatches them to an Observer, and stops at the
// first visit by a reliable robot (the detection, per Section 1 of the
// paper) or at the horizon.
//
// Invariant checked by tests: the engine's detection time equals
// Fleet::detection_time_with_faults exactly (two independent code paths).
#pragma once

#include <optional>
#include <vector>

#include "sim/events.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Engine configuration.
struct EngineConfig {
  /// Stop emitting events after this time even without detection; by
  /// default the fleet's own horizon is used.
  std::optional<Real> horizon;

  /// Also emit kTargetVisit events for faulty robots (true) or silently
  /// skip them (false).  Detection semantics are unaffected.
  bool emit_faulty_visits = true;

  /// Stop at the first detection (true) or keep replaying to the horizon
  /// (false), which is useful for rendering complete diagrams.
  bool stop_at_detection = true;
};

/// Result of one engine run.
struct SimulationOutcome {
  bool detected = false;
  Real detection_time = kInfinity;
  std::optional<RobotId> detector;
  int visits_before_detection = 0;  ///< target visits by faulty robots first
  int events_emitted = 0;
};

/// Discrete-event simulator over a Fleet.
class Engine {
 public:
  explicit Engine(const Fleet& fleet, EngineConfig config = {});

  /// Replay the scenario; `faulty` must have one flag per robot.  The
  /// observer may be null when only the outcome is needed.
  [[nodiscard]] SimulationOutcome run(Real target,
                                      const std::vector<bool>& faulty,
                                      Observer* observer = nullptr) const;

  /// Convenience: run with no faults at all.
  [[nodiscard]] SimulationOutcome run_fault_free(
      Real target, Observer* observer = nullptr) const;

 private:
  const Fleet* fleet_;
  EngineConfig config_;
};

}  // namespace linesearch

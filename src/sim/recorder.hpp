// sim/recorder.hpp — event capture and ASCII space-time rendering.
//
// EventLog is the standard Observer used by tests and examples.  The
// renderer draws the space/time diagrams of the paper's Figures 1-4 as
// text: time flows downward, the line is horizontal, robots appear as
// their id digit, the origin as '|', the cone boundary as '.', and the
// target as 'T'.
#pragma once

#include <string>
#include <vector>

#include "sim/events.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Observer that records every event it sees.
class EventLog final : public Observer {
 public:
  void on_event(const Event& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Events of one kind, in order.
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;

  /// Render the log as one line per event.
  [[nodiscard]] std::string to_text() const;

  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Options for the ASCII space-time diagram.
struct RenderOptions {
  Real max_time = 20;      ///< vertical span [0, max_time]
  Real max_position = 10;  ///< horizontal span [-max_position, max_position]
  int rows = 30;           ///< character rows
  int columns = 61;        ///< character columns (odd keeps origin centered)
  Real cone_beta = 0;      ///< if > 1, draw the cone boundary with '.'
  Real target = kNaN;      ///< if finite, draw a 'T' column marker
};

/// Draw the fleet's trajectories as an ASCII space-time diagram.
[[nodiscard]] std::string render_space_time(const Fleet& fleet,
                                            const RenderOptions& options);

}  // namespace linesearch

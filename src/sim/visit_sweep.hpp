// sim/visit_sweep.hpp — shared frontier sweep behind the batched
// first-visit queries (ScheduleSource::first_visit_times_into).
//
// A trajectory is continuous, so after any prefix of segments the set of
// visited points is exactly the interval [min position so far, max
// position so far].  Each segment starts inside that interval (segments
// share endpoints) and can therefore extend it on at most one side; a
// probe x is first visited by the first segment that pushes the frontier
// past x, and the visit time is the very interpolation the scalar
// per-segment scan (DenseSchedule::visit_times with max_count = 1) would
// compute on that segment.  Sweeping a SORTED probe array against the
// segment stream in order assigns every probe in O(segments + probes)
// with two cursors — one per frontier — instead of the scalar scan's
// O(segments) walk per probe, and produces bit-identical times because
// the assigned expression is the same, on the same segment, in the same
// arithmetic.
//
// Exactness notes mirrored from the scalar scan:
//   * a probe equal to the start position is visited at start_time()
//     (the scan's fraction-0 interpolation yields exactly a.time);
//   * stationary segments never extend the frontier, and any probe they
//     sit on was already covered, so they assign nothing;
//   * the scan's skip-start and approx-dedup rules only affect SECOND
//     visits and are irrelevant to the first-visit query.
#pragma once

#include <algorithm>
#include <cstddef>

#include "sim/schedule.hpp"
#include "util/error.hpp"
#include "util/real.hpp"

namespace linesearch::detail {

/// One batched first-visit computation.  Feed the schedule's segments in
/// time order until done() (or the schedule ends); unfed probes keep
/// kInfinity, exactly like a never-visiting scalar query.
class FrontierSweep {
 public:
  /// `xs` must be sorted ascending (duplicates allowed).
  FrontierSweep(const Real* xs, const std::size_t count, Real* out,
                const Waypoint& start)
      : xs_(xs), count_(count), out_(out) {
    // Validation and the kInfinity pre-fill share one branchless pass;
    // the single check afterwards keeps expects (and its potential
    // throw) off the per-element path.
    bool sorted = true;
    if (count_ > 0) out_[0] = kInfinity;
    for (std::size_t i = 1; i < count_; ++i) {
      sorted &= xs_[i - 1] <= xs_[i];
      out_[i] = kInfinity;
    }
    expects(sorted,
            "first_visit_times_into: positions must be sorted ascending");
    cov_lo_ = cov_hi_ = start.position;
    // Probes sitting exactly on the start position are visited at the
    // start; [lo, hi) brackets them in the sorted array.
    const Real* lo = std::lower_bound(xs_, xs_ + count_, start.position);
    const Real* hi = std::upper_bound(lo, xs_ + count_, start.position);
    for (const Real* p = lo; p != hi; ++p) out_[p - xs_] = start.time;
    right_ = static_cast<std::size_t>(hi - xs_);
    left_ = (lo - xs_) - 1;
  }

  /// All probes assigned; feeding further segments is a no-op.
  [[nodiscard]] bool done() const noexcept {
    return left_ < 0 && right_ >= count_;
  }

  /// Advance the frontier over one segment a -> b (b.time > a.time).
  void feed(const Waypoint& a, const Waypoint& b) {
    const Real lo = std::min(a.position, b.position);
    const Real hi = std::max(a.position, b.position);
    if (hi > cov_hi_) {
      while (right_ < count_ && xs_[right_] <= hi) {
        assign(right_, a, b);
        ++right_;
      }
      cov_hi_ = hi;
    }
    if (lo < cov_lo_) {
      while (left_ >= 0 && xs_[left_] >= lo) {
        assign(static_cast<std::size_t>(left_), a, b);
        --left_;
      }
      cov_lo_ = lo;
    }
  }

 private:
  void assign(const std::size_t i, const Waypoint& a, const Waypoint& b) {
    // Only a moving segment extends the frontier, so b != a here; the
    // expression is character-for-character the scalar scan's.
    const Real fraction = (xs_[i] - a.position) / (b.position - a.position);
    out_[i] = a.time + fraction * (b.time - a.time);
  }

  const Real* xs_;
  std::size_t count_;
  Real* out_;
  Real cov_lo_ = 0;
  Real cov_hi_ = 0;
  std::ptrdiff_t left_ = -1;   ///< largest unassigned index below cov_lo_
  std::size_t right_ = 0;      ///< smallest unassigned index above cov_hi_
};

}  // namespace linesearch::detail

#include "sim/recorder.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace linesearch {

std::vector<Event> EventLog::of_kind(const EventKind kind) const {
  std::vector<Event> out;
  for (const Event& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string EventLog::to_text() const {
  std::ostringstream out;
  for (const Event& e : events_) out << to_string(e) << '\n';
  return out.str();
}

std::string render_space_time(const Fleet& fleet,
                              const RenderOptions& options) {
  expects(options.rows >= 2 && options.columns >= 3,
          "render: grid too small");
  expects(options.max_time > 0 && options.max_position > 0,
          "render: spans must be positive");

  const int rows = options.rows;
  const int cols = options.columns;
  std::vector<std::string> grid(static_cast<std::size_t>(rows),
                                std::string(static_cast<std::size_t>(cols), ' '));

  const auto col_of = [&](const Real x) -> int {
    const Real fraction = (x + options.max_position) / (2 * options.max_position);
    return static_cast<int>(std::lround(fraction * static_cast<Real>(cols - 1)));
  };
  const auto in_grid = [&](const int r, const int c) {
    return r >= 0 && r < rows && c >= 0 && c < cols;
  };
  const auto put = [&](const int r, const int c, const char ch,
                       const bool overwrite) {
    if (!in_grid(r, c)) return;
    char& cell = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    if (overwrite || cell == ' ' || cell == '|' || cell == '.') cell = ch;
  };

  // Origin axis and optional cone / target markers (background layer).
  const int origin_col = col_of(0);
  for (int r = 0; r < rows; ++r) {
    const Real t = options.max_time * static_cast<Real>(r) /
                   static_cast<Real>(rows - 1);
    put(r, origin_col, '|', true);
    if (options.cone_beta > 1) {
      const Real reach = t / options.cone_beta;  // cone boundary |x| = t/beta
      put(r, col_of(reach), '.', false);
      put(r, col_of(-reach), '.', false);
    }
    if (std::isfinite(options.target)) {
      put(r, col_of(options.target), ':', false);
    }
  }

  // Robot curves (foreground layer): sample each row's time.
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Trajectory& t = fleet.robot(id);
    const char mark =
        static_cast<char>('0' + static_cast<int>(id % 10));
    for (int r = 0; r < rows; ++r) {
      const Real time = options.max_time * static_cast<Real>(r) /
                        static_cast<Real>(rows - 1);
      if (time < t.start_time() || time > t.end_time()) continue;
      put(r, col_of(t.position_at(time)), mark, true);
    }
  }

  if (std::isfinite(options.target)) {
    put(0, col_of(options.target), 'T', true);
  }

  std::ostringstream out;
  out << "time v | space ->  [" << -options.max_position << ", "
      << options.max_position << "] x [0, " << options.max_time << "]\n";
  for (const std::string& row : grid) out << row << '\n';
  return out.str();
}

}  // namespace linesearch

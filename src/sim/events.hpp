// sim/events.hpp — event vocabulary of the discrete-event simulator.
//
// The engine replays a search scenario (fleet + target + fault set) as a
// chronological stream of events.  The exact-math query path (Fleet) is
// what the benches measure; the event stream exists so examples, the
// recorder and the ASCII renderer can narrate what happened, and so tests
// can cross-check the two paths against each other.
#pragma once

#include <string>

#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// What happened.
enum class EventKind {
  kDeparture,    ///< robot leaves the origin (its first movement)
  kTurn,         ///< robot reverses direction at a turning point
  kTargetVisit,  ///< robot is at the target's position
  kDetection,    ///< a RELIABLE robot visits the target: search over
  kHalt,         ///< simulation reached its horizon without detection
};

/// One simulation event.
struct Event {
  Real time = 0;
  EventKind kind = EventKind::kHalt;
  RobotId robot = 0;       ///< undefined for kHalt
  Real position = 0;       ///< robot/target position at the event
  bool robot_faulty = false;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Readable name of an event kind ("turn", "detection", ...).
[[nodiscard]] std::string to_string(EventKind kind);

/// One-line rendering of an event for logs and examples.
[[nodiscard]] std::string to_string(const Event& event);

/// Interface for event consumers.
class Observer {
 public:
  virtual ~Observer() = default;
  virtual void on_event(const Event& event) = 0;
};

}  // namespace linesearch

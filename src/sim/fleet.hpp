// sim/fleet.hpp — a collection of robot trajectories and the fault-aware
// detection-time queries on top of it.
//
// The central fact (Section 1 of the paper): a faulty robot follows its
// trajectory but never detects the target, so with up to f adversarial
// faults the target at x is detected at the (f+1)-st smallest *first-visit*
// time over DISTINCT robots.  (Revisits by a faulty robot never help; a
// reliable robot already detects on its first visit.)
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/trajectory.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Index of a robot inside a Fleet.
using RobotId = std::size_t;

/// One robot's first visit to a queried point.
struct VisitRecord {
  RobotId robot = 0;
  Real time = kInfinity;  ///< kInfinity when the robot never visits
};

/// Immutable collection of trajectories for n robots starting a search.
class Fleet {
 public:
  /// Requires at least one robot.
  explicit Fleet(std::vector<Trajectory> robots);

  [[nodiscard]] std::size_t size() const noexcept { return robots_.size(); }
  [[nodiscard]] const Trajectory& robot(RobotId id) const;
  [[nodiscard]] const std::vector<Trajectory>& robots() const noexcept {
    return robots_;
  }

  /// First visit time of every robot to x (kInfinity if never), indexed
  /// by robot id.
  [[nodiscard]] std::vector<Real> first_visit_times(Real x) const;

  /// First visits to x sorted by time (ties broken by robot id).
  [[nodiscard]] std::vector<VisitRecord> visit_order(Real x) const;

  /// Worst-case detection time of a target at x with up to `faults`
  /// adversarial faults: the (faults+1)-st smallest first-visit time.
  /// Returns kInfinity if fewer than faults+1 robots ever reach x.
  [[nodiscard]] Real detection_time(Real x, int faults) const;

  /// The robot that performs the detecting visit in the worst case, or
  /// nullopt if detection never happens.
  [[nodiscard]] std::optional<RobotId> worst_case_detector(Real x,
                                                           int faults) const;

  /// Detection time when the fault set is known explicitly: the earliest
  /// first-visit among non-faulty robots.  `faulty` must have size() == n.
  [[nodiscard]] Real detection_time_with_faults(
      Real x, const std::vector<bool>& faulty) const;

  /// Number of distinct robots that visit x no later than `deadline`.
  [[nodiscard]] int distinct_visitors_by(Real x, Real deadline) const;

  /// True if every point of [-extent, -min_x] and [min_x, extent] is
  /// eventually visited by at least `required` distinct robots.  Checked
  /// on a geometric probe grid plus just-past-turning-point probes; used
  /// by tests and the verify paths.
  [[nodiscard]] bool covers(Real min_x, Real extent, int required,
                            int probes_per_side = 64) const;

  /// Latest end_time over all robots (the simulation horizon);
  /// kInfinity when any robot's schedule is unbounded.
  [[nodiscard]] Real horizon() const noexcept { return horizon_; }

  /// True when any robot's schedule has an unbounded horizon.
  [[nodiscard]] bool unbounded() const noexcept { return unbounded_; }

  /// All positive (or all negative, by sign) turning-point positions of
  /// all robots, sorted increasing by magnitude; used by the empirical CR
  /// evaluator to enumerate the discontinuities of K(x) (Lemma 3).
  /// Requires a bounded fleet; unbounded fleets use turning_positions_in.
  [[nodiscard]] std::vector<Real> turning_positions(int side) const;

  /// Windowed variant, exact on every backend: all turning magnitudes on
  /// `side` with lo <= magnitude <= hi, merged over robots and sorted
  /// increasing (duplicates across robots preserved, as in
  /// turning_positions).
  [[nodiscard]] std::vector<Real> turning_positions_in(int side, Real lo,
                                                       Real hi) const;

 private:
  std::vector<Trajectory> robots_;
  Real horizon_ = 0;
  bool unbounded_ = false;
};

}  // namespace linesearch

#include "sim/zigzag.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "sim/analytic.hpp"
#include "util/error.hpp"

namespace linesearch {

Real expansion_factor(const Real beta) {
  expects(beta > 1, "expansion_factor: beta must exceed 1");
  return (beta + 1) / (beta - 1);
}

Real beta_for_expansion(const Real kappa) {
  expects(kappa > 1, "beta_for_expansion: kappa must exceed 1");
  return (kappa + 1) / (kappa - 1);
}

Real cone_arrival_time(const Real beta, const Real x) {
  expects(beta > 1, "cone_arrival_time: beta must exceed 1");
  return beta * std::fabs(x);
}

Real previous_turning_point(const Real beta, const Real x) {
  return -x / expansion_factor(beta);
}

Real next_turning_point(const Real beta, const Real x) {
  return -x * expansion_factor(beta);
}

std::vector<Real> lemma1_turning_points(const Real beta, const Real x0,
                                        const int count) {
  expects(x0 != 0, "lemma1_turning_points: x0 must be non-zero");
  expects(count >= 0, "lemma1_turning_points: count must be >= 0");
  const Real kappa = expansion_factor(beta);
  std::vector<Real> points;
  points.reserve(static_cast<std::size_t>(count));
  Real x = x0;
  for (int i = 0; i < count; ++i) {
    points.push_back(x);
    x *= -kappa;
  }
  return points;
}

void extend_zigzag(TrajectoryBuilder& builder, const Real beta,
                   const Real min_coverage) {
  expects(min_coverage > 0, "extend_zigzag: min_coverage must be positive");
  const Real kappa = expansion_factor(beta);
  Real reach_positive = 0;
  Real reach_negative = 0;
  Real turn = builder.current_position();
  if (turn > 0) {
    reach_positive = turn;
  } else {
    reach_negative = -turn;
  }
  // Each iteration adds one full leg to the next turning point.  The loop
  // is guaranteed to terminate because |turn| grows by kappa > 1 each leg.
  while (reach_positive < min_coverage || reach_negative < min_coverage) {
    turn = -turn * kappa;
    builder.move_to(turn);
    if (turn > 0) {
      reach_positive = std::max(reach_positive, turn);
    } else {
      reach_negative = std::max(reach_negative, -turn);
    }
  }
  // One extra leg so that every turning point with magnitude up to
  // min_coverage is an INTERIOR waypoint (a trajectory's final waypoint
  // has no following segment and therefore does not register as a turn,
  // which would under-report the robot's turning reach to analyses).
  builder.move_to(-turn * kappa);
}

namespace {

void check_spec(const ZigZagSpec& spec) {
  expects(spec.beta > 1, "zigzag: beta must exceed 1");
  expects(spec.first_turn != 0, "zigzag: first_turn must be non-zero");
  expects(spec.min_coverage > 0, "zigzag: min_coverage must be positive");
}

}  // namespace

Trajectory make_cone_zigzag(const ZigZagSpec& spec) {
  check_spec(spec);
  TrajectoryBuilder builder;
  builder.start_at(cone_arrival_time(spec.beta, spec.first_turn),
                   spec.first_turn);
  extend_zigzag(builder, spec.beta, spec.min_coverage);
  return std::move(builder).build();
}

Trajectory make_origin_zigzag(const ZigZagSpec& spec) {
  check_spec(spec);
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  // Speed |first_turn| / (beta*|first_turn|) = 1/beta < 1: legal.
  builder.move_to_at(spec.first_turn,
                     cone_arrival_time(spec.beta, spec.first_turn));
  extend_zigzag(builder, spec.beta, spec.min_coverage);
  return std::move(builder).build();
}

Trajectory make_analytic_cone_zigzag(const ZigZagSpec& spec) {
  check_spec(spec);
  AnalyticZigzagSpec analytic;
  analytic.head = {{cone_arrival_time(spec.beta, spec.first_turn),
                    spec.first_turn}};
  analytic.kappa = expansion_factor(spec.beta);
  return Trajectory(std::make_shared<AnalyticZigzag>(std::move(analytic)));
}

Trajectory make_analytic_origin_zigzag(const ZigZagSpec& spec) {
  check_spec(spec);
  AnalyticZigzagSpec analytic;
  analytic.head = {{0, 0},
                   {cone_arrival_time(spec.beta, spec.first_turn),
                    spec.first_turn}};
  analytic.kappa = expansion_factor(spec.beta);
  return Trajectory(std::make_shared<AnalyticZigzag>(std::move(analytic)));
}

bool within_cone(const Trajectory& trajectory, const Real beta,
                 const Real relative_slack) {
  expects(beta > 1, "within_cone: beta must exceed 1");
  for (const Waypoint& w : trajectory.waypoints()) {
    const Real boundary = beta * std::fabs(w.position);
    if (w.time < boundary * (1 - relative_slack) - tol::kAbsolute) {
      return false;
    }
  }
  return true;
}

}  // namespace linesearch

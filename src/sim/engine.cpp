#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace linesearch {
namespace {

// Ordering for the merged event stream: by time, then a deterministic
// kind priority (turns before visits at equal times so a visit exactly at
// a turning point narrates sensibly), then robot id.
int kind_priority(const EventKind kind) {
  switch (kind) {
    case EventKind::kDeparture:
      return 0;
    case EventKind::kTurn:
      return 1;
    case EventKind::kTargetVisit:
      return 2;
    case EventKind::kDetection:
      return 3;
    case EventKind::kHalt:
      return 4;
  }
  return 5;
}

bool event_before(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time < b.time;
  const int pa = kind_priority(a.kind);
  const int pb = kind_priority(b.kind);
  if (pa != pb) return pa < pb;
  return a.robot < b.robot;
}

}  // namespace

Engine::Engine(const Fleet& fleet, EngineConfig config)
    : fleet_(&fleet), config_(config) {}

SimulationOutcome Engine::run(const Real target,
                              const std::vector<bool>& faulty,
                              Observer* observer) const {
  expects(faulty.size() == fleet_->size(),
          "fault vector size must match fleet size");
  const Real horizon = config_.horizon.value_or(fleet_->horizon());

  // Gather all events up to the horizon.
  std::vector<Event> events;
  for (RobotId id = 0; id < fleet_->size(); ++id) {
    const Trajectory& t = fleet_->robot(id);
    const bool is_faulty = faulty[id];

    // Departure: the first waypoint at which the robot starts moving.
    if (t.segment_count() > 0 && t.start_time() <= horizon) {
      events.push_back({t.start_time(), EventKind::kDeparture, id,
                        t.start_position(), is_faulty});
    }
    for (const Waypoint& w : t.turning_waypoints()) {
      if (w.time <= horizon) {
        events.push_back({w.time, EventKind::kTurn, id, w.position,
                          is_faulty});
      }
    }
    for (const Real visit : t.visit_times(target)) {
      if (visit > horizon) break;
      if (is_faulty && !config_.emit_faulty_visits) continue;
      events.push_back({visit,
                        is_faulty ? EventKind::kTargetVisit
                                  : EventKind::kDetection,
                        id, target, is_faulty});
    }
  }
  std::sort(events.begin(), events.end(), event_before);

  // A reliable robot detects on its FIRST visit; later reliable visits
  // (after detection) are irrelevant.  Find the earliest detection.
  SimulationOutcome outcome;
  for (const Event& e : events) {
    if (e.kind == EventKind::kDetection) {
      outcome.detected = true;
      outcome.detection_time = e.time;
      outcome.detector = e.robot;
      break;
    }
  }

  // Dispatch, honoring stop_at_detection.  Only the FIRST reliable visit
  // is the detection; later reliable visits are demoted to plain visit
  // events (the search is already over, but full replays narrate them).
  bool detection_emitted = false;
  for (Event e : events) {
    if (detection_emitted && config_.stop_at_detection) break;
    if (outcome.detected && config_.stop_at_detection &&
        e.time > outcome.detection_time) {
      break;
    }
    if (e.kind == EventKind::kDetection) {
      if (detection_emitted) {
        e.kind = EventKind::kTargetVisit;
      } else {
        detection_emitted = true;
      }
    }
    if (e.kind == EventKind::kTargetVisit && !detection_emitted) {
      ++outcome.visits_before_detection;
    }
    ++outcome.events_emitted;
    if (observer != nullptr) observer->on_event(e);
  }

  if (!outcome.detected && observer != nullptr) {
    observer->on_event({horizon, EventKind::kHalt, 0, 0, false});
  }
  return outcome;
}

SimulationOutcome Engine::run_fault_free(const Real target,
                                         Observer* observer) const {
  return run(target, std::vector<bool>(fleet_->size(), false), observer);
}

}  // namespace linesearch

#include "sim/analytic.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "sim/visit_sweep.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace linesearch {
namespace {

constexpr Real kSpeedSlack = 1 + 1e-9L;  // mirrors DenseSchedule

}  // namespace

/// Streams the schedule's waypoints in order with O(1) memory: head
/// waypoints first, then the ladder recurrence, then (barrier mode) the
/// two barrier sweeps.  All arithmetic matches the dense builders
/// bit-for-bit (see the header comment).
class AnalyticZigzag::Walker {
 public:
  explicit Walker(const AnalyticZigzag& schedule)
      : schedule_(schedule), w_(schedule.head_.front()) {}

  [[nodiscard]] const Waypoint& current() const noexcept { return w_; }
  [[nodiscard]] std::size_t index() const noexcept { return k_; }

  [[nodiscard]] bool has_next() const noexcept {
    if (k_ + 1 < schedule_.head_.size()) return true;
    return stage_ != Stage::kDone;
  }

  void advance() {
    ++k_;
    if (k_ < schedule_.head_.size()) {
      w_ = schedule_.head_[k_];
      return;
    }
    const Real x = w_.position;
    Real next = 0;
    switch (stage_) {
      case Stage::kMain:
        if (schedule_.barrier_ > 0 &&
            std::fabs(x * schedule_.kappa_) >= schedule_.barrier_) {
          next = (x > 0) ? -schedule_.barrier_ : schedule_.barrier_;
          stage_ = Stage::kAtBarrier;
        } else {
          next = -(x * schedule_.kappa_);
        }
        break;
      case Stage::kAtBarrier:
        next = -x;
        stage_ = Stage::kDone;
        break;
      case Stage::kDone:
        ensures(false, "walker advanced past the final waypoint");
    }
    w_ = {w_.time + std::fabs(next - x), next};
  }

 private:
  enum class Stage { kMain, kAtBarrier, kDone };

  const AnalyticZigzag& schedule_;
  std::size_t k_ = 0;
  Waypoint w_;
  Stage stage_ = Stage::kMain;
};

AnalyticZigzag::AnalyticZigzag(AnalyticZigzagSpec spec)
    : head_(std::move(spec.head)),
      kappa_(spec.kappa),
      barrier_(spec.barrier) {
  expects(!head_.empty(), "analytic zigzag: head needs >= 1 waypoint");
  expects(kappa_ > 1, "analytic zigzag: kappa must exceed 1");
  expects(head_.back().position != 0,
          "analytic zigzag: ladder seed position must be non-zero");
  expects(barrier_ >= 0, "analytic zigzag: barrier must be >= 0");
  expects(barrier_ == 0 || barrier_ > std::fabs(head_.back().position),
          "analytic zigzag: barrier must exceed the seed magnitude");

  Real head_max_abs = std::fabs(head_.front().position);
  int last_direction = 0;
  for (std::size_t i = 1; i < head_.size(); ++i) {
    const Waypoint& a = head_[i - 1];
    const Waypoint& b = head_[i];
    expects(b.time > a.time,
            "analytic zigzag: head times must strictly increase");
    const Real speed = std::fabs(b.position - a.position) / (b.time - a.time);
    expects(speed <= kMaxSpeed * kSpeedSlack,
            "analytic zigzag: head segment exceeds maximum speed");
    head_max_speed_ = std::max(head_max_speed_, speed);
    head_max_abs = std::max(head_max_abs, std::fabs(b.position));
    const int direction = sign_of(b.position - a.position);
    if (direction == 0) continue;  // pause
    if (last_direction != 0 && direction == -last_direction) {
      head_turns_.push_back(a);
    }
    last_direction = direction;
  }
  // The ladder leaves the seed toward -sign(seed), so the seed registers
  // as a turn exactly when the head arrived at it moving toward the seed's
  // own side (the origin-start schedules); a schedule that STARTS on the
  // seed (cone-anchored) has no incoming direction and no turn there —
  // both match the dense turn-extraction rule.
  seed_is_turn_ =
      last_direction != 0 && sign_of(head_.back().position) == last_direction;

  if (barrier_ > 0) {
    // Finite schedule: materialize once so the dense-only queries
    // (waypoints(), turning_waypoints()) work and count_ is exact.
    LS_OBS_COUNT("sim.analytic.barrier_materializations", 1);
    auto cache = std::make_unique<BoundedCache>();
    cache->waypoints.push_back(head_.front());
    for (Walker cursor(*this); cursor.has_next();) {
      cursor.advance();
      cache->waypoints.push_back(cursor.current());
    }
    count_ = cache->waypoints.size();
    int direction_before = 0;
    for (std::size_t s = 0; s + 1 < cache->waypoints.size(); ++s) {
      const int direction = sign_of(cache->waypoints[s + 1].position -
                                    cache->waypoints[s].position);
      if (direction == 0) continue;
      if (direction_before != 0 && direction == -direction_before) {
        cache->turns.push_back(cache->waypoints[s]);
      }
      direction_before = direction;
    }
    // Ladder magnitudes stay strictly below the barrier by the stopping
    // rule; the barrier sweeps reach exactly +-barrier.
    cache->max_abs = std::max(head_max_abs, barrier_);
    bounded_ = std::move(cache);
  }
}

Real AnalyticZigzag::end_time() const {
  return unbounded() ? kInfinity : bounded_->waypoints.back().time;
}

Real AnalyticZigzag::end_position() const {
  expects(!unbounded(), "end_position: schedule has an unbounded horizon");
  return bounded_->waypoints.back().position;
}

Real AnalyticZigzag::max_abs_position() const {
  return unbounded() ? kInfinity : bounded_->max_abs;
}

Real AnalyticZigzag::max_speed() const {
  // Every leg beyond the head moves at speed exactly 1 by construction
  // (time deltas are |position deltas|), and there is always at least one
  // such leg.
  return std::max(head_max_speed_, Real{1});
}

Real AnalyticZigzag::position_at(const Real t) const {
  expects(t >= start_time() && t <= end_time(),
          "position_at: time outside trajectory span");
  Walker cursor(*this);
  Waypoint a = cursor.current();
  cursor.advance();
  Waypoint b = cursor.current();
  while (b.time <= t) {
    if (!cursor.has_next()) return b.position;  // t == end_time (bounded)
    a = b;
    cursor.advance();
    b = cursor.current();
  }
  const Real fraction = (t - a.time) / (b.time - a.time);
  return a.position + fraction * (b.position - a.position);
}

std::vector<Real> AnalyticZigzag::visit_times(
    const Real x, const std::size_t max_count) const {
  expects(!unbounded() || max_count < kUnboundedCount,
          "visit_times: unbounded schedule needs a finite max_count");
  LS_OBS_COUNT("sim.analytic.visit_queries", 1);
  std::vector<Real> times;
  if (max_count == 0) return times;

  // Same segment scan as DenseSchedule, against generated segments.  The
  // loop terminates for any finite cap: the zig-zag's reach grows by
  // kappa > 1 per leg, so every x is crossed on all but finitely many
  // legs (and a bounded schedule simply runs out of segments).
  Walker cursor(*this);
  Waypoint a = cursor.current();
  std::size_t i = 0;
  while (cursor.has_next() && times.size() < max_count) {
    cursor.advance();
    const Waypoint& b = cursor.current();
    const Real lo = std::min(a.position, b.position);
    const Real hi = std::max(a.position, b.position);
    const bool skip_start = i > 0 && x == a.position;
    if (x >= lo && x <= hi && !skip_start) {
      Real t;
      if (a.position == b.position) {
        t = a.time;  // stationary segment sitting on x
      } else {
        const Real fraction = (x - a.position) / (b.position - a.position);
        t = a.time + fraction * (b.time - a.time);
      }
      if (times.empty() || !approx_equal(times.back(), t)) {
        times.push_back(t);
      }
    }
    a = b;
    ++i;
  }
  return times;
}

void AnalyticZigzag::first_visit_times_into(const Real* xs,
                                            const std::size_t count,
                                            Real* out) const {
  // One ladder walk answers the whole sorted batch — the scalar
  // visit_times restarts the walk per query, which is exactly the cost
  // the SoA probe kernel exists to avoid.  Counted separately from
  // sim.analytic.visit_queries, which keeps meaning "walks".
  LS_OBS_COUNT("sim.analytic.batched_sweeps", 1);
  LS_OBS_COUNT("sim.analytic.batched_visit_queries", count);
  detail::FrontierSweep sweep(xs, count, out, head_.front());
  // Unbounded ladders reach every point of both half-lines eventually
  // (reach grows by kappa > 1 per leg), so the sweep always completes;
  // bounded schedules may simply run out of segments, leaving the
  // never-visited probes at kInfinity.
  Walker cursor(*this);
  Waypoint a = cursor.current();
  while (cursor.has_next() && !sweep.done()) {
    cursor.advance();
    const Waypoint& b = cursor.current();
    sweep.feed(a, b);
    a = b;
  }
}

const std::vector<Waypoint>& AnalyticZigzag::waypoints() const {
  expects(!unbounded(),
          "waypoints: schedule has an unbounded horizon; use "
          "waypoint_prefix or the windowed queries");
  return bounded_->waypoints;
}

std::vector<Waypoint> AnalyticZigzag::waypoint_prefix(
    const std::size_t k) const {
  std::vector<Waypoint> prefix;
  if (k == 0) return prefix;
  Walker cursor(*this);
  prefix.push_back(cursor.current());
  while (prefix.size() < k && cursor.has_next()) {
    cursor.advance();
    prefix.push_back(cursor.current());
  }
  return prefix;
}

const std::vector<Waypoint>& AnalyticZigzag::turning_waypoints() const {
  expects(!unbounded(),
          "turning_waypoints: schedule has an unbounded horizon; use "
          "turning_magnitudes_in");
  return bounded_->turns;
}

std::vector<Real> AnalyticZigzag::turning_magnitudes_in(const int side,
                                                        const Real lo,
                                                        const Real hi) const {
  expects(side == 1 || side == -1,
          "turning_magnitudes_in: side must be +-1");
  LS_OBS_COUNT("sim.analytic.window_queries", 1);
  std::vector<Real> magnitudes;
  const auto add = [&](const Real position) {
    if (sign_of(position) != side) return;
    const Real magnitude = std::fabs(position);
    if (magnitude >= lo && magnitude <= hi) magnitudes.push_back(magnitude);
  };
  for (const Waypoint& w : head_turns_) add(w.position);
  // Ladder turns: the seed (when it registers) and every later turning
  // point; magnitudes grow by kappa each step, so the window bounds the
  // enumeration.
  Real x = head_.back().position;
  if (seed_is_turn_) add(x);
  bool hit_barrier = false;
  while (true) {
    if (barrier_ > 0 && std::fabs(x * kappa_) >= barrier_) {
      hit_barrier = true;
      break;
    }
    x = -(x * kappa_);
    if (std::fabs(x) > hi) break;
    add(x);
  }
  if (hit_barrier) {
    // The first barrier waypoint is a turn (the robot reverses there);
    // the final one is the end of the schedule and is not.
    add((x > 0) ? -barrier_ : barrier_);
  }
  std::sort(magnitudes.begin(), magnitudes.end());
  return magnitudes;
}

std::vector<Real> AnalyticZigzag::waypoint_positions_within(
    const Real max_magnitude) const {
  LS_OBS_COUNT("sim.analytic.window_queries", 1);
  std::vector<Real> positions;
  Walker cursor(*this);
  while (true) {
    const Waypoint& w = cursor.current();
    if (std::fabs(w.position) <= max_magnitude) {
      positions.push_back(w.position);
    } else if (cursor.index() >= head_.size() - 1) {
      // Past the head the magnitudes only grow (ladder expansion, then
      // the barrier): nothing further can re-enter the window.
      break;
    }
    if (!cursor.has_next()) break;
    cursor.advance();
  }
  return positions;
}

std::size_t AnalyticZigzag::footprint_bytes() const {
  std::size_t bytes =
      sizeof(AnalyticZigzag) +
      (head_.capacity() + head_turns_.capacity()) * sizeof(Waypoint);
  if (bounded_) {
    bytes += sizeof(BoundedCache) +
             (bounded_->waypoints.capacity() + bounded_->turns.capacity()) *
                 sizeof(Waypoint);
  }
  return bytes;
}

AnalyticRay::AnalyticRay(const int direction) : direction_(direction) {
  expects(direction == 1 || direction == -1,
          "analytic ray: direction must be +-1");
}

Real AnalyticRay::end_position() const {
  expects(false, "end_position: a ray has an unbounded horizon");
  return 0;  // unreachable
}

Real AnalyticRay::position_at(const Real t) const {
  expects(t >= 0, "position_at: time outside trajectory span");
  return direction_ > 0 ? t : -t;
}

std::vector<Real> AnalyticRay::visit_times(
    const Real x, const std::size_t max_count) const {
  std::vector<Real> times;
  if (max_count == 0) return times;
  // The ray passes each point of its half-line exactly once, at t = |x|
  // (unit speed from the origin); the other half-line is never visited.
  if (x == 0 || sign_of(x) == direction_) {
    times.push_back(std::fabs(x));
  }
  return times;
}

void AnalyticRay::first_visit_times_into(const Real* xs,
                                         const std::size_t count,
                                         Real* out) const {
  // Closed form, elementwise: the ray reaches x at t = |x| iff x is on
  // its half-line (or the origin) — same branch as visit_times.
  const int direction = direction_;
  LS_SIMD_LOOP
  for (std::size_t i = 0; i < count; ++i) {
    const Real x = xs[i];
    out[i] = (x == 0 || sign_of(x) == direction) ? std::fabs(x) : kInfinity;
  }
}

const std::vector<Waypoint>& AnalyticRay::waypoints() const {
  expects(false,
          "waypoints: a ray has an unbounded horizon; use waypoint_prefix");
  static const std::vector<Waypoint> kNone;
  return kNone;  // unreachable
}

std::vector<Waypoint> AnalyticRay::waypoint_prefix(const std::size_t k) const {
  // Only the origin waypoint is materializable: the ray has no further
  // turning structure, just one infinite segment.
  std::vector<Waypoint> prefix;
  if (k > 0) prefix.push_back({0, 0});
  return prefix;
}

const std::vector<Waypoint>& AnalyticRay::turning_waypoints() const {
  static const std::vector<Waypoint> kNone;
  return kNone;  // a ray never turns, bounded or not
}

std::vector<Real> AnalyticRay::turning_magnitudes_in(const int side,
                                                     const Real lo,
                                                     const Real hi) const {
  expects(side == 1 || side == -1,
          "turning_magnitudes_in: side must be +-1");
  (void)lo;
  (void)hi;
  return {};
}

std::vector<Real> AnalyticRay::waypoint_positions_within(
    const Real max_magnitude) const {
  std::vector<Real> positions;
  if (max_magnitude >= 0) positions.push_back(0);
  return positions;
}

}  // namespace linesearch

#include "sim/events.hpp"

#include <sstream>

#include "util/format.hpp"

namespace linesearch {

std::string to_string(const EventKind kind) {
  switch (kind) {
    case EventKind::kDeparture:
      return "departure";
    case EventKind::kTurn:
      return "turn";
    case EventKind::kTargetVisit:
      return "visit";
    case EventKind::kDetection:
      return "detection";
    case EventKind::kHalt:
      return "halt";
  }
  return "unknown";
}

std::string to_string(const Event& event) {
  std::ostringstream out;
  out << "t=" << fixed(event.time, 4) << "  " << to_string(event.kind);
  if (event.kind != EventKind::kHalt) {
    out << "  robot " << event.robot
        << (event.robot_faulty ? " (faulty)" : "") << " at x="
        << fixed(event.position, 4);
  }
  return out.str();
}

}  // namespace linesearch

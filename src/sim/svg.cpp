#include "sim/svg.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {
namespace {

// A readable categorical palette (up to 8 robots, then cycles).
constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                    "#9467bd", "#ff7f0e", "#8c564b",
                                    "#17becf", "#7f7f7f"};

struct Mapper {
  const SvgOptions* options;
  Real margin = 36;

  [[nodiscard]] Real px(const Real x) const {
    const Real w = static_cast<Real>(options->width) - 2 * margin;
    return margin +
           (x + options->max_position) / (2 * options->max_position) * w;
  }
  [[nodiscard]] Real py(const Real t) const {
    const Real h = static_cast<Real>(options->height) - 2 * margin;
    return margin + t / options->max_time * h;
  }
};

std::string line(const Mapper& m, const Real x1, const Real t1,
                 const Real x2, const Real t2, const std::string& style) {
  std::ostringstream out;
  out << "  <line x1=\"" << fixed(m.px(x1), 1) << "\" y1=\""
      << fixed(m.py(t1), 1) << "\" x2=\"" << fixed(m.px(x2), 1)
      << "\" y2=\"" << fixed(m.py(t2), 1) << "\" " << style << "/>\n";
  return out.str();
}

}  // namespace

std::string render_svg(const Fleet& fleet, const SvgOptions& options) {
  expects(options.max_time > 0 && options.max_position > 0,
          "render_svg: spans must be positive");
  expects(options.width >= 100 && options.height >= 100,
          "render_svg: canvas too small");
  const Mapper m{&options};

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width << "\" height=\"" << options.height
      << "\" viewBox=\"0 0 " << options.width << ' ' << options.height
      << "\">\n"
      << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Axes: the line L (t = 0) and the origin's world-line (x = 0).
  svg << line(m, -options.max_position, 0, options.max_position, 0,
              "stroke=\"#333\" stroke-width=\"1.5\"");
  svg << line(m, 0, 0, 0, options.max_time,
              "stroke=\"#bbb\" stroke-width=\"1\" stroke-dasharray=\"2,3\"");

  // Cone rays t = +-beta x.
  if (options.cone_beta > 1) {
    const Real reach =
        std::min(options.max_position, options.max_time / options.cone_beta);
    const std::string style =
        "stroke=\"#888\" stroke-width=\"1\" stroke-dasharray=\"6,4\"";
    svg << line(m, 0, 0, reach, reach * options.cone_beta, style);
    svg << line(m, 0, 0, -reach, reach * options.cone_beta, style);
  }

  // Target line.
  if (std::isfinite(options.target)) {
    svg << line(m, options.target, 0, options.target, options.max_time,
                "stroke=\"#c22\" stroke-width=\"1\" "
                "stroke-dasharray=\"4,3\"");
  }

  // Robot polylines, clipped by sampling to the view's time span.
  for (RobotId id = 0; id < fleet.size(); ++id) {
    const Trajectory& t = fleet.robot(id);
    const char* color = kPalette[id % (sizeof kPalette / sizeof *kPalette)];
    std::ostringstream points;
    bool any = false;
    const auto add_point = [&](const Real time, const Real x) {
      points << fixed(m.px(x), 1) << ',' << fixed(m.py(time), 1) << ' ';
      any = true;
    };
    for (const Waypoint& w : t.waypoints()) {
      if (w.time > options.max_time) {
        // Interpolate the exit point on the view's bottom edge.
        if (w.time > t.start_time()) {
          add_point(options.max_time, t.position_at(options.max_time));
        }
        break;
      }
      add_point(w.time, w.position);
    }
    if (!any) continue;
    svg << "  <polyline fill=\"none\" stroke=\"" << color
        << "\" stroke-width=\"1.8\" points=\"" << points.str() << "\"/>\n";
    // Legend chip.
    svg << "  <rect x=\"" << options.width - 28 << "\" y=\""
        << 14 + 16 * static_cast<int>(id) << "\" width=\"10\" height=\"10\" fill=\""
        << color << "\"/>\n"
        << "  <text x=\"" << options.width - 14 << "\" y=\""
        << 23 + 16 * static_cast<int>(id)
        << "\" font-size=\"10\" font-family=\"sans-serif\">" << id
        << "</text>\n";
  }

  // Overlay polylines (bold, dark).
  for (const auto& overlay : options.overlays) {
    std::ostringstream points;
    for (const auto& [x, t] : overlay) {
      points << fixed(m.px(x), 1) << ',' << fixed(m.py(t), 1) << ' ';
    }
    svg << "  <polyline fill=\"none\" stroke=\"#111\" "
        << "stroke-width=\"2.6\" points=\"" << points.str() << "\"/>\n";
  }

  if (!options.title.empty()) {
    svg << "  <text x=\"" << options.width / 2 << "\" y=\"16\" "
        << "text-anchor=\"middle\" font-size=\"13\" "
        << "font-family=\"sans-serif\">" << options.title << "</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_svg_file(const std::string& path, const std::string& svg) {
  const std::filesystem::path file(path);
  if (file.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(file.parent_path(), ec);
  }
  std::ofstream out(file);
  if (!out) throw NumericError("write_svg_file: cannot open " + path);
  out << svg;
  if (!out.good()) throw NumericError("write_svg_file: write failed");
}

}  // namespace linesearch

// sim/trajectory.hpp — exact piecewise-linear robot trajectories.
//
// A trajectory is the space/time curve of one robot on the line (Fig. 1 of
// the paper): a sequence of waypoints (t_i, x_i) with non-decreasing time
// and speed |dx/dt| <= 1 on every segment.  All queries (position, visit
// times) are closed-form per segment — there is no time-stepping anywhere
// in the library, so measured competitive ratios carry no discretization
// error.
//
// Visit semantics: robot visits point x at time t iff its position at t is
// exactly x.  A segment that *touches* x at a shared endpoint yields one
// visit, not two; a stationary segment sitting on x yields a visit at the
// segment start.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// One point of a robot's space/time curve.
struct Waypoint {
  Real time = 0;
  Real position = 0;

  friend bool operator==(const Waypoint&, const Waypoint&) = default;
};

/// Immutable piecewise-linear trajectory.  Construction validates the
/// waypoint list; queries never mutate.
class Trajectory {
 public:
  /// Maximum speed a robot may use; the paper's robots all have speed 1.
  static constexpr Real kMaxSpeed = 1;

  /// Build from waypoints.  Requires: >= 1 waypoint, strictly increasing
  /// time between distinct waypoints, and segment speed <= kMaxSpeed (with
  /// a small relative tolerance).  Throws PreconditionError otherwise.
  explicit Trajectory(std::vector<Waypoint> waypoints);

  /// A robot that never moves: sits at `position` from t=0 to `until`.
  [[nodiscard]] static Trajectory stationary(Real position, Real until);

  /// All waypoints, in time order.
  [[nodiscard]] const std::vector<Waypoint>& waypoints() const noexcept {
    return waypoints_;
  }

  /// Number of linear segments (waypoints - 1; zero for a single point).
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return waypoints_.size() - 1;
  }

  [[nodiscard]] Real start_time() const noexcept {
    return waypoints_.front().time;
  }
  [[nodiscard]] Real end_time() const noexcept {
    return waypoints_.back().time;
  }
  [[nodiscard]] Real start_position() const noexcept {
    return waypoints_.front().position;
  }
  [[nodiscard]] Real end_position() const noexcept {
    return waypoints_.back().position;
  }

  /// Position at time t; requires start_time() <= t <= end_time().
  [[nodiscard]] Real position_at(Real t) const;

  /// Time of the first visit to x, or nullopt if the trajectory never
  /// reaches x.
  [[nodiscard]] std::optional<Real> first_visit_time(Real x) const;

  /// All visit times to x in increasing order (touching turning points
  /// deduplicated), capped at `max_count` entries.
  [[nodiscard]] std::vector<Real> visit_times(
      Real x, std::size_t max_count = SIZE_MAX) const;

  /// Time of the k-th visit (0-based) to x, or nullopt.
  [[nodiscard]] std::optional<Real> kth_visit_time(Real x,
                                                   std::size_t k) const;

  /// Largest |position| ever reached.
  [[nodiscard]] Real max_abs_position() const noexcept { return max_abs_; }

  /// Largest per-segment speed (<= kMaxSpeed by construction).
  [[nodiscard]] Real max_speed() const noexcept { return max_speed_; }

  /// Times at which the robot changes direction strictly inside the
  /// trajectory (sign of velocity flips, or motion resumes after a stop).
  /// These are the "turning points" of the paper's zig-zag strategies.
  [[nodiscard]] std::vector<Waypoint> turning_waypoints() const;

  /// Human-readable one-line summary ("5 segments, t in [0, 12.5], ...").
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<Waypoint> waypoints_;
  Real max_abs_ = 0;
  Real max_speed_ = 0;
};

/// Fluent builder for trajectories.  All movement legs run at speed
/// exactly 1 unless move_to_at/slow legs are requested.
class TrajectoryBuilder {
 public:
  /// Start the curve at (t, x); must be called exactly once, first.
  TrajectoryBuilder& start_at(Real t, Real x);

  /// Unit-speed leg to position x (duration |x - current|).
  TrajectoryBuilder& move_to(Real x);

  /// Leg to position x arriving exactly at time t (speed <= 1 enforced
  /// at build time).  Models Definition 4's sub-unit-speed start legs.
  TrajectoryBuilder& move_to_at(Real x, Real t);

  /// Stay in place until time t (t >= current time).
  TrajectoryBuilder& wait_until(Real t);

  /// Current time / position of the under-construction curve.
  [[nodiscard]] Real current_time() const;
  [[nodiscard]] Real current_position() const;

  /// Finalize; throws if start_at was never called or a leg is invalid.
  [[nodiscard]] Trajectory build() &&;

 private:
  bool started_ = false;
  std::vector<Waypoint> waypoints_;
};

}  // namespace linesearch

// sim/trajectory.hpp — exact piecewise-linear robot trajectories.
//
// A trajectory is the space/time curve of one robot on the line (Fig. 1 of
// the paper): a sequence of waypoints (t_i, x_i) with non-decreasing time
// and speed |dx/dt| <= 1 on every segment.  All queries (position, visit
// times) are closed-form per segment — there is no time-stepping anywhere
// in the library, so measured competitive ratios carry no discretization
// error.
//
// Since the backend refactor a Trajectory is a cheap VIEW over a
// ScheduleSource (sim/schedule.hpp): either a materialized waypoint vector
// (DenseSchedule, the classic path) or a closed-form generator
// (sim/analytic.hpp) whose horizon may be unbounded.  Vector-returning
// whole-schedule queries (waypoints(), turning_waypoints(), uncapped
// visit_times) require a bounded schedule; the windowed queries
// (turning_magnitudes_in, waypoint_positions_within, waypoint_prefix)
// work on every backend.
//
// Visit semantics: robot visits point x at time t iff its position at t is
// exactly x.  A segment that *touches* x at a shared endpoint yields one
// visit, not two; a stationary segment sitting on x yields a visit at the
// segment start.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/schedule.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Immutable piecewise-linear trajectory: a shared view over a validated
/// schedule backend.  Copies are cheap (they share the backend).
class Trajectory {
 public:
  /// Maximum speed a robot may use; the paper's robots all have speed 1.
  static constexpr Real kMaxSpeed = ScheduleSource::kMaxSpeed;

  /// Build a dense trajectory from waypoints.  Requires: >= 1 waypoint,
  /// strictly increasing time between distinct waypoints, and segment
  /// speed <= kMaxSpeed (with a small relative tolerance).  Throws
  /// PreconditionError otherwise.
  explicit Trajectory(std::vector<Waypoint> waypoints);

  /// Wrap an existing backend (dense or analytic).
  explicit Trajectory(std::shared_ptr<const ScheduleSource> source);

  /// A robot that never moves: sits at `position` from t=0 to `until`.
  [[nodiscard]] static Trajectory stationary(Real position, Real until);

  /// The backend generating this trajectory.
  [[nodiscard]] const ScheduleSource& source() const noexcept {
    return *source_;
  }
  [[nodiscard]] const std::shared_ptr<const ScheduleSource>& source_ptr()
      const noexcept {
    return source_;
  }

  /// True when the schedule extends forever (end_time() == kInfinity).
  [[nodiscard]] bool unbounded() const { return source_->unbounded(); }

  /// All waypoints, in time order.  Requires a bounded schedule.
  [[nodiscard]] const std::vector<Waypoint>& waypoints() const {
    return source_->waypoints();
  }

  /// The first min(k, available) waypoints, materialized; safe on
  /// unbounded backends for finite k.
  [[nodiscard]] std::vector<Waypoint> waypoint_prefix(std::size_t k) const {
    return source_->waypoint_prefix(k);
  }

  /// Number of linear segments (waypoints - 1; zero for a single point);
  /// kUnboundedCount for an unbounded schedule.
  [[nodiscard]] std::size_t segment_count() const {
    const std::size_t count = source_->waypoint_count();
    return count == kUnboundedCount ? kUnboundedCount : count - 1;
  }

  [[nodiscard]] Real start_time() const { return source_->start_time(); }
  [[nodiscard]] Real end_time() const { return source_->end_time(); }
  [[nodiscard]] Real start_position() const {
    return source_->start_position();
  }
  /// Final position; requires a bounded schedule.
  [[nodiscard]] Real end_position() const { return source_->end_position(); }

  /// Position at time t; requires start_time() <= t <= end_time().
  [[nodiscard]] Real position_at(Real t) const {
    return source_->position_at(t);
  }

  /// Time of the first visit to x, or nullopt if the trajectory never
  /// reaches x.
  [[nodiscard]] std::optional<Real> first_visit_time(Real x) const;

  /// All visit times to x in increasing order (touching turning points
  /// deduplicated), capped at `max_count` entries.  An unbounded schedule
  /// requires a finite cap.
  [[nodiscard]] std::vector<Real> visit_times(
      Real x, std::size_t max_count = SIZE_MAX) const {
    return source_->visit_times(x, max_count);
  }

  /// Time of the k-th visit (0-based) to x, or nullopt.
  [[nodiscard]] std::optional<Real> kth_visit_time(Real x,
                                                   std::size_t k) const;

  /// Batched first visits into a caller-owned buffer: out[i] is
  /// bit-identical to first_visit_time(xs[i]) (kInfinity when never
  /// visited).  `xs` must be sorted ascending; backends answer the whole
  /// batch with one segment sweep (see ScheduleSource).
  void first_visit_times_into(const Real* xs, std::size_t count,
                              Real* out) const {
    source_->first_visit_times_into(xs, count, out);
  }

  /// Largest |position| ever reached (kInfinity when unbounded).
  [[nodiscard]] Real max_abs_position() const {
    return source_->max_abs_position();
  }

  /// Largest per-segment speed (<= kMaxSpeed by construction).
  [[nodiscard]] Real max_speed() const { return source_->max_speed(); }

  /// Waypoints at which the robot changes direction strictly inside the
  /// trajectory (sign of velocity flips, or motion resumes after a stop).
  /// These are the "turning points" of the paper's zig-zag strategies.
  /// Cached per backend; requires a bounded schedule.
  [[nodiscard]] const std::vector<Waypoint>& turning_waypoints() const {
    return source_->turning_waypoints();
  }

  /// Magnitudes of this robot's turning points on one side with
  /// lo <= magnitude <= hi, sorted increasing; exact on every backend.
  [[nodiscard]] std::vector<Real> turning_magnitudes_in(int side, Real lo,
                                                        Real hi) const {
    return source_->turning_magnitudes_in(side, lo, hi);
  }

  /// Signed positions of every waypoint with |position| <= max_magnitude,
  /// in schedule order; exact on every backend.
  [[nodiscard]] std::vector<Real> waypoint_positions_within(
      Real max_magnitude) const {
    return source_->waypoint_positions_within(max_magnitude);
  }

  /// Human-readable one-line summary ("5 segments, t in [0, 12.5], ...").
  [[nodiscard]] std::string describe() const;

 private:
  std::shared_ptr<const ScheduleSource> source_;
};

/// Fluent builder for trajectories.  All movement legs run at speed
/// exactly 1 unless move_to_at/slow legs are requested.
class TrajectoryBuilder {
 public:
  /// Start the curve at (t, x); must be called exactly once, first.
  TrajectoryBuilder& start_at(Real t, Real x);

  /// Unit-speed leg to position x (duration |x - current|).
  TrajectoryBuilder& move_to(Real x);

  /// Leg to position x arriving exactly at time t (speed <= 1 enforced
  /// at build time).  Models Definition 4's sub-unit-speed start legs.
  TrajectoryBuilder& move_to_at(Real x, Real t);

  /// Stay in place until time t (t >= current time).
  TrajectoryBuilder& wait_until(Real t);

  /// Current time / position of the under-construction curve.
  [[nodiscard]] Real current_time() const;
  [[nodiscard]] Real current_position() const;

  /// Finalize; throws if start_at was never called or a leg is invalid.
  [[nodiscard]] Trajectory build() &&;

 private:
  bool started_ = false;
  std::vector<Waypoint> waypoints_;
};

}  // namespace linesearch

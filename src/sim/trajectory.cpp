#include "sim/trajectory.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

Trajectory::Trajectory(std::vector<Waypoint> waypoints)
    : source_(std::make_shared<DenseSchedule>(std::move(waypoints))) {}

Trajectory::Trajectory(std::shared_ptr<const ScheduleSource> source)
    : source_(std::move(source)) {
  expects(source_ != nullptr, "trajectory needs a schedule source");
}

Trajectory Trajectory::stationary(const Real position, const Real until) {
  expects(until > 0, "stationary trajectory needs positive duration");
  return Trajectory({{0, position}, {until, position}});
}

std::optional<Real> Trajectory::first_visit_time(const Real x) const {
  const std::vector<Real> times = visit_times(x, 1);
  if (times.empty()) return std::nullopt;
  return times.front();
}

std::optional<Real> Trajectory::kth_visit_time(const Real x,
                                               const std::size_t k) const {
  const std::vector<Real> times = visit_times(x, k + 1);
  if (times.size() <= k) return std::nullopt;
  return times[k];
}

std::string Trajectory::describe() const {
  std::ostringstream out;
  if (unbounded()) {
    out << source_->backend_name() << ", unbounded horizon, t in ["
        << fixed(start_time(), 3) << ", inf), start "
        << fixed(start_position(), 3);
    return out.str();
  }
  out << segment_count() << " segments, t in [" << fixed(start_time(), 3)
      << ", " << fixed(end_time(), 3) << "], reach "
      << fixed(max_abs_position(), 3) << ", " << turning_waypoints().size()
      << " turns";
  return out.str();
}

TrajectoryBuilder& TrajectoryBuilder::start_at(const Real t, const Real x) {
  expects(!started_, "start_at may only be called once");
  started_ = true;
  waypoints_.push_back({t, x});
  return *this;
}

Real TrajectoryBuilder::current_time() const {
  expects(started_, "builder not started");
  return waypoints_.back().time;
}

Real TrajectoryBuilder::current_position() const {
  expects(started_, "builder not started");
  return waypoints_.back().position;
}

TrajectoryBuilder& TrajectoryBuilder::move_to(const Real x) {
  expects(started_, "builder not started");
  const Waypoint& last = waypoints_.back();
  const Real distance = std::fabs(x - last.position);
  expects(distance > 0, "move_to: zero-length leg (use wait_until)");
  waypoints_.push_back({last.time + distance, x});
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::move_to_at(const Real x, const Real t) {
  expects(started_, "builder not started");
  const Waypoint& last = waypoints_.back();
  expects(t > last.time, "move_to_at: time must advance");
  waypoints_.push_back({t, x});  // speed validated by DenseSchedule ctor
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::wait_until(const Real t) {
  expects(started_, "builder not started");
  const Waypoint& last = waypoints_.back();
  expects(t >= last.time, "wait_until: cannot wait into the past");
  if (t > last.time) waypoints_.push_back({t, last.position});
  return *this;
}

Trajectory TrajectoryBuilder::build() && {
  expects(started_, "builder not started");
  return Trajectory(std::move(waypoints_));
}

}  // namespace linesearch

#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {
namespace {

// Speed validation allows a hair of slack for accumulated rounding in the
// turning-point recurrences; anything above this is a construction bug.
constexpr Real kSpeedSlack = 1 + 1e-9L;

}  // namespace

Trajectory::Trajectory(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  expects(!waypoints_.empty(), "trajectory needs at least one waypoint");
  max_abs_ = std::fabs(waypoints_.front().position);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const Waypoint& a = waypoints_[i - 1];
    const Waypoint& b = waypoints_[i];
    expects(b.time > a.time,
            "trajectory waypoints must have strictly increasing time");
    const Real speed = std::fabs(b.position - a.position) / (b.time - a.time);
    expects(speed <= kMaxSpeed * kSpeedSlack,
            "trajectory segment exceeds maximum speed");
    max_speed_ = std::max(max_speed_, speed);
    max_abs_ = std::max(max_abs_, std::fabs(b.position));
  }
}

Trajectory Trajectory::stationary(const Real position, const Real until) {
  expects(until > 0, "stationary trajectory needs positive duration");
  return Trajectory({{0, position}, {until, position}});
}

Real Trajectory::position_at(const Real t) const {
  expects(t >= start_time() && t <= end_time(),
          "position_at: time outside trajectory span");
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), t,
      [](const Real value, const Waypoint& w) { return value < w.time; });
  if (it == waypoints_.begin()) return waypoints_.front().position;
  if (it == waypoints_.end()) return waypoints_.back().position;
  const Waypoint& a = *(it - 1);
  const Waypoint& b = *it;
  const Real fraction = (t - a.time) / (b.time - a.time);
  return a.position + fraction * (b.position - a.position);
}

std::vector<Real> Trajectory::visit_times(const Real x,
                                          const std::size_t max_count) const {
  std::vector<Real> times;
  if (max_count == 0) return times;

  if (waypoints_.size() == 1) {
    if (waypoints_.front().position == x) times.push_back(start_time());
    return times;
  }

  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    const Waypoint& a = waypoints_[i];
    const Waypoint& b = waypoints_[i + 1];
    const Real lo = std::min(a.position, b.position);
    const Real hi = std::max(a.position, b.position);
    if (x < lo || x > hi) continue;

    // Continuous occupancy: if this segment STARTS at x, the previous
    // segment ended at x and already reported the visit (segments share
    // endpoints) — a turning point touch or a stationary dwell is one
    // visit, and leaving a dwell is not a new one.
    if (i > 0 && x == a.position) continue;

    Real t;
    if (a.position == b.position) {
      t = a.time;  // stationary segment sitting on x
    } else {
      const Real fraction = (x - a.position) / (b.position - a.position);
      t = a.time + fraction * (b.time - a.time);
    }
    // Safety net for near-endpoint rounding.
    if (!times.empty() && approx_equal(times.back(), t)) continue;
    times.push_back(t);
    if (times.size() == max_count) break;
  }
  return times;
}

std::optional<Real> Trajectory::first_visit_time(const Real x) const {
  const std::vector<Real> times = visit_times(x, 1);
  if (times.empty()) return std::nullopt;
  return times.front();
}

std::optional<Real> Trajectory::kth_visit_time(const Real x,
                                               const std::size_t k) const {
  const std::vector<Real> times = visit_times(x, k + 1);
  if (times.size() <= k) return std::nullopt;
  return times[k];
}

std::vector<Waypoint> Trajectory::turning_waypoints() const {
  // A turn is a reversal of the direction of motion, with any pauses in
  // between ignored: we track the last nonzero direction and record a
  // turn at the waypoint where motion resumes the opposite way.
  std::vector<Waypoint> turns;
  int last_direction = 0;
  for (std::size_t s = 0; s + 1 < waypoints_.size(); ++s) {
    const int direction =
        sign_of(waypoints_[s + 1].position - waypoints_[s].position);
    if (direction == 0) continue;  // pause
    if (last_direction != 0 && direction == -last_direction) {
      turns.push_back(waypoints_[s]);
    }
    last_direction = direction;
  }
  return turns;
}

std::string Trajectory::describe() const {
  std::ostringstream out;
  out << segment_count() << " segments, t in [" << fixed(start_time(), 3)
      << ", " << fixed(end_time(), 3) << "], reach " << fixed(max_abs_, 3)
      << ", " << turning_waypoints().size() << " turns";
  return out.str();
}

TrajectoryBuilder& TrajectoryBuilder::start_at(const Real t, const Real x) {
  expects(!started_, "start_at may only be called once");
  started_ = true;
  waypoints_.push_back({t, x});
  return *this;
}

Real TrajectoryBuilder::current_time() const {
  expects(started_, "builder not started");
  return waypoints_.back().time;
}

Real TrajectoryBuilder::current_position() const {
  expects(started_, "builder not started");
  return waypoints_.back().position;
}

TrajectoryBuilder& TrajectoryBuilder::move_to(const Real x) {
  expects(started_, "builder not started");
  const Waypoint& last = waypoints_.back();
  const Real distance = std::fabs(x - last.position);
  expects(distance > 0, "move_to: zero-length leg (use wait_until)");
  waypoints_.push_back({last.time + distance, x});
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::move_to_at(const Real x, const Real t) {
  expects(started_, "builder not started");
  const Waypoint& last = waypoints_.back();
  expects(t > last.time, "move_to_at: time must advance");
  waypoints_.push_back({t, x});  // speed validated by Trajectory ctor
  return *this;
}

TrajectoryBuilder& TrajectoryBuilder::wait_until(const Real t) {
  expects(started_, "builder not started");
  const Waypoint& last = waypoints_.back();
  expects(t >= last.time, "wait_until: cannot wait into the past");
  if (t > last.time) waypoints_.push_back({t, last.position});
  return *this;
}

Trajectory TrajectoryBuilder::build() && {
  expects(started_, "builder not started");
  return Trajectory(std::move(waypoints_));
}

}  // namespace linesearch

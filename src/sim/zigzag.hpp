// sim/zigzag.hpp — cone-defined zig-zag trajectories (Section 2, Lemma 1).
//
// For beta > 1 the cone C_beta is delimited by t = beta*x (x >= 0) and
// t = -beta*x (x < 0).  A zig-zag movement starts at a point
// (x_0, beta*|x_0|) on the cone boundary and reverses direction whenever
// it returns to the boundary; Lemma 1 shows the turning points satisfy
//   x_i = x_0 * kappa^i * (-1)^i,     kappa = (beta+1)/(beta-1),
// and every leg runs at speed exactly 1.  kappa is the *expansion factor*
// of the strategy (the doubling strategy is kappa = 2, i.e. beta = 3).
#pragma once

#include <vector>

#include "sim/trajectory.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Expansion factor kappa = (beta+1)/(beta-1); requires beta > 1.
[[nodiscard]] Real expansion_factor(Real beta);

/// Inverse of expansion_factor: the beta with (beta+1)/(beta-1) == kappa;
/// requires kappa > 1.
[[nodiscard]] Real beta_for_expansion(Real kappa);

/// Time at which the cone boundary passes position x: beta * |x|.
[[nodiscard]] Real cone_arrival_time(Real beta, Real x);

/// Turning point preceding x in a C_beta zig-zag: -x / kappa.
[[nodiscard]] Real previous_turning_point(Real beta, Real x);

/// Turning point following x: -x * kappa.
[[nodiscard]] Real next_turning_point(Real beta, Real x);

/// The first `count` turning points of the zig-zag seeded at x0
/// (Lemma 1): x0, -kappa*x0, kappa^2*x0, ...
[[nodiscard]] std::vector<Real> lemma1_turning_points(Real beta, Real x0,
                                                      int count);

/// Specification of one cone zig-zag trajectory.
struct ZigZagSpec {
  Real beta = 3;         ///< cone parameter, > 1
  Real first_turn = 1;   ///< signed position of the first turning point
  Real min_coverage = 8; ///< extend until BOTH half-lines have a turning
                         ///< point of at least this magnitude
};

/// Zig-zag that starts ON the cone at (first_turn, beta*|first_turn|) and
/// turns at the boundary until both sides are covered past min_coverage.
[[nodiscard]] Trajectory make_cone_zigzag(const ZigZagSpec& spec);

/// Same zig-zag but with the Definition-4 style prefix: the robot leaves
/// the origin at t = 0 and travels at speed 1/beta so that it reaches
/// first_turn exactly when the cone boundary does, then zig-zags at unit
/// speed.
[[nodiscard]] Trajectory make_origin_zigzag(const ZigZagSpec& spec);

/// The analytic (closed-form, unbounded-horizon) counterparts: the same
/// curves as make_cone_zigzag / make_origin_zigzag — bit-identical on
/// every shared waypoint — but generated on demand from O(1) state
/// instead of materialized to a coverage extent.  spec.min_coverage is
/// ignored: the horizon is unbounded.
[[nodiscard]] Trajectory make_analytic_cone_zigzag(const ZigZagSpec& spec);
[[nodiscard]] Trajectory make_analytic_origin_zigzag(const ZigZagSpec& spec);

/// Append unit-speed C_beta zig-zag legs to a builder whose current
/// position is a turning point on the cone (time == beta * |position|),
/// until BOTH half-lines have a turning point of magnitude >=
/// min_coverage.  Building block shared by make_cone_zigzag,
/// make_origin_zigzag and the proportional-schedule fleet builder.
void extend_zigzag(TrajectoryBuilder& builder, Real beta, Real min_coverage);

/// True if every waypoint of `trajectory` lies inside (or on) the cone
/// C_beta, i.e. t >= beta * |x| - slack for each waypoint at t > 0.
[[nodiscard]] bool within_cone(const Trajectory& trajectory, Real beta,
                               Real relative_slack = tol::kRelative);

}  // namespace linesearch

#include "sim/serialize.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

constexpr const char* kHeader = "robot,time,position";

// Shared lossless codec (util/csv): 21 significant digits for finite
// values, literal "inf"/"-inf"/"nan" for non-finite ones — so any field
// this module writes parses back bit-exactly.  Waypoints are finite by
// construction (an infinite time would make every speed check vacuously
// pass), so externally-authored files carrying non-finite markers are
// rejected here with the row context rather than slipping through
// Trajectory validation.
Real parse_real(const std::string& field, const std::string& context) {
  Real value = 0;
  try {
    value = parse_real_field(field);
  } catch (const PreconditionError& error) {
    throw PreconditionError(std::string(error.what()) + " in " + context);
  }
  expects(std::isfinite(value),
          "waypoint fields must be finite, got '" + field + "' in " + context);
  return value;
}

}  // namespace

void write_trajectory_csv(std::ostream& out, const Trajectory& trajectory,
                          const RobotId robot) {
  for (const Waypoint& w : trajectory.waypoints()) {
    out << robot << ',' << encode_real_field(w.time) << ','
        << encode_real_field(w.position) << '\n';
  }
}

void write_fleet_csv(std::ostream& out, const Fleet& fleet) {
  out << kHeader << '\n';
  for (RobotId id = 0; id < fleet.size(); ++id) {
    write_trajectory_csv(out, fleet.robot(id), id);
  }
}

Fleet read_fleet_csv(std::istream& in) {
  std::string line;
  expects(static_cast<bool>(std::getline(in, line)),
          "serialize: empty input");
  // Tolerate trailing \r from Windows-authored files.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  expects(line == kHeader,
          "serialize: expected header '" + std::string(kHeader) + "', got '" +
              line + "'");

  std::map<unsigned long, std::vector<Waypoint>> by_robot;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::string context = "line " + std::to_string(line_number);

    std::istringstream fields(line);
    std::string robot_field, time_field, position_field, extra;
    expects(std::getline(fields, robot_field, ',') &&
                std::getline(fields, time_field, ',') &&
                std::getline(fields, position_field, ','),
            "serialize: expected 3 fields at " + context);
    expects(!std::getline(fields, extra, ','),
            "serialize: too many fields at " + context);

    char* end = nullptr;
    const unsigned long robot = std::strtoul(robot_field.c_str(), &end, 10);
    expects(end != nullptr && *end == '\0' && !robot_field.empty(),
            "serialize: malformed robot id at " + context);
    by_robot[robot].push_back({parse_real(time_field, context),
                               parse_real(position_field, context)});
  }
  expects(!by_robot.empty(), "serialize: no waypoints");

  // Robot ids must form 0..n-1 (std::map iterates in key order).
  std::vector<Trajectory> robots;
  unsigned long expected = 0;
  for (auto& [id, waypoints] : by_robot) {
    expects(id == expected, "serialize: robot ids must be contiguous from 0");
    ++expected;
    robots.emplace_back(std::move(waypoints));  // ctor re-validates speed
  }
  return Fleet(std::move(robots));
}

std::string fleet_to_csv(const Fleet& fleet) {
  std::ostringstream out;
  write_fleet_csv(out, fleet);
  return out.str();
}

Fleet fleet_from_csv(const std::string& text) {
  std::istringstream in(text);
  return read_fleet_csv(in);
}

}  // namespace linesearch

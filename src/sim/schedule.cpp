#include "sim/schedule.hpp"

#include <algorithm>
#include <cmath>

#include "sim/visit_sweep.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

// Speed validation allows a hair of slack for accumulated rounding in the
// turning-point recurrences; anything above this is a construction bug.
constexpr Real kSpeedSlack = 1 + 1e-9L;

}  // namespace

void ScheduleSource::first_visit_times_into(const Real* xs,
                                            const std::size_t count,
                                            Real* out) const {
  // Reference fallback: one scalar query per probe.  Backends override
  // with a frontier sweep; this loop defines what they must reproduce.
  for (std::size_t i = 0; i < count; ++i) {
    const std::vector<Real> times = visit_times(xs[i], 1);
    out[i] = times.empty() ? kInfinity : times.front();
  }
}

DenseSchedule::DenseSchedule(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  expects(!waypoints_.empty(), "trajectory needs at least one waypoint");
  max_abs_ = std::fabs(waypoints_.front().position);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const Waypoint& a = waypoints_[i - 1];
    const Waypoint& b = waypoints_[i];
    expects(b.time > a.time,
            "trajectory waypoints must have strictly increasing time");
    const Real speed = std::fabs(b.position - a.position) / (b.time - a.time);
    expects(speed <= kMaxSpeed * kSpeedSlack,
            "trajectory segment exceeds maximum speed");
    max_speed_ = std::max(max_speed_, speed);
    max_abs_ = std::max(max_abs_, std::fabs(b.position));
  }
  // Turning waypoints, cached once: a turn is a reversal of the direction
  // of motion, with any pauses in between ignored — we track the last
  // nonzero direction and record a turn at the waypoint where motion
  // resumes the opposite way.
  int last_direction = 0;
  for (std::size_t s = 0; s + 1 < waypoints_.size(); ++s) {
    const int direction =
        sign_of(waypoints_[s + 1].position - waypoints_[s].position);
    if (direction == 0) continue;  // pause
    if (last_direction != 0 && direction == -last_direction) {
      turns_.push_back(waypoints_[s]);
    }
    last_direction = direction;
  }
}

Real DenseSchedule::position_at(const Real t) const {
  expects(t >= start_time() && t <= end_time(),
          "position_at: time outside trajectory span");
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      waypoints_.begin(), waypoints_.end(), t,
      [](const Real value, const Waypoint& w) { return value < w.time; });
  if (it == waypoints_.begin()) return waypoints_.front().position;
  if (it == waypoints_.end()) return waypoints_.back().position;
  const Waypoint& a = *(it - 1);
  const Waypoint& b = *it;
  const Real fraction = (t - a.time) / (b.time - a.time);
  return a.position + fraction * (b.position - a.position);
}

std::vector<Real> DenseSchedule::visit_times(
    const Real x, const std::size_t max_count) const {
  std::vector<Real> times;
  if (max_count == 0) return times;

  if (waypoints_.size() == 1) {
    if (waypoints_.front().position == x) times.push_back(start_time());
    return times;
  }

  for (std::size_t i = 0; i + 1 < waypoints_.size(); ++i) {
    const Waypoint& a = waypoints_[i];
    const Waypoint& b = waypoints_[i + 1];
    const Real lo = std::min(a.position, b.position);
    const Real hi = std::max(a.position, b.position);
    if (x < lo || x > hi) continue;

    // Continuous occupancy: if this segment STARTS at x, the previous
    // segment ended at x and already reported the visit (segments share
    // endpoints) — a turning point touch or a stationary dwell is one
    // visit, and leaving a dwell is not a new one.
    if (i > 0 && x == a.position) continue;

    Real t;
    if (a.position == b.position) {
      t = a.time;  // stationary segment sitting on x
    } else {
      const Real fraction = (x - a.position) / (b.position - a.position);
      t = a.time + fraction * (b.time - a.time);
    }
    // Safety net for near-endpoint rounding.
    if (!times.empty() && approx_equal(times.back(), t)) continue;
    times.push_back(t);
    if (times.size() == max_count) break;
  }
  return times;
}

void DenseSchedule::first_visit_times_into(const Real* xs,
                                           const std::size_t count,
                                           Real* out) const {
  detail::FrontierSweep sweep(xs, count, out, waypoints_.front());
  for (std::size_t i = 0; i + 1 < waypoints_.size() && !sweep.done(); ++i) {
    sweep.feed(waypoints_[i], waypoints_[i + 1]);
  }
}

std::vector<Waypoint> DenseSchedule::waypoint_prefix(
    const std::size_t k) const {
  const std::size_t count = std::min(k, waypoints_.size());
  return {waypoints_.begin(),
          waypoints_.begin() + static_cast<std::ptrdiff_t>(count)};
}

std::vector<Real> DenseSchedule::turning_magnitudes_in(const int side,
                                                       const Real lo,
                                                       const Real hi) const {
  expects(side == 1 || side == -1,
          "turning_magnitudes_in: side must be +-1");
  std::vector<Real> magnitudes;
  for (const Waypoint& w : turns_) {
    if (sign_of(w.position) != side) continue;
    const Real magnitude = std::fabs(w.position);
    if (magnitude >= lo && magnitude <= hi) magnitudes.push_back(magnitude);
  }
  std::sort(magnitudes.begin(), magnitudes.end());
  return magnitudes;
}

std::vector<Real> DenseSchedule::waypoint_positions_within(
    const Real max_magnitude) const {
  std::vector<Real> positions;
  for (const Waypoint& w : waypoints_) {
    if (std::fabs(w.position) <= max_magnitude) {
      positions.push_back(w.position);
    }
  }
  return positions;
}

std::size_t DenseSchedule::footprint_bytes() const {
  return sizeof(DenseSchedule) +
         waypoints_.capacity() * sizeof(Waypoint) +
         turns_.capacity() * sizeof(Waypoint);
}

}  // namespace linesearch

#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/error.hpp"

namespace linesearch {

Real FaultModel::detection_time(const Fleet& fleet, const Real target,
                                const int max_faults) {
  return fleet.detection_time_with_faults(
      target, choose_faults(fleet, target, max_faults));
}

std::vector<bool> AdversarialFaults::choose_faults(const Fleet& fleet,
                                                   const Real target,
                                                   const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  std::vector<bool> faulty(fleet.size(), false);
  const std::vector<VisitRecord> order = fleet.visit_order(target);
  const std::size_t budget =
      std::min<std::size_t>(static_cast<std::size_t>(max_faults),
                            fleet.size());
  for (std::size_t i = 0; i < budget; ++i) {
    // Only robots that actually visit can usefully be made faulty, but
    // marking a never-visiting robot costs the adversary nothing either.
    faulty[order[i].robot] = true;
  }
  return faulty;
}

FixedFaults::FixedFaults(std::vector<bool> faulty)
    : faulty_(std::move(faulty)) {}

std::vector<bool> FixedFaults::choose_faults(const Fleet& fleet,
                                             const Real /*target*/,
                                             const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  expects(faulty_.size() == fleet.size(),
          "fixed fault set size must match fleet size");
  const auto count =
      std::count(faulty_.begin(), faulty_.end(), true);
  expects(count <= max_faults,
          "fixed fault set has " + std::to_string(count) +
              " faulty robots but the budget allows only " +
              std::to_string(max_faults));
  return faulty_;
}

RandomFaults::RandomFaults(const std::uint64_t seed) : rng_(seed) {}

std::vector<bool> RandomFaults::choose_faults(const Fleet& fleet,
                                              const Real /*target*/,
                                              const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  expects(static_cast<std::size_t>(max_faults) <= fleet.size(),
          "fault budget exceeds fleet size");
  std::vector<RobotId> ids(fleet.size());
  std::iota(ids.begin(), ids.end(), RobotId{0});
  std::shuffle(ids.begin(), ids.end(), rng_);
  std::vector<bool> faulty(fleet.size(), false);
  for (int i = 0; i < max_faults; ++i) {
    faulty[ids[static_cast<std::size_t>(i)]] = true;
  }
  return faulty;
}

namespace {

/// Cut one trajectory at `crash`.  Shares the backend when the crash is
/// at or past the end; otherwise materializes the kept waypoints plus an
/// interpolated cut point using DenseSchedule::position_at's exact
/// arithmetic (value-identity with World's crash truncation).
Trajectory truncate_trajectory(const Trajectory& robot, const Real crash) {
  expects(crash >= 0, "truncate_at_crashes: crash times must be >= 0");
  if (!(crash < robot.end_time())) return robot;
  if (crash <= robot.start_time()) {
    return Trajectory(std::vector<Waypoint>{
        Waypoint{robot.start_time(), robot.start_position()}});
  }
  std::vector<Waypoint> kept;
  if (robot.unbounded()) {
    std::size_t count = 64;
    kept = robot.waypoint_prefix(count);
    while (kept.back().time < crash) {
      count *= 2;
      kept = robot.waypoint_prefix(count);
    }
  } else {
    kept = robot.waypoints();
  }
  std::size_t cut = 0;
  while (cut < kept.size() && kept[cut].time <= crash) ++cut;
  const Waypoint before = kept[cut - 1];
  std::vector<Waypoint> out(kept.begin(),
                            kept.begin() + static_cast<std::ptrdiff_t>(cut));
  if (before.time < crash) {
    const Waypoint after = kept[cut];
    const Real fraction = (crash - before.time) / (after.time - before.time);
    out.push_back(Waypoint{
        crash,
        before.position + fraction * (after.position - before.position)});
  }
  return Trajectory(std::move(out));
}

}  // namespace

Fleet truncate_at_crashes(const Fleet& fleet,
                          const std::vector<Real>& crash_times) {
  expects(crash_times.size() == fleet.size(),
          "truncate_at_crashes: crash schedule size must match the fleet");
  std::vector<Trajectory> robots;
  robots.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    robots.push_back(truncate_trajectory(
        fleet.robot(static_cast<RobotId>(i)), crash_times[i]));
  }
  return Fleet(std::move(robots));
}

CrashFaults::CrashFaults(std::vector<Real> crash_times)
    : crash_times_(std::move(crash_times)) {
  for (const Real t : crash_times_) {
    expects(t >= 0, "crash faults: crash times must be >= 0");
  }
}

const Fleet& CrashFaults::truncated_for(const Fleet& fleet) {
  expects(crash_times_.size() == fleet.size(),
          "crash faults: crash schedule size must match the fleet");
  if (cached_key_ != &fleet) {
    truncated_ =
        std::make_unique<Fleet>(truncate_at_crashes(fleet, crash_times_));
    cached_key_ = &fleet;
  }
  return *truncated_;
}

std::vector<bool> CrashFaults::choose_faults(const Fleet& fleet,
                                             const Real target,
                                             const int max_faults) {
  // Adversarial blind assignment against the fleet AS IT MOVES: the
  // earliest visitors of the truncated trajectories.
  AdversarialFaults adversarial;
  return adversarial.choose_faults(truncated_for(fleet), target, max_faults);
}

Real CrashFaults::detection_time(const Fleet& fleet, const Real target,
                                 const int max_faults) {
  // Answer on the truncated fleet itself: visits after a crash never
  // happen, so the (f+1)-st distinct visit is computed in the right
  // regime by construction.
  return truncated_for(fleet).detection_time(target, max_faults);
}

Real detection_time_under(FaultModel& model, const Fleet& fleet,
                          const Real target, const int max_faults) {
  return model.detection_time(fleet, target, max_faults);
}

}  // namespace linesearch

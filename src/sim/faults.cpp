#include "sim/faults.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace linesearch {

std::vector<bool> AdversarialFaults::choose_faults(const Fleet& fleet,
                                                   const Real target,
                                                   const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  std::vector<bool> faulty(fleet.size(), false);
  const std::vector<VisitRecord> order = fleet.visit_order(target);
  const std::size_t budget =
      std::min<std::size_t>(static_cast<std::size_t>(max_faults),
                            fleet.size());
  for (std::size_t i = 0; i < budget; ++i) {
    // Only robots that actually visit can usefully be made faulty, but
    // marking a never-visiting robot costs the adversary nothing either.
    faulty[order[i].robot] = true;
  }
  return faulty;
}

FixedFaults::FixedFaults(std::vector<bool> faulty)
    : faulty_(std::move(faulty)) {}

std::vector<bool> FixedFaults::choose_faults(const Fleet& fleet,
                                             const Real /*target*/,
                                             const int max_faults) {
  expects(faulty_.size() == fleet.size(),
          "fixed fault set size must match fleet size");
  const auto count =
      std::count(faulty_.begin(), faulty_.end(), true);
  expects(count <= max_faults, "fixed fault set exceeds fault budget");
  return faulty_;
}

RandomFaults::RandomFaults(const std::uint64_t seed) : rng_(seed) {}

std::vector<bool> RandomFaults::choose_faults(const Fleet& fleet,
                                              const Real /*target*/,
                                              const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  expects(static_cast<std::size_t>(max_faults) <= fleet.size(),
          "fault budget exceeds fleet size");
  std::vector<RobotId> ids(fleet.size());
  std::iota(ids.begin(), ids.end(), RobotId{0});
  std::shuffle(ids.begin(), ids.end(), rng_);
  std::vector<bool> faulty(fleet.size(), false);
  for (int i = 0; i < max_faults; ++i) {
    faulty[ids[static_cast<std::size_t>(i)]] = true;
  }
  return faulty;
}

Real detection_time_under(FaultModel& model, const Fleet& fleet,
                          const Real target, const int max_faults) {
  const std::vector<bool> faulty =
      model.choose_faults(fleet, target, max_faults);
  return fleet.detection_time_with_faults(target, faulty);
}

}  // namespace linesearch

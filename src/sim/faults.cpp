#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace linesearch {

Real FaultModel::detection_time(const Fleet& fleet, const Real target,
                                const int max_faults) {
  return fleet.detection_time_with_faults(
      target, choose_faults(fleet, target, max_faults));
}

std::vector<bool> AdversarialFaults::choose_faults(const Fleet& fleet,
                                                   const Real target,
                                                   const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  std::vector<bool> faulty(fleet.size(), false);
  const std::vector<VisitRecord> order = fleet.visit_order(target);
  const std::size_t budget =
      std::min<std::size_t>(static_cast<std::size_t>(max_faults),
                            fleet.size());
  for (std::size_t i = 0; i < budget; ++i) {
    // Only robots that actually visit can usefully be made faulty, but
    // marking a never-visiting robot costs the adversary nothing either.
    faulty[order[i].robot] = true;
  }
  return faulty;
}

FixedFaults::FixedFaults(std::vector<bool> faulty)
    : faulty_(std::move(faulty)) {}

std::vector<bool> FixedFaults::choose_faults(const Fleet& fleet,
                                             const Real /*target*/,
                                             const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  expects(faulty_.size() == fleet.size(),
          "fixed fault set size must match fleet size");
  const auto count =
      std::count(faulty_.begin(), faulty_.end(), true);
  expects(count <= max_faults,
          "fixed fault set has " + std::to_string(count) +
              " faulty robots but the budget allows only " +
              std::to_string(max_faults));
  return faulty_;
}

RandomFaults::RandomFaults(const std::uint64_t seed) : rng_(seed) {}

std::vector<bool> RandomFaults::choose_faults(const Fleet& fleet,
                                              const Real /*target*/,
                                              const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  expects(static_cast<std::size_t>(max_faults) <= fleet.size(),
          "fault budget exceeds fleet size");
  // Fisher-Yates on SplitMix64 (std::shuffle's swap sequence is
  // implementation-defined, which made seeded studies diverge between
  // standard libraries).  A full shuffle rather than a prefix draw keeps
  // one stream advance per robot regardless of the budget.
  std::vector<RobotId> ids(fleet.size());
  std::iota(ids.begin(), ids.end(), RobotId{0});
  for (std::size_t i = ids.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(ids[i - 1], ids[j]);
  }
  std::vector<bool> faulty(fleet.size(), false);
  for (int i = 0; i < max_faults; ++i) {
    faulty[ids[static_cast<std::size_t>(i)]] = true;
  }
  return faulty;
}

namespace {

/// Cut one trajectory at `crash`.  Shares the backend when the crash is
/// at or past the end; otherwise materializes the kept waypoints plus an
/// interpolated cut point using DenseSchedule::position_at's exact
/// arithmetic (value-identity with World's crash truncation).
Trajectory truncate_trajectory(const Trajectory& robot, const Real crash) {
  expects(crash >= 0, "truncate_at_crashes: crash times must be >= 0");
  if (!(crash < robot.end_time())) return robot;
  if (crash <= robot.start_time()) {
    return Trajectory(std::vector<Waypoint>{
        Waypoint{robot.start_time(), robot.start_position()}});
  }
  std::vector<Waypoint> kept;
  if (robot.unbounded()) {
    std::size_t count = 64;
    kept = robot.waypoint_prefix(count);
    while (kept.back().time < crash) {
      count *= 2;
      kept = robot.waypoint_prefix(count);
    }
  } else {
    kept = robot.waypoints();
  }
  std::size_t cut = 0;
  while (cut < kept.size() && kept[cut].time <= crash) ++cut;
  const Waypoint before = kept[cut - 1];
  std::vector<Waypoint> out(kept.begin(),
                            kept.begin() + static_cast<std::ptrdiff_t>(cut));
  if (before.time < crash) {
    const Waypoint after = kept[cut];
    const Real fraction = (crash - before.time) / (after.time - before.time);
    out.push_back(Waypoint{
        crash,
        before.position + fraction * (after.position - before.position)});
  }
  return Trajectory(std::move(out));
}

}  // namespace

Fleet truncate_at_crashes(const Fleet& fleet,
                          const std::vector<Real>& crash_times) {
  expects(crash_times.size() == fleet.size(),
          "truncate_at_crashes: crash schedule size must match the fleet");
  std::vector<Trajectory> robots;
  robots.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    robots.push_back(truncate_trajectory(
        fleet.robot(static_cast<RobotId>(i)), crash_times[i]));
  }
  return Fleet(std::move(robots));
}

CrashFaults::CrashFaults(std::vector<Real> crash_times)
    : crash_times_(std::move(crash_times)) {
  for (const Real t : crash_times_) {
    expects(t >= 0, "crash faults: crash times must be >= 0");
  }
}

const Fleet& CrashFaults::truncated_for(const Fleet& fleet) {
  expects(crash_times_.size() == fleet.size(),
          "crash faults: crash schedule size must match the fleet");
  if (cached_key_ != &fleet) {
    truncated_ =
        std::make_unique<Fleet>(truncate_at_crashes(fleet, crash_times_));
    cached_key_ = &fleet;
  }
  return *truncated_;
}

std::vector<bool> CrashFaults::choose_faults(const Fleet& fleet,
                                             const Real target,
                                             const int max_faults) {
  // Adversarial blind assignment against the fleet AS IT MOVES: the
  // earliest visitors of the truncated trajectories.
  AdversarialFaults adversarial;
  return adversarial.choose_faults(truncated_for(fleet), target, max_faults);
}

Real CrashFaults::detection_time(const Fleet& fleet, const Real target,
                                 const int max_faults) {
  // Answer on the truncated fleet itself: visits after a crash never
  // happen, so the (f+1)-st distinct visit is computed in the right
  // regime by construction.
  return truncated_for(fleet).detection_time(target, max_faults);
}

Real detection_time_under(FaultModel& model, const Fleet& fleet,
                          const Real target, const int max_faults) {
  return model.detection_time(fleet, target, max_faults);
}

int LiePlan::liar_count() const noexcept {
  return static_cast<int>(std::count(liar.begin(), liar.end(), true));
}

LiePlan random_lie_plan(const std::uint64_t seed, const std::size_t robots,
                        const LiePlanConfig& config) {
  expects(robots >= 1, "random_lie_plan: need at least one robot");
  expects(config.max_liars >= 1 && config.max_claims_per_liar >= 1,
          "random_lie_plan: liar and claim budgets must be >= 1");
  expects(config.claim_horizon > 0 && config.claim_extent >= 1,
          "random_lie_plan: claim horizon and extent must be positive");
  SplitMix64 rng(seed);
  LiePlan plan;
  plan.liar.assign(robots, false);
  plan.claims.assign(robots, {});

  // The liars are the last `liar_target` robots — a deterministic set,
  // like the degraded sweep's crash schedule — while times and positions
  // are drawn per robot.  Drawing every robot's schedule unconditionally
  // keeps the stream shape fixed no matter which robots lie.
  const int liar_target = rng.uniform_int(
      1, std::min<int>(config.max_liars, static_cast<int>(robots)));
  for (std::size_t robot = 0; robot < robots; ++robot) {
    const int claim_count = rng.uniform_int(1, config.max_claims_per_liar);
    std::vector<LieEvent> events;
    for (int k = 0; k < config.max_claims_per_liar; ++k) {
      LieEvent event;
      event.time = rng.uniform(Real{0.1L}, config.claim_horizon);
      const Real magnitude = rng.uniform(1, config.claim_extent);
      event.position = rng.chance(0.5L) ? magnitude : -magnitude;
      if (k < claim_count) events.push_back(event);
    }
    if (robot + static_cast<std::size_t>(liar_target) >= robots) {
      plan.liar[robot] = true;
      plan.claims[robot] = std::move(events);
    }
  }
  return plan;
}

Real byzantine_quorum_time(const Fleet& fleet, const Real target,
                           const std::vector<bool>& liars, const int f) {
  expects(f >= 0, "byzantine_quorum_time: f must be >= 0");
  expects(liars.size() == fleet.size(),
          "byzantine_quorum_time: liar mask size must match the fleet");
  const std::vector<Real> visits = fleet.first_visit_times(target);
  std::vector<Real> honest;
  honest.reserve(visits.size());
  for (std::size_t robot = 0; robot < visits.size(); ++robot) {
    if (!liars[robot] && std::isfinite(visits[robot])) {
      honest.push_back(visits[robot]);
    }
  }
  const auto quorum = static_cast<std::size_t>(f);
  if (honest.size() < quorum + 1) return kInfinity;
  std::nth_element(honest.begin(),
                   honest.begin() + static_cast<std::ptrdiff_t>(quorum),
                   honest.end());
  return honest[quorum];
}

Real byzantine_quorum_time(const Fleet& fleet, const Real target,
                           const int f) {
  expects(f >= 0, "byzantine_quorum_time: f must be >= 0");
  // Worst liar set = the f earliest visitors, so the honest (f+1)-st
  // corroboration is the (2f+1)-st distinct first visit overall.
  return fleet.detection_time(target, 2 * f);
}

ByzantineFaults::ByzantineFaults(LiePlan plan) : plan_(std::move(plan)) {
  expects(plan_.claims.size() == plan_.liar.size(),
          "byzantine faults: plan claim list size must match liar mask");
  for (std::size_t robot = 0; robot < plan_.size(); ++robot) {
    expects(plan_.liar[robot] || plan_.claims[robot].empty(),
            "byzantine faults: honest robots cannot carry fabrications");
    for (const LieEvent& event : plan_.claims[robot]) {
      expects(event.time >= 0 && std::isfinite(event.time),
              "byzantine faults: claim times must be finite >= 0");
    }
  }
}

std::vector<bool> ByzantineFaults::choose_faults(const Fleet& fleet,
                                                 const Real /*target*/,
                                                 const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  expects(plan_.size() == fleet.size(),
          "byzantine faults: plan size must match the fleet");
  const int liars = plan_.liar_count();
  expects(liars <= max_faults,
          "byzantine faults: plan lies with " + std::to_string(liars) +
              " robots but the budget allows only " +
              std::to_string(max_faults));
  return plan_.liar;
}

Real ByzantineFaults::detection_time(const Fleet& fleet, const Real target,
                                     const int max_faults) {
  // The quorum time under this plan's liar set — NOT the blind
  // (f+1)-st visit: confirmation needs f+1 corroborating visits and
  // only non-liars are guaranteed to corroborate.
  return byzantine_quorum_time(fleet, target,
                               choose_faults(fleet, target, max_faults),
                               max_faults);
}

bool probabilistic_visit_fails(const std::uint64_t seed,
                               const std::size_t robot,
                               const std::size_t visit, const Real p) {
  expects(p >= 0 && p <= 1,
          "probabilistic_visit_fails: p must be in [0, 1]");
  // Two SplitMix64 hops: seed -> per-robot base stream, base + visit ->
  // per-coin stream.  SplitMix64 is a seed mixer by construction
  // (sequential seeds decorrelate after one next()), so each coin is an
  // O(1) pure function of the triple and coins never share state — any
  // subset can be queried in any order with the same answer.
  SplitMix64 base(seed + 0x9E3779B97F4A7C15ULL *
                             (static_cast<std::uint64_t>(robot) + 1));
  SplitMix64 coin(base.next() + static_cast<std::uint64_t>(visit));
  return coin.chance(p);
}

ProbabilisticFaults::ProbabilisticFaults(ProbabilisticFaultConfig config)
    : config_(config) {
  expects(config_.p >= 0 && config_.p <= 1,
          "probabilistic faults: p must be in [0, 1]");
  expects(config_.max_visits >= 1,
          "probabilistic faults: max_visits must be >= 1");
}

std::vector<bool> ProbabilisticFaults::choose_faults(const Fleet& fleet,
                                                     const Real /*target*/,
                                                     const int max_faults) {
  expects(max_faults >= 0, "max_faults must be >= 0");
  // Per-visit failures are transient: no robot is statically faulty.
  return std::vector<bool>(fleet.size(), false);
}

Real ProbabilisticFaults::detection_time(const Fleet& fleet,
                                         const Real target,
                                         const int /*max_faults*/) {
  // First success over the team = min over robots of each robot's first
  // successful visit (coins are indexed per (robot, local visit), so
  // which robot's visit comes k-th in the merged order is irrelevant).
  Real earliest = kInfinity;
  for (std::size_t robot = 0; robot < fleet.size(); ++robot) {
    const std::vector<Real> visits =
        fleet.robot(static_cast<RobotId>(robot))
            .visit_times(target, config_.max_visits);
    for (std::size_t k = 0; k < visits.size(); ++k) {
      if (!std::isfinite(visits[k])) break;
      if (visits[k] >= earliest) break;  // later robots can't improve
      if (!probabilistic_visit_fails(config_.seed, robot, k, config_.p)) {
        earliest = visits[k];
        break;
      }
    }
  }
  return earliest;
}

}  // namespace linesearch

// svc/chaos.hpp — deterministic wire fault injection for the service.
//
// The paper's discipline applied to the serving layer: assume the wire
// misbehaves adversarially and prove the answer is still exact.  A
// chaos channel perturbs a byte stream with partial writes (forced
// delivery boundaries), merged frames (held bytes), garbage bytes,
// mid-stream disconnects, and stalls/delayed ACKs — every fault a PURE
// FUNCTION of (seed, connection index, direction, byte offset) on the
// shared SplitMix64 substrate, so a failing (seed, fault-script) pair
// replays bit-identically in a fuzzer repro.
//
// Two consumers share the same transform:
//   * `tools/chaos_proxy` — an AF_UNIX man-in-the-middle relaying real
//     sockets through a ChaosStream per direction (stalls sleep for
//     real, disconnects shut the sockets down);
//   * `ChaosLoopback` — an in-process ClientTransport wiring a
//     resilient QueryClient straight into QueryServer::handle_line
//     through the same byte transform, with LOGICAL time (a stall
//     surfaces as a deadline timeout instead of a sleep), which is what
//     verify::diff_chaos_vs_library and the fuzzer's kChaosWire kind
//     run — fast, deterministic, no real sockets.
//
// Soundness of the bit-identical differential: garbage bytes are drawn
// only from {0x01..0x07} ∪ {'\n'}.  util/jsonio rejects raw control
// characters everywhere — inside strings, numbers, and between tokens —
// so an injected byte can NEVER silently alter a parsed value: either
// the frame fails to parse (the client retries) or, for an injected
// '\n' landing exactly on a frame boundary, the split is harmless.  A
// proper prefix of a JSON object is never valid JSON, so any line that
// parses AND echoes the expected id is byte-exactly the server's
// intended response.
//
// Liveness: every `clean_every`-th connection carries an empty fault
// script (connection_is_clean), so a client that reconnects on failure
// reaches a clean channel within clean_every attempts — the property
// that makes the 120-seed corpus deterministically green.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "svc/client.hpp"
#include "svc/server.hpp"

namespace linesearch::svc {

/// One fault kind a wire script can schedule.
enum class WireFaultKind {
  kSplit,       ///< force a delivery boundary at the offset (partial write)
  kHold,        ///< hold bytes from the offset until `param` more arrive
                ///< (merged frames / delayed ACK)
  kGarbage,     ///< inject `param` garbage bytes at the offset
  kStall,       ///< pause `param` ms at the offset (loopback: deadline fires)
  kDisconnect,  ///< drop the connection at the offset
};

/// Stable spelling for repros and docs.
[[nodiscard]] const char* wire_fault_kind_name(WireFaultKind kind);

/// One scheduled fault: fires when the stream's cumulative INPUT byte
/// offset reaches `at_byte`.
struct WireFault {
  std::uint64_t at_byte = 0;
  WireFaultKind kind = WireFaultKind::kSplit;
  std::uint32_t param = 0;
};

/// The chaos channel's knobs.  seed = 0 is the documented clean channel:
/// every script is empty regardless of the other knobs.
struct ChaosConfig {
  std::uint64_t seed = 0;
  /// Max faults per (connection, direction) — the shrinker walks this
  /// toward 0 to minimize a failing fault script.
  int fault_cap = 3;
  /// Every clean_every-th connection (index % clean_every ==
  /// clean_every - 1) is relayed untouched: the liveness guarantee.
  int clean_every = 4;
  std::uint32_t max_garbage = 12;   ///< garbage bytes per kGarbage fault
  std::uint32_t max_stall_ms = 40;  ///< real-time stall bound (proxy only)
  /// Fault offsets are drawn in [0, script_window): early enough to hit
  /// single-request exchanges.
  std::uint64_t script_window = 192;
};

/// Liveness guarantee: does this connection index carry an empty script?
[[nodiscard]] bool connection_is_clean(const ChaosConfig& config,
                                       std::uint64_t connection);

/// The fault script for one (connection, direction) — a pure function of
/// (config.seed, connection, direction), sorted by at_byte.  direction 0
/// is client->server, 1 is server->client.
[[nodiscard]] std::vector<WireFault> fault_script(const ChaosConfig& config,
                                                  std::uint64_t connection,
                                                  int direction);

/// Human/JSON-readable rendering of one script: e.g.
/// "garbage@17x4,split@60,stall@88x20ms".  Empty script -> "clean".
[[nodiscard]] std::string describe_script(
    const std::vector<WireFault>& script);

/// Deterministic garbage for a kGarbage fault: bytes from
/// {0x01..0x07, '\n'} only (see the soundness note above).
[[nodiscard]] std::string garbage_bytes(const ChaosConfig& config,
                                        std::uint64_t connection,
                                        int direction, std::uint64_t at_byte,
                                        std::uint32_t count);

/// What a ChaosStream tells its consumer to do, in order.
struct ChaosEvent {
  enum class Kind { kDeliver, kStall, kDisconnect };
  Kind kind = Kind::kDeliver;
  std::string bytes;           ///< kDeliver payload
  std::uint32_t stall_ms = 0;  ///< kStall duration
};

/// Applies one (connection, direction)'s fault script to a byte stream.
/// Feed input as it arrives; obey the returned events in order.  After a
/// kDisconnect event the stream is dead: further feeds return nothing.
class ChaosStream {
 public:
  ChaosStream(const ChaosConfig& config, std::uint64_t connection,
              int direction);

  /// Push input bytes through the script.
  [[nodiscard]] std::vector<ChaosEvent> feed(std::string_view data);

  /// Release any held bytes (call at upstream EOF).
  [[nodiscard]] std::vector<ChaosEvent> flush();

  [[nodiscard]] bool disconnected() const { return disconnected_; }

 private:
  void emit_pending(std::vector<ChaosEvent>& events);

  ChaosConfig config_;
  std::uint64_t connection_ = 0;
  int direction_ = 0;
  std::vector<WireFault> script_;
  std::size_t next_fault_ = 0;
  std::uint64_t offset_ = 0;      ///< cumulative input bytes consumed
  std::uint64_t hold_until_ = 0;  ///< suppress delivery until this offset
  std::string pending_;           ///< output accumulated, not yet delivered
  bool disconnected_ = false;
};

/// In-process chaos transport: a QueryClient on one side,
/// QueryServer::handle_line on the other, both directions routed through
/// ChaosStreams.  Time is logical — a stall event surfaces as a read
/// timeout (the per-request deadline "fires"), a disconnect as a closed
/// connection — so differentials and fuzz runs are fast and exactly
/// reproducible.  Single-threaded use only (one client).
class ChaosLoopback final : public ClientTransport {
 public:
  ChaosLoopback(QueryServer& server, const ChaosConfig& config);

  bool connect() override;
  [[nodiscard]] bool connected() const override { return connected_; }
  bool send_bytes(const std::string& data) override;
  ReadStatus read_some(std::string& out, int timeout_ms) override;
  void disconnect() override;

  /// Connections opened so far (== reconnects + 1 once used).
  [[nodiscard]] std::uint64_t connections() const { return connections_; }

 private:
  void route_to_client(std::string_view bytes);

  QueryServer* server_;
  ChaosConfig config_;
  std::uint64_t connections_ = 0;
  bool connected_ = false;
  std::unique_ptr<ChaosStream> to_server_;
  std::unique_ptr<ChaosStream> to_client_;
  std::string server_buffer_;           ///< bytes delivered server-side
  std::vector<ChaosEvent> client_inbox_;  ///< events awaiting read_some
  std::size_t inbox_next_ = 0;
};

}  // namespace linesearch::svc

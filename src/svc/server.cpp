#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"
#include "util/parallel.hpp"

namespace linesearch::svc {
namespace {

/// Wire-level counters.  All timing/arrival dependent under concurrency,
/// hence deterministic = false (the determinism tests filter them out).
struct WireMetrics {
  obs::MetricId requests;
  obs::MetricId rejected;
  obs::MetricId errors;
  obs::MetricId queue_depth;
  obs::MetricId latency;

  static const WireMetrics& instance() {
    static const WireMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::instance();
      WireMetrics m;
      m.requests =
          registry.counter("svc.requests", /*deterministic=*/false);
      m.rejected =
          registry.counter("svc.rejected", /*deterministic=*/false);
      m.errors = registry.counter("svc.errors", /*deterministic=*/false);
      // High-water mark of concurrently evaluating requests.
      m.queue_depth =
          registry.gauge("svc.queue_depth", /*deterministic=*/false);
      // Per-request wall latency in microseconds.
      m.latency = registry.histogram(
          "svc.latency_usec",
          {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
           50000, 100000, 250000, 1000000},
          /*deterministic=*/false);
      return m;
    }();
    return metrics;
  }
};

/// Poll interval of the accept/read loops: how often the stop flag is
/// observed while blocked on the socket.
constexpr int kPollMillis = 100;

Real real_field(const JsonValue& doc, const char* name,
                const Real fallback) {
  const JsonValue* found = doc.find(name);
  return found == nullptr ? fallback : found->as_real();
}

int int_field(const JsonValue& doc, const char* name, const int fallback) {
  const JsonValue* found = doc.find(name);
  if (found == nullptr) return fallback;
  const long long value = found->as_int();
  expects(value >= INT_MIN && value <= INT_MAX,
          std::string("svc: field '") + name + "' out of int range");
  return static_cast<int>(value);
}

}  // namespace

WireRequest parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line);
  expects(doc.is_object(), "svc: request must be a JSON object");
  WireRequest request;
  if (const JsonValue* id = doc.find("id"); id != nullptr) {
    request.id = id->as_int();
  }
  const std::string op = doc.at("op").as_string();
  expects(op == "cr", "svc: unknown op '" + op + "' (valid: cr)");
  CrQuery& query = request.query;
  query.n = int_field(doc, "n", query.n);
  query.f = int_field(doc, "f", query.f);
  query.beta = real_field(doc, "beta", query.beta);
  query.window_lo = real_field(doc, "window_lo", query.window_lo);
  query.window_hi = real_field(doc, "window_hi", query.window_hi);
  query.interior_samples =
      int_field(doc, "interior_samples", query.interior_samples);
  if (const JsonValue* regime = doc.find("regime"); regime != nullptr) {
    query.regime = fault_regime_from_name(regime->as_string());
  }
  if (const JsonValue* crashes = doc.find("crash_times");
      crashes != nullptr) {
    for (const JsonValue& entry : crashes->as_array()) {
      query.crash_times.push_back(entry.as_real());
    }
  }
  query.fault_p = real_field(doc, "fault_p", query.fault_p);
  return request;
}

std::string render_response(const long long id, const QueryResult& result) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.field("feasible", result.feasible);
  json.field("cr", result.cr);
  json.field("argmax", result.argmax);
  json.field("cr_positive", result.cr_positive);
  json.field("cr_negative", result.cr_negative);
  json.field("probes", result.probes);
  json.field("undetected_probes", result.undetected_probes);
  json.end_object();
  return out.str();
}

std::string render_error(const long long id, const std::string& message) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("id", id);
  json.field("ok", false);
  json.field("error", message);
  json.end_object();
  return out.str();
}

QueryServer::QueryServer(QueryServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  // max_inflight == 0 is a valid (degenerate) bound: every request is
  // over capacity, which is how the backpressure path is tested
  // deterministically.
  expects(options_.threads > 0, "svc: threads must be positive");
}

std::string QueryServer::handle_line(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  obs::count(WireMetrics::instance().requests);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }

  long long id = 0;
  std::string response;
  // Admission control: bound concurrent evaluations; excess requests see
  // an explicit overload error instead of unbounded queueing.
  const std::size_t depth =
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  obs::gauge_to(WireMetrics::instance().queue_depth, depth);
  if (depth > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    obs::count(WireMetrics::instance().rejected);
    obs::count(WireMetrics::instance().errors);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    ++stats_.errors;
    return render_error(id, "overloaded");
  }
  try {
    const WireRequest request = parse_request(line);
    id = request.id;
    response = render_response(id, service_.evaluate(request.query));
  } catch (const std::exception& failure) {
    obs::count(WireMetrics::instance().errors);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.errors;
    }
    response = render_error(id, failure.what());
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  obs::observe(WireMetrics::instance().latency,
               static_cast<std::uint64_t>(micros));
  return response;
}

void QueryServer::handle_connection(const int fd) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections;
  }
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Drain every complete line already buffered before blocking again;
    // responses go back in request order (the lock-step clients the
    // golden replay uses never see reordering).
    std::size_t line_start = 0;
    while (true) {
      const std::size_t newline = buffer.find('\n', line_start);
      if (newline == std::string::npos) break;
      const std::string line =
          buffer.substr(line_start, newline - line_start);
      line_start = newline + 1;
      if (line.empty()) continue;
      const std::string response = handle_line(line) + '\n';
      std::size_t written = 0;
      while (written < response.size()) {
        const ssize_t sent = ::write(fd, response.data() + written,
                                     response.size() - written);
        if (sent < 0) {
          if (errno == EINTR) continue;
          open = false;
          break;
        }
        written += static_cast<std::size_t>(sent);
      }
      if (!open) break;
    }
    buffer.erase(0, line_start);
    if (!open) break;

    // Graceful drain: once stop() is requested, finish what is buffered
    // (done above) and close rather than waiting for more input.
    if (stopping()) break;

    pollfd poller{};
    poller.fd = fd;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
}

void QueryServer::serve(const std::string& socket_path) {
  expects(!socket_path.empty(), "svc: socket path must be non-empty");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  expects(socket_path.size() < sizeof address.sun_path,
          "svc: socket path too long for AF_UNIX");
  std::memcpy(address.sun_path, socket_path.c_str(),
              socket_path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw Error(std::string("svc: socket() failed: ") +
                std::strerror(errno));
  }
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    throw Error("svc: bind(" + socket_path + ") failed: " + reason);
  }
  if (::listen(listener, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    ::unlink(socket_path.c_str());
    throw Error("svc: listen() failed: " + reason);
  }

  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(options_.threads);

  // Outstanding connection tasks, for the shutdown drain.
  std::mutex drain_mutex;
  std::condition_variable drained;
  std::size_t active = 0;

  while (!stopping()) {
    pollfd poller{};
    poller.fd = listener;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    {
      const std::lock_guard<std::mutex> lock(drain_mutex);
      ++active;
    }
    pool.submit([this, fd, &drain_mutex, &drained, &active] {
      handle_connection(fd);
      const std::lock_guard<std::mutex> lock(drain_mutex);
      --active;
      drained.notify_all();
    });
  }

  // Drain: no new connections, in-flight ones finish their buffered
  // requests (handle_connection observes the stop flag).
  ::close(listener);
  {
    std::unique_lock<std::mutex> lock(drain_mutex);
    drained.wait(lock, [&active] { return active == 0; });
  }
  ::unlink(socket_path.c_str());
}

QueryServer::Stats QueryServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace linesearch::svc

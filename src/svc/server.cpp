#include "svc/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <condition_variable>
#include <cstring>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "svc/snapshot.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"
#include "util/parallel.hpp"

namespace linesearch::svc {
namespace {

/// Wire-level counters.  All timing/arrival dependent under concurrency,
/// hence deterministic = false (the determinism tests filter them out).
struct WireMetrics {
  obs::MetricId requests;
  obs::MetricId rejected;
  obs::MetricId errors;
  obs::MetricId queue_depth;
  obs::MetricId latency;
  obs::MetricId frame_rejected;
  obs::MetricId idle_closed;
  obs::MetricId write_timeout;
  obs::MetricId write_failures;
  obs::MetricId drain_rejected;

  static const WireMetrics& instance() {
    static const WireMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::instance();
      WireMetrics m;
      m.requests =
          registry.counter("svc.requests", /*deterministic=*/false);
      m.rejected =
          registry.counter("svc.rejected", /*deterministic=*/false);
      m.errors = registry.counter("svc.errors", /*deterministic=*/false);
      m.frame_rejected =
          registry.counter("svc.frame_rejected", /*deterministic=*/false);
      m.idle_closed = registry.counter("svc.deadline_idle_closed",
                                       /*deterministic=*/false);
      m.write_timeout = registry.counter("svc.deadline_write_timeout",
                                         /*deterministic=*/false);
      m.write_failures =
          registry.counter("svc.write_failures", /*deterministic=*/false);
      m.drain_rejected =
          registry.counter("svc.drain_rejected", /*deterministic=*/false);
      // High-water mark of concurrently evaluating requests.
      m.queue_depth =
          registry.gauge("svc.queue_depth", /*deterministic=*/false);
      // Per-request wall latency in microseconds.
      m.latency = registry.histogram(
          "svc.latency_usec",
          {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000,
           50000, 100000, 250000, 1000000},
          /*deterministic=*/false);
      return m;
    }();
    return metrics;
  }
};

/// Poll interval of the accept/read loops: how often the stop flag is
/// observed while blocked on the socket.
constexpr int kPollMillis = 100;

Real real_field(const JsonValue& doc, const char* name,
                const Real fallback) {
  const JsonValue* found = doc.find(name);
  return found == nullptr ? fallback : found->as_real();
}

int int_field(const JsonValue& doc, const char* name, const int fallback) {
  const JsonValue* found = doc.find(name);
  if (found == nullptr) return fallback;
  const long long value = found->as_int();
  expects(value >= INT_MIN && value <= INT_MAX,
          std::string("svc: field '") + name + "' out of int range");
  return static_cast<int>(value);
}

}  // namespace

WireRequest parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line);
  expects(doc.is_object(), "svc: request must be a JSON object");
  WireRequest request;
  if (const JsonValue* id = doc.find("id"); id != nullptr) {
    request.id = id->as_int();
  }
  const std::string op = doc.at("op").as_string();
  expects(op == "cr", "svc: unknown op '" + op + "' (valid: cr)");
  CrQuery& query = request.query;
  query.n = int_field(doc, "n", query.n);
  query.f = int_field(doc, "f", query.f);
  query.beta = real_field(doc, "beta", query.beta);
  query.window_lo = real_field(doc, "window_lo", query.window_lo);
  query.window_hi = real_field(doc, "window_hi", query.window_hi);
  query.interior_samples =
      int_field(doc, "interior_samples", query.interior_samples);
  if (const JsonValue* regime = doc.find("regime"); regime != nullptr) {
    query.regime = fault_regime_from_name(regime->as_string());
  }
  if (const JsonValue* crashes = doc.find("crash_times");
      crashes != nullptr) {
    for (const JsonValue& entry : crashes->as_array()) {
      query.crash_times.push_back(entry.as_real());
    }
  }
  query.fault_p = real_field(doc, "fault_p", query.fault_p);
  return request;
}

std::string render_response(const long long id, const QueryResult& result) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("id", id);
  json.field("ok", true);
  json.field("feasible", result.feasible);
  json.field("cr", result.cr);
  json.field("argmax", result.argmax);
  json.field("cr_positive", result.cr_positive);
  json.field("cr_negative", result.cr_negative);
  json.field("probes", result.probes);
  json.field("undetected_probes", result.undetected_probes);
  json.end_object();
  return out.str();
}

long long peek_request_id(const std::string& line) noexcept {
  try {
    const JsonValue doc = parse_json(line);
    if (!doc.is_object()) return 0;
    const JsonValue* id = doc.find("id");
    return id == nullptr ? 0 : id->as_int();
  } catch (const std::exception&) {
    return 0;
  }
}

std::vector<std::string> drain_reject_lines(const std::string& pending) {
  std::vector<std::string> responses;
  std::size_t line_start = 0;
  while (line_start <= pending.size()) {
    const std::size_t newline = pending.find('\n', line_start);
    if (newline == std::string::npos) break;
    const std::string line =
        pending.substr(line_start, newline - line_start);
    line_start = newline + 1;
    if (line.empty()) continue;
    responses.push_back(render_error(peek_request_id(line),
                                     "draining: server is shutting down"));
  }
  return responses;
}

std::string render_error(const long long id, const std::string& message) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("id", id);
  json.field("ok", false);
  json.field("error", message);
  json.end_object();
  return out.str();
}

QueryServer::QueryServer(QueryServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  // max_inflight == 0 is a valid (degenerate) bound: every request is
  // over capacity, which is how the backpressure path is tested
  // deterministically.
  expects(options_.threads > 0, "svc: threads must be positive");
}

std::string QueryServer::handle_line(const std::string& line) {
  const auto start = std::chrono::steady_clock::now();
  obs::count(WireMetrics::instance().requests);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }

  long long id = 0;
  std::string response;
  // Admission control: bound concurrent evaluations; excess requests see
  // an explicit overload error instead of unbounded queueing.
  const std::size_t depth =
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  obs::gauge_to(WireMetrics::instance().queue_depth, depth);
  if (depth > options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    obs::count(WireMetrics::instance().rejected);
    obs::count(WireMetrics::instance().errors);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rejected;
    ++stats_.errors;
    return render_error(id, "overloaded");
  }
  try {
    const WireRequest request = parse_request(line);
    id = request.id;
    response = render_response(id, service_.evaluate(request.query));
  } catch (const std::exception& failure) {
    obs::count(WireMetrics::instance().errors);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.errors;
    }
    // Echo the request id whenever the line itself parsed (the failure
    // was a bad op/field): clients can then match the structured error
    // to its request.  A 0-id error means the REQUEST was unparseable —
    // to a client that only sends ids >= 1, proof of a damaged frame.
    if (id == 0) id = peek_request_id(line);
    response = render_error(id, failure.what());
  }
  inflight_.fetch_sub(1, std::memory_order_acq_rel);

  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  obs::observe(WireMetrics::instance().latency,
               static_cast<std::uint64_t>(micros));
  return response;
}

bool QueryServer::write_line(const int fd, const std::string& line) {
  const std::string response = line + '\n';
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.write_timeout_ms);
  std::size_t written = 0;
  while (written < response.size()) {
    if (options_.write_timeout_ms > 0) {
      // A peer that stops reading must not park this worker forever:
      // wait for writability only up to the write deadline.
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        obs::count(WireMetrics::instance().write_timeout);
        obs::count(WireMetrics::instance().write_failures);
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.write_failures;
        return false;
      }
      pollfd poller{};
      poller.fd = fd;
      poller.events = POLLOUT;
      const int wait = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count());
      const int ready = ::poll(&poller, 1, std::max(1, wait));
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready == 0) continue;  // re-check the deadline
    }
    // MSG_NOSIGNAL: a client that closed mid-response yields EPIPE here
    // instead of a process-killing SIGPIPE — the library-level half of
    // the fix (serve_main's SIG_IGN only covers its own process, not
    // embedders or the test binaries).
    const ssize_t sent = ::send(fd, response.data() + written,
                                response.size() - written, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;  // EPIPE/ECONNRESET: the peer is gone
    }
    written += static_cast<std::size_t>(sent);
  }
  if (written >= response.size()) return true;
  obs::count(WireMetrics::instance().write_failures);
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.write_failures;
  return false;
}

void QueryServer::handle_connection(const int fd) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections;
  }
  std::string buffer;
  char chunk[4096];
  bool open = true;
  // The idle clock starts at accept and resets only on a COMPLETE
  // request line — receiving stray bytes does not count as progress, so
  // a trickling (slowloris) client and a silent one expire the same way.
  auto last_progress = std::chrono::steady_clock::now();
  while (open) {
    // Drain every complete line already buffered before blocking again;
    // responses go back in request order (the lock-step clients the
    // golden replay uses never see reordering).
    std::size_t line_start = 0;
    while (true) {
      const std::size_t newline = buffer.find('\n', line_start);
      if (newline == std::string::npos) break;
      const std::string line =
          buffer.substr(line_start, newline - line_start);
      line_start = newline + 1;
      if (line.empty()) continue;
      last_progress = std::chrono::steady_clock::now();
      if (!write_line(fd, handle_line(line))) {
        open = false;
        break;
      }
    }
    buffer.erase(0, line_start);
    if (!open) break;

    // Frame bound: a pending line that outgrew the limit can only get
    // worse — reject it visibly and close before it becomes an OOM.
    if (buffer.size() > options_.max_request_bytes) {
      obs::count(WireMetrics::instance().frame_rejected);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.frame_rejected;
      }
      (void)write_line(
          fd, render_error(0, "malformed: request line exceeds " +
                                  std::to_string(options_.max_request_bytes) +
                                  " bytes"));
      break;
    }

    // Graceful drain: once stop() is requested, what was already
    // buffered has been ANSWERED above; anything still queued in the
    // socket gets a visible "draining" rejection — answered or
    // rejected, never silently dropped.
    if (stopping()) {
      std::string pending;
      while (true) {
        pollfd sweep{};
        sweep.fd = fd;
        sweep.events = POLLIN;
        if (::poll(&sweep, 1, 0) <= 0) break;
        const ssize_t got = ::read(fd, chunk, sizeof chunk);
        if (got <= 0) break;
        pending.append(chunk, static_cast<std::size_t>(got));
      }
      for (const std::string& rejection : drain_reject_lines(pending)) {
        obs::count(WireMetrics::instance().drain_rejected);
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.drain_rejected;
        }
        if (!write_line(fd, rejection)) break;
      }
      break;
    }

    // Idle deadline, from the last complete request.
    if (options_.idle_timeout_ms > 0) {
      const auto idle_for =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - last_progress)
              .count();
      if (idle_for > options_.idle_timeout_ms) {
        obs::count(WireMetrics::instance().idle_closed);
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.idle_closed;
        }
        (void)write_line(
            fd, render_error(0, "timeout: connection idle beyond " +
                                    std::to_string(options_.idle_timeout_ms) +
                                    " ms"));
        break;
      }
    }

    pollfd poller{};
    poller.fd = fd;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // timeout: re-check stop flag + deadlines
    const ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (got == 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
  ::close(fd);
}

void QueryServer::serve(const std::string& socket_path) {
  expects(!socket_path.empty(), "svc: socket path must be non-empty");
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  expects(socket_path.size() < sizeof address.sun_path,
          "svc: socket path too long for AF_UNIX");
  std::memcpy(address.sun_path, socket_path.c_str(),
              socket_path.size() + 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    throw Error(std::string("svc: socket() failed: ") +
                std::strerror(errno));
  }
  ::unlink(socket_path.c_str());  // replace a stale socket file
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    throw Error("svc: bind(" + socket_path + ") failed: " + reason);
  }
  if (::listen(listener, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listener);
    ::unlink(socket_path.c_str());
    throw Error("svc: listen() failed: " + reason);
  }

  ThreadPool& pool = ThreadPool::global();
  pool.ensure_workers(options_.threads);

  // Outstanding connection tasks, for the shutdown drain.
  std::mutex drain_mutex;
  std::condition_variable drained;
  std::size_t active = 0;

  while (!stopping()) {
    pollfd poller{};
    poller.fd = listener;
    poller.events = POLLIN;
    const int ready = ::poll(&poller, 1, kPollMillis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Live checkpoint (SIGUSR1): write the snapshot from the accept
    // thread — export_cache takes per-shard locks, so serving threads
    // are never blocked for the whole write.
    if (checkpoint_.exchange(false, std::memory_order_relaxed)) {
      maybe_snapshot();
    }
    if (ready == 0) continue;  // timeout: re-check the stop flag
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    {
      const std::lock_guard<std::mutex> lock(drain_mutex);
      ++active;
    }
    pool.submit([this, fd, &drain_mutex, &drained, &active] {
      handle_connection(fd);
      const std::lock_guard<std::mutex> lock(drain_mutex);
      --active;
      drained.notify_all();
    });
  }

  // Drain: no new connections, in-flight ones finish their buffered
  // requests (handle_connection observes the stop flag).
  ::close(listener);
  {
    std::unique_lock<std::mutex> lock(drain_mutex);
    drained.wait(lock, [&active] { return active == 0; });
  }
  // Drain-time snapshot: the cache is quiescent now, so this capture is
  // the warmest possible restart image.
  maybe_snapshot();
  ::unlink(socket_path.c_str());
}

void QueryServer::maybe_snapshot() noexcept {
  if (options_.snapshot_path.empty()) return;
  try {
    (void)save_snapshot(service_, options_.snapshot_path);
  } catch (const std::exception&) {
    // A full disk or unwritable path must not take the service down;
    // the next checkpoint retries.
    obs::count(WireMetrics::instance().write_failures);
  }
}

QueryServer::Stats QueryServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace linesearch::svc

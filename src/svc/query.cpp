#include "svc/query.hpp"

#include <charconv>
#include <cmath>
#include <utility>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/expectation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace linesearch::svc {
namespace {

/// Behaviour counters.  svc.queries is deterministic (one per
/// canonicalized call); the cache/coalescing/backends counters depend on
/// arrival timing under concurrency, so they carry deterministic = false
/// and the determinism tests filter them out.
struct SvcMetrics {
  obs::MetricId queries;
  obs::MetricId cache_hits;
  obs::MetricId coalesced;
  obs::MetricId evaluations;
  obs::MetricId backend_builds;
  obs::MetricId backend_hits;

  static const SvcMetrics& instance() {
    static const SvcMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::instance();
      SvcMetrics m;
      m.queries = registry.counter("svc.queries");
      m.cache_hits =
          registry.counter("svc.cache_hits", /*deterministic=*/false);
      m.coalesced =
          registry.counter("svc.coalesced", /*deterministic=*/false);
      m.evaluations =
          registry.counter("svc.evaluations", /*deterministic=*/false);
      m.backend_builds =
          registry.counter("svc.backend_builds", /*deterministic=*/false);
      m.backend_hits =
          registry.counter("svc.backend_hits", /*deterministic=*/false);
      return m;
    }();
    return metrics;
  }
};

CrEvalOptions eval_options_of(const CrQuery& query,
                              const bool require_finite) {
  CrEvalOptions options;
  options.window_lo = query.window_lo;
  options.window_hi = query.window_hi;
  options.interior_samples = query.interior_samples;
  options.require_finite = require_finite;
  return options;
}

/// Dense extent the crash regime builds to: comfortably past the probe
/// window so an UNcrashed fleet never leaves a probe undetected (any inf
/// in a crash result is then attributable to the crashes themselves).
Real crash_extent(const CrQuery& query) { return 4 * query.window_hi; }

/// The backend registry key: which immutable Fleet this query evaluates
/// against.  kNone and kByzantine share the unbounded analytic backend
/// of their (strategy, n, f, beta); kCrash needs the dense build at the
/// window's extent (truncation interpolates real waypoints).
std::string backend_key(const CrQuery& canonical) {
  std::string key = canonical.regime == FaultRegime::kCrash ? "dense|"
                                                            : "analytic|";
  key += std::to_string(canonical.n) + '|' + std::to_string(canonical.f) +
         '|' + encode_real_field(canonical.beta);
  if (canonical.regime == FaultRegime::kCrash) {
    key += '|' + encode_real_field(crash_extent(canonical));
  }
  return key;
}

Fleet build_backend(const CrQuery& canonical) {
  const ProportionalAlgorithm algorithm(canonical.n, canonical.f,
                                        canonical.beta);
  if (canonical.regime == FaultRegime::kCrash) {
    return algorithm.build_fleet(crash_extent(canonical));
  }
  return algorithm.build_unbounded_fleet();
}

/// Measure `canonical` against its (shared or freshly built) backend.
/// This is the ONE evaluation body both the direct path and the service
/// run, so caching layers cannot change an answered bit by construction.
QueryResult evaluate_on_backend(const CrQuery& canonical,
                                const Fleet& backend) {
  QueryResult result;
  switch (canonical.regime) {
    case FaultRegime::kNone: {
      const CrEvalResult scan =
          measure_cr(backend, canonical.f,
                     eval_options_of(canonical, /*require_finite=*/true));
      result.cr = scan.cr;
      result.argmax = scan.argmax;
      result.cr_positive = scan.cr_positive;
      result.cr_negative = scan.cr_negative;
      result.probes = scan.probes;
      result.undetected_probes = scan.undetected_probes;
      break;
    }
    case FaultRegime::kByzantine: {
      // The quorum scan at budget 2f — field-identical to
      // measure_byzantine_cr (eval/byzantine), with the side suprema
      // preserved.  Infeasible pairs (n < 2f+1) report cr = kInfinity.
      const CrEvalResult scan =
          measure_cr(backend, 2 * canonical.f,
                     eval_options_of(canonical, /*require_finite=*/false));
      result.feasible = static_cast<int>(backend.size()) >=
                        2 * canonical.f + 1;
      result.probes = scan.probes;
      result.undetected_probes = scan.undetected_probes;
      result.cr_positive = scan.cr_positive;
      result.cr_negative = scan.cr_negative;
      if (result.feasible && scan.undetected_probes == 0) {
        result.cr = scan.cr;
        result.argmax = scan.argmax;
      } else {
        result.cr = kInfinity;
        result.argmax = 0;
      }
      break;
    }
    case FaultRegime::kCrash: {
      const Fleet truncated =
          truncate_at_crashes(backend, canonical.crash_times);
      const CrEvalResult scan =
          measure_cr(truncated, canonical.f,
                     eval_options_of(canonical, /*require_finite=*/false));
      result.cr = scan.cr;
      result.argmax = scan.argmax;
      result.cr_positive = scan.cr_positive;
      result.cr_negative = scan.cr_negative;
      result.probes = scan.probes;
      result.undetected_probes = scan.undetected_probes;
      break;
    }
    case FaultRegime::kProbabilistic: {
      // Expected CR at fault_p (eval/expectation) on the same unbounded
      // analytic backend kNone uses.  Divergent probes (p at or past the
      // ladder threshold) report cr = kInfinity via the non-finite
      // codec, exactly like an infeasible Byzantine quorum.
      ExpectationOptions expectation;
      expectation.p = canonical.fault_p;
      expectation.eval = eval_options_of(canonical,
                                         /*require_finite=*/false);
      const CrEvalResult scan = measure_expected_cr(backend, expectation);
      LS_OBS_COUNT("svc.probabilistic_queries", 1);
      result.cr = scan.cr;
      result.argmax = scan.argmax;
      result.cr_positive = scan.cr_positive;
      result.cr_negative = scan.cr_negative;
      result.probes = scan.probes;
      result.undetected_probes = scan.undetected_probes;
      break;
    }
  }
  return result;
}

}  // namespace

const char* fault_regime_name(const FaultRegime regime) {
  switch (regime) {
    case FaultRegime::kNone: return "none";
    case FaultRegime::kByzantine: return "byzantine";
    case FaultRegime::kCrash: return "crash";
    case FaultRegime::kProbabilistic: return "probabilistic";
  }
  return "unknown";
}

FaultRegime fault_regime_from_name(const std::string& name) {
  if (name == "none") return FaultRegime::kNone;
  if (name == "byzantine") return FaultRegime::kByzantine;
  if (name == "crash") return FaultRegime::kCrash;
  if (name == "probabilistic") return FaultRegime::kProbabilistic;
  throw PreconditionError("svc: unknown fault regime '" + name +
                          "' (valid: none, byzantine, crash, probabilistic)");
}

CrQuery canonicalize_query(CrQuery query) {
  expects(query.f >= 1, "svc: query needs f >= 1");
  expects(in_proportional_regime(query.n, query.f),
          "svc: (n, f) outside the proportional regime f < n < 2f+2");
  expects(query.window_lo > 0, "svc: window_lo must be positive");
  expects(query.window_hi >= query.window_lo,
          "svc: window_hi must be >= window_lo");
  expects(std::isfinite(query.window_lo) && std::isfinite(query.window_hi),
          "svc: probe window must be finite");
  expects(query.interior_samples >= 0,
          "svc: interior_samples must be >= 0");
  if (std::isnan(query.beta)) {
    // Resolve the default so "optimal beta" and "explicit beta*(n, f)"
    // canonicalize to the same key (and the same shared backend).
    query.beta = optimal_beta(query.n, query.f);
  }
  expects(std::isfinite(query.beta) && query.beta > 1,
          "svc: beta must be finite and > 1");
  if (query.regime == FaultRegime::kCrash) {
    expects(query.crash_times.size() ==
                static_cast<std::size_t>(query.n),
            "svc: crash regime needs one crash time per robot "
            "(kInfinity = healthy)");
    for (const Real t : query.crash_times) {
      expects(!std::isnan(t) && t >= 0,
              "svc: crash times must be >= 0 or kInfinity");
    }
  } else {
    expects(query.crash_times.empty(),
            "svc: crash_times only apply to the crash regime");
  }
  if (query.regime == FaultRegime::kProbabilistic) {
    expects(query.fault_p >= 0 && query.fault_p < 1,
            "svc: probabilistic regime needs 0 <= fault_p < 1");
  } else {
    expects(query.fault_p == 0,
            "svc: fault_p only applies to the probabilistic regime");
  }
  return query;
}

std::string query_key(const CrQuery& query) {
  std::string key = fault_regime_name(query.regime);
  key += '|';
  key += std::to_string(query.n) + '|' + std::to_string(query.f) + '|' +
         encode_real_field(query.beta) + '|' +
         encode_real_field(query.window_lo) + '|' +
         encode_real_field(query.window_hi) + '|' +
         std::to_string(query.interior_samples) + '|' +
         encode_real_field(query.fault_p);
  for (const Real t : query.crash_times) {
    key += '|';
    key += encode_real_field(t);
  }
  return key;
}

std::size_t query_shard(const CrQuery& query,
                        const std::size_t shard_count) {
  expects(shard_count > 0, "svc: shard_count must be positive");
  // Deterministic spread over regime pairs: neighbouring grid pairs land
  // in different shards, every (beta, window) variant of one pair shares
  // its pair's shard.
  const std::size_t pair =
      static_cast<std::size_t>(query.n) * 31u +
      static_cast<std::size_t>(query.f);
  return pair % shard_count;
}

QueryResult evaluate_query_direct(const CrQuery& query) {
  LS_OBS_SPAN("svc.query.direct");
  const CrQuery canonical = canonicalize_query(query);
  const Fleet backend = build_backend(canonical);
  return evaluate_on_backend(canonical, backend);
}

QueryService::QueryService(QueryServiceOptions options)
    : options_(std::move(options)) {
  expects(options_.shard_count > 0, "svc: shard_count must be positive");
  expects(options_.shard_capacity > 0,
          "svc: shard_capacity must be positive");
  expects(options_.max_backends > 0, "svc: max_backends must be positive");
  shards_.reserve(options_.shard_count);
  for (std::size_t i = 0; i < options_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const Fleet> QueryService::backend_for(
    const CrQuery& canonical) {
  const std::string key = backend_key(canonical);
  const std::lock_guard<std::mutex> lock(backends_mutex_);
  const auto it = backends_.find(key);
  if (it != backends_.end()) {
    obs::count(SvcMetrics::instance().backend_hits);
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.backend_hits;
    return it->second;
  }
  // Bound the registry: evict the oldest registration.  In-use fleets
  // stay alive through their shared_ptr; eviction only drops the shared
  // slot, never an object under a running evaluation.
  if (backends_.size() >= options_.max_backends) {
    backends_.erase(backend_order_.front());
    backend_order_.pop_front();
  }
  auto backend = std::make_shared<const Fleet>(build_backend(canonical));
  backends_.emplace(key, backend);
  backend_order_.push_back(key);
  obs::count(SvcMetrics::instance().backend_builds);
  const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++stats_.backend_builds;
  return backend;
}

QueryResult QueryService::compute(const CrQuery& canonical) {
  LS_OBS_SPAN("svc.query.compute");
  const std::shared_ptr<const Fleet> backend = backend_for(canonical);
  obs::count(SvcMetrics::instance().evaluations);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.evaluations;
  }
  return evaluate_on_backend(canonical, *backend);
}

bool QueryService::cache_lookup(const std::size_t shard_index,
                                const std::string& key, QueryResult& out) {
  Shard& shard = *shards_[shard_index];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.by_key.find(key);
  if (it == shard.by_key.end()) return false;
  // Touch: move to the MRU end.
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  out = it->second->second;
  return true;
}

void QueryService::cache_store(const std::size_t shard_index,
                               const std::string& key,
                               const QueryResult& result) {
  Shard& shard = *shards_[shard_index];
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.by_key.find(key);
  if (it != shard.by_key.end()) {
    // A coalescing race can store the same key twice; both values are
    // value-identical by the determinism contract, keep the first.
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  if (shard.order.size() >= options_.shard_capacity) {
    shard.by_key.erase(shard.order.back().first);
    shard.order.pop_back();
    const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.evictions;
  }
  shard.order.emplace_front(key, result);
  shard.by_key.emplace(key, shard.order.begin());
}

QueryResult QueryService::evaluate(const CrQuery& query) {
  const CrQuery canonical = canonicalize_query(query);
  const std::string key = query_key(canonical);
  const std::size_t shard_index =
      query_shard(canonical, options_.shard_count);
  obs::count(SvcMetrics::instance().queries);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
  }

  QueryResult cached;
  if (options_.cache_results && cache_lookup(shard_index, key, cached)) {
    obs::count(SvcMetrics::instance().cache_hits);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.cache_hits;
    return cached;
  }

  std::shared_ptr<InFlight> flight;
  bool leader = true;
  if (options_.coalesce) {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      flight = it->second;
      leader = false;
    } else {
      flight = std::make_shared<InFlight>();
      inflight_.emplace(key, flight);
    }
  }

  if (!leader) {
    obs::count(SvcMetrics::instance().coalesced);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.coalesced;
    }
    std::unique_lock<std::mutex> lock(flight->mutex);
    flight->done.wait(lock, [&flight] { return flight->finished; });
    if (flight->failed) throw Error(flight->error);
    return flight->result;
  }

  QueryResult result;
  try {
    result = compute(canonical);
  } catch (const std::exception& failure) {
    if (flight != nullptr) {
      {
        const std::lock_guard<std::mutex> lock(inflight_mutex_);
        inflight_.erase(key);
      }
      const std::lock_guard<std::mutex> lock(flight->mutex);
      flight->failed = true;
      flight->error = failure.what();
      flight->finished = true;
      flight->done.notify_all();
    }
    throw;
  }

  if (options_.cache_results) cache_store(shard_index, key, result);
  if (flight != nullptr) {
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    const std::lock_guard<std::mutex> lock(flight->mutex);
    flight->result = result;
    flight->finished = true;
    flight->done.notify_all();
  }
  return result;
}

QueryService::Stats QueryService::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t QueryService::backend_count() const {
  const std::lock_guard<std::mutex> lock(backends_mutex_);
  return backends_.size();
}

namespace {

/// Recompute a cached key's shard from its embedded regime pair: keys
/// spell "regime|n|f|..." (query_key), so the pair survives a snapshot
/// round trip under any shard_count.
std::size_t shard_of_key(const std::string& key,
                         const std::size_t shard_count) {
  const std::size_t first = key.find('|');
  const std::size_t second =
      first == std::string::npos ? first : key.find('|', first + 1);
  const std::size_t third =
      second == std::string::npos ? second : key.find('|', second + 1);
  expects(third != std::string::npos,
          "svc: cache key missing regime-pair fields: " + key);
  int n = 0;
  int f = 0;
  const char* n_begin = key.data() + first + 1;
  const char* n_end = key.data() + second;
  const char* f_begin = key.data() + second + 1;
  const char* f_end = key.data() + third;
  const auto n_parsed = std::from_chars(n_begin, n_end, n);
  const auto f_parsed = std::from_chars(f_begin, f_end, f);
  expects(n_parsed.ec == std::errc{} && n_parsed.ptr == n_end &&
              f_parsed.ec == std::errc{} && f_parsed.ptr == f_end &&
              n > 0 && f > 0,
          "svc: cache key regime pair does not parse: " + key);
  const std::size_t pair = static_cast<std::size_t>(n) * 31u +
                           static_cast<std::size_t>(f);
  return pair % shard_count;
}

}  // namespace

std::vector<QueryService::CacheEntry> QueryService::export_cache() const {
  std::vector<CacheEntry> entries;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, result] : shard->order) {
      entries.push_back(CacheEntry{key, result});
    }
  }
  return entries;
}

std::size_t QueryService::import_cache(const std::vector<CacheEntry>& entries) {
  // Validate every key BEFORE touching the cache: a rejected import
  // leaves the service exactly as it was (cold, not half-warm).
  std::vector<std::size_t> shards;
  shards.reserve(entries.size());
  for (const CacheEntry& entry : entries) {
    shards.push_back(shard_of_key(entry.key, options_.shard_count));
  }
  // LRU-first replay: cache_store fronts each key, so the exported
  // recency order (MRU first) is restored by inserting in reverse.
  for (std::size_t i = entries.size(); i-- > 0;) {
    cache_store(shards[i], entries[i].key, entries[i].result);
  }
  return entries.size();
}

std::size_t QueryService::cached_count() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->order.size();
  }
  return total;
}

void QueryService::clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    shard->order.clear();
    shard->by_key.clear();
  }
  const std::lock_guard<std::mutex> lock(backends_mutex_);
  backends_.clear();
  backend_order_.clear();
}

}  // namespace linesearch::svc

// svc/query.hpp — the stateless query layer in front of eval.
//
// Every CR question the library answers — plain measure_cr on A(n, f) /
// S_beta(n), the Byzantine quorum scan (eval/byzantine), crash-
// truncated fleets (sim/faults), and the expected CR under per-visit
// probabilistic faults (eval/expectation) — is expressible as one
// canonical value type, `CrQuery`.  `evaluate_query_direct` is the reference path: build
// the fleet, run the scan, return the numbers; it holds no state and two
// calls with equal canonical queries return value-identical results.
//
// `QueryService` layers the always-on machinery over that pure function
// without changing a single answered bit:
//   * a registry of immutable shared analytic backends keyed by
//     (strategy, n, f, beta) — concurrent queries against the same
//     regime pair reuse ONE Fleet, whose identity-keyed visit_cache
//     slots (PR 3) make the sharing free;
//   * an LRU of hot results sharded by regime pair (n, f), so a sweep
//     over the 41-pair grid keeps every pair's hot window resident
//     independently;
//   * coalescing of identical in-flight queries: the first caller
//     computes, everyone else waits for that one result.
// The determinism contract (docs/service.md): for any cache
// configuration, thread count, and arrival order, evaluate() returns a
// result value_identical to evaluate_query_direct on the same canonical
// query.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/cr_eval.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch::svc {

/// Which fault model the query runs under.
enum class FaultRegime {
  kNone,       ///< f silent (blind) faults — the paper's model
  kByzantine,  ///< f lying faults: quorum CR at budget 2f (eval/byzantine)
  kCrash,      ///< explicit crash-stop times, truncated fleet (sim/faults)
  /// Per-visit iid probe failures with probability fault_p: the expected
  /// CR (eval/expectation).  The first CONTINUOUS query parameter — every
  /// distinct p is its own cache entry inside its regime pair's shard.
  kProbabilistic,
};

/// Wire spelling of a regime ("none" / "byzantine" / "crash" /
/// "probabilistic").
[[nodiscard]] const char* fault_regime_name(FaultRegime regime);

/// Inverse of fault_regime_name; throws PreconditionError on unknown
/// names (the error message lists the valid spellings).
[[nodiscard]] FaultRegime fault_regime_from_name(const std::string& name);

/// One CR evaluation request.  The canonical key of the whole service:
/// equal canonical queries MUST produce value-identical results.
struct CrQuery {
  int n = 2;                ///< robots; requires f < n < 2f+2
  int f = 1;                ///< fault budget
  Real beta = kNaN;         ///< cone parameter; NaN = optimal beta*(n, f)
  Real window_lo = 1;       ///< probe window, as in CrEvalOptions
  Real window_hi = 64;
  int interior_samples = 4;
  FaultRegime regime = FaultRegime::kNone;
  /// kCrash only: crash_times[i] is robot i's crash-stop time
  /// (kInfinity = healthy).  Must be empty for the other regimes.
  std::vector<Real> crash_times;
  /// kProbabilistic only: per-visit failure probability in [0, 1).
  /// Must be 0 for the other regimes.
  Real fault_p = 0;
};

/// Validate and normalize a query: regime-pair check (f >= 1 and
/// f < n < 2f+2), window sanity, beta resolution (NaN -> the pair's
/// optimal beta, so "default beta" and "explicitly optimal beta" are the
/// SAME canonical query), crash-schedule shape.  Throws
/// PreconditionError on invalid input.  Every service entry point
/// canonicalizes first; keys are computed only on canonical queries.
[[nodiscard]] CrQuery canonicalize_query(CrQuery query);

/// Deterministic cache/coalescing key of a CANONICAL query (exact text
/// encoding of every field through the shared Real codec — two queries
/// share a key iff every field is value-identical).
[[nodiscard]] std::string query_key(const CrQuery& query);

/// The shard a canonical query's results live in: regime pairs (n, f)
/// spread across `shard_count` shards, so grid sweeps keep each pair's
/// hot window resident independently of its neighbours.
[[nodiscard]] std::size_t query_shard(const CrQuery& query,
                                      std::size_t shard_count);

/// Answer of one query — a pure function of the canonical CrQuery.
struct QueryResult {
  /// Byzantine regime: n >= 2f+1 (a quorum can form at all).  Always
  /// true for the other regimes.
  bool feasible = true;
  Real cr = 0;        ///< kInfinity when infeasible or undetectable
  Real argmax = 0;
  Real cr_positive = 0;
  Real cr_negative = 0;
  int probes = 0;
  int undetected_probes = 0;
};

/// The stateless reference path: build the fleet for the query's regime
/// and measure.  kNone runs measure_cr on the unbounded analytic
/// backend; kByzantine the quorum scan at budget 2f (value-identical to
/// measure_byzantine_cr field by field); kCrash truncates a dense
/// build at the query's crash times (extent = 4 * window_hi) and
/// measures with require_finite off — an undetectable half-line reports
/// cr = kInfinity, which survives the wire via util/jsonio's codec.
/// kProbabilistic runs measure_expected_cr at fault_p on the unbounded
/// analytic backend (shared with kNone): divergent probes (p at or past
/// the ladder threshold kappa^(-1/n)) report cr = kInfinity the same
/// codec-pinned way.
[[nodiscard]] QueryResult evaluate_query_direct(const CrQuery& query);

/// Tuning knobs of the caching/coalescing layer.
struct QueryServiceOptions {
  bool cache_results = true;    ///< LRU of hot QueryResults
  std::size_t shard_count = 8;  ///< result-LRU shards over regime pairs
  std::size_t shard_capacity = 128;  ///< LRU entries per shard
  bool coalesce = true;         ///< merge identical in-flight queries
  std::size_t max_backends = 256;  ///< shared-fleet registry bound
};

/// Thread-safe stateless-query front end: shared immutable backends +
/// sharded result LRU + in-flight coalescing.  Safe to call evaluate()
/// from any number of threads concurrently (ctest label `svc` runs the
/// proof under TSAN).
class QueryService {
 public:
  explicit QueryService(QueryServiceOptions options = {});

  /// Evaluate one query through the cache/coalescing layers.  The result
  /// is value_identical to evaluate_query_direct(canonicalize_query(q))
  /// regardless of cache state, shard layout, or concurrency.
  [[nodiscard]] QueryResult evaluate(const CrQuery& query);

  /// Monotonic behaviour counters (also exported as svc.* obs metrics).
  struct Stats {
    std::uint64_t queries = 0;      ///< evaluate() calls that canonicalized
    std::uint64_t cache_hits = 0;   ///< served from a shard LRU
    std::uint64_t coalesced = 0;    ///< waited on an identical in-flight query
    std::uint64_t evaluations = 0;  ///< actually computed (cold path)
    std::uint64_t backend_builds = 0;  ///< fleets constructed
    std::uint64_t backend_hits = 0;    ///< fleets reused from the registry
    std::uint64_t evictions = 0;       ///< LRU entries displaced
  };
  [[nodiscard]] Stats stats() const;

  /// Number of distinct shared backends currently registered.
  [[nodiscard]] std::size_t backend_count() const;

  /// Drop every cached result and backend (test isolation); counters
  /// keep their totals.
  void clear();

  /// One exported result-cache entry (svc/snapshot's unit of warm
  /// restart).  The full query_key travels with the result; the key
  /// embeds the regime pair (fields `n|f`), so a restoring service
  /// recomputes shard placement under ANY shard_count.
  struct CacheEntry {
    std::string key;
    QueryResult result;
  };

  /// Every cached result, shard 0..N-1, most-recently-used first within
  /// each shard.  Safe concurrently with evaluate() (per-shard locks).
  [[nodiscard]] std::vector<CacheEntry> export_cache() const;

  /// Insert exported entries into this service's cache (existing keys
  /// keep their first value — the determinism contract makes them
  /// value-identical anyway).  Entries are replayed LRU-first so the
  /// exported recency order survives the round trip.  Returns the
  /// number of entries stored.  Throws PreconditionError on a key whose
  /// regime-pair fields do not parse.
  std::size_t import_cache(const std::vector<CacheEntry>& entries);

  /// Total results currently cached across all shards.
  [[nodiscard]] std::size_t cached_count() const;

  const QueryServiceOptions& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mutex;
    /// Most-recently-used at the front.
    std::list<std::pair<std::string, QueryResult>> order;
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, QueryResult>>::iterator>
        by_key;
  };

  /// One leader computing a key; followers wait on `done`.
  struct InFlight {
    std::mutex mutex;
    std::condition_variable done;
    bool finished = false;
    bool failed = false;
    std::string error;
    QueryResult result;
  };

  [[nodiscard]] std::shared_ptr<const Fleet> backend_for(
      const CrQuery& canonical);
  [[nodiscard]] QueryResult compute(const CrQuery& canonical);
  [[nodiscard]] bool cache_lookup(std::size_t shard_index,
                                  const std::string& key,
                                  QueryResult& out);
  void cache_store(std::size_t shard_index, const std::string& key,
                   const QueryResult& result);

  QueryServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex backends_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const Fleet>> backends_;
  /// Insertion order for bounded eviction of the backend registry.
  std::list<std::string> backend_order_;

  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<InFlight>> inflight_;

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

}  // namespace linesearch::svc

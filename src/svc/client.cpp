#include "svc/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"
#include "util/rng.hpp"

namespace linesearch::svc {
namespace {

/// Client-side resilience counters (timing/fault dependent, hence
/// deterministic = false).
struct ClientMetrics {
  obs::MetricId calls;
  obs::MetricId retries;
  obs::MetricId reconnects;
  obs::MetricId timeouts;
  obs::MetricId corrupt_frames;

  static const ClientMetrics& instance() {
    static const ClientMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::instance();
      ClientMetrics m;
      m.calls = registry.counter("svc.client_calls", /*deterministic=*/false);
      m.retries =
          registry.counter("svc.client_retries", /*deterministic=*/false);
      m.reconnects =
          registry.counter("svc.client_reconnects", /*deterministic=*/false);
      m.timeouts =
          registry.counter("svc.client_timeouts", /*deterministic=*/false);
      m.corrupt_frames = registry.counter("svc.client_corrupt_frames",
                                          /*deterministic=*/false);
      return m;
    }();
    return metrics;
  }
};

/// Parse the request line's id without validating the full query shape
/// (the server owns that).  Throws on unparseable JSON.
long long request_id_of(const std::string& line) {
  const JsonValue doc = parse_json(line);
  expects(doc.is_object(), "client: request must be a JSON object");
  const JsonValue* id = doc.find("id");
  return id == nullptr ? 0 : id->as_int();
}

/// A response line is authoritative iff it parses as an object whose
/// "id" echoes the request and which carries an "ok" field.  Anything
/// else is a damaged or foreign frame.
bool response_matches(const std::string& line, const long long expected_id) {
  try {
    const JsonValue doc = parse_json(line);
    if (!doc.is_object()) return false;
    const JsonValue* id = doc.find("id");
    if (id == nullptr || id->as_int() != expected_id) return false;
    return doc.find("ok") != nullptr;
  } catch (const std::exception&) {
    return false;
  }
}

/// Server-side conditions that are transient by contract: retrying on a
/// fresh connection can succeed (overload sheds, drains finish).
bool retryable_server_error(const std::string& line) {
  try {
    const JsonValue doc = parse_json(line);
    if (doc.at("ok").as_bool()) return false;
    const std::string error = doc.at("error").as_string();
    return error == "overloaded" || error.rfind("draining", 0) == 0;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

SocketTransport::SocketTransport(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

SocketTransport::~SocketTransport() { disconnect(); }

bool SocketTransport::connect() {
  disconnect();
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (socket_path_.empty() ||
      socket_path_.size() >= sizeof address.sun_path) {
    return false;
  }
  std::memcpy(address.sun_path, socket_path_.c_str(),
              socket_path_.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool SocketTransport::send_bytes(const std::string& data) {
  if (fd_ < 0) return false;
  std::size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-send yields EPIPE instead
    // of killing the process.
    const ssize_t sent = ::send(fd_, data.data() + written,
                                data.size() - written, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(sent);
  }
  return true;
}

ClientTransport::ReadStatus SocketTransport::read_some(std::string& out,
                                                       const int timeout_ms) {
  if (fd_ < 0) return ReadStatus::kClosed;
  pollfd poller{};
  poller.fd = fd_;
  poller.events = POLLIN;
  const int ready = ::poll(&poller, 1, std::max(0, timeout_ms));
  if (ready < 0) return errno == EINTR ? ReadStatus::kTimeout
                                       : ReadStatus::kClosed;
  if (ready == 0) return ReadStatus::kTimeout;
  char chunk[4096];
  const ssize_t got = ::read(fd_, chunk, sizeof chunk);
  if (got < 0) return errno == EINTR ? ReadStatus::kTimeout
                                     : ReadStatus::kClosed;
  if (got == 0) return ReadStatus::kClosed;
  out.append(chunk, static_cast<std::size_t>(got));
  return ReadStatus::kData;
}

void SocketTransport::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

QueryClient::QueryClient(ClientOptions options)
    : options_(std::move(options)),
      transport_(std::make_unique<SocketTransport>(options_.socket_path)) {}

QueryClient::QueryClient(ClientOptions options,
                         std::unique_ptr<ClientTransport> transport)
    : options_(std::move(options)), transport_(std::move(transport)) {
  expects(transport_ != nullptr, "client: transport must be non-null");
}

QueryClient::~QueryClient() = default;

ClientResult QueryClient::call_line(const std::string& request_line) {
  obs::count(ClientMetrics::instance().calls);
  ClientResult result;

  long long expected_id = 0;
  try {
    expected_id = request_id_of(request_line);
  } catch (const std::exception& failure) {
    result.error = std::string("client: bad request line: ") + failure.what();
    return result;
  }

  SplitMix64 jitter(options_.jitter_seed ^
                    static_cast<std::uint64_t>(expected_id));
  const std::string frame = request_line + '\n';
  std::string last_failure = "no attempt made";
  bool last_was_timeout = false;

  const int attempts = std::max(1, options_.max_attempts);
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    result.attempts = attempt;
    if (attempt > 1) {
      obs::count(ClientMetrics::instance().retries);
      // Capped exponential backoff with deterministic jitter; loopback
      // differentials set sleep_on_backoff = false and stay in logical
      // time.
      long long delay = options_.backoff_initial_ms;
      for (int i = 1; i < attempt - 1 && delay < options_.backoff_cap_ms; ++i) {
        delay *= 2;
      }
      delay = std::min<long long>(delay, options_.backoff_cap_ms);
      delay += static_cast<long long>(
          jitter.next() % static_cast<std::uint64_t>(delay / 2 + 1));
      if (options_.sleep_on_backoff && delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }

    if (!transport_->connected()) {
      if (!transport_->connect()) {
        last_failure = "connect failed";
        last_was_timeout = false;
        continue;
      }
      if (attempt > 1) {
        ++result.reconnects;
        obs::count(ClientMetrics::instance().reconnects);
      }
    }

    if (!transport_->send_bytes(frame)) {
      last_failure = "send failed (connection broken)";
      last_was_timeout = false;
      transport_->disconnect();
      continue;
    }

    // Read until the deadline, scanning complete lines for the one
    // authoritative response.  Damaged frames (unparseable, wrong id —
    // the server answers unparseable REQUESTS with id 0, so ids >= 1
    // make corruption visible) force a reconnect: queries are pure, so
    // the re-issue is safe by construction.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max(1, options_.request_timeout_ms));
    std::string buffer;
    bool attempt_done = false;
    while (!attempt_done) {
      std::size_t line_start = 0;
      while (true) {
        const std::size_t newline = buffer.find('\n', line_start);
        if (newline == std::string::npos) break;
        const std::string line =
            buffer.substr(line_start, newline - line_start);
        line_start = newline + 1;
        if (line.empty()) continue;
        if (!response_matches(line, expected_id)) {
          obs::count(ClientMetrics::instance().corrupt_frames);
          last_failure = "damaged or foreign response frame";
          last_was_timeout = false;
          transport_->disconnect();
          attempt_done = true;
          break;
        }
        if (retryable_server_error(line)) {
          last_failure = "server shed the request (overloaded/draining)";
          last_was_timeout = false;
          transport_->disconnect();
          attempt_done = true;
          break;
        }
        // Authoritative: parsed, id echoed — byte-exactly the server's
        // intended response (a proper prefix of a JSON object never
        // parses).  Leftover buffered bytes would be corruption debris;
        // drop the connection rather than let them leak into the next
        // call.
        result.ok = true;
        result.response = line;
        if (line_start < buffer.size()) transport_->disconnect();
        return result;
      }
      if (attempt_done) break;
      buffer.erase(0, line_start);

      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        obs::count(ClientMetrics::instance().timeouts);
        last_failure = "deadline exceeded waiting for response";
        last_was_timeout = true;
        transport_->disconnect();
        break;
      }
      const int remaining = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      switch (transport_->read_some(buffer, std::max(1, remaining))) {
        case ClientTransport::ReadStatus::kData: break;
        case ClientTransport::ReadStatus::kTimeout:
          obs::count(ClientMetrics::instance().timeouts);
          last_failure = "deadline exceeded waiting for response";
          last_was_timeout = true;
          transport_->disconnect();
          attempt_done = true;
          break;
        case ClientTransport::ReadStatus::kClosed:
          last_failure = "connection closed before a response";
          last_was_timeout = false;
          transport_->disconnect();
          attempt_done = true;
          break;
      }
    }
  }

  result.ok = false;
  result.timed_out = last_was_timeout;
  result.error = "client: " + std::to_string(result.attempts) +
                 " attempt(s) exhausted; last failure: " + last_failure;
  return result;
}

ClientResult QueryClient::call(const long long id, const CrQuery& query) {
  expects(id >= 1, "client: request ids must be >= 1");
  return call_line(render_request(id, query));
}

std::string render_request(const long long id, const CrQuery& query) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("id", id);
  json.field("op", "cr");
  json.field("n", query.n);
  json.field("f", query.f);
  json.field("beta", query.beta);
  json.field("window_lo", query.window_lo);
  json.field("window_hi", query.window_hi);
  json.field("interior_samples", query.interior_samples);
  json.field("regime", fault_regime_name(query.regime));
  if (query.regime == FaultRegime::kProbabilistic) {
    json.field("fault_p", query.fault_p);
  }
  json.key("crash_times").begin_array();
  for (const Real t : query.crash_times) json.value(t);
  json.end_array();
  json.end_object();
  return out.str();
}

}  // namespace linesearch::svc

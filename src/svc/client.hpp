// svc/client.hpp — the resilient wire client.
//
// Queries are pure (docs/service.md's determinism contract), so a
// retry can never double-apply anything: re-issuing a request on a
// fresh connection is always safe.  QueryClient exploits exactly that —
// per-attempt deadlines, capped exponential backoff with seeded jitter,
// and connection re-establishment — and promises the one property the
// chaos differential pins: it NEVER returns a wrong answer.  Every call
// ends in one of
//   * success: a response line that parsed, echoed the request id, and
//     is therefore byte-exactly the server's intended response (a
//     proper prefix of a JSON object never parses, and injected garbage
//     bytes are rejected by util/jsonio everywhere — see svc/chaos.hpp);
//   * a structured failure: attempts exhausted / deadline exceeded,
//     reported in ClientResult::error — never a corrupted value.
//
// Transports are pluggable: SocketTransport speaks AF_UNIX with
// poll-bounded reads (what tools/client_main and the CI chaos replay
// use); svc/chaos.hpp's ChaosLoopback wires the same client logic
// straight into an in-process QueryServer under logical time (what
// verify::diff_chaos_vs_library and the kChaosWire fuzzer kind use).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "svc/query.hpp"

namespace linesearch::svc {

/// Byte transport under the client.  One connection at a time; the
/// client reconnects by disconnect() + connect().
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  /// Open a fresh connection.  false = connection refused / unavailable.
  virtual bool connect() = 0;
  [[nodiscard]] virtual bool connected() const = 0;

  /// Send all of `data` on the current connection.  false = broken.
  virtual bool send_bytes(const std::string& data) = 0;

  enum class ReadStatus {
    kData,     ///< bytes were appended to `out`
    kTimeout,  ///< nothing arrived within timeout_ms
    kClosed,   ///< peer closed / connection broken
  };
  /// Wait up to timeout_ms for bytes; append them to `out`.
  virtual ReadStatus read_some(std::string& out, int timeout_ms) = 0;

  virtual void disconnect() = 0;
};

/// AF_UNIX transport with poll-bounded connect/read and EPIPE-tolerant
/// (MSG_NOSIGNAL) writes.
class SocketTransport final : public ClientTransport {
 public:
  explicit SocketTransport(std::string socket_path);
  ~SocketTransport() override;

  bool connect() override;
  [[nodiscard]] bool connected() const override { return fd_ >= 0; }
  bool send_bytes(const std::string& data) override;
  ReadStatus read_some(std::string& out, int timeout_ms) override;
  void disconnect() override;

 private:
  std::string socket_path_;
  int fd_ = -1;
};

/// Retry/deadline policy.  Defaults suit a local socket; the chaos
/// differential shrinks the timings to zero-cost logical time.
struct ClientOptions {
  std::string socket_path;        ///< SocketTransport target
  int request_timeout_ms = 2000;  ///< per-attempt response deadline
  int max_attempts = 8;           ///< total attempts per call
  int backoff_initial_ms = 1;     ///< doubles per attempt...
  int backoff_cap_ms = 64;        ///< ...up to this cap
  std::uint64_t jitter_seed = 0x5eed;  ///< SplitMix64 jitter substrate
  /// false: compute backoff deterministically but do not sleep —
  /// loopback differentials run in logical time.
  bool sleep_on_backoff = true;
};

/// Outcome of one call.  `ok` means an AUTHORITATIVE response line was
/// received (it may itself carry {"ok":false} for a query the server
/// rejected — that is the server's genuine answer, not a transport
/// failure).  !ok means the transport never yielded one: `error` says
/// why, `timed_out` flags deadline exhaustion specifically.
struct ClientResult {
  bool ok = false;
  bool timed_out = false;
  std::string response;  ///< exact response line, no trailing newline
  std::string error;
  int attempts = 0;    ///< attempts consumed (>= 1)
  int reconnects = 0;  ///< connections re-established
};

/// The resilient client.  Not thread-safe: one outstanding request per
/// client (lock-step, like every wire consumer in this repo).
class QueryClient {
 public:
  /// Socket transport to options.socket_path.
  explicit QueryClient(ClientOptions options);
  /// Custom transport (chaos loopback, test fakes).
  QueryClient(ClientOptions options, std::unique_ptr<ClientTransport> transport);
  ~QueryClient();

  /// Issue one raw request line (no trailing newline).  The line's "id"
  /// field is the match key; ids >= 1 are required for full corruption
  /// detection (the server answers unparseable requests with id 0, so a
  /// 0-id response to a nonzero-id request is provably a damaged or
  /// foreign frame and is retried).
  [[nodiscard]] ClientResult call_line(const std::string& request_line);

  /// Render and issue a CrQuery (id >= 1 enforced).
  [[nodiscard]] ClientResult call(long long id, const CrQuery& query);

 private:
  ClientOptions options_;
  std::unique_ptr<ClientTransport> transport_;
};

/// Render the wire request line for a query (compact JSON, no trailing
/// newline) — the inverse of svc::parse_request for canonical fields.
[[nodiscard]] std::string render_request(long long id, const CrQuery& query);

}  // namespace linesearch::svc

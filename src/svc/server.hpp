// svc/server.hpp — the always-on CR evaluation service.
//
// Wire format (docs/service.md): newline-delimited JSON over a local
// AF_UNIX socket.  One request per line, one response per line, in
// request order per connection.  Requests name a query:
//   {"id": 7, "op": "cr", "n": 5, "f": 2, "beta": "nan",
//    "window_lo": 1, "window_hi": 64, "interior_samples": 4,
//    "regime": "none", "crash_times": []}
// with every field except "op" optional (CrQuery defaults apply; "id"
// defaults to 0 and is echoed verbatim).  Responses carry ONLY values —
// no timestamps, no cache provenance — so a replayed golden corpus is
// byte-identical regardless of cache state, thread count, or arrival
// order:
//   {"id":7,"ok":true,"feasible":true,"cr":...,"argmax":...,
//    "cr_positive":...,"cr_negative":...,"probes":...,
//    "undetected_probes":...}
// Failures (parse errors, precondition violations, overload rejection)
// respond {"id":...,"ok":false,"error":"..."} and keep the connection
// open; non-finite Reals ride the shared codec strings ("inf"/"nan").
//
// `QueryServer::handle_line` is the whole protocol as a pure-ish
// function (it only touches the QueryService): the in-process round trip
// used by verify::diff_server_vs_library and the golden-fixture tests.
// `serve()` adds the socket machinery: a poll-based accept loop,
// per-connection tasks on util/parallel's global pool, bounded admission
// with backpressure (excess requests get an "overloaded" error response
// rather than unbounded queueing), and graceful drain on stop() — the
// listener closes first, in-flight connections finish their current
// line, then serve() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "svc/query.hpp"

namespace linesearch::svc {

/// Server tuning knobs on top of QueryServiceOptions.
struct QueryServerOptions {
  QueryServiceOptions service;
  /// Admission bound: requests evaluating concurrently across all
  /// connections.  At the bound, new requests are REJECTED with an
  /// "overloaded" error response (backpressure the client can see)
  /// instead of queueing without limit.
  std::size_t max_inflight = 64;
  /// Worker threads the socket server asks the global pool to provide.
  int threads = 4;
  /// Frame bound: a pending request line may not exceed this many bytes
  /// (OOM guard).  Violations get a structured "malformed" error
  /// response, then the connection closes.
  std::size_t max_request_bytes = 1 << 16;
  /// Idle deadline per connection, measured from the last COMPLETE
  /// request line (so a trickling slowloris client cannot reset it by
  /// dribbling bytes).  Expiry gets a structured "timeout" error
  /// response, then the connection closes.  0 disables.
  int idle_timeout_ms = 30000;
  /// Per-response write deadline: a peer that stops reading cannot park
  /// a worker forever.  0 disables.
  int write_timeout_ms = 5000;
  /// Warm-restart snapshot file (svc/snapshot): written atomically when
  /// serve() drains and on request_checkpoint().  Empty disables.
  std::string snapshot_path;
};

/// The service: one QueryService behind a newline-delimited JSON
/// protocol.  handle_line is thread-safe; serve()/stop() manage the
/// socket lifecycle.
class QueryServer {
 public:
  explicit QueryServer(QueryServerOptions options = {});

  /// Process one request line, producing one response line (no trailing
  /// newline — the caller owns framing).  Never throws: every failure
  /// becomes an {"ok":false} response.  Thread-safe.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// Bind `socket_path` (AF_UNIX; an existing stale socket file is
  /// replaced) and serve until stop().  Connections are handled on the
  /// global thread pool; the caller's thread runs the accept loop.
  /// Returns after the drain: listener closed, every accepted
  /// connection finished.  Throws Error on socket setup failure.
  void serve(const std::string& socket_path);

  /// Request a graceful drain of serve() (safe from a signal-triggered
  /// thread or the process signal mask — it only flips an atomic).
  void stop() noexcept { stopping_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stopping() const noexcept {
    return stopping_.load(std::memory_order_relaxed);
  }

  /// Request a live cache checkpoint (SIGUSR1 in tools/serve_main —
  /// async-signal-safe: only flips an atomic).  The accept loop writes
  /// options().snapshot_path at its next tick; a no-op when no snapshot
  /// path is configured.
  void request_checkpoint() noexcept {
    checkpoint_.store(true, std::memory_order_relaxed);
  }

  /// The underlying query service (stats/backends inspection in tests).
  [[nodiscard]] QueryService& service() { return service_; }

  /// Monotonic wire-level counters (also exported as svc.* obs metrics).
  struct Stats {
    std::uint64_t requests = 0;  ///< lines received (including malformed)
    std::uint64_t errors = 0;    ///< {"ok":false} responses
    std::uint64_t rejected = 0;  ///< overload rejections (subset of errors)
    std::uint64_t connections = 0;  ///< sockets accepted
    std::uint64_t frame_rejected = 0;  ///< oversized request lines
    std::uint64_t idle_closed = 0;     ///< idle-deadline connection closes
    std::uint64_t drain_rejected = 0;  ///< requests rejected during drain
    std::uint64_t write_failures = 0;  ///< EPIPE/timeout on response writes
  };
  [[nodiscard]] Stats stats() const;

  const QueryServerOptions& options() const { return options_; }

 private:
  /// One connection: read lines, answer lines, until EOF, stop(), or a
  /// deadline/frame violation.
  void handle_connection(int fd);

  /// Deadline/EPIPE-tolerant response write; false closes the
  /// connection (and counts the failure) — never a signal, never a
  /// parked worker.
  bool write_line(int fd, const std::string& line);

  /// Write options_.snapshot_path if configured; failures are counted
  /// (svc.snapshot_rejected is the LOAD side; save failures throw
  /// inside and are swallowed here — serving must not die for a full
  /// disk).
  void maybe_snapshot() noexcept;

  QueryServerOptions options_;
  QueryService service_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> checkpoint_{false};
  std::atomic<std::size_t> inflight_{0};

  mutable std::mutex stats_mutex_;
  Stats stats_;
};

/// Parse one wire request into (id, query).  Throws PreconditionError on
/// malformed JSON, unknown ops, or invalid query fields — handle_line
/// catches and turns that into an error response; exposed so tests can
/// exercise the codec directly.
struct WireRequest {
  long long id = 0;
  CrQuery query;
};
[[nodiscard]] WireRequest parse_request(const std::string& line);

/// Render the success / error response lines (compact JSON, no trailing
/// newline).  These two functions define the byte format the golden
/// fixtures pin.
[[nodiscard]] std::string render_response(long long id,
                                          const QueryResult& result);
[[nodiscard]] std::string render_error(long long id,
                                       const std::string& message);

/// Best-effort id extraction from a request line: the id field if the
/// line parses as a JSON object, else 0.  Error responses echo this, so
/// a resilient client can match a structured failure to its request —
/// and a 0-id response to a nonzero-id request is provable evidence the
/// request was damaged in flight (svc/client.hpp).
[[nodiscard]] long long peek_request_id(const std::string& line) noexcept;

/// The drain contract's reject half (docs/service.md): one visible
/// "draining" error response per complete line still in `pending` when
/// stop() was observed — nothing is silently dropped.  Returns the
/// response lines in request order; exposed for deterministic tests.
[[nodiscard]] std::vector<std::string> drain_reject_lines(
    const std::string& pending);

}  // namespace linesearch::svc

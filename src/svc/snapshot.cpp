#include "svc/snapshot.hpp"

#include <climits>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/jsonio.hpp"

namespace linesearch::svc {
namespace {

/// Snapshot lifecycle counters (I/O and operator dependent, hence
/// deterministic = false).
struct SnapshotMetrics {
  obs::MetricId saved;
  obs::MetricId restored;
  obs::MetricId rejected;
  obs::MetricId entries_restored;

  static const SnapshotMetrics& instance() {
    static const SnapshotMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::instance();
      SnapshotMetrics m;
      m.saved =
          registry.counter("svc.snapshot_saved", /*deterministic=*/false);
      m.restored =
          registry.counter("svc.snapshot_restored", /*deterministic=*/false);
      m.rejected =
          registry.counter("svc.snapshot_rejected", /*deterministic=*/false);
      m.entries_restored = registry.counter("svc.snapshot_entries_restored",
                                            /*deterministic=*/false);
      return m;
    }();
    return metrics;
  }
};

std::string hex16(const std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = digits[(value >> (4 * i)) & 0xFu];
  }
  return out;
}

std::string render_entry(const QueryService::CacheEntry& entry) {
  std::ostringstream out;
  JsonWriter json(out, /*compact=*/true);
  json.begin_object();
  json.field("key", entry.key);
  json.field("feasible", entry.result.feasible);
  json.field("cr", entry.result.cr);
  json.field("argmax", entry.result.argmax);
  json.field("cr_positive", entry.result.cr_positive);
  json.field("cr_negative", entry.result.cr_negative);
  json.field("probes", entry.result.probes);
  json.field("undetected_probes", entry.result.undetected_probes);
  json.end_object();
  return out.str();
}

QueryService::CacheEntry parse_entry(const std::string& line) {
  const JsonValue doc = parse_json(line);
  expects(doc.is_object(), "snapshot: entry is not an object");
  QueryService::CacheEntry entry;
  entry.key = doc.at("key").as_string();
  entry.result.feasible = doc.at("feasible").as_bool();
  entry.result.cr = doc.at("cr").as_real();
  entry.result.argmax = doc.at("argmax").as_real();
  entry.result.cr_positive = doc.at("cr_positive").as_real();
  entry.result.cr_negative = doc.at("cr_negative").as_real();
  const long long probes = doc.at("probes").as_int();
  const long long undetected = doc.at("undetected_probes").as_int();
  expects(probes >= 0 && probes <= INT_MAX && undetected >= 0 &&
              undetected <= INT_MAX,
          "snapshot: probe counts out of range");
  entry.result.probes = static_cast<int>(probes);
  entry.result.undetected_probes = static_cast<int>(undetected);
  return entry;
}

SnapshotLoadReport reject(const std::string& reason) {
  obs::count(SnapshotMetrics::instance().rejected);
  SnapshotLoadReport report;
  report.error = reason;
  return report;
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char ch : bytes) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string render_snapshot(const QueryService& service) {
  const std::vector<QueryService::CacheEntry> entries =
      service.export_cache();
  std::string payload = kSnapshotMagic;
  payload += '\n';
  payload += "{\"entries\":" + std::to_string(entries.size()) + "}\n";
  for (const QueryService::CacheEntry& entry : entries) {
    payload += render_entry(entry);
    payload += '\n';
  }
  payload += "checksum:" + hex16(fnv1a64(payload)) + '\n';
  return payload;
}

SnapshotWriteReport save_snapshot(const QueryService& service,
                                  const std::string& path) {
  expects(!path.empty(), "snapshot: path must be non-empty");
  const std::string payload = render_snapshot(service);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("snapshot: cannot open " + tmp + " for writing");
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) throw Error("snapshot: write to " + tmp + " failed");
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // snapshot or the new one, never a torn write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("snapshot: rename " + tmp + " -> " + path + " failed");
  }
  obs::count(SnapshotMetrics::instance().saved);
  SnapshotWriteReport report;
  report.entries = service.cached_count();
  report.bytes = payload.size();
  return report;
}

SnapshotLoadReport load_snapshot(QueryService& service,
                                 const std::string& path) noexcept {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return reject("snapshot: cannot open " + path);
    std::ostringstream slurp;
    slurp << in.rdbuf();
    const std::string payload = slurp.str();

    // Split off the trailing checksum line and verify it first: any
    // bit flip in the body is caught before a single record is parsed.
    const std::string tail = "checksum:";
    const std::size_t checksum_at = payload.rfind(tail);
    if (checksum_at == std::string::npos ||
        payload.size() != checksum_at + tail.size() + 17 ||
        payload.back() != '\n') {
      return reject("snapshot: missing or malformed checksum line");
    }
    const std::string body = payload.substr(0, checksum_at);
    const std::string claimed =
        payload.substr(checksum_at + tail.size(), 16);
    if (claimed != hex16(fnv1a64(body))) {
      return reject("snapshot: checksum mismatch (corrupted file)");
    }

    // Version gate, entry count, then every record — all validated
    // before the first import so a rejection leaves the cache cold.
    std::istringstream lines(body);
    std::string line;
    if (!std::getline(lines, line) || line != kSnapshotMagic) {
      return reject("snapshot: version mismatch (want " +
                    std::string(kSnapshotMagic) + ", got '" + line + "')");
    }
    if (!std::getline(lines, line)) {
      return reject("snapshot: missing entry-count line");
    }
    const JsonValue header = parse_json(line);
    const long long declared = header.at("entries").as_int();
    if (declared < 0) return reject("snapshot: negative entry count");

    std::vector<QueryService::CacheEntry> entries;
    entries.reserve(static_cast<std::size_t>(declared));
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      entries.push_back(parse_entry(line));
    }
    if (entries.size() != static_cast<std::size_t>(declared)) {
      return reject("snapshot: entry count mismatch (declared " +
                    std::to_string(declared) + ", found " +
                    std::to_string(entries.size()) + ")");
    }

    SnapshotLoadReport report;
    report.entries = service.import_cache(entries);
    report.ok = true;
    obs::count(SnapshotMetrics::instance().restored);
    obs::count(SnapshotMetrics::instance().entries_restored,
               report.entries);
    return report;
  } catch (const std::exception& failure) {
    return reject(std::string("snapshot: ") + failure.what());
  }
}

}  // namespace linesearch::svc

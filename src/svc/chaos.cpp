#include "svc/chaos.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace linesearch::svc {
namespace {

/// Chaos-layer counters.  Injection totals depend on traffic volume and
/// arrival order, hence deterministic = false.
struct ChaosMetrics {
  obs::MetricId connections;
  obs::MetricId clean_connections;
  obs::MetricId faults_injected;

  static const ChaosMetrics& instance() {
    static const ChaosMetrics metrics = [] {
      obs::Registry& registry = obs::Registry::instance();
      ChaosMetrics m;
      m.connections =
          registry.counter("svc.chaos_connections", /*deterministic=*/false);
      m.clean_connections = registry.counter("svc.chaos_clean_connections",
                                             /*deterministic=*/false);
      m.faults_injected = registry.counter("svc.chaos_faults_injected",
                                           /*deterministic=*/false);
      return m;
    }();
    return metrics;
  }
};

/// Stream-private seed: decorrelates (connection, direction) pairs while
/// staying a pure function of the three inputs.
std::uint64_t stream_seed(const std::uint64_t seed,
                          const std::uint64_t connection,
                          const int direction) {
  std::uint64_t mixed = seed;
  mixed ^= 0x9E3779B97F4A7C15ULL * (connection + 1);
  mixed ^= 0xBF58476D1CE4E5B9ULL * static_cast<std::uint64_t>(direction + 1);
  return mixed;
}

}  // namespace

const char* wire_fault_kind_name(const WireFaultKind kind) {
  switch (kind) {
    case WireFaultKind::kSplit: return "split";
    case WireFaultKind::kHold: return "hold";
    case WireFaultKind::kGarbage: return "garbage";
    case WireFaultKind::kStall: return "stall";
    case WireFaultKind::kDisconnect: return "disconnect";
  }
  return "unknown";
}

bool connection_is_clean(const ChaosConfig& config,
                         const std::uint64_t connection) {
  if (config.seed == 0 || config.fault_cap <= 0) return true;
  if (config.clean_every <= 1) return false;
  const auto every = static_cast<std::uint64_t>(config.clean_every);
  return connection % every == every - 1;
}

std::vector<WireFault> fault_script(const ChaosConfig& config,
                                    const std::uint64_t connection,
                                    const int direction) {
  expects(direction == 0 || direction == 1,
          "chaos: direction must be 0 (to server) or 1 (to client)");
  std::vector<WireFault> script;
  if (connection_is_clean(config, connection)) return script;

  SplitMix64 rng(stream_seed(config.seed, connection, direction));
  const int count = rng.uniform_int(1, std::max(1, config.fault_cap));
  script.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    WireFault fault;
    const std::uint64_t window = std::max<std::uint64_t>(1, config.script_window);
    fault.at_byte = rng.next() % window;
    switch (rng.uniform_int(0, 4)) {
      case 0: fault.kind = WireFaultKind::kSplit; break;
      case 1:
        fault.kind = WireFaultKind::kHold;
        fault.param = static_cast<std::uint32_t>(rng.uniform_int(8, 96));
        break;
      case 2:
        fault.kind = WireFaultKind::kGarbage;
        fault.param = static_cast<std::uint32_t>(rng.uniform_int(
            1, static_cast<int>(std::max<std::uint32_t>(1, config.max_garbage))));
        break;
      case 3:
        fault.kind = WireFaultKind::kStall;
        fault.param = static_cast<std::uint32_t>(rng.uniform_int(
            1, static_cast<int>(std::max<std::uint32_t>(1, config.max_stall_ms))));
        break;
      default: fault.kind = WireFaultKind::kDisconnect; break;
    }
    script.push_back(fault);
  }
  std::stable_sort(script.begin(), script.end(),
                   [](const WireFault& a, const WireFault& b) {
                     return a.at_byte < b.at_byte;
                   });
  return script;
}

std::string describe_script(const std::vector<WireFault>& script) {
  if (script.empty()) return "clean";
  std::string out;
  for (const WireFault& fault : script) {
    if (!out.empty()) out += ',';
    out += wire_fault_kind_name(fault.kind);
    out += '@';
    out += std::to_string(fault.at_byte);
    if (fault.kind == WireFaultKind::kHold ||
        fault.kind == WireFaultKind::kGarbage) {
      out += 'x';
      out += std::to_string(fault.param);
    } else if (fault.kind == WireFaultKind::kStall) {
      out += 'x';
      out += std::to_string(fault.param);
      out += "ms";
    }
  }
  return out;
}

std::string garbage_bytes(const ChaosConfig& config,
                          const std::uint64_t connection, const int direction,
                          const std::uint64_t at_byte,
                          const std::uint32_t count) {
  // Alphabet {0x01..0x07, '\n'} only: util/jsonio rejects raw control
  // characters in every lexical position, so injected bytes can break a
  // frame but never silently alter a parsed value (svc/chaos.hpp).
  SplitMix64 rng(stream_seed(config.seed, connection, direction) ^
                 (0x94D049BB133111EBULL * (at_byte + 1)));
  std::string out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const int pick = rng.uniform_int(0, 7);
    out += pick == 7 ? '\n' : static_cast<char>(pick + 1);
  }
  return out;
}

ChaosStream::ChaosStream(const ChaosConfig& config,
                         const std::uint64_t connection, const int direction)
    : config_(config),
      connection_(connection),
      direction_(direction),
      script_(fault_script(config, connection, direction)) {}

void ChaosStream::emit_pending(std::vector<ChaosEvent>& events) {
  if (pending_.empty()) return;
  ChaosEvent event;
  event.kind = ChaosEvent::Kind::kDeliver;
  event.bytes = std::move(pending_);
  pending_.clear();
  events.push_back(std::move(event));
}

std::vector<ChaosEvent> ChaosStream::feed(const std::string_view data) {
  std::vector<ChaosEvent> events;
  if (disconnected_) return events;

  const auto fire_due = [&] {
    while (!disconnected_ && next_fault_ < script_.size() &&
           script_[next_fault_].at_byte <= offset_) {
      const WireFault& fault = script_[next_fault_++];
      obs::count(ChaosMetrics::instance().faults_injected);
      switch (fault.kind) {
        case WireFaultKind::kSplit:
          // Forced delivery boundary: the receiver sees a partial write.
          emit_pending(events);
          break;
        case WireFaultKind::kHold:
          // Merged frames / delayed ACK: withhold delivery until
          // `param` more input bytes have been consumed.
          hold_until_ = std::max(hold_until_, offset_ + fault.param);
          break;
        case WireFaultKind::kGarbage:
          pending_ += garbage_bytes(config_, connection_, direction_,
                                    fault.at_byte, fault.param);
          break;
        case WireFaultKind::kStall: {
          emit_pending(events);
          ChaosEvent event;
          event.kind = ChaosEvent::Kind::kStall;
          event.stall_ms = fault.param;
          events.push_back(std::move(event));
          break;
        }
        case WireFaultKind::kDisconnect: {
          // Deliver what made it out, then drop the connection: the
          // receiver sees a truncated frame and EOF.
          emit_pending(events);
          ChaosEvent event;
          event.kind = ChaosEvent::Kind::kDisconnect;
          events.push_back(std::move(event));
          disconnected_ = true;
          break;
        }
      }
    }
  };

  fire_due();
  std::size_t pos = 0;
  while (pos < data.size() && !disconnected_) {
    std::uint64_t take = data.size() - pos;
    if (next_fault_ < script_.size()) {
      take = std::min<std::uint64_t>(take,
                                     script_[next_fault_].at_byte - offset_);
    }
    pending_.append(data.substr(pos, static_cast<std::size_t>(take)));
    pos += static_cast<std::size_t>(take);
    offset_ += take;
    fire_due();
  }

  if (!disconnected_ && offset_ >= hold_until_) emit_pending(events);
  return events;
}

std::vector<ChaosEvent> ChaosStream::flush() {
  std::vector<ChaosEvent> events;
  if (!disconnected_) emit_pending(events);
  return events;
}

ChaosLoopback::ChaosLoopback(QueryServer& server, const ChaosConfig& config)
    : server_(&server), config_(config) {}

bool ChaosLoopback::connect() {
  const std::uint64_t index = connections_++;
  obs::count(ChaosMetrics::instance().connections);
  if (connection_is_clean(config_, index)) {
    obs::count(ChaosMetrics::instance().clean_connections);
  }
  to_server_ = std::make_unique<ChaosStream>(config_, index, 0);
  to_client_ = std::make_unique<ChaosStream>(config_, index, 1);
  server_buffer_.clear();
  client_inbox_.clear();
  inbox_next_ = 0;
  connected_ = true;
  return true;
}

void ChaosLoopback::route_to_client(const std::string_view bytes) {
  for (ChaosEvent& event : to_client_->feed(bytes)) {
    client_inbox_.push_back(std::move(event));
  }
}

bool ChaosLoopback::send_bytes(const std::string& data) {
  if (!connected_) return false;
  for (const ChaosEvent& event : to_server_->feed(data)) {
    switch (event.kind) {
      case ChaosEvent::Kind::kDeliver: {
        server_buffer_ += event.bytes;
        std::size_t line_start = 0;
        while (true) {
          const std::size_t newline = server_buffer_.find('\n', line_start);
          if (newline == std::string::npos) break;
          const std::string line =
              server_buffer_.substr(line_start, newline - line_start);
          line_start = newline + 1;
          if (line.empty()) continue;
          route_to_client(server_->handle_line(line) + '\n');
        }
        server_buffer_.erase(0, line_start);
        break;
      }
      case ChaosEvent::Kind::kStall: {
        // Request-path stall: in logical time the client's deadline
        // fires before anything queued behind the stall arrives.
        ChaosEvent stalled;
        stalled.kind = ChaosEvent::Kind::kStall;
        stalled.stall_ms = event.stall_ms;
        client_inbox_.push_back(std::move(stalled));
        break;
      }
      case ChaosEvent::Kind::kDisconnect: {
        ChaosEvent dropped;
        dropped.kind = ChaosEvent::Kind::kDisconnect;
        client_inbox_.push_back(std::move(dropped));
        break;
      }
    }
  }
  return true;
}

ClientTransport::ReadStatus ChaosLoopback::read_some(std::string& out,
                                                     int /*timeout_ms*/) {
  if (!connected_) return ReadStatus::kClosed;
  while (inbox_next_ < client_inbox_.size()) {
    const ChaosEvent& event = client_inbox_[inbox_next_++];
    switch (event.kind) {
      case ChaosEvent::Kind::kDeliver:
        if (event.bytes.empty()) continue;
        out += event.bytes;
        return ReadStatus::kData;
      case ChaosEvent::Kind::kStall:
        // The stall outlives the per-request deadline: surface a
        // timeout without sleeping.
        return ReadStatus::kTimeout;
      case ChaosEvent::Kind::kDisconnect:
        connected_ = false;
        return ReadStatus::kClosed;
    }
  }
  // Nothing queued and nothing more will arrive without another send:
  // the response (or its tail) never made it — the deadline fires.
  return ReadStatus::kTimeout;
}

void ChaosLoopback::disconnect() { connected_ = false; }

}  // namespace linesearch::svc

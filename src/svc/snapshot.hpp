// svc/snapshot.hpp — crash-safe warm restarts for the query service.
//
// A restarting server normally pays the full cold-cache cost for its
// hot set.  A snapshot carries the result LRU across the restart: the
// server writes one atomically on graceful drain and on a SIGUSR1
// checkpoint (tools/serve_main --snapshot), and restores it on startup
// — answering hot-set queries warm from the first request (the
// `svc_restart` BENCH_perf workload measures the round trip).
//
// Format (text, one record per line):
//   linesearch-svc-snapshot/1
//   {"entries":N}
//   {"key":"...","feasible":...,"cr":...,...}     x N
//   checksum:<16 hex digits>
// The checksum is FNV-1a 64 over every byte before the checksum line.
// Reals ride util/jsonio's lossless codec ("inf"/"nan" strings), so a
// round-tripped QueryResult is value-identical — the snapshot can never
// change an answered bit, only skip recomputation.
//
// Safety properties:
//   * atomic replace — the snapshot is written to `path + ".tmp"` and
//     rename(2)d over `path`; a crash mid-write leaves the previous
//     snapshot intact;
//   * fail-closed restore — version mismatch, checksum mismatch,
//     truncation, or a malformed record rejects the WHOLE snapshot
//     (svc.snapshot_rejected) and the service stays exactly as it was:
//     a cold start, never a half-warm or corrupted cache.
#pragma once

#include <cstdint>
#include <string>

#include "svc/query.hpp"

namespace linesearch::svc {

/// Version line a loadable snapshot must open with.
inline constexpr const char* kSnapshotMagic = "linesearch-svc-snapshot/1";

/// FNV-1a 64 over a byte string (the snapshot's integrity check; also
/// exposed for tests that corrupt snapshots on purpose).
[[nodiscard]] std::uint64_t fnv1a64(const std::string& bytes);

/// Serialize the service's result cache (QueryService::export_cache) in
/// the format above — pure of any I/O, for tests and the writer.
[[nodiscard]] std::string render_snapshot(const QueryService& service);

struct SnapshotWriteReport {
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Atomically write `path` (via `path + ".tmp"` + rename).  Throws
/// Error on I/O failure; increments svc.snapshot_saved on success.
SnapshotWriteReport save_snapshot(const QueryService& service,
                                  const std::string& path);

struct SnapshotLoadReport {
  bool ok = false;           ///< entries imported into the service
  std::size_t entries = 0;   ///< count imported when ok
  std::string error;         ///< rejection reason when !ok
};

/// Validate and import a snapshot.  Never throws: every failure mode
/// (missing file, version mismatch, checksum mismatch, malformed
/// record) returns ok = false with the reason, increments
/// svc.snapshot_rejected, and leaves `service` untouched.  On success
/// increments svc.snapshot_restored.
SnapshotLoadReport load_snapshot(QueryService& service,
                                 const std::string& path) noexcept;

}  // namespace linesearch::svc

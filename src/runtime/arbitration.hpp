// runtime/arbitration.hpp — quorum claim arbitration for Byzantine teams.
//
// The PR 5 supervisor trusts silence: a robot that stops heartbeating is
// declared crashed.  A Byzantine robot (sim/faults ByzantineFaults) is
// worse — it keeps moving and heartbeating but LIES, fabricating target
// claims and suppressing real finds.  So claims are QUEUED, never
// trusted:
//
//   * every claim lands in a ledger keyed by the claimed position;
//   * a position is CONFIRMED at the instant a quorum of f+1 DISTINCT
//     robots has claimed it — at most f can lie, so f+1 matching claims
//     contain at least one honest witness.  A robot whose crash was
//     declared at or before that instant does not count toward the
//     quorum (a declaration landing exactly on the corroboration
//     deadline invalidates the corroboration — the boundary the
//     regression test in tests/runtime/arbitration_test pins; counting
//     it was the latent supervisor edge this module fixed);
//   * a pending position is REFUTED once f+1 distinct robots have
//     visited it WITHOUT claiming it — survivors dispatched past a
//     claimed position report "nothing there", and f+1 such reports
//     again contain an honest one.
//
// Everything is pure arithmetic over the fleet's actual motion plus the
// claim list: deterministic, replayable, and value-identical to the
// analytic order-statistic computation (byzantine_quorum_time) — the
// identity diff_byzantine races on every fuzz instance.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "runtime/supervisor.hpp"
#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// One queued target claim.
struct Claim {
  RobotId robot = 0;
  Real time = 0;      ///< announcement instant
  Real position = 0;  ///< claimed target position
};

/// Arbitration parameters.
struct ArbitrationConfig {
  /// Distinct corroborating robots required to confirm a position; 0
  /// derives the canonical f+1 from the fault budget.
  int quorum = 0;
};

/// The arbiter's verdict on one distinct claimed position.
struct ClaimVerdict {
  Real position = 0;
  int supporters = 0;             ///< distinct robots that claimed it
  Real confirm_time = kInfinity;  ///< quorum instant; kInfinity = never
  Real refute_time = kInfinity;   ///< quorum-th non-claimant visit; ditto

  [[nodiscard]] bool confirmed() const noexcept {
    return std::isfinite(confirm_time);
  }
  [[nodiscard]] bool refuted() const noexcept {
    return !confirmed() && std::isfinite(refute_time);
  }
};

/// Outcome of arbitrating one claim stream.
struct ArbitrationReport {
  std::vector<ClaimVerdict> verdicts;  ///< per position, first-claim order
  int claims_made = 0;
  int claims_refuted = 0;              ///< refuted verdicts
  bool quorum_reached = false;
  Real confirm_time = kInfinity;       ///< earliest confirmation
  Real confirmed_position = kNaN;      ///< its position (kNaN when none)
};

/// Arbitrate a claim stream against the fleet's actual motion.
/// `crash_declared_at[i]` is the supervisor's declaration instant for
/// robot i (kInfinity = never declared; empty = nobody crashes).
[[nodiscard]] ArbitrationReport arbitrate(
    const Fleet& fleet, int f, std::vector<Claim> claims,
    const std::vector<Real>& crash_declared_at = {},
    const ArbitrationConfig& config = {});

/// The claim stream a target at `target` produces under `plan`: honest
/// robots claim truthfully at their first visit of the target; liars
/// suppress that find and announce their fabricated schedule instead.
[[nodiscard]] std::vector<Claim> collect_claims(const Fleet& fleet,
                                                Real target,
                                                const LiePlan& plan);

/// Everything one supervised Byzantine run produced.
struct ByzantineRunReport {
  Real target = 0;
  ArbitrationReport arbitration;
  SupervisorReport supervisor;  ///< crash side (empty when none crash)

  /// The team declared the target found — at the TRUE position.  False
  /// claims reaching quorum would make quorum_reached true with a
  /// different confirmed_position; the tests demand that never happens.
  [[nodiscard]] bool found() const noexcept {
    return arbitration.quorum_reached &&
           arbitration.confirmed_position == target;
  }
};

/// The full Byzantine pipeline for one A(n, f) team: execute under the
/// supervisor's crash protocol (crash_times[i] = kInfinity for healthy
/// robots; empty = all healthy), collect truthful claims from honest
/// robots and fabrications from the plan, and arbitrate with crash
/// declarations excluded from quorum.
[[nodiscard]] ByzantineRunReport run_byzantine(
    int n, int f, Real extent, Real target, const LiePlan& plan,
    const std::vector<Real>& crash_times = {},
    const SupervisorConfig& supervisor = {},
    const ArbitrationConfig& arbitration = {});

}  // namespace linesearch

#include "runtime/controller.hpp"

#include <cmath>
#include <sstream>

#include "core/competitive.hpp"
#include "obs/metrics.hpp"
#include "sim/zigzag.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

ZigZagController::ZigZagController(const Real beta, const Real first_turn,
                                   const Real extent)
    : beta_(beta),
      kappa_(expansion_factor(beta)),
      first_turn_(first_turn),
      extent_(extent) {
  expects(first_turn != 0, "ZigZagController: first_turn must be non-zero");
  expects(extent > std::fabs(first_turn),
          "ZigZagController: extent must exceed the first turn");
}

std::string ZigZagController::name() const {
  std::ostringstream out;
  out << "zigzag(beta=" << fixed(beta_, 3) << ", s=" << fixed(first_turn_, 3)
      << ")";
  return out.str();
}

Directive ZigZagController::next(const Real /*time*/, const Real position) {
  // ProportionalController::next delegates here, so this single counter
  // covers both without double counting.
  LS_OBS_COUNT("runtime.controller.directives", 1);
  if (!launched_) {
    launched_ = true;
    // Meet the cone boundary at the first turn: the required speed from
    // the origin is |s| / (beta*|s|) = 1/beta.  Any launch TIME is
    // accepted (a delayed activation or a supervisor re-plan starts the
    // same ladder shifted by the launch time), but the ladder geometry
    // requires the origin.
    expects(position == 0,
            "zigzag controller expects to launch at the origin");
    next_turn_ = -first_turn_ * kappa_;
    return Directive::move_to(first_turn_, 1 / beta_);
  }

  // Track coverage from the leg that just completed.
  if (position > 0) {
    reach_positive_ = std::max(reach_positive_, position);
  } else {
    reach_negative_ = std::max(reach_negative_, -position);
  }

  if (final_leg_done_) return Directive::stop();
  if (!coverage_met_ && reach_positive_ >= extent_ &&
      reach_negative_ >= extent_) {
    // Coverage achieved: one extra leg so the last in-coverage turn is
    // interior (matching extend_zigzag's contract), then stop.
    coverage_met_ = true;
    final_leg_done_ = true;
  }

  const Real target = next_turn_;
  next_turn_ = -target * kappa_;
  return Directive::move_to(target);
}

ProportionalController::ProportionalController(const int n, const int f,
                                               const int robot,
                                               const Real extent)
    : robot_(robot),
      zigzag_(optimal_beta(n, f),
              ProportionalSchedule(n, optimal_beta(n, f)).initial_turn(robot),
              extent) {}

std::string ProportionalController::name() const {
  std::ostringstream out;
  out << "A-robot-" << robot_ << "[" << zigzag_.name() << "]";
  return out.str();
}

Directive ProportionalController::next(const Real time,
                                       const Real position) {
  return zigzag_.next(time, position);
}


ScriptedController::ScriptedController(Trajectory trajectory)
    : trajectory_(std::move(trajectory)) {}

Directive ScriptedController::next(const Real time, const Real position) {
  LS_OBS_COUNT("runtime.controller.directives", 1);
  if (next_waypoint_ >= trajectory_.waypoints().size()) {
    return Directive::stop();
  }
  const Waypoint& target = trajectory_.waypoints()[next_waypoint_];
  ++next_waypoint_;
  if (target.position == position) {
    return Directive::wait_until(target.time);
  }
  const Real speed =
      std::fabs(target.position - position) / (target.time - time);
  return Directive::move_to(target.position, speed);
}

}  // namespace linesearch

// runtime/controller.hpp — robots as online programs.
//
// Everywhere else in the library an algorithm is a precomputed
// trajectory.  Real robots run PROGRAMS: at each decision point the
// controller sees its own clock and position and emits the next leg.
// The runtime (runtime/world.hpp) drives controllers, enforces the
// kinematic contract (speed <= 1, time advances), and materializes the
// very same Trajectory objects the analytical pipeline consumes — tests
// verify that the controller-driven A(n, f) reproduces the schedule
// builder's fleet waypoint for waypoint.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/proportional.hpp"
#include "sim/trajectory.hpp"
#include "util/real.hpp"

namespace linesearch {

/// One leg requested by a controller.
struct Directive {
  enum class Kind {
    kMoveTo,     ///< move to `value` at `speed`
    kWaitUntil,  ///< stay put until absolute time `value`
    kStop,       ///< done; the robot halts forever
  };

  Kind kind = Kind::kStop;
  Real value = 0;
  Real speed = 1;  ///< for kMoveTo; must be in (0, 1]

  [[nodiscard]] static Directive move_to(Real position, Real speed = 1) {
    return {Kind::kMoveTo, position, speed};
  }
  [[nodiscard]] static Directive wait_until(Real time) {
    return {Kind::kWaitUntil, time, 0};
  }
  [[nodiscard]] static Directive stop() { return {Kind::kStop, 0, 0}; }
};

/// An online robot program.  `next` is called whenever the robot is idle
/// (initially at (0, origin), afterwards at the end of each completed
/// leg) and must return the next directive.
class Controller {
 public:
  virtual ~Controller() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual Directive next(Real time, Real position) = 0;
};

using ControllerPtr = std::unique_ptr<Controller>;

/// Cone zig-zag as a program: head to `first_turn` timed to meet the
/// cone boundary, then reverse with expansion factor kappa until both
/// half-lines are covered past `extent`, then stop.
class ZigZagController final : public Controller {
 public:
  ZigZagController(Real beta, Real first_turn, Real extent);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Directive next(Real time, Real position) override;

 private:
  Real beta_;
  Real kappa_;
  Real first_turn_;
  Real extent_;
  Real next_turn_ = 0;
  Real reach_positive_ = 0;
  Real reach_negative_ = 0;
  bool launched_ = false;
  bool coverage_met_ = false;
  bool final_leg_done_ = false;
};

/// Robot i of the proportional schedule algorithm A(n, f), as a program
/// (Definition 4's start leg at speed 1/beta, then the zig-zag).
class ProportionalController final : public Controller {
 public:
  ProportionalController(int n, int f, int robot, Real extent);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Directive next(Real time, Real position) override;

 private:
  int robot_;
  ZigZagController zigzag_;
};

/// Replays a precomputed trajectory leg by leg (adapter for comparing
/// offline plans with online execution under one runtime).
class ScriptedController final : public Controller {
 public:
  explicit ScriptedController(Trajectory trajectory);

  [[nodiscard]] std::string name() const override { return "scripted"; }
  [[nodiscard]] Directive next(Real time, Real position) override;

 private:
  Trajectory trajectory_;
  std::size_t next_waypoint_ = 1;
};

}  // namespace linesearch

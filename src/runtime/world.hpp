// runtime/world.hpp — the execution environment for controllers.
//
// The world drives each controller from (t=0, x=0), enforcing the
// kinematic contract:
//   * kMoveTo legs must have speed in (0, 1] (the paper's robots are
//     unit-speed; slower is allowed, e.g. Definition-4 prefixes),
//   * kWaitUntil may not travel back in time,
//   * a controller must stop (or exhaust the time limit) within a
//     bounded number of directives (runaway protection).
// The outcome is an ordinary Fleet, so everything downstream — exact
// detection queries, the evaluators, the adversary, the renderer —
// applies to online-executed programs unchanged.
//
// Execution can be perturbed by a FaultSpec / FaultInjector
// (runtime/injector.hpp): crash-stop, delayed activation, speed caps and
// directive drops, all deterministic and recorded in the report.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/controller.hpp"
#include "runtime/injector.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Execution limits.
struct WorldConfig {
  Real time_limit = 1e9L;     ///< truncate any leg that would pass this
  int max_directives = 100000;  ///< per robot; exceeded => runaway error
};

/// Per-robot execution report.  The fault fields make an injected run
/// fully reconstructable: which fault, when it fired, which leg it cut.
struct ExecutionReport {
  int directives = 0;
  bool stopped = false;        ///< controller emitted kStop
  bool time_limited = false;   ///< truncated at the time limit
  FaultKind fault = FaultKind::kNone;  ///< injected fault kind
  Real fault_time = kInfinity; ///< crash / activation time (those kinds)
  bool crashed = false;        ///< halted forever by kCrashStop
  /// 0-based index of the directive the crash cut mid-flight; -1 when
  /// the crash landed exactly on a decision point (no leg truncated).
  int truncated_leg = -1;
  int dropped_directives = 0;  ///< kMoveTo legs lost to kDirectiveDrop
};

/// Drive every controller to completion and materialize the fleet.
class World {
 public:
  explicit World(WorldConfig config = {});

  /// Execute one controller; returns its trajectory.
  [[nodiscard]] Trajectory execute(Controller& controller,
                                   ExecutionReport* report = nullptr) const;

  /// Execute one controller under an injected fault.
  [[nodiscard]] Trajectory execute(Controller& controller,
                                   const FaultSpec& fault,
                                   ExecutionReport* report = nullptr) const;

  /// Execute a team of controllers into a Fleet (reports optional,
  /// resized to match).
  [[nodiscard]] Fleet execute_team(
      const std::vector<ControllerPtr>& controllers,
      std::vector<ExecutionReport>* reports = nullptr) const;

  /// Execute a team under a fault plan (robot i gets injector.spec(i)).
  [[nodiscard]] Fleet execute_team(
      const std::vector<ControllerPtr>& controllers,
      const FaultInjector& injector,
      std::vector<ExecutionReport>* reports = nullptr) const;

 private:
  WorldConfig config_;
};

/// Convenience: the controller-driven A(n, f) fleet (must equal the
/// schedule builder's fleet exactly; tests assert it).
[[nodiscard]] Fleet run_proportional_controllers(int n, int f, Real extent,
                                                 const WorldConfig& config = {});

}  // namespace linesearch

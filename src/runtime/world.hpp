// runtime/world.hpp — the execution environment for controllers.
//
// The world drives each controller from (t=0, x=0), enforcing the
// kinematic contract:
//   * kMoveTo legs must have speed in (0, 1] (the paper's robots are
//     unit-speed; slower is allowed, e.g. Definition-4 prefixes),
//   * kWaitUntil may not travel back in time,
//   * a controller must stop (or exhaust the time limit) within a
//     bounded number of directives (runaway protection).
// The outcome is an ordinary Fleet, so everything downstream — exact
// detection queries, the evaluators, the adversary, the renderer —
// applies to online-executed programs unchanged.
#pragma once

#include <vector>

#include "runtime/controller.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Execution limits.
struct WorldConfig {
  Real time_limit = 1e9L;     ///< truncate any leg that would pass this
  int max_directives = 100000;  ///< per robot; exceeded => runaway error
};

/// Per-robot execution report.
struct ExecutionReport {
  int directives = 0;
  bool stopped = false;        ///< controller emitted kStop
  bool time_limited = false;   ///< truncated at the time limit
};

/// Drive every controller to completion and materialize the fleet.
class World {
 public:
  explicit World(WorldConfig config = {});

  /// Execute one controller; returns its trajectory.
  [[nodiscard]] Trajectory execute(Controller& controller,
                                   ExecutionReport* report = nullptr) const;

  /// Execute a team of controllers into a Fleet (reports optional,
  /// resized to match).
  [[nodiscard]] Fleet execute_team(
      const std::vector<ControllerPtr>& controllers,
      std::vector<ExecutionReport>* reports = nullptr) const;

 private:
  WorldConfig config_;
};

/// Convenience: the controller-driven A(n, f) fleet (must equal the
/// schedule builder's fleet exactly; tests assert it).
[[nodiscard]] Fleet run_proportional_controllers(int n, int f, Real extent,
                                                 const WorldConfig& config = {});

}  // namespace linesearch

#include "runtime/injector.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace linesearch {

const char* fault_kind_name(const FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCrashStop: return "crash-stop";
    case FaultKind::kDelayedActivation: return "delayed-activation";
    case FaultKind::kSpeedCap: return "speed-cap";
    case FaultKind::kDirectiveDrop: return "directive-drop";
  }
  return "unknown";
}

FaultSpec FaultSpec::crash_at(const Real t) {
  expects(t >= 0 && std::isfinite(t), "crash_at: time must be finite >= 0");
  FaultSpec spec;
  spec.kind = FaultKind::kCrashStop;
  spec.time = t;
  return spec;
}

FaultSpec FaultSpec::delayed_until(const Real t) {
  expects(t >= 0 && std::isfinite(t),
          "delayed_until: time must be finite >= 0");
  FaultSpec spec;
  spec.kind = FaultKind::kDelayedActivation;
  spec.time = t;
  return spec;
}

FaultSpec FaultSpec::speed_capped(const Real cap) {
  expects(cap > 0 && cap <= 1, "speed_capped: cap must be in (0, 1]");
  FaultSpec spec;
  spec.kind = FaultKind::kSpeedCap;
  spec.speed_cap = cap;
  return spec;
}

FaultSpec FaultSpec::dropping_every(const int period) {
  expects(period >= 1, "dropping_every: period must be >= 1");
  FaultSpec spec;
  spec.kind = FaultKind::kDirectiveDrop;
  spec.drop_period = period;
  return spec;
}

FaultInjector::FaultInjector(std::vector<FaultSpec> plan)
    : plan_(std::move(plan)) {}

FaultInjector FaultInjector::random(const std::uint64_t seed,
                                    const std::size_t robots,
                                    const RandomConfig& config) {
  expects(config.fault_probability >= 0 && config.fault_probability <= 1,
          "injector: fault probability must be in [0, 1]");
  expects(config.min_time > 0 && config.horizon > config.min_time,
          "injector: need 0 < min_time < horizon");
  SplitMix64 rng(seed);
  std::vector<FaultSpec> plan;
  plan.reserve(robots);
  for (std::size_t robot = 0; robot < robots; ++robot) {
    // Fixed draw order per robot keeps the stream aligned regardless of
    // which branch a robot takes (one chance + one kind + params).
    if (!rng.chance(config.fault_probability)) {
      plan.push_back(FaultSpec::none());
      continue;
    }
    const int kind = config.crashes_only ? 0 : rng.uniform_int(0, 3);
    switch (kind) {
      case 0:
        plan.push_back(FaultSpec::crash_at(
            rng.uniform(config.min_time, config.horizon)));
        break;
      case 1:
        plan.push_back(FaultSpec::delayed_until(
            rng.uniform(config.min_time, config.horizon)));
        break;
      case 2:
        plan.push_back(
            FaultSpec::speed_capped(rng.uniform(0.25L, 1.0L)));
        break;
      default:
        plan.push_back(FaultSpec::dropping_every(rng.uniform_int(2, 5)));
        break;
    }
  }
  return FaultInjector(std::move(plan));
}

const FaultSpec& FaultInjector::spec(const std::size_t robot) const noexcept {
  static const FaultSpec kHealthy;
  return robot < plan_.size() ? plan_[robot] : kHealthy;
}

bool FaultInjector::any_faults() const noexcept {
  for (const FaultSpec& spec : plan_) {
    if (spec.kind != FaultKind::kNone) return true;
  }
  return false;
}

std::vector<Real> FaultInjector::crash_times(const std::size_t robots) const {
  std::vector<Real> times(robots, kInfinity);
  for (std::size_t robot = 0; robot < robots && robot < plan_.size();
       ++robot) {
    if (plan_[robot].kind == FaultKind::kCrashStop) {
      times[robot] = plan_[robot].time;
    }
  }
  return times;
}

}  // namespace linesearch

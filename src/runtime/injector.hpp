// runtime/injector.hpp — deterministic fault injection for World runs.
//
// The world normally honours every directive.  Real robots crash, start
// late, slow down, and lose messages — the fault models the related
// work studies beyond the paper's sensor-blind robots (Byzantine search,
// arXiv:1611.08209; near-majority faulty evacuation).  A FaultInjector
// assigns each robot one FaultSpec and World::execute applies it while
// driving the controller:
//
//   kCrashStop          halt forever at time t, truncating the active
//                       leg with the dense-schedule interpolation
//                       arithmetic, so an injected run is value_identical
//                       to truncate_at_crashes() of the un-injected run
//                       (the verify crash differential pins this);
//   kDelayedActivation  held at the origin until time t; the controller
//                       is simply launched late (its first `next` sees
//                       time == t);
//   kSpeedCap           every kMoveTo speed is clamped to `speed_cap`;
//   kDirectiveDrop      every `drop_period`-th kMoveTo is lost in
//                       transit: the robot waits in place for the leg's
//                       would-be duration while the controller believes
//                       the move happened.
//
// Everything is deterministic: explicit plans are just data, and
// FaultInjector::random derives per-robot specs from a SplitMix64 seed —
// same seed, same faults, on every platform and thread count.  The
// extended ExecutionReport (fault kind, injection time, truncated leg,
// dropped count) makes every injected run reconstructable after the
// fact.  Obs counters: `runtime.faults_injected` once per faulted robot
// executed, `runtime.crash_truncations` once per crash that actually cut
// a run short.
#pragma once

#include <cstdint>
#include <vector>

#include "util/real.hpp"

namespace linesearch {

/// What kind of fault a robot carries (kNone = healthy).
enum class FaultKind : std::uint8_t {
  kNone,
  kCrashStop,
  kDelayedActivation,
  kSpeedCap,
  kDirectiveDrop,
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// One robot's fault, fully describing how its execution is perturbed.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// kCrashStop: halt time.  kDelayedActivation: release time.
  Real time = kInfinity;
  /// kSpeedCap: clamp every kMoveTo speed to this (in (0, 1]).
  Real speed_cap = 1;
  /// kDirectiveDrop: every `drop_period`-th move directive is dropped
  /// (1 = every move, 2 = every second move, ...).
  int drop_period = 0;

  [[nodiscard]] static FaultSpec none() { return {}; }
  [[nodiscard]] static FaultSpec crash_at(Real t);
  [[nodiscard]] static FaultSpec delayed_until(Real t);
  [[nodiscard]] static FaultSpec speed_capped(Real cap);
  [[nodiscard]] static FaultSpec dropping_every(int period);
};

/// Parameters of FaultInjector::random's seeded plan.
struct InjectorRandomConfig {
  Real fault_probability = 0.5L;  ///< chance a robot is faulted at all
  Real min_time = 0.05L;          ///< earliest crash/activation time
  Real horizon = 64;              ///< latest crash/activation time
  bool crashes_only = false;      ///< restrict to kCrashStop
};

/// A per-robot fault plan for one team execution.  Robots beyond the
/// plan's size are healthy, so a default-constructed injector is a
/// no-op and `World::execute_team(team, FaultInjector{})` is exactly
/// the fault-free path.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultSpec> plan);

  using RandomConfig = InjectorRandomConfig;

  /// Deterministic random plan for `robots` robots: same seed, same
  /// plan, bit-identical on every platform (SplitMix64 stream).
  [[nodiscard]] static FaultInjector random(std::uint64_t seed,
                                            std::size_t robots,
                                            const RandomConfig& config = {});

  /// The spec for one robot (kNone beyond the plan).
  [[nodiscard]] const FaultSpec& spec(std::size_t robot) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return plan_.size(); }
  [[nodiscard]] bool any_faults() const noexcept;

  /// Crash times as a vector sized for `robots` robots (kInfinity for
  /// robots without a kCrashStop fault) — the shape
  /// sim/truncate_at_crashes and CrashFaults consume.
  [[nodiscard]] std::vector<Real> crash_times(std::size_t robots) const;

 private:
  std::vector<FaultSpec> plan_;
};

}  // namespace linesearch

// runtime/supervisor.hpp — crash detection and degraded-mode re-planning.
//
// The paper's A(n, f) tolerates f sensor-blind robots but assumes every
// robot keeps MOVING.  A crash-stop fault (runtime/injector.hpp) breaks
// the (f+1)-coverage invariant: positions only the crashed robot would
// have visited are never visited at all, so detection can become
// impossible no matter the blind budget.  This module restores coverage
// online:
//
//   * Supervisor models a silence-timeout protocol: every robot
//     heartbeats every `heartbeat_interval`; a robot that crashes at t
//     misses its next scheduled heartbeat, and after `silence_timeout`
//     of silence the supervisor declares it dead at
//         detect(t) = (floor(t / interval) + 1) * interval + timeout.
//     Detection times are pure arithmetic — deterministic, and
//     identical for every survivor.
//
//   * ResilientController wraps robot i of A(n, f).  It follows the
//     original ladder until a declaration fires, subdividing any leg
//     that would cross the declaration time; at the declaration it
//     abandons the leg, returns to the origin at unit speed, and runs a
//     FRESH proportional ladder A(n', f) for the n' declared-alive
//     survivors (its index re-ranked among them), time-shifted to the
//     re-plan instant.  Later declarations re-plan again.
//
// With n' survivors and the blind budget f unchanged, the re-planned
// fleet restores (f+1)-coverage — and hence a finite CR — exactly when
// n' >= f + 1.  Because the whole recovery detour happens within
// |x| < window_lo of any measurement window, the degraded CR lands
// within T0 (detect + return time, < 0.1 with the default config) of
// the Theorem 1 value for the reduced pair (n', f) whenever that pair
// is in regime; degraded_mode_sweep reports the achieved ratio per
// (n, f, crashes) and the robustness tests pin the 5% agreement.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/controller.hpp"
#include "runtime/injector.hpp"
#include "runtime/world.hpp"
#include "sim/fleet.hpp"
#include "util/real.hpp"

namespace linesearch {

/// Silence-timeout protocol parameters.
struct SupervisorConfig {
  Real heartbeat_interval = 0.01L;  ///< scheduled heartbeat spacing
  Real silence_timeout = 0.01L;     ///< silence before declaring death
};

/// One re-plan boundary as robot i sees it: at `time`, the declared
/// survivor count became `survivors` and this robot is rank `new_index`
/// among them.
struct ReplanEvent {
  Real time = 0;
  int survivors = 0;
  int new_index = 0;
};

/// One supervisor declaration (possibly several robots at once).
struct CrashDeclaration {
  Real detect_time = 0;
  std::vector<RobotId> crashed;  ///< robots declared dead at this instant
};

/// Outcome summary of a supervised run.
struct SupervisorReport {
  std::vector<CrashDeclaration> declarations;
  int survivors = 0;        ///< robots never declared dead
  int residual_faults = 0;  ///< blind budget f (crashes don't consume it)
  bool recoverable = false; ///< survivors >= residual_faults + 1
};

/// Robot i of A(n, f) with supervisor-driven re-planning.  With an
/// empty event list this is exactly ProportionalController (tests pin
/// the waypoint-identical equivalence).
class ResilientController final : public Controller {
 public:
  ResilientController(int n, int f, int robot, Real extent,
                      std::vector<ReplanEvent> events = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Directive next(Real time, Real position) override;

  /// Re-plans performed so far (grows as events fire).
  [[nodiscard]] int replans() const noexcept { return replans_; }

 private:
  [[nodiscard]] std::unique_ptr<ZigZagController> make_ladder(
      int fleet_size, int index) const;

  int n_;
  int f_;
  int robot_;
  Real extent_;
  std::vector<ReplanEvent> events_;
  std::size_t next_event_ = 0;
  std::unique_ptr<ZigZagController> inner_;
  bool returning_ = false;       ///< heading back to the origin
  bool awaiting_event_ = false;  ///< leg subdivided at the next boundary
  int replans_ = 0;
};

/// Ladder parameter for a re-planned fleet: the Theorem-1 optimum when
/// (n, f) is in the proportional regime, the classic beta = 3 otherwise
/// (any beta > 1 restores full coverage per survivor).
[[nodiscard]] Real recovery_beta(int n, int f);

/// The crash-recovery orchestrator for one A(n, f) team.
class Supervisor {
 public:
  Supervisor(int n, int f, SupervisorConfig config = {});

  /// Declaration time for a crash at `crash_time` under the protocol.
  [[nodiscard]] Real detection_time_for(Real crash_time) const;

  /// Per-robot declaration instants for a whole crash schedule
  /// (kInfinity entries for robots never declared dead).  This is the
  /// vector the claim arbiter (runtime/arbitration) consults to exclude
  /// declared-dead robots from quorum.
  [[nodiscard]] std::vector<Real> declaration_times(
      const std::vector<Real>& crash_times) const;

  /// Build the team of ResilientControllers for a crash schedule
  /// (crash_times[i] = kInfinity for healthy robots).
  [[nodiscard]] std::vector<ControllerPtr> make_team(
      const std::vector<Real>& crash_times, Real extent,
      SupervisorReport* report = nullptr) const;

  /// The full degraded pipeline: build the team, inject the crashes,
  /// execute, return the mixed fleet (crashed robots truncated, the
  /// survivors re-planned).
  [[nodiscard]] Fleet run(const std::vector<Real>& crash_times, Real extent,
                          SupervisorReport* report = nullptr,
                          const WorldConfig& world = {}) const;

 private:
  int n_;
  int f_;
  SupervisorConfig config_;
};

/// One row of the degraded-mode CR sweep.
struct DegradedSweepRow {
  int n = 0;
  int f = 0;
  int crashes = 0;
  int survivors = 0;
  int residual_faults = 0;
  Real measured_cr = 0;       ///< CR of the supervised run, f blind faults
  Real theory_cr = kNaN;      ///< Theorem 1 for (survivors, f); NaN when
                              ///< the reduced pair leaves the regime
  Real ratio_to_theory = kNaN;
  bool recovered = false;     ///< measured_cr finite
};

struct DegradedSweepOptions {
  int n_max = 8;           ///< regime grid bound (41 pairs at 12)
  int max_crashes = 2;     ///< crash counts swept per pair (1..max)
  Real crash_time = 0.02L; ///< all crashes fire here (early: the whole
                           ///< recovery stays inside |x| < 1)
  Real window_hi = 16;     ///< CR measurement window
  SupervisorConfig supervisor;
};

/// Sweep every regime pair (n <= n_max) x crash count: supervised run,
/// measured degraded CR, Theorem-1 comparison for the reduced pair.
[[nodiscard]] std::vector<DegradedSweepRow> degraded_mode_sweep(
    const DegradedSweepOptions& options = {});

}  // namespace linesearch

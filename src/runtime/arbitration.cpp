#include "runtime/arbitration.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace linesearch {

ArbitrationReport arbitrate(const Fleet& fleet, const int f,
                            std::vector<Claim> claims,
                            const std::vector<Real>& crash_declared_at,
                            const ArbitrationConfig& config) {
  LS_OBS_SPAN("runtime.arbitrate");
  expects(f >= 0, "arbitrate: f must be >= 0");
  expects(config.quorum >= 0, "arbitrate: quorum must be >= 0");
  expects(crash_declared_at.empty() ||
              crash_declared_at.size() == fleet.size(),
          "arbitrate: crash declaration size must match the fleet");
  for (const Claim& claim : claims) {
    expects(claim.robot < fleet.size(), "arbitrate: claim robot out of range");
    expects(std::isfinite(claim.time) && claim.time >= 0,
            "arbitrate: claim times must be finite >= 0");
    expects(std::isfinite(claim.position),
            "arbitrate: claim positions must be finite");
  }
  const int quorum = config.quorum > 0 ? config.quorum : f + 1;

  // Deterministic ledger order regardless of how claims were gathered.
  std::sort(claims.begin(), claims.end(),
            [](const Claim& a, const Claim& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.robot != b.robot) return a.robot < b.robot;
              return a.position < b.position;
            });

  const auto declared_at = [&](const RobotId robot) {
    return crash_declared_at.empty() ? kInfinity : crash_declared_at[robot];
  };

  ArbitrationReport report;
  report.claims_made = static_cast<int>(claims.size());

  // Distinct claimed positions, first-claim order (exact Real equality:
  // honest claims of one target are bit-identical by construction).
  std::vector<Real> positions;
  for (const Claim& claim : claims) {
    if (std::none_of(positions.begin(), positions.end(),
                     [&](const Real p) { return p == claim.position; })) {
      positions.push_back(claim.position);
    }
  }

  for (const Real position : positions) {
    ClaimVerdict verdict;
    verdict.position = position;

    // Earliest claim per distinct robot, ascending in time (the ledger
    // is already time-sorted, so first mention per robot wins).
    std::vector<std::pair<Real, RobotId>> supports;
    std::vector<bool> claimant(fleet.size(), false);
    Real first_claim = kInfinity;
    for (const Claim& claim : claims) {
      if (claim.position != position) continue;
      first_claim = std::min(first_claim, claim.time);
      if (claimant[claim.robot]) continue;
      claimant[claim.robot] = true;
      supports.emplace_back(claim.time, claim.robot);
    }
    verdict.supporters = static_cast<int>(supports.size());

    // Walk candidate quorum instants.  At instant T a support counts
    // only if its robot's crash declaration is STRICTLY after T: a
    // declaration landing exactly on the corroboration deadline means
    // the robot can no longer stand behind its claim at the instant the
    // quorum would form, so it is excluded.  (Counting it — the `<=`
    // off-by-one — was the latent supervisor edge; the regression test
    // in tests/runtime/arbitration_test pins this boundary.)
    for (std::size_t i = 0; i < supports.size(); ++i) {
      const Real deadline = supports[i].first;
      int counted = 0;
      for (std::size_t j = 0; j <= i; ++j) {
        if (declared_at(supports[j].second) > deadline) ++counted;
      }
      if (counted >= quorum) {
        verdict.confirm_time = deadline;
        break;
      }
    }

    // Refutation: the quorum-th distinct NON-claimant visit to the
    // claimed position (claimants cannot refute themselves), no earlier
    // than the first claim — at most f of those visitors lie, so a
    // quorum of "nothing there" reports contains an honest one.  For
    // the TRUE target the non-claimants are exactly the suppressing
    // liars (<= f < quorum), so refutation can never fire on it.
    std::vector<Real> visits;
    const std::vector<Real> first = fleet.first_visit_times(position);
    for (std::size_t robot = 0; robot < first.size(); ++robot) {
      if (claimant[robot]) continue;
      if (std::isfinite(first[robot])) visits.push_back(first[robot]);
    }
    if (static_cast<int>(visits.size()) >= quorum) {
      const auto nth = static_cast<std::ptrdiff_t>(quorum - 1);
      std::nth_element(visits.begin(), visits.begin() + nth, visits.end());
      verdict.refute_time =
          std::max(visits[static_cast<std::size_t>(nth)], first_claim);
    }

    if (verdict.refuted()) ++report.claims_refuted;
    if (verdict.confirmed() &&
        (!report.quorum_reached ||
         verdict.confirm_time < report.confirm_time)) {
      report.quorum_reached = true;
      report.confirm_time = verdict.confirm_time;
      report.confirmed_position = verdict.position;
    }
    report.verdicts.push_back(verdict);
  }

  LS_OBS_COUNT("runtime.claims_made", report.claims_made);
  LS_OBS_COUNT("runtime.claims_refuted", report.claims_refuted);
  LS_OBS_COUNT("runtime.quorum_reached", report.quorum_reached ? 1 : 0);
  return report;
}

std::vector<Claim> collect_claims(const Fleet& fleet, const Real target,
                                  const LiePlan& plan) {
  expects(plan.size() == fleet.size(),
          "collect_claims: plan size must match the fleet");
  const std::vector<Real> visits = fleet.first_visit_times(target);
  std::vector<Claim> claims;
  for (std::size_t robot = 0; robot < fleet.size(); ++robot) {
    if (plan.liar[robot]) {
      // False negative: the real find is suppressed outright; only the
      // fabricated schedule is announced.
      for (const LieEvent& event : plan.claims[robot]) {
        claims.push_back(Claim{robot, event.time, event.position});
      }
    } else if (std::isfinite(visits[robot])) {
      claims.push_back(Claim{robot, visits[robot], target});
    }
  }
  return claims;
}

ByzantineRunReport run_byzantine(const int n, const int f, const Real extent,
                                 const Real target, const LiePlan& plan,
                                 const std::vector<Real>& crash_times,
                                 const SupervisorConfig& supervisor,
                                 const ArbitrationConfig& arbitration) {
  LS_OBS_SPAN("runtime.byzantine.run");
  expects(n >= 1 && plan.size() == static_cast<std::size_t>(n),
          "run_byzantine: plan size must match the team");
  std::vector<Real> schedule = crash_times;
  if (schedule.empty()) {
    schedule.assign(static_cast<std::size_t>(n), kInfinity);
  }
  const Supervisor boss(n, f, supervisor);
  ByzantineRunReport report;
  report.target = target;
  const Fleet fleet = boss.run(schedule, extent, &report.supervisor);
  report.arbitration =
      arbitrate(fleet, f, collect_claims(fleet, target, plan),
                boss.declaration_times(schedule), arbitration);
  return report;
}

}  // namespace linesearch

#include "runtime/supervisor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/competitive.hpp"
#include "core/proportional.hpp"
#include "eval/cr_eval.hpp"
#include "eval/validation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/format.hpp"

namespace linesearch {

Real recovery_beta(const int n, const int f) {
  expects(n >= 1 && f >= 0, "recovery_beta: need n >= 1, f >= 0");
  return in_proportional_regime(n, f) ? optimal_beta(n, f) : 3;
}

ResilientController::ResilientController(const int n, const int f,
                                         const int robot, const Real extent,
                                         std::vector<ReplanEvent> events)
    : n_(n), f_(f), robot_(robot), extent_(extent),
      events_(std::move(events)) {
  expects(n >= 1 && robot >= 0 && robot < n,
          "resilient controller: robot index out of range");
  expects(f >= 1 && f < n,
          "resilient controller: need 1 <= f < n");
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const ReplanEvent& event = events_[i];
    expects(event.time > 0 && std::isfinite(event.time),
            "resilient controller: event times must be finite > 0");
    expects(event.survivors >= 1 && event.new_index >= 0 &&
                event.new_index < event.survivors,
            "resilient controller: event rank out of range");
    expects(i == 0 || events_[i - 1].time < event.time,
            "resilient controller: events must be strictly increasing");
  }
  inner_ = make_ladder(n_, robot_);
}

std::unique_ptr<ZigZagController> ResilientController::make_ladder(
    const int fleet_size, const int index) const {
  const Real beta = recovery_beta(fleet_size, f_);
  const Real turn =
      ProportionalSchedule(fleet_size, beta).initial_turn(index);
  return std::make_unique<ZigZagController>(beta, turn, extent_);
}

std::string ResilientController::name() const {
  std::ostringstream out;
  out << "resilient(A-robot-" << robot_ << "/" << n_
      << ", events=" << events_.size() << ")";
  return out.str();
}

Directive ResilientController::next(const Real time, const Real position) {
  // Consume every declaration that has fired by now; the last one wins
  // (simultaneous declarations are merged upstream, but a robot may also
  // be handed several past-due events at once after a long leg).
  bool replanned = false;
  while (next_event_ < events_.size() &&
         time >= events_[next_event_].time) {
    ++next_event_;
    replanned = true;
  }
  if (replanned) {
    LS_OBS_COUNT("runtime.replans", 1);
    ++replans_;
    awaiting_event_ = false;
    inner_.reset();  // abandon the old ladder outright
    returning_ = position != 0;
  } else if (awaiting_event_) {
    // The previous leg was subdivided at the declaration boundary but
    // rounding landed us an ulp early: hold until the exact instant.
    return Directive::wait_until(events_[next_event_].time);
  }

  Directive directive = Directive::stop();
  if (returning_) {
    if (position != 0) {
      directive = Directive::move_to(0, 1);
    } else {
      returning_ = false;
    }
  }
  if (!returning_) {
    if (inner_ == nullptr) {
      const ReplanEvent& active = events_[next_event_ - 1];
      inner_ = make_ladder(active.survivors, active.new_index);
    }
    directive = inner_->next(time, position);
  }

  if (next_event_ >= events_.size()) return directive;
  const Real boundary = events_[next_event_].time;

  // Subdivide anything that would cross the next declaration so the
  // re-plan fires at the exact protocol instant.
  if (directive.kind == Directive::Kind::kStop) {
    awaiting_event_ = true;
    return Directive::wait_until(boundary);
  }
  if (directive.kind == Directive::Kind::kWaitUntil) {
    if (directive.value > boundary) {
      awaiting_event_ = true;
      return Directive::wait_until(boundary);
    }
    return directive;
  }
  const Real arrival =
      time + std::fabs(directive.value - position) / directive.speed;
  if (arrival <= boundary) return directive;
  awaiting_event_ = true;
  const Real direction = directive.value > position ? 1 : -1;
  const Real partial =
      position + direction * directive.speed * (boundary - time);
  if (partial == position) return Directive::wait_until(boundary);
  return Directive::move_to(partial, directive.speed);
}

Supervisor::Supervisor(const int n, const int f, SupervisorConfig config)
    : n_(n), f_(f), config_(config) {
  expects(f >= 1 && f < n, "supervisor: need 1 <= f < n");
  expects(config.heartbeat_interval > 0 && config.silence_timeout > 0,
          "supervisor: protocol intervals must be positive");
}

Real Supervisor::detection_time_for(const Real crash_time) const {
  expects(crash_time >= 0, "supervisor: crash time must be >= 0");
  if (!std::isfinite(crash_time)) return kInfinity;
  // The crash silences the NEXT scheduled heartbeat; the declaration
  // fires silence_timeout after that missed slot.
  const Real missed =
      (std::floor(crash_time / config_.heartbeat_interval) + 1) *
      config_.heartbeat_interval;
  return missed + config_.silence_timeout;
}

std::vector<Real> Supervisor::declaration_times(
    const std::vector<Real>& crash_times) const {
  expects(static_cast<int>(crash_times.size()) == n_,
          "supervisor: crash schedule size must match the fleet");
  std::vector<Real> detect(crash_times.size(), kInfinity);
  for (std::size_t robot = 0; robot < crash_times.size(); ++robot) {
    detect[robot] = detection_time_for(crash_times[robot]);
  }
  return detect;
}

std::vector<ControllerPtr> Supervisor::make_team(
    const std::vector<Real>& crash_times, const Real extent,
    SupervisorReport* report) const {
  const std::vector<Real> detect = declaration_times(crash_times);

  // Distinct declaration instants, in protocol order.
  std::vector<Real> instants;
  for (const Real t : detect) {
    if (std::isfinite(t)) instants.push_back(t);
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());

  SupervisorReport local;
  local.residual_faults = f_;
  for (const Real instant : instants) {
    CrashDeclaration declaration;
    declaration.detect_time = instant;
    for (int robot = 0; robot < n_; ++robot) {
      if (detect[static_cast<std::size_t>(robot)] == instant) {
        declaration.crashed.push_back(robot);
      }
    }
    local.declarations.push_back(std::move(declaration));
  }
  for (int robot = 0; robot < n_; ++robot) {
    if (!std::isfinite(detect[static_cast<std::size_t>(robot)])) {
      ++local.survivors;
    }
  }
  local.recoverable = local.survivors >= local.residual_faults + 1;

  std::vector<ControllerPtr> team;
  team.reserve(static_cast<std::size_t>(n_));
  for (int robot = 0; robot < n_; ++robot) {
    const Real own = detect[static_cast<std::size_t>(robot)];
    std::vector<ReplanEvent> events;
    for (const Real instant : instants) {
      if (instant >= own) break;  // declared dead; no further commands
      ReplanEvent event;
      event.time = instant;
      int survivors = 0;
      int rank = 0;
      for (int other = 0; other < n_; ++other) {
        if (detect[static_cast<std::size_t>(other)] <= instant) continue;
        if (other == robot) rank = survivors;
        ++survivors;
      }
      event.survivors = survivors;
      event.new_index = rank;
      events.push_back(event);
    }
    team.push_back(std::make_unique<ResilientController>(
        n_, f_, robot, extent, std::move(events)));
  }

  if (report != nullptr) *report = std::move(local);
  return team;
}

Fleet Supervisor::run(const std::vector<Real>& crash_times,
                      const Real extent, SupervisorReport* report,
                      const WorldConfig& world) const {
  LS_OBS_SPAN("runtime.supervisor.run");
  std::vector<FaultSpec> plan;
  plan.reserve(crash_times.size());
  for (const Real t : crash_times) {
    plan.push_back(std::isfinite(t) ? FaultSpec::crash_at(t)
                                    : FaultSpec::none());
  }
  const std::vector<ControllerPtr> team = make_team(crash_times, extent,
                                                    report);
  return World(world).execute_team(team, FaultInjector(std::move(plan)));
}

std::vector<DegradedSweepRow> degraded_mode_sweep(
    const DegradedSweepOptions& options) {
  LS_OBS_SPAN("runtime.supervisor.sweep");
  expects(options.max_crashes >= 1, "degraded sweep: need max_crashes >= 1");
  expects(options.crash_time > 0 && options.window_hi > 1,
          "degraded sweep: need crash_time > 0 and window_hi > 1");
  std::vector<DegradedSweepRow> rows;
  for (const auto& [n, f] : proportional_regime_pairs(options.n_max)) {
    // The original ladder's first turns scale with kappa^2; build far
    // enough out that every re-planned ladder covers the window too.
    const Real kappa = optimal_expansion_factor(n, f);
    const Real extent =
        std::max(4 * options.window_hi, 2 * kappa * kappa);
    const Supervisor supervisor(n, f, options.supervisor);
    for (int crashes = 1; crashes <= std::min(options.max_crashes, n - 1);
         ++crashes) {
      std::vector<Real> crash_times(static_cast<std::size_t>(n),
                                    kInfinity);
      for (int k = 0; k < crashes; ++k) {
        crash_times[static_cast<std::size_t>(n - 1 - k)] =
            options.crash_time;
      }
      SupervisorReport report;
      const Fleet fleet =
          supervisor.run(crash_times, extent, &report);

      DegradedSweepRow row;
      row.n = n;
      row.f = f;
      row.crashes = crashes;
      row.survivors = report.survivors;
      row.residual_faults = report.residual_faults;
      CrEvalOptions eval;
      eval.window_hi = options.window_hi;
      eval.require_finite = false;
      row.measured_cr = measure_cr(fleet, f, eval).cr;
      row.recovered = std::isfinite(row.measured_cr);
      if (in_proportional_regime(row.survivors, f)) {
        row.theory_cr = algorithm_cr(row.survivors, f);
        row.ratio_to_theory = row.measured_cr / row.theory_cr;
      }
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace linesearch

#include "runtime/world.hpp"

#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace linesearch {

World::World(WorldConfig config) : config_(config) {
  expects(config.time_limit > 0, "world: time limit must be positive");
  expects(config.max_directives > 0, "world: directive cap must be positive");
}

Trajectory World::execute(Controller& controller,
                          ExecutionReport* report) const {
  return execute(controller, FaultSpec::none(), report);
}

Trajectory World::execute(Controller& controller, const FaultSpec& fault,
                          ExecutionReport* report) const {
  LS_OBS_SPAN("runtime.world.execute");
  TrajectoryBuilder builder;
  builder.start_at(0, 0);
  ExecutionReport local;
  local.fault = fault.kind;
  if (fault.kind == FaultKind::kCrashStop ||
      fault.kind == FaultKind::kDelayedActivation) {
    local.fault_time = fault.time;
  }
  if (fault.kind != FaultKind::kNone) {
    LS_OBS_COUNT("runtime.faults_injected", 1);
  }

  const Real crash =
      fault.kind == FaultKind::kCrashStop ? fault.time : kInfinity;
  int moves_seen = 0;
  bool done = false;

  if (fault.kind == FaultKind::kDelayedActivation && fault.time > 0) {
    // Held at the origin: the controller is simply launched late.
    const Real release = std::min(fault.time, config_.time_limit);
    builder.wait_until(release);
    if (release == config_.time_limit) {
      local.time_limited = true;
      done = true;
    }
  }

  while (!done) {
    const Real now = builder.current_time();
    const Real here = builder.current_position();
    if (now >= crash) {
      // Crash landed exactly on a decision point: halt, nothing cut.
      local.crashed = true;
      LS_OBS_COUNT("runtime.crash_truncations", 1);
      break;
    }
    if (local.directives >= config_.max_directives) {
      throw NumericError("world: controller '" + controller.name() +
                         "' exceeded the directive cap after " +
                         std::to_string(local.directives) +
                         " directives (runaway?)");
    }
    Directive directive = controller.next(now, here);
    ++local.directives;

    if (directive.kind == Directive::Kind::kStop) {
      local.stopped = true;
      break;
    }
    if (directive.kind == Directive::Kind::kWaitUntil) {
      expects(directive.value >= now,
              "world: controller tried to wait into the past");
      const Real until = std::min(directive.value, config_.time_limit);
      if (crash < until) {
        builder.wait_until(crash);
        local.crashed = true;
        local.truncated_leg = local.directives - 1;
        LS_OBS_COUNT("runtime.crash_truncations", 1);
        break;
      }
      builder.wait_until(until);
      if (until == config_.time_limit) {
        local.time_limited = true;
        break;
      }
      continue;
    }

    // kMoveTo.
    if (fault.kind == FaultKind::kSpeedCap) {
      directive.speed = std::min(directive.speed, fault.speed_cap);
    }
    expects(directive.speed > 0 &&
                directive.speed <= Trajectory::kMaxSpeed * (1 + 1e-12L),
            "world: controller requested an illegal speed");
    const Real distance = std::fabs(directive.value - here);
    expects(distance > 0,
            "world: zero-length move (use wait_until or stop)");
    const Real arrival = now + distance / directive.speed;

    if (fault.kind == FaultKind::kDirectiveDrop &&
        (++moves_seen % fault.drop_period) == 0) {
      // Lost in transit: the robot holds position for the leg's
      // would-be duration while the controller believes it moved.
      ++local.dropped_directives;
      const Real until = std::min(arrival, config_.time_limit);
      builder.wait_until(until);
      if (until == config_.time_limit) {
        local.time_limited = true;
        break;
      }
      continue;
    }

    if (crash < arrival && crash <= config_.time_limit) {
      // Mid-leg crash.  The crash position uses the EXACT interpolation
      // arithmetic of DenseSchedule::position_at, so the injected run is
      // value_identical to truncate_at_crashes() of the clean run.
      const Real fraction = (crash - now) / (arrival - now);
      builder.move_to_at(here + fraction * (directive.value - here), crash);
      local.crashed = true;
      local.truncated_leg = local.directives - 1;
      LS_OBS_COUNT("runtime.crash_truncations", 1);
      break;
    }
    if (arrival > config_.time_limit) {
      // Truncate the leg at the time limit and halt the robot there.
      const Real budget = config_.time_limit - now;
      const Real direction = (directive.value > here) ? 1 : -1;
      if (budget > 0) {
        builder.move_to_at(here + direction * directive.speed * budget,
                           config_.time_limit);
      }
      local.time_limited = true;
      break;
    }
    builder.move_to_at(directive.value, arrival);
  }

  LS_OBS_COUNT("runtime.world.directives", local.directives);
  if (report != nullptr) *report = local;
  return std::move(builder).build();
}

Fleet World::execute_team(const std::vector<ControllerPtr>& controllers,
                          std::vector<ExecutionReport>* reports) const {
  return execute_team(controllers, FaultInjector{}, reports);
}

Fleet World::execute_team(const std::vector<ControllerPtr>& controllers,
                          const FaultInjector& injector,
                          std::vector<ExecutionReport>* reports) const {
  LS_OBS_SPAN("runtime.world.execute_team");
  expects(!controllers.empty(), "world: empty team");
  std::vector<Trajectory> robots;
  robots.reserve(controllers.size());
  if (reports != nullptr) reports->resize(controllers.size());
  for (std::size_t i = 0; i < controllers.size(); ++i) {
    expects(controllers[i] != nullptr, "world: null controller");
    robots.push_back(execute(
        *controllers[i], injector.spec(i),
        reports != nullptr ? &(*reports)[i] : nullptr));
  }
  return Fleet(std::move(robots));
}

Fleet run_proportional_controllers(const int n, const int f,
                                   const Real extent,
                                   const WorldConfig& config) {
  std::vector<ControllerPtr> team;
  team.reserve(static_cast<std::size_t>(n));
  for (int robot = 0; robot < n; ++robot) {
    team.push_back(
        std::make_unique<ProportionalController>(n, f, robot, extent));
  }
  return World(config).execute_team(team);
}

}  // namespace linesearch

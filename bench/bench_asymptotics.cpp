// bench_asymptotics — experiment E3: the abstract's asymptotic claims
// for n = 2f+1.
//
//   upper: CR(A(2f+1, f)) <= 3 + 4 ln n / n + O(1)/n      (Corollary 1)
//   lower: any algorithm >= alpha(n) >= 3 + 2 ln n / n - 2 ln ln n / n
//                                                          (Corollary 2)
// The bench sweeps n over a log grid and prints the exact curve, both
// closed-form envelopes, and the exact Theorem-2 root, demonstrating the
// 2x gap in the ln n / n coefficient the paper leaves open.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  TablePrinter table({"n", "CR(A(2f+1,f))", "3 + 4 ln n/n (Cor 1)",
                      "exact LB alpha(n)", "3 + 2ln n/n - 2lnln n/n (Cor 2)",
                      "(CR-3)*n/ln n", "(CR-3-2/n)*n/ln(n+1)",
                      "(LB-3)*n/ln n"});
  table.set_caption(
      "n = 2f+1: exact curves vs the paper's asymptotic envelopes");

  Series cr_series{"cr", {}, {}}, ub{"corollary1", {}, {}},
      lb_exact{"alpha_n", {}, {}}, lb_closed{"corollary2", {}, {}};

  for (const int n : {3, 5, 9, 17, 33, 65, 129, 257, 513, 1025, 2049,
                      4097, 8193}) {
    const Real nn = static_cast<Real>(n);
    const Real cr = cr_half_faulty(n);
    const Real cor1 = corollary1_bound(n);
    const Real alpha = theorem2_alpha(n);
    const Real cor2 = corollary2_bound(n);
    const Real log_n = std::log(nn);
    table.add_row({cell(static_cast<long long>(n)), fixed(cr, 5),
                   fixed(cor1, 5), fixed(alpha, 5), fixed(cor2, 5),
                   fixed((cr - 3) * nn / log_n, 3),
                   fixed((cr - 3 - 2 / nn) * nn / std::log(nn + 1), 3),
                   fixed((alpha - 3) * nn / log_n, 3)});
    cr_series.x.push_back(nn);
    cr_series.y.push_back(cr);
    ub.x.push_back(nn);
    ub.y.push_back(cor1);
    lb_exact.x.push_back(nn);
    lb_exact.y.push_back(alpha);
    lb_closed.x.push_back(nn);
    lb_closed.y.push_back(cor2);
  }
  table.print(std::cout);

  std::cout
      << "\nReading the coefficient columns: Corollary 1 bounds the CR "
         "by 3 + 4 ln n/n, but the\n"
      << "exact expansion is CR = 3 + (2 ln(n+1) + 2)/n + o(1/n): the "
         "refined column\n"
      << "(CR-3-2/n)*n/ln(n+1) converges to 2, matching the LOWER "
         "bound's ln-coefficient.  So\n"
      << "A(2f+1,f) is asymptotically optimal not just to leading order "
         "3 but in the ln n/n\n"
      << "coefficient as well — a slightly sharper statement than the "
         "paper's abstract, visible\n"
      << "directly in the reproduction data (the remaining gap is the "
         "additive O(ln ln n)/n).\n";

  bench::csv_header("asymptotics");
  write_series_csv(std::cout, {cr_series, ub, lb_exact, lb_closed});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Experiment E3 (Corollaries 1 & 2)",
      "asymptotic upper/lower bounds for n = 2f+1", body);
}

// bench_group_search — extension study E5: last-arrival ("group search")
// semantics, after Chrobak-Gasieniec-Gorry-Martin (cited in the paper's
// §1.2): the search ends when the LAST robot reaches the target.
//
// Reproduced shape: moving as a pack (group doubling) achieves exactly
// the single-robot bound 9 — extra searchers don't help group search —
// while the paper's A(n, f), which deliberately spreads robots out to
// optimize first-RELIABLE-arrival, pays heavily under last-arrival.
// The two objectives pull schedules in opposite directions.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "eval/group_search.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  TablePrinter table({"n", "f", "A(n,f): first-reliable CR",
                      "A(n,f): group CR", "pack: group CR"});
  table.set_caption(
      "First-reliable-arrival vs last-arrival (group) competitive "
      "ratios, measured");

  Series individual{"first_reliable", {}, {}}, group{"group", {}, {}};
  int index = 0;
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {5, 2}, {5, 3}, {7, 3}}) {
    const ProportionalAlgorithm algo(n, f);
    const Fleet fleet = algo.build_fleet(4000);
    const Real cr_first = measure_cr(fleet, f, {.window_hi = 24}).cr;
    const Real cr_group = measure_group_cr(fleet, {.window_hi = 24}).cr;

    const GroupDoubling pack(n, f);
    const Fleet pack_fleet = pack.build_fleet(4000);
    const Real cr_pack = measure_group_cr(pack_fleet, {.window_hi = 24}).cr;

    table.add_row({cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(f)), fixed(cr_first, 3),
                   fixed(cr_group, 3), fixed(cr_pack, 3)});
    ++index;
    individual.x.push_back(index);
    individual.y.push_back(cr_first);
    group.x.push_back(index);
    group.y.push_back(cr_group);
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the pack's group CR is pinned at the cow-path 9 "
         "(extra searchers never help\n"
      << "group search, reproducing the cited result), while A(n,f)'s "
         "group CR exceeds 9 — the\n"
      << "spread that makes it fault-tolerant for first-reliable-arrival "
         "is a liability when\n"
      << "everyone must assemble.  The two-group split is the extreme "
         "case: its halves never\n"
      << "meet, so its group CR is infinite.\n";

  bench::csv_header("group_search");
  write_series_csv(std::cout, {individual, group});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension E5", "last-arrival (group search) semantics", body);
}

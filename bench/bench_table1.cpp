// bench_table1 — regenerates Table 1 of the paper: upper and lower
// bounds on the competitive ratio and the expansion factor of A(n, f)
// for the paper's twelve (n, f) configurations.  Adds a "measured CR"
// column produced by the exact simulator (experiment E1's pipeline) so
// theory and measurement can be compared row by row.
#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/validation.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  const std::vector<std::pair<int, int>> rows{
      {2, 1}, {3, 1}, {3, 2}, {4, 1}, {4, 2},  {4, 3},
      {5, 1}, {5, 2}, {5, 3}, {5, 4}, {11, 5}, {41, 20}};

  TablePrinter table({"n", "f", "comp. ratio of A(n,f)", "measured CR",
                      "lower bound", "expansion factor"});
  table.set_caption(
      "Table 1: Upper and lower bounds for specific values of n and f");

  std::vector<Series> series;
  Series theory{"theory_cr", {}, {}}, measured{"measured_cr", {}, {}},
      lower{"lower_bound", {}, {}};

  for (const auto& [n, f] : rows) {
    // Keep the measurement window small for the big (41,20) row: the
    // proportionality ratio r = 42^(2/41) ~ 1.2, and probes need the
    // fleet to extend r^(f+2) past the window.
    const ValidationRow v =
        validate_pair(n, f, {.window_hi = 8, .extent_factor = 64});
    const bool trivial = n >= 2 * f + 2;
    table.add_row({cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(f)),
                   fixed(v.theory_cr, 3),
                   fixed(v.measured_cr, 3),
                   fixed(v.lower_bound, 3),
                   trivial ? std::string("-")
                           : fixed(optimal_expansion_factor(n, f), 2)});
    theory.x.push_back(n);
    theory.y.push_back(v.theory_cr);
    measured.x.push_back(n);
    measured.y.push_back(v.measured_cr);
    lower.x.push_back(n);
    lower.y.push_back(v.lower_bound);
  }
  table.print(std::cout);

  std::cout << "\nNotes:\n"
            << "  * measured CR is the exact simulator's sup of "
               "T_{f+1}(x)/|x| over the probe window;\n"
            << "    it approaches the closed form from below "
               "(right-limits at turning points).\n"
            << "  * the paper prints rounded lower bounds; the exact "
               "Theorem-2 root for n=41 is "
            << fixed(theorem2_alpha(41), 4) << " (paper: 3.12).\n";

  series.push_back(std::move(theory));
  series.push_back(std::move(measured));
  series.push_back(std::move(lower));
  bench::csv_header("table1");
  write_series_csv(std::cout, series);
}

}  // namespace

int main() {
  return linesearch::bench::run("Table 1",
                                "competitive-ratio bounds per (n, f)", body);
}

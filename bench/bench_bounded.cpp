// bench_bounded — extension study E4: a known upper bound D on the
// target distance (cf. Bose-De Carufel-Durocher, cited in the paper's
// related work).  BoundedProportional clamps A(n,f)'s zig-zags at the
// barriers ±D; the bench measures the competitive ratio over [1, ~D]
// against the unbounded algorithm for shrinking arenas, and profiles
// WHERE the gain concentrates (the last expansion step before D).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/bounded.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  const int n = 3, f = 1;
  std::cout << "Bounded arena variant of A(" << n << "," << f
            << ") — unbounded Theorem-1 CR = "
            << fixed(algorithm_cr(n, f), 4) << "\n\n";

  // Part 1: the COMPETITIVE RATIO does not improve — a genuine (and
  // perhaps surprising) negative result.  The sup of K(x) is realized
  // just past turning points arbitrarily close to the minimum distance,
  // where the barrier plays no role; clamping only advances visits that
  // happen AFTER a clamped turn.  Beating Theorem 1's value with a known
  // bound D requires redesigning the schedule (as in the cited
  // single-robot work), not merely truncating it.
  TablePrinter table({"arena bound D", "bounded CR over [1, 0.999D]",
                      "unbounded CR (same window)",
                      "max pointwise gain", "at x"});
  Series bounded_series{"bounded_cr", {}, {}},
      unbounded_series{"unbounded_cr", {}, {}},
      gain_max{"max_pointwise_gain", {}, {}};

  for (const Real D : {6.0L, 12.0L, 24.0L, 48.0L, 96.0L}) {
    const BoundedProportional bounded(n, f, D);
    const Fleet bounded_fleet = bounded.build_fleet(D);
    const Fleet unbounded_fleet =
        ProportionalAlgorithm(n, f).build_fleet(D * 48);
    CrEvalOptions window;
    window.window_hi = D * 0.999L;
    const Real bounded_cr = measure_cr(bounded_fleet, f, window).cr;
    const Real unbounded_cr = measure_cr(unbounded_fleet, f, window).cr;

    // Scan for the largest pointwise detection-time gain in the arena.
    Real best_gain = 0, best_gain_x = 0;
    for (int i = 0; i <= 400; ++i) {
      const Real magnitude =
          1 + (D * 0.999L - 1) * static_cast<Real>(i) / 400;
      for (const int side : {+1, -1}) {
        const Real x = static_cast<Real>(side) * magnitude;
        const Real gain = unbounded_fleet.detection_time(x, f) -
                          bounded_fleet.detection_time(x, f);
        if (gain > best_gain) {
          best_gain = gain;
          best_gain_x = x;
        }
      }
    }
    table.add_row({fixed(D, 0), fixed(bounded_cr, 4),
                   fixed(unbounded_cr, 4), fixed(best_gain, 3),
                   fixed(best_gain_x, 2)});
    bounded_series.x.push_back(D);
    bounded_series.y.push_back(bounded_cr);
    unbounded_series.x.push_back(D);
    unbounded_series.y.push_back(unbounded_cr);
    gain_max.x.push_back(D);
    gain_max.y.push_back(best_gain);
  }
  table.print(std::cout);

  // Part 2: pointwise gain profile for an arena where clamping bites
  // (D = 24 sits between the grid's negative turn at 25.4 and the
  // positive turn at 40.3, so both get clamped).
  const Real D = 24;
  const BoundedProportional bounded(n, f, D);
  const Fleet bounded_fleet = bounded.build_fleet(D);
  const Fleet unbounded_fleet =
      ProportionalAlgorithm(n, f).build_fleet(D * 48);
  std::cout << "\nPointwise detection-time gain for D = " << fixed(D, 0)
            << " (positive = bounded finds earlier):\n\n";
  TablePrinter profile({"x", "T_bounded", "T_unbounded", "gain"});
  Series gain_series{"gain_profile", {}, {}};
  for (const Real x :
       {1.0L, -2.0L, 4.0L, -8.0L, 12.0L, -16.0L, 18.0L, -20.0L, 22.0L,
        23.5L, -23.5L}) {
    const Real tb = bounded_fleet.detection_time(x, f);
    const Real tu = unbounded_fleet.detection_time(x, f);
    profile.add_row({fixed(x, 1), fixed(tb, 3), fixed(tu, 3),
                     fixed(tu - tb, 3)});
    gain_series.x.push_back(x);
    gain_series.y.push_back(tu - tb);
  }
  profile.print(std::cout);
  std::cout
      << "\nReading: the competitive ratio is pinned to Theorem 1 "
         "(clamping cannot touch the\n"
      << "near-origin suprema), but individual targets in the last "
         "expansion step before the\n"
      << "barrier ARE found earlier — knowing D helps pointwise near D, "
         "never in the sup.\n";

  bench::csv_header("bounded");
  write_series_csv(std::cout, {bounded_series, unbounded_series, gain_max,
                               gain_series});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension E4", "known distance bound: bounded A(n,f) vs unbounded",
      body);
}

// bench_fig6_fig7_lower_bound — regenerates the lower-bound machinery of
// Section 4: positive/negative trajectories (Figure 6, Lemmas 6-7), the
// adversarial placement chain x_0 > x_1 > ... > x_{n-1} > 1 (Figure 7),
// and experiment E2: the Theorem-2 adversary forcing ratio >= alpha
// against A(n, f) and against the baselines.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "adversary/classify.hpp"
#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/lower_bound.hpp"
#include "sim/recorder.hpp"
#include "sim/zigzag.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void figure6() {
  std::cout << "Figure 6: positive vs negative trajectory for x = 3\n\n";
  TrajectoryBuilder pos_b;
  pos_b.start_at(0, 0);
  pos_b.move_to(3).move_to(-3.5L);
  const Trajectory positive = std::move(pos_b).build();
  TrajectoryBuilder neg_b;
  neg_b.start_at(0, 0);
  neg_b.move_to(-3).move_to(3.5L);
  const Trajectory negative = std::move(neg_b).build();

  RenderOptions options;
  options.max_time = 10;
  options.max_position = 4;
  options.rows = 20;
  options.columns = 41;
  std::cout << "robot 0 = positive trajectory, robot 1 = negative:\n";
  std::cout << render_space_time(Fleet({positive, negative}), options)
            << '\n';

  TablePrinter table({"trajectory", "visit order of {-x,-1,1,x}", "class"});
  for (const auto& [name, t] :
       std::vector<std::pair<std::string, const Trajectory*>>{
           {"solid (positive)", &positive}, {"dotted (negative)", &negative}}) {
    const std::array<Real, 4> times = checkpoint_times(*t, 3);
    // Render the order by sorting checkpoint labels by time.
    struct Entry { Real time; std::string label; };
    std::vector<Entry> entries{{times[0], "-x"}, {times[1], "-1"},
                               {times[2], "1"}, {times[3], "x"}};
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.time < b.time; });
    std::vector<std::string> labels;
    for (const Entry& e : entries) labels.push_back(e.label);
    table.add_row({name, join(labels, ", "),
                   to_string(classify_trajectory(*t, 3))});
  }
  table.print(std::cout);
}

void figure7(const int n, const Real alpha) {
  std::cout << "\nFigure 7: adversary placements for n = " << n
            << ", alpha = " << fixed(alpha, 4) << "\n\n";
  TablePrinter table({"i", "x_i = 2^(i+1)/((a-1)^i (a-3))",
                      "x_i / x_{i+1}"});
  const std::vector<Real> p = adversary_placements(n, alpha);
  // p = {1, x_{n-1}, ..., x_0}; print in paper order x_0 first.
  for (int i = 0; i < n; ++i) {
    const Real xi = theorem2_placement(n, alpha, i);
    const std::string ratio =
        (i + 1 < n)
            ? fixed(xi / theorem2_placement(n, alpha, i + 1), 4)
            : "-";
    table.add_row({cell(static_cast<long long>(i)), fixed(xi, 4), ratio});
  }
  table.print(std::cout);
  std::cout << "Eq. 16 predicts a constant ratio (alpha-1)/2 = "
            << fixed((alpha - 1) / 2, 4) << "; smallest placement "
            << fixed(p[1], 4) << " > 1 (Eq. 20).\n";
}

void experiment_e2() {
  std::cout << "\nExperiment E2: the Theorem-2 adversary vs strategies "
               "(forced ratio must reach alpha)\n\n";
  TablePrinter table({"strategy", "n", "f", "alpha", "forced ratio",
                      "target chosen", "verdict"});
  table.set_alignment(0, Align::kLeft);

  Series series{"forced_ratio", {}, {}};
  int row_index = 0;
  const auto attack = [&](const SearchStrategy& strategy, const int n,
                          const int f) {
    const Real alpha = comfortable_alpha(n, 0.8L);
    const Fleet fleet =
        strategy.build_fleet(largest_placement(alpha) * 4);
    const GameResult game = play_theorem2_game(fleet, f, alpha);
    const bool forced = game.forced_ratio >= alpha - 1e-9L;
    table.add_row({strategy.name(), cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(f)), fixed(alpha, 4),
                   fixed(game.forced_ratio, 4),
                   fixed(game.best.target, 3),
                   forced ? "forced >= alpha" : "ESCAPED (n >= 2f+2)"});
    series.x.push_back(++row_index);
    series.y.push_back(game.forced_ratio);
  };

  for (const auto& [n, f] :
       std::vector<std::pair<int, int>>{{3, 1}, {3, 2}, {5, 2}, {5, 3},
                                        {7, 3}}) {
    const ProportionalAlgorithm algo(n, f);
    attack(algo, n, f);
  }
  attack(GroupDoubling(3, 1), 3, 1);
  attack(UniformOffsetZigzag(3, 1), 3, 1);
  // Control: with n >= 2f+2 the bound does not apply and the split wins.
  attack(TwoGroupSplit(4, 1), 4, 1);
  table.print(std::cout);

  bench::csv_header("fig6_fig7_forced_ratios");
  write_series_csv(std::cout, {series});
}

void parallel_game_timing() {
  // The placement scan is the game's hot loop; attack_turning_points
  // densifies it (every turning-point right-limit becomes a target).
  // Play the same game serially (threads = 1) and on the pool
  // (threads = 0): the forced ratios must match exactly — the scan
  // reduces into input order — and the parallel run should be faster on
  // a multi-core machine.
  std::cout << "\nParallel placement scan: the E2 game with "
               "attack_turning_points, serial vs pool\n\n";
  const int n = 7, f = 3;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(largest_placement(alpha) * 4);

  const auto timed_game = [&](const int threads) {
    GameOptions options;
    options.attack_turning_points = true;
    options.keep_outcomes = false;
    options.threads = threads;
    const auto start = std::chrono::steady_clock::now();
    const GameResult game = play_theorem2_game(fleet, f, alpha, options);
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    return std::make_pair(game, elapsed.count());
  };
  const auto [serial, serial_ms] = timed_game(1);
  const auto [parallel, parallel_ms] = timed_game(0);
  const bool identical = serial.forced_ratio == parallel.forced_ratio &&
                         serial.best.target == parallel.best.target;

  TablePrinter table({"scan", "threads", "forced ratio", "target", "ms"});
  table.set_alignment(0, Align::kLeft);
  table.add_row({"serial", "1", fixed(serial.forced_ratio, 4),
                 fixed(serial.best.target, 3), fixed(serial_ms, 1)});
  table.add_row({"pool", cell(static_cast<long long>(resolve_thread_count(0))),
                 fixed(parallel.forced_ratio, 4),
                 fixed(parallel.best.target, 3), fixed(parallel_ms, 1)});
  table.print(std::cout);
  std::cout << "speedup " << fixed(serial_ms / parallel_ms, 2)
            << "x, results "
            << (identical ? "identical" : "DIVERGED") << '\n';
}

void body() {
  figure6();
  figure7(5, comfortable_alpha(5, 0.9L));
  experiment_e2();
  parallel_game_timing();
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Figures 6 & 7 + Theorem 2",
      "lower-bound trajectories, placements and the adversarial game",
      body);
}

// bench_ablation_beta — ablation A1: how sensitive is the competitive
// ratio to the cone parameter?  For several (n, f) pairs we sweep beta
// around the optimum beta* = (4f+4)/n - 1 and report both Lemma 5's
// closed form and the exact simulator's measurement — the two must track
// each other, the minimum must sit at beta*, and the curve shows how
// much a mis-tuned expansion factor costs.
#include <iostream>

#include "analysis/grid.hpp"
#include "analysis/optimize.hpp"
#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/cr_eval.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void sweep(const int n, const int f, std::vector<Series>& all_series) {
  const Real beta_star = optimal_beta(n, f);
  std::cout << "S_beta(" << n << ") with f = " << f
            << ": beta* = " << fixed(beta_star, 4)
            << ", CR(beta*) = " << fixed(algorithm_cr(n, f), 4) << "\n\n";

  TablePrinter table({"beta", "Lemma 5 closed form", "measured CR",
                      "penalty vs beta*"});
  Series closed{"closed_n" + std::to_string(n) + "_f" + std::to_string(f),
                {},
                {}};
  Series meas{"measured_n" + std::to_string(n) + "_f" + std::to_string(f),
              {},
              {}};

  for (const Real factor :
       {0.25L, 0.5L, 0.75L, 0.9L, 1.0L, 1.1L, 1.25L, 1.5L, 2.0L, 3.0L}) {
    const Real beta = 1 + (beta_star - 1) * factor;
    const Real formula = schedule_cr(n, f, beta);
    const ProportionalAlgorithm schedule(n, f, beta);
    const Fleet fleet = schedule.build_fleet(800);
    const Real measured = measure_cr(fleet, f, {.window_hi = 8}).cr;
    std::string gap = "+";
    gap += fixed(formula - algorithm_cr(n, f), 4);
    table.add_row({fixed(beta, 4), fixed(formula, 5), fixed(measured, 5),
                   std::move(gap)});
    closed.x.push_back(beta);
    closed.y.push_back(formula);
    meas.x.push_back(beta);
    meas.y.push_back(measured);
  }
  table.print(std::cout);

  // Numeric re-derivation of the optimum (Theorem 1's calculus step).
  const MinimizeResult optimum = golden_section(
      [n, f](const Real beta) { return schedule_cr(n, f, beta); },
      1.000001L, 1 + (beta_star - 1) * 8);
  std::cout << "golden-section argmin beta = " << fixed(optimum.x, 6)
            << " (closed form " << fixed(beta_star, 6) << ")\n\n";

  all_series.push_back(std::move(closed));
  all_series.push_back(std::move(meas));
}

void body() {
  std::vector<Series> all_series;
  sweep(3, 1, all_series);
  sweep(5, 3, all_series);
  sweep(5, 2, all_series);
  bench::csv_header("ablation_beta");
  write_series_csv(std::cout, all_series);
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Ablation A1", "competitive ratio vs cone parameter beta", body);
}

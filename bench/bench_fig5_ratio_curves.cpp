// bench_fig5_ratio_curves — regenerates Figure 5 of the paper.
//
// Left plot:  (2 + 2/n)^(1 + 1/n) (2/n)^(-1/n) + 1  for n = 3..20
//             — the CR of A(2f+1, f) as a function of n = 2f+1.
// Right plot: (4/a)^(2/a) (4/a - 2)^(1 - 2/a) + 1  for a in (1, 2)
//             — the asymptotic CR when n = a*f robots.
// Each series is printed as a table, an ASCII sparkline and a CSV block;
// the odd-n points of the left curve are cross-checked against Theorem 1.
#include <chrono>
#include <cmath>
#include <iostream>
#include <utility>
#include <vector>

#include "analysis/grid.hpp"
#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/batch.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void sparkline(const std::vector<Real>& ys, const Real lo, const Real hi) {
  const int height = 12;
  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(ys.size(), ' '));
  for (std::size_t i = 0; i < ys.size(); ++i) {
    Real fraction = (ys[i] - lo) / (hi - lo);
    fraction = std::max(Real{0}, std::min(Real{1}, fraction));
    const int row =
        height - 1 - static_cast<int>(std::lround(
                         fraction * static_cast<Real>(height - 1)));
    rows[static_cast<std::size_t>(row)][i] = '*';
  }
  for (const std::string& row : rows) std::cout << row << '\n';
}

void body() {
  // ---- Left: n = 3..20. ----
  std::cout << "Figure 5 (left): CR of the proportional schedule for "
               "n = 2f+1 robots, n = 3..20\n\n";
  TablePrinter left({"n", "(2+2/n)^(1+1/n) (2/n)^(-1/n) + 1",
                     "Theorem 1 (odd n)"});
  Series left_series{"fig5_left", {}, {}};
  for (const int n : int_range(3, 20)) {
    const Real nn = static_cast<Real>(n);
    const Real value =
        std::pow(2 + 2 / nn, 1 + 1 / nn) * std::pow(2 / nn, -1 / nn) + 1;
    std::string vs_theorem = "-";
    if (n % 2 == 1) {
      vs_theorem = fixed(algorithm_cr(n, (n - 1) / 2), 4);
    }
    left.add_row({cell(static_cast<long long>(n)), fixed(value, 4),
                  vs_theorem});
    left_series.x.push_back(nn);
    left_series.y.push_back(value);
  }
  left.print(std::cout);
  std::cout << "\nshape check (paper: decreasing from ~5.23 toward 3):\n";
  sparkline(left_series.y, 3, 5.3L);

  // ---- Right: a in (1, 2). ----
  std::cout << "\nFigure 5 (right): asymptotic CR for n = a*f robots, "
               "1 < a < 2\n\n";
  TablePrinter right({"a", "(4/a)^(2/a) (4/a-2)^(1-2/a) + 1"});
  Series right_series{"fig5_right", {}, {}};
  for (const Real a : open_linspace(1, 2, 19)) {
    const Real value = asymptotic_cr(a);
    right.add_row({fixed(a, 2), fixed(value, 4)});
    right_series.x.push_back(a);
    right_series.y.push_back(value);
  }
  right.print(std::cout);
  std::cout << "\nshape check (paper: decreasing from 9 at a->1 to 3 at "
               "a->2):\n";
  sparkline(right_series.y, 3, 9);

  // ---- Measured cross-check: batched empirical CR vs the curve. ----
  // The left-panel points are re-derived by MEASURING actual A(2f+1, f)
  // fleets with the batched evaluator, once serially and once on the
  // pool; both runs must agree exactly and the parallel one should be
  // faster on a multi-core machine.
  std::cout << "\nMeasured cross-check: measure_cr_batch on A(2f+1, f) "
               "fleets, serial vs parallel\n\n";
  std::vector<int> ns;
  std::vector<Fleet> fleets;
  for (int n = 3; n <= 9; n += 2) {
    ns.push_back(n);
    fleets.push_back(
        ProportionalAlgorithm(n, (n - 1) / 2).build_fleet(2000));
  }
  std::vector<CrBatchJob> jobs;
  for (std::size_t i = 0; i < fleets.size(); ++i) {
    jobs.push_back({&fleets[i], (ns[i] - 1) / 2,
                    {.window_hi = 40, .interior_samples = 16}});
  }
  const auto timed_batch = [&jobs](const int threads) {
    const auto start = std::chrono::steady_clock::now();
    std::vector<CrEvalResult> results =
        measure_cr_batch(jobs, {.threads = threads});
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    return std::make_pair(std::move(results), elapsed.count());
  };
  const auto [serial, serial_ms] = timed_batch(1);
  const auto [parallel, parallel_ms] = timed_batch(0);

  TablePrinter check({"n", "measured CR", "Theorem 1", "serial == parallel"});
  Series measured_series{"fig5_measured", {}, {}};
  bool all_identical = true;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const bool identical = serial[i].cr == parallel[i].cr &&
                           serial[i].argmax == parallel[i].argmax;
    all_identical = all_identical && identical;
    check.add_row({cell(static_cast<long long>(ns[i])),
                   fixed(parallel[i].cr, 4),
                   fixed(algorithm_cr(ns[i], (ns[i] - 1) / 2), 4),
                   identical ? "yes" : "NO"});
    measured_series.x.push_back(static_cast<Real>(ns[i]));
    measured_series.y.push_back(parallel[i].cr);
  }
  check.print(std::cout);
  std::cout << "\ntimings: serial " << fixed(serial_ms, 1)
            << " ms, parallel (" << resolve_thread_count(0) << " threads) "
            << fixed(parallel_ms, 1) << " ms, speedup "
            << fixed(serial_ms / parallel_ms, 2) << "x, results "
            << (all_identical ? "identical" : "DIVERGED") << '\n';

  bench::csv_header("fig5_curves");
  write_series_csv(std::cout, {left_series, right_series, measured_series});
}

}  // namespace

int main() {
  return linesearch::bench::run("Figure 5",
                                "competitive-ratio curves (both panels)",
                                body);
}

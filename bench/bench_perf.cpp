// bench_perf — google-benchmark microbenchmarks of the library's hot
// kernels (experiment P1): trajectory construction, first-visit queries,
// fault-aware detection, empirical CR evaluation, root solving and the
// adversarial game.  These quantify the cost of the exact-math substrate
// (no discretization) that all reproductions run on.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "util/jsonio.hpp"

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/batch.hpp"
#include "eval/cr_eval.hpp"
#include "eval/exact.hpp"
#include "eval/visit_cache.hpp"
#include "runtime/world.hpp"
#include "sim/serialize.hpp"
#include "sim/zigzag.hpp"
#include "star/search.hpp"
#include "util/parallel.hpp"

namespace {

using namespace linesearch;

void BM_ZigzagConstruction(benchmark::State& state) {
  const Real coverage = static_cast<Real>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_origin_zigzag(
        {.beta = 3, .first_turn = 1, .min_coverage = coverage}));
  }
}
BENCHMARK(BM_ZigzagConstruction)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_FleetConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ProportionalAlgorithm algo(n, n - 1);  // beta = 3 family
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.build_fleet(1000));
  }
}
BENCHMARK(BM_FleetConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_FirstVisitQuery(benchmark::State& state) {
  const Trajectory t = make_origin_zigzag(
      {.beta = 3, .first_turn = 1, .min_coverage = 1e6L});
  Real x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.first_visit_time(x));
    x = (x < 9e5L) ? x * 1.37L : 1;
  }
}
BENCHMARK(BM_FirstVisitQuery);

void BM_DetectionTime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = n - 1;
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(10000);
  Real x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.detection_time(x, f));
    x = (x < 9e3L) ? x * 1.37L : 1;
  }
}
BENCHMARK(BM_DetectionTime)->Arg(3)->Arg(11)->Arg(41);

void BM_MeasureCr(benchmark::State& state) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr(fleet, 3, {.window_hi = 32}));
  }
}
BENCHMARK(BM_MeasureCr);

/// The dense (f, window) job list both sweep benchmarks time: every
/// fault budget of an A(7, 4) fleet crossed with three windows.  This is
/// the grid shape bench_fig5/analysis sweeps evaluate for real.
std::vector<CrBatchJob> dense_cr_jobs(const Fleet& fleet) {
  std::vector<CrBatchJob> jobs;
  for (int f = 0; f < static_cast<int>(fleet.size()); ++f) {
    for (const Real window : {12.0L, 24.0L, 48.0L}) {
      jobs.push_back(
          {&fleet, f, {.window_hi = window, .interior_samples = 16}});
    }
  }
  return jobs;
}

void BM_DenseCrSweepSerial(benchmark::State& state) {
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const std::vector<CrBatchJob> jobs = dense_cr_jobs(fleet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr_batch(jobs, {.threads = 1}));
  }
}
BENCHMARK(BM_DenseCrSweepSerial)->Unit(benchmark::kMillisecond);

void BM_DenseCrSweepParallel(benchmark::State& state) {
  // Compare against BM_DenseCrSweepSerial for the speedup; the results
  // are verified identical (cr and argmax) before any timing happens.
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const std::vector<CrBatchJob> jobs = dense_cr_jobs(fleet);
  const std::vector<CrEvalResult> serial =
      measure_cr_batch(jobs, {.threads = 1});
  const std::vector<CrEvalResult> parallel =
      measure_cr_batch(jobs, {.threads = 0});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (parallel[i].cr != serial[i].cr ||
        parallel[i].argmax != serial[i].argmax) {
      state.SkipWithError("parallel batch diverged from serial");
      return;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr_batch(jobs, {.threads = 0}));
  }
  state.counters["threads"] =
      static_cast<double>(resolve_thread_count(0));
}
BENCHMARK(BM_DenseCrSweepParallel)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AnalyticFleetConstruction(benchmark::State& state) {
  // Counterpart of BM_FleetConstruction: the analytic backend's O(1)
  // per-robot state makes construction independent of the horizon.
  const int n = static_cast<int>(state.range(0));
  const ProportionalAlgorithm algo(n, n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.build_unbounded_fleet());
  }
}
BENCHMARK(BM_AnalyticFleetConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_AnalyticCrSweep(benchmark::State& state) {
  // measure_cr over a 2^20 window on the unbounded analytic fleet: the
  // probe grid and every visit query come from closed forms, no dense
  // ladder is ever materialized.
  const ProportionalAlgorithm algo(12, 11);
  const Fleet fleet = algo.build_unbounded_fleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr(fleet, 11, {.window_hi = 1048576}));
  }
}
BENCHMARK(BM_AnalyticCrSweep)->Unit(benchmark::kMillisecond);

void BM_VisitCacheHit(benchmark::State& state) {
  // Steady-state memo hit vs BM_DetectionTime's full recomputation.
  const ProportionalAlgorithm algo(11, 10);
  const Fleet fleet = algo.build_fleet(10000);
  const FleetVisitCache cache(fleet);
  Real x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.detection_time(x, 10));
    x = (x < 9e3L) ? x * 1.37L : 1;
  }
}
BENCHMARK(BM_VisitCacheHit);

void BM_Theorem2Root(benchmark::State& state) {
  int n = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem2_alpha(n));
    n = (n < 4096) ? n * 2 : 2;
  }
}
BENCHMARK(BM_Theorem2Root);

void BM_ClosedFormCr(benchmark::State& state) {
  int f = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm_cr(2 * f + 1, f));
    f = (f < 1000) ? f + 1 : 1;
  }
}
BENCHMARK(BM_ClosedFormCr);

void BM_CertifiedCr(benchmark::State& state) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(certified_cr(fleet, 3, {.window_hi = 32}));
  }
}
BENCHMARK(BM_CertifiedCr);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet_from_csv(fleet_to_csv(fleet)));
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_OnlineExecution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_proportional_controllers(n, n - 1, 1000));
  }
}
BENCHMARK(BM_OnlineExecution)->Arg(3)->Arg(11);

void BM_AdversarialGame(benchmark::State& state) {
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(largest_placement(alpha) * 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(play_theorem2_game(fleet, f, alpha));
  }
}
BENCHMARK(BM_AdversarialGame);

void BM_StarDetection(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const StarFleet fleet = star_proportional(m, m + 1, 1.3L, 5000);
  Real d = 1;
  int ray = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.detection_time({ray, d}, 1));
    d = (d < 4e3L) ? d * 1.37L : 1;
    ray = (ray + 1) % m;
  }
}
BENCHMARK(BM_StarDetection)->Arg(3)->Arg(5);

/// Machine-readable artifact for CI: a few representative workloads
/// timed with steady_clock plus DETERMINISTIC checksums (sums of cr and
/// argmax over the dense job grid), so regressions in either wall-clock
/// or results show up as a JSON diff.  `--timings-only` skips the
/// google-benchmark suite and emits only this file — cheap enough to run
/// on every CI push.
void write_perf_json(const std::string& path) {
  using Clock = std::chrono::steady_clock;
  const auto millis_since = [](const Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const std::vector<CrBatchJob> jobs = dense_cr_jobs(fleet);

  const auto checksum = [](const std::vector<CrEvalResult>& results) {
    Real sum = 0;
    for (const CrEvalResult& r : results) sum += r.cr + r.argmax;
    return sum;
  };

  const auto serial_start = Clock::now();
  const std::vector<CrEvalResult> serial =
      measure_cr_batch(jobs, {.threads = 1});
  const double serial_ms = millis_since(serial_start);

  const auto parallel_start = Clock::now();
  const std::vector<CrEvalResult> parallel =
      measure_cr_batch(jobs, {.threads = 0});
  const double parallel_ms = millis_since(parallel_start);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].cr == parallel[i].cr &&
                serial[i].argmax == parallel[i].argmax;
  }

  const auto certified_start = Clock::now();
  const ExactCrResult certified = certified_cr(fleet, 4, {.window_hi = 32});
  const double certified_ms = millis_since(certified_start);

  const Real alpha = comfortable_alpha(3, 0.8L);
  const Fleet game_fleet =
      ProportionalAlgorithm(3, 1).build_fleet(largest_placement(alpha) * 4);
  const auto game_start = Clock::now();
  const GameResult game = play_theorem2_game(game_fleet, 1, alpha);
  const double game_ms = millis_since(game_start);

  // analytic_sweep: the same A(12, 11) schedule built dense (waypoints
  // materialized out to 4 * 2^20) and analytic (O(1) closed-form state),
  // then evaluated over window_hi = 2^20.  Checksums must agree bit for
  // bit; the build-time and footprint ratios are the headline wins of
  // the analytic backend layer.  Builds are timed over many iterations
  // because a single build is below clock resolution.
  const ProportionalAlgorithm wide(12, 11);
  constexpr Real kSweepWindowHi = 1048576;  // 2^20 (power of two: exact)
  constexpr int kBuildReps = 512;

  const auto dense_build_start = Clock::now();
  for (int rep = 0; rep < kBuildReps - 1; ++rep) {
    benchmark::DoNotOptimize(wide.build_fleet(4 * kSweepWindowHi));
  }
  const Fleet wide_dense = wide.build_fleet(4 * kSweepWindowHi);
  const double dense_build_ms = millis_since(dense_build_start);

  const auto analytic_build_start = Clock::now();
  for (int rep = 0; rep < kBuildReps - 1; ++rep) {
    benchmark::DoNotOptimize(wide.build_unbounded_fleet());
  }
  const Fleet wide_analytic = wide.build_unbounded_fleet();
  const double analytic_build_ms = millis_since(analytic_build_start);

  const auto footprint = [](const Fleet& swept) {
    std::size_t bytes = 0;
    for (RobotId id = 0; id < swept.size(); ++id) {
      bytes += swept.robot(id).source().footprint_bytes();
    }
    return bytes;
  };

  const CrEvalOptions sweep_options{.window_hi = kSweepWindowHi};
  const auto dense_sweep_start = Clock::now();
  const CrEvalResult dense_sweep = measure_cr(wide_dense, 11, sweep_options);
  const double dense_sweep_ms = millis_since(dense_sweep_start);
  const auto analytic_sweep_start = Clock::now();
  const CrEvalResult analytic_sweep =
      measure_cr(wide_analytic, 11, sweep_options);
  const double analytic_sweep_ms = millis_since(analytic_sweep_start);
  const bool sweep_identical =
      dense_sweep.cr == analytic_sweep.cr &&
      dense_sweep.argmax == analytic_sweep.argmax;

  std::ofstream out(path);
  JsonWriter json(out);
  json.begin_object();
  json.field("schema", "linesearch-bench-perf/1");
  json.field("threads", static_cast<int>(resolve_thread_count(0)));
  json.key("workloads").begin_array();

  const auto workload = [&json](const char* name, const double ms,
                                const Real value) {
    json.begin_object();
    json.field("name", name);
    json.field("millis", static_cast<Real>(ms));
    json.field("checksum", value);
    json.end_object();
  };
  workload("dense_cr_sweep_serial", serial_ms, checksum(serial));
  workload("dense_cr_sweep_parallel", parallel_ms, checksum(parallel));
  workload("certified_cr_a74", certified_ms, certified.cr);
  workload("theorem2_game_a31", game_ms, game.forced_ratio);
  workload("analytic_sweep_dense", dense_sweep_ms,
           dense_sweep.cr + dense_sweep.argmax);
  workload("analytic_sweep_analytic", analytic_sweep_ms,
           analytic_sweep.cr + analytic_sweep.argmax);
  json.end_array();
  json.field("parallel_identical_to_serial", identical);
  json.key("analytic_sweep").begin_object();
  json.field("window_hi", kSweepWindowHi);
  json.field("build_reps", kBuildReps);
  json.field("dense_build_millis", static_cast<Real>(dense_build_ms));
  json.field("analytic_build_millis", static_cast<Real>(analytic_build_ms));
  json.field("dense_footprint_bytes",
             static_cast<Real>(footprint(wide_dense)));
  json.field("analytic_footprint_bytes",
             static_cast<Real>(footprint(wide_analytic)));
  json.field("analytic_identical_to_dense", sweep_identical);
  json.end_object();
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool timings_only = false;
  std::string json_path = "BENCH_perf.json";
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timings-only") {
      timings_only = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  if (!timings_only) {
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  write_perf_json(json_path);
  std::cerr << "wrote " << json_path << '\n';
  return 0;
}

// bench_perf — google-benchmark microbenchmarks of the library's hot
// kernels (experiment P1): trajectory construction, first-visit queries,
// fault-aware detection, empirical CR evaluation, root solving and the
// adversarial game.  These quantify the cost of the exact-math substrate
// (no discretization) that all reproductions run on.
#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/batch.hpp"
#include "eval/byzantine.hpp"
#include "eval/cr_eval.hpp"
#include "eval/exact.hpp"
#include "eval/expectation.hpp"
#include "eval/kernels.hpp"
#include "eval/visit_cache.hpp"
#include "obs/perf_report.hpp"
#include "runtime/injector.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/world.hpp"
#include "sim/serialize.hpp"
#include "sim/zigzag.hpp"
#include "star/search.hpp"
#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/parallel.hpp"

namespace {

using namespace linesearch;

void BM_ZigzagConstruction(benchmark::State& state) {
  const Real coverage = static_cast<Real>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_origin_zigzag(
        {.beta = 3, .first_turn = 1, .min_coverage = coverage}));
  }
}
BENCHMARK(BM_ZigzagConstruction)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_FleetConstruction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ProportionalAlgorithm algo(n, n - 1);  // beta = 3 family
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.build_fleet(1000));
  }
}
BENCHMARK(BM_FleetConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_FirstVisitQuery(benchmark::State& state) {
  const Trajectory t = make_origin_zigzag(
      {.beta = 3, .first_turn = 1, .min_coverage = 1e6L});
  Real x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.first_visit_time(x));
    x = (x < 9e5L) ? x * 1.37L : 1;
  }
}
BENCHMARK(BM_FirstVisitQuery);

void BM_DetectionTime(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int f = n - 1;
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(10000);
  Real x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.detection_time(x, f));
    x = (x < 9e3L) ? x * 1.37L : 1;
  }
}
BENCHMARK(BM_DetectionTime)->Arg(3)->Arg(11)->Arg(41);

void BM_MeasureCr(benchmark::State& state) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr(fleet, 3, {.window_hi = 32}));
  }
}
BENCHMARK(BM_MeasureCr);

/// The dense (f, window) job list both sweep benchmarks time: every
/// fault budget of an A(7, 4) fleet crossed with three windows.  This is
/// the grid shape bench_fig5/analysis sweeps evaluate for real.
std::vector<CrBatchJob> dense_cr_jobs(const Fleet& fleet) {
  std::vector<CrBatchJob> jobs;
  for (int f = 0; f < static_cast<int>(fleet.size()); ++f) {
    for (const Real window : {12.0L, 24.0L, 48.0L}) {
      jobs.push_back(
          {&fleet, f, {.window_hi = window, .interior_samples = 16}});
    }
  }
  return jobs;
}

void BM_DenseCrSweepSerial(benchmark::State& state) {
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const std::vector<CrBatchJob> jobs = dense_cr_jobs(fleet);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr_batch(jobs, {.threads = 1}));
  }
}
BENCHMARK(BM_DenseCrSweepSerial)->Unit(benchmark::kMillisecond);

void BM_DenseCrSweepParallel(benchmark::State& state) {
  // Compare against BM_DenseCrSweepSerial for the speedup; the results
  // are verified identical (cr and argmax) before any timing happens.
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const std::vector<CrBatchJob> jobs = dense_cr_jobs(fleet);
  const std::vector<CrEvalResult> serial =
      measure_cr_batch(jobs, {.threads = 1});
  const std::vector<CrEvalResult> parallel =
      measure_cr_batch(jobs, {.threads = 0});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (parallel[i].cr != serial[i].cr ||
        parallel[i].argmax != serial[i].argmax) {
      state.SkipWithError("parallel batch diverged from serial");
      return;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr_batch(jobs, {.threads = 0}));
  }
  state.counters["threads"] =
      static_cast<double>(resolve_thread_count(0));
}
BENCHMARK(BM_DenseCrSweepParallel)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AnalyticFleetConstruction(benchmark::State& state) {
  // Counterpart of BM_FleetConstruction: the analytic backend's O(1)
  // per-robot state makes construction independent of the horizon.
  const int n = static_cast<int>(state.range(0));
  const ProportionalAlgorithm algo(n, n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.build_unbounded_fleet());
  }
}
BENCHMARK(BM_AnalyticFleetConstruction)->Arg(2)->Arg(8)->Arg(32);

void BM_AnalyticCrSweep(benchmark::State& state) {
  // measure_cr over a 2^20 window on the unbounded analytic fleet: the
  // probe grid and every visit query come from closed forms, no dense
  // ladder is ever materialized.
  const ProportionalAlgorithm algo(12, 11);
  const Fleet fleet = algo.build_unbounded_fleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_cr(fleet, 11, {.window_hi = 1048576}));
  }
}
BENCHMARK(BM_AnalyticCrSweep)->Unit(benchmark::kMillisecond);

void BM_KernelCrScalar(benchmark::State& state) {
  // Scalar reference scan: one direct Fleet::detection_time query per
  // probe (allocation + full segment walk each).  Compare against
  // BM_KernelCrSoA for the SoA kernel speedup (bench_perf's JSON
  // artifact reports the same race as kernel_sweep_*).
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const CrEvalOptions options{.window_hi = 48, .interior_samples = 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detail::measure_cr_with(
        fleet, 4, options,
        [&fleet](const Real x) { return fleet.detection_time(x, 4); }));
  }
}
BENCHMARK(BM_KernelCrScalar)->Unit(benchmark::kMillisecond);

void BM_KernelCrSoA(benchmark::State& state) {
  // The SoA kernel path on the identical scan (bit-identical result).
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  const CrEvalOptions options{.window_hi = 48, .interior_samples = 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::measure_cr_kernel(fleet, 4, options));
  }
  state.counters["simd"] = kernels::simd_compiled() ? 1 : 0;
}
BENCHMARK(BM_KernelCrSoA)->Unit(benchmark::kMillisecond);

void BM_VisitCacheHit(benchmark::State& state) {
  // Steady-state memo hit vs BM_DetectionTime's full recomputation.
  const ProportionalAlgorithm algo(11, 10);
  const Fleet fleet = algo.build_fleet(10000);
  const FleetVisitCache cache(fleet);
  Real x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.detection_time(x, 10));
    x = (x < 9e3L) ? x * 1.37L : 1;
  }
}
BENCHMARK(BM_VisitCacheHit);

void BM_Theorem2Root(benchmark::State& state) {
  int n = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(theorem2_alpha(n));
    n = (n < 4096) ? n * 2 : 2;
  }
}
BENCHMARK(BM_Theorem2Root);

void BM_ClosedFormCr(benchmark::State& state) {
  int f = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algorithm_cr(2 * f + 1, f));
    f = (f < 1000) ? f + 1 : 1;
  }
}
BENCHMARK(BM_ClosedFormCr);

void BM_CertifiedCr(benchmark::State& state) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(certified_cr(fleet, 3, {.window_hi = 32}));
  }
}
BENCHMARK(BM_CertifiedCr);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const ProportionalAlgorithm algo(5, 3);
  const Fleet fleet = algo.build_fleet(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet_from_csv(fleet_to_csv(fleet)));
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_OnlineExecution(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_proportional_controllers(n, n - 1, 1000));
  }
}
BENCHMARK(BM_OnlineExecution)->Arg(3)->Arg(11);

void BM_InjectedExecution(benchmark::State& state) {
  // Fault-injected online execution vs BM_OnlineExecution's clean run:
  // the injector's per-directive overhead (crash clipping, speed caps,
  // drop bookkeeping) on a mixed random plan.
  const int n = static_cast<int>(state.range(0));
  const auto injector = FaultInjector::random(
      2024, static_cast<std::size_t>(n),
      {.fault_probability = 0.5L, .horizon = 100});
  for (auto _ : state) {
    std::vector<ControllerPtr> team;
    for (int robot = 0; robot < n; ++robot) {
      team.push_back(std::make_unique<ProportionalController>(
          n, n - 1, robot, 1000));
    }
    benchmark::DoNotOptimize(World().execute_team(team, injector));
  }
}
BENCHMARK(BM_InjectedExecution)->Arg(3)->Arg(11);

void BM_DegradedSweep(benchmark::State& state) {
  // The full crash -> detect -> re-plan -> re-measure pipeline over the
  // regime grid (the perf report's degraded_sweep workload).
  DegradedSweepOptions options;
  options.n_max = static_cast<int>(state.range(0));
  options.max_crashes = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(degraded_mode_sweep(options));
  }
}
BENCHMARK(BM_DegradedSweep)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_ByzantineSweep(benchmark::State& state) {
  // The quorum-CR scan of every regime pair against the arXiv:1611.08209
  // closed form (the perf report's byzantine_sweep workload; also
  // reachable alone via --workload byzantine).
  ByzantineSweepOptions options;
  options.n_max = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(byzantine_sweep(options));
  }
}
BENCHMARK(BM_ByzantineSweep)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_ProbabilisticSweep(benchmark::State& state) {
  // The exact expected-CR engine over the regime grid times a p grid
  // (the perf report's probabilistic_sweep workload; also reachable
  // alone via --workload probabilistic).  Every row here is a
  // closed-form geometric-ladder summation — no Monte Carlo.
  ExpectationSweepOptions options;
  options.n_max = static_cast<int>(state.range(0));
  options.p_count = 3;
  options.p_max = 0.4L;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expectation_sweep(options));
  }
}
BENCHMARK(BM_ProbabilisticSweep)
    ->Arg(4)
    ->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_ServiceQuery(benchmark::State& state) {
  // One NDJSON request through the in-process wire path (parse ->
  // canonicalize -> service -> render).  Arg(0) runs with the result LRU
  // on (steady-state hits), Arg(1) with caching off (every request
  // re-evaluates) — the gap is what the cache buys per query.
  const bool no_cache = state.range(0) != 0;
  svc::QueryServerOptions options;
  options.service.cache_results = !no_cache;
  svc::QueryServer server(options);
  const std::string request =
      R"({"id": 1, "op": "cr", "n": 5, "f": 2, "window_hi": 16})";
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle_line(request));
  }
  state.counters["cache"] = no_cache ? 0 : 1;
}
BENCHMARK(BM_ServiceQuery)->Arg(0)->Arg(1);

void BM_AdversarialGame(benchmark::State& state) {
  const int n = 3, f = 1;
  const Real alpha = comfortable_alpha(n, 0.8L);
  const ProportionalAlgorithm algo(n, f);
  const Fleet fleet = algo.build_fleet(largest_placement(alpha) * 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(play_theorem2_game(fleet, f, alpha));
  }
}
BENCHMARK(BM_AdversarialGame);

void BM_StarDetection(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const StarFleet fleet = star_proportional(m, m + 1, 1.3L, 5000);
  Real d = 1;
  int ray = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.detection_time({ray, d}, 1));
    d = (d < 4e3L) ? d * 1.37L : 1;
    ray = (ray + 1) % m;
  }
}
BENCHMARK(BM_StarDetection)->Arg(3)->Arg(5);

}  // namespace

int main(int argc, char** argv) {
  bool timings_only = false;
  std::string json_path = "BENCH_perf.json";
  std::string workload;

  CliParser cli("bench_perf",
                "microbenchmark the hot kernels and write the "
                "BENCH_perf.json artifact");
  cli.add_flag("timings-only", &timings_only,
               "skip the microbenchmarks' checksum workloads in the JSON "
               "artifact");
  cli.add_option("json", &json_path, "PATH",
                 "artifact output path (default BENCH_perf.json)");
  cli.add_option(
      "workload", &workload, "NAME",
      "narrow the microbenchmark run: "
      "byzantine|degraded|service|probabilistic");
  // google-benchmark owns everything spelled --benchmark_*.
  cli.add_passthrough_prefix("--benchmark_");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << '\n' << cli.usage();
    return 2;
  }

  // --workload narrows the microbenchmark run to one family; the JSON
  // artifact below still carries every summary object (including the
  // schema /6 svc_load capacity numbers), so a focused run stays a
  // complete report.
  static std::string filter;
  std::vector<char*> args;
  args.push_back(argv[0]);
  if (!workload.empty()) {
    if (workload == "byzantine") {
      filter = "--benchmark_filter=BM_ByzantineSweep";
    } else if (workload == "degraded") {
      filter = "--benchmark_filter=BM_DegradedSweep";
    } else if (workload == "service") {
      filter = "--benchmark_filter=BM_ServiceQuery";
    } else if (workload == "probabilistic") {
      filter = "--benchmark_filter=BM_ProbabilisticSweep";
    } else {
      std::cerr << "bench_perf: unknown --workload '" << workload
                << "' (expected byzantine|degraded|service|probabilistic)\n";
      return 1;
    }
    args.push_back(filter.data());
  }
  // Forward the collected --benchmark_* args unparsed.
  std::vector<std::string> passthrough = cli.passthrough();
  for (std::string& arg : passthrough) args.push_back(arg.data());
  int filtered_argc = static_cast<int>(args.size());

  if (!timings_only) {
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  // The JSON artifact lives in the library (obs/perf_report) so tests
  // can pin its schema; --timings-only genuinely skips the checksum
  // workloads there (it used to run them all regardless of the flag).
  std::ofstream out(json_path);
  obs::write_perf_report(out, {.timings_only = timings_only});
  std::cerr << "wrote " << json_path << '\n';
  return 0;
}

// bench_validation — experiment E1: theory vs exact simulation for every
// (n, f) pair with f < n <= 9, plus the trivial regime.  For each pair
// the paper's best strategy is materialized, its competitive ratio is
// measured by the exact evaluator, and the relative gap to the closed
// form (Theorem 1 / the trivial 1) is reported.  Gaps are expected at
// the 1e-9 level (the supremum is probed as a right-limit).
#include <algorithm>
#include <iostream>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "eval/validation.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  TablePrinter table({"n", "f", "strategy", "theory CR", "measured CR",
                      "probe gap", "certified CR", "exact gap",
                      "lower bound"});
  table.set_alignment(2, Align::kLeft);

  std::vector<std::pair<int, int>> pairs;
  for (int n = 2; n <= 9; ++n) {
    for (int f = 1; f < n; ++f) pairs.emplace_back(n, f);
  }

  Series theory{"theory", {}, {}}, measured{"measured", {}, {}};
  Real worst_gap = 0;
  Real worst_exact_gap = 0;
  int index = 0;
  for (const ValidationRow& row :
       validate_grid(pairs, {.window_hi = 16, .extent_factor = 32})) {
    table.add_row({cell(static_cast<long long>(row.n)),
                   cell(static_cast<long long>(row.f)), row.strategy,
                   fixed(row.theory_cr, 6), fixed(row.measured_cr, 6),
                   scientific(row.relative_gap, 2),
                   fixed(row.certified_cr, 9),
                   scientific(row.certified_gap, 2),
                   fixed(row.lower_bound, 4)});
    worst_gap = std::max(worst_gap, row.relative_gap);
    worst_exact_gap = std::max(worst_exact_gap, row.certified_gap);
    theory.x.push_back(++index);
    theory.y.push_back(row.theory_cr);
    measured.x.push_back(index);
    measured.y.push_back(row.measured_cr);
  }
  table.print(std::cout);
  std::cout << "\nworst probe-method gap over " << index
            << " configurations: " << scientific(worst_gap, 3)
            << (worst_gap < 1e-6L ? "  (PASS: < 1e-6)"
                                  : "  (FAIL: >= 1e-6)")
            << "\nworst certified-method gap: "
            << scientific(worst_exact_gap, 3)
            << (worst_exact_gap < 1e-12L ? "  (PASS: < 1e-12)"
                                         : "  (FAIL: >= 1e-12)")
            << '\n';

  bench::csv_header("validation");
  write_series_csv(std::cout, {theory, measured});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Experiment E1", "Theorem 1 closed forms vs exact simulation", body);
}

// bench_star — extension study E6: search on m rays ("star search"),
// the classic generalization of the line (m = 2), with and without
// faulty robots.
//
// Single robot: the geometric round-robin sweep has worst ratio
// 1 + 2 kappa^m/(kappa-1), minimized at kappa* = m/(m-1) with the
// textbook value 1 + 2 m^m/(m-1)^(m-1) — reproduced by measurement.
//
// Faulty robots on a star is the paper's model transplanted to m rays —
// territory the paper leaves open.  The global-geometric-grid schedule
// (excursion g: depth rho^g, ray g mod m, robot g mod n) is swept over
// rho; the table reports the best measured competitive ratio per
// (m, n, f) next to the single-robot optimum for scale.
#include <algorithm>
#include <iostream>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "star/search.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void single_robot() {
  std::cout << "Single robot on m rays (geometric round-robin sweep):\n\n";
  TablePrinter table({"m", "kappa* = m/(m-1)",
                      "closed form 1+2m^m/(m-1)^(m-1)", "measured CR"});
  Series closed{"closed", {}, {}}, measured{"measured", {}, {}};
  for (int m = 2; m <= 6; ++m) {
    const Real kappa = star_optimal_kappa(m);
    const StarFleet fleet({star_sweep(m, kappa, 1, 20000)});
    const Real cr = star_cr(fleet, m, 0, 16, 160).cr;
    table.add_row({cell(static_cast<long long>(m)), fixed(kappa, 4),
                   fixed(star_optimal_cr(m), 4), fixed(cr, 4)});
    closed.x.push_back(m);
    closed.y.push_back(star_optimal_cr(m));
    measured.x.push_back(m);
    measured.y.push_back(cr);
  }
  table.print(std::cout);
  std::cout << "(measured approaches the closed form from below — the "
               "sup is a limit, as on the line)\n\n";

  bench::csv_header("star_single");
  write_series_csv(std::cout, {closed, measured});
}

void faulty_robots() {
  std::cout << "\nFaulty robots on m rays (global geometric grid, rho "
               "swept; faults adversarial):\n\n";
  TablePrinter table({"m", "n", "f", "best rho", "best measured CR",
                      "single-robot optimum (f=0)"});
  Series best_cr{"faulty_star_cr", {}, {}};
  int index = 0;
  for (const auto& [m, n, f] : std::vector<std::tuple<int, int, int>>{
           {2, 3, 1}, {2, 5, 2}, {3, 4, 1}, {3, 5, 1}, {3, 7, 2},
           {4, 5, 1}, {4, 7, 1}, {5, 6, 1}}) {
    Real best = kInfinity, best_rho = 0;
    for (const Real rho :
         {1.15L, 1.25L, 1.35L, 1.5L, 1.7L, 2.0L, 2.4L, 3.0L}) {
      const StarFleet fleet = star_proportional(m, n, rho, 8000);
      const Real cr = star_cr(fleet, m, f, 8, 64).cr;
      if (cr < best) {
        best = cr;
        best_rho = rho;
      }
    }
    table.add_row({cell(static_cast<long long>(m)),
                   cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(f)), fixed(best_rho, 2),
                   fixed(best, 3), fixed(star_optimal_cr(m), 3)});
    ++index;
    best_cr.x.push_back(index);
    best_cr.y.push_back(best);
  }
  table.print(std::cout);
  std::cout
      << "\nReading: as on the line, parallelism buys fault tolerance "
         "far below the single-robot\n"
      << "bound whenever enough robots serve each ray (n/gcd(n,m) >= "
         "f+1) — and the m = 2 rows\n"
      << "land on the paper's own Theorem-1 values (5.23 for (3,1), "
         "4.43 for (5,2)), a strong\n"
      << "cross-check.  The best per-excursion growth rho SHRINKS as m "
         "grows (each ray is served\n"
      << "less often, so the global grid must stay denser).  Optimal "
         "schedules and tight bounds\n"
      << "for faulty star search are open; these are baseline "
         "measurements for that question.\n";

  bench::csv_header("star_faulty");
  write_series_csv(std::cout, {best_cr});
}

void body() {
  single_robot();
  faulty_robots();
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension E6", "m-ray star search, classic and faulty", body);
}

// bench_turn_cost — extension study A4: searching when turning is
// expensive (cf. Demaine-Fekete-Gal, cited in the paper's related work).
//
// Every reversal costs c extra time units.  The bench sweeps the cone
// parameter beta for A(3,1)-style schedules under increasing c on two
// target windows: near the minimum distance (where the paper's beta*
// remains optimal — every schedule's detector has made the same two
// prefix turns) and far from the origin (where accumulated turn charges
// shift the optimum to wider zig-zags, i.e. smaller beta / larger
// expansion factor).
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/turn_cost.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void sweep_window(const std::string& label, const CrEvalOptions& window,
                  const Real extent, std::vector<Series>& all) {
  const int n = 3, f = 1;
  const std::vector<Real> betas{1.25L, 4.0L / 3, 1.5L, 5.0L / 3, 1.8L,
                                2.0L, 2.5L};
  const std::vector<Real> costs{0, 2, 6, 15, 30};

  std::cout << label << " (window |x| in ["
            << fixed(window.window_lo, 0) << ", "
            << fixed(window.window_hi, 0) << "])\n\n";

  std::vector<std::string> headers{"beta"};
  for (const Real c : costs) headers.push_back("c=" + fixed(c, 0));
  TablePrinter table(std::move(headers));

  // Pre-build each fleet once.
  std::vector<Fleet> fleets;
  for (const Real beta : betas) {
    fleets.push_back(ProportionalAlgorithm(n, f, beta).build_fleet(extent));
  }

  std::vector<std::size_t> argmin(costs.size(), 0);
  std::vector<std::vector<Real>> values(
      costs.size(), std::vector<Real>(betas.size(), 0));
  for (std::size_t bi = 0; bi < betas.size(); ++bi) {
    for (std::size_t ci = 0; ci < costs.size(); ++ci) {
      values[ci][bi] =
          measure_cr_with_turn_cost(fleets[bi], f, costs[ci], window).cr;
      if (values[ci][bi] < values[ci][argmin[ci]]) argmin[ci] = bi;
    }
  }
  for (std::size_t bi = 0; bi < betas.size(); ++bi) {
    std::vector<std::string> row{fixed(betas[bi], 3)};
    for (std::size_t ci = 0; ci < costs.size(); ++ci) {
      std::string cell_text = fixed(values[ci][bi], 3);
      if (argmin[ci] == bi) cell_text += " *";
      row.push_back(std::move(cell_text));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "(* = best beta in that column; paper's beta* = "
            << fixed(optimal_beta(n, f), 4) << ")\n\n";

  for (std::size_t ci = 0; ci < costs.size(); ++ci) {
    Series s{label + "_c" + fixed(costs[ci], 0), {}, {}};
    for (std::size_t bi = 0; bi < betas.size(); ++bi) {
      s.x.push_back(betas[bi]);
      s.y.push_back(values[ci][bi]);
    }
    all.push_back(std::move(s));
  }
}

void body() {
  std::vector<Series> all;
  sweep_window("near-origin window", {.window_lo = 1, .window_hi = 16},
               4000, all);
  sweep_window("far window", {.window_lo = 50, .window_hi = 200}, 30000,
               all);
  std::cout
      << "Reading: in the near-origin window the optimum stays at the "
         "paper's beta* for every c;\n"
      << "in the far window the starred beta drifts left (wider zig-zag) "
         "as turning gets costlier —\n"
      << "the turn-cost model genuinely changes the optimal expansion "
         "factor, exactly as the cited\n"
      << "Demaine-Fekete-Gal line of work suggests.\n";
  bench::csv_header("turn_cost");
  write_series_csv(std::cout, all);
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension A4", "competitive ratio under turn cost", body);
}

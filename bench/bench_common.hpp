// bench_common.hpp — shared scaffolding for the reproduction binaries.
//
// Every bench prints (a) a banner naming the paper artifact it
// regenerates, (b) a fixed-width table with the same rows/series the
// paper reports, and (c) a machine-readable CSV block for plotting.
#pragma once

#include <exception>
#include <iostream>
#include <string>

namespace linesearch::bench {

/// Print the standard banner.
inline void banner(const std::string& artifact, const std::string& what) {
  std::cout << "==============================================================="
               "=\n"
            << artifact << " — " << what << "\n"
            << "Search on a Line with Faulty Robots (PODC 2016) reproduction\n"
            << "==============================================================="
               "=\n\n";
}

/// Run a bench body with uniform error reporting; returns the exit code.
template <typename Body>
int run(const std::string& artifact, const std::string& what,
        const Body& body) {
  try {
    banner(artifact, what);
    body();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench failed: " << e.what() << '\n';
    return 1;
  }
}

/// Delimits the CSV block in the output.
inline void csv_header(const std::string& name) {
  std::cout << "\n--- csv: " << name << " ---\n";
}

}  // namespace linesearch::bench

// bench_discovery — extension study A5: rediscovering Definition 2 by
// black-box optimization.
//
// Fix the optimal cone beta* and let a derivative-free optimizer
// (Nelder-Mead over log-gap shares) place the robots' first turning
// points freely, minimizing the CERTIFIED competitive ratio.  Starting
// from the naive uniform (arithmetic) offsets, the optimizer converges
// to the geometric interleaving s_i = r^i of Definition 2 and to
// Theorem 1's value — the paper's algorithm re-emerges from scratch,
// which is strong numerical evidence that proportionality is not just
// analytically convenient but genuinely optimal within the cone family.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/competitive.hpp"
#include "core/proportional.hpp"
#include "eval/discover.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  TablePrinter table({"n", "f", "uniform-start CR", "optimized CR",
                      "Theorem 1", "target ratio r", "found ratios",
                      "evals"});
  table.set_alignment(6, Align::kLeft);

  Series optimized{"optimized_cr", {}, {}}, theory{"theorem1", {}, {}};
  int index = 0;
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {3, 1}, {3, 2}, {4, 2}, {5, 2}, {5, 3}, {5, 4}, {7, 3}}) {
    const DiscoveryResult found = discover_schedule(n, f);
    const Real r = proportionality_ratio(n, optimal_beta(n, f));

    std::vector<std::string> ratio_strings;
    for (const Real ratio : found.ratios) {
      ratio_strings.push_back(fixed(ratio, 3));
    }
    table.add_row({cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(f)),
                   fixed(found.initial_cr, 4), fixed(found.cr, 6),
                   fixed(algorithm_cr(n, f), 6), fixed(r, 4),
                   join(ratio_strings, " "),
                   cell(static_cast<long long>(found.evaluations))});
    ++index;
    optimized.x.push_back(index);
    optimized.y.push_back(found.cr);
    theory.x.push_back(index);
    theory.y.push_back(algorithm_cr(n, f));
  }
  table.print(std::cout);

  std::cout
      << "\nReading: every 'found ratios' row collapses to the constant "
         "target r — the optimizer\n"
      << "rediscovers Definition 2's geometric interleaving (and "
         "Theorem 1's value) from a naive\n"
      << "uniform start.  Exception worth savoring: for n = f+1 the "
         "uniform start ALREADY sits at\n"
      << "9 and cannot be improved — with beta = 3 every robot's "
         "personal worst is exactly the\n"
      << "cow-path bound, so the interleaving is irrelevant in that "
         "regime (and the found ratios\n"
      << "stay arbitrary).\n";

  bench::csv_header("discovery");
  write_series_csv(std::cout, {optimized, theory});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension A5",
      "black-box optimizer rediscovers the proportional schedule", body);
}

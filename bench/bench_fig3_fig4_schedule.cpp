// bench_fig3_fig4_schedule — regenerates Figures 3 and 4: the
// proportional schedule of n robots inside C_beta (Fig. 3, with the
// Lemma-2 geometric structure of consecutive turning points) and the
// three-robot/one-fault "tower" (Fig. 4): the K(x) = T_2(x)/|x| profile
// whose suprema sit just past turning points.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "core/proportional.hpp"
#include "eval/cr_eval.hpp"
#include "eval/profile.hpp"
#include "sim/recorder.hpp"
#include "sim/svg.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  // ---- Figure 3: proportional schedule for n = 4 robots. ----
  const int n = 4;
  const Real beta = 2;
  const ProportionalSchedule schedule(n, beta, 1);
  const Fleet fleet4 = schedule.build_fleet(40);

  std::cout << "Figure 3: proportional schedule S_beta(" << n
            << ") in C_beta, beta = " << fixed(beta, 2)
            << " (r = " << fixed(schedule.proportionality_ratio(), 4)
            << ", kappa = " << fixed(schedule.expansion_factor(), 4)
            << ")\n\n";
  RenderOptions r3;
  r3.max_time = 36;
  r3.max_position = 16;
  r3.rows = 26;
  r3.columns = 65;
  r3.cone_beta = beta;
  std::cout << render_space_time(fleet4, r3) << '\n';

  TablePrinter turns({"j", "tau_j = r^j", "time beta*tau_j", "robot"});
  turns.set_caption("Lemma 2: the global positive turning sequence");
  for (int j = 0; j < 8; ++j) {
    turns.add_row({cell(static_cast<long long>(j)),
                   fixed(schedule.turning_point(j), 4),
                   fixed(schedule.turning_time(j), 4),
                   cell(static_cast<long long>(schedule.robot_of(j)))});
  }
  turns.print(std::cout);

  // ---- Figure 4: three robots, one faulty — the tower. ----
  const int nf = 3, f = 1;
  const ProportionalAlgorithm algo(nf, f);
  const Fleet fleet3 = algo.build_fleet(3000);

  std::cout << "\nFigure 4: K(x) = T_{f+1}(x)/x for " << algo.name()
            << " (theory CR = " << fixed(algorithm_cr(nf, f), 4) << ")\n"
            << "The profile jumps UP just past each turning point and "
               "decays in between (Lemma 3).\n\n";

  // Sample K(x) densely over the first few turning-point periods.
  std::vector<Real> xs;
  for (int i = 0; i <= 120; ++i) {
    xs.push_back(1 + (Real{15} - 1) * static_cast<Real>(i) / 120);
  }
  const std::vector<Real> ks = k_profile(fleet3, f, xs);

  // ASCII profile plot: x across, K vertical buckets.
  const Real k_max = algorithm_cr(nf, f);
  const int height = 16;
  std::vector<std::string> rows(static_cast<std::size_t>(height),
                                std::string(xs.size(), ' '));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Real fraction = (ks[i] - 1) / (k_max - 1);
    int row = height - 1 -
              static_cast<int>(std::floor(fraction * (height - 1)));
    row = std::max(0, std::min(height - 1, row));
    rows[static_cast<std::size_t>(row)][i] = '*';
  }
  std::cout << "K(x), vertical axis [1, " << fixed(k_max, 3)
            << "], x in [1, 15]:\n";
  for (const std::string& row : rows) std::cout << row << '\n';

  const CrEvalResult measured = measure_cr(fleet3, f, {.window_hi = 100});
  std::cout << "\nmeasured sup K = " << fixed(measured.cr, 6)
            << " at x = " << fixed(measured.argmax, 6) << " (theory "
            << fixed(algorithm_cr(nf, f), 6) << ")\n";

  {
    SvgOptions svg;
    svg.max_time = 36;
    svg.max_position = 16;
    svg.cone_beta = beta;
    svg.title = "Figure 3: proportional schedule S_beta(4), beta = 2";
    write_svg_file("figures/fig3_proportional_schedule.svg",
                   render_svg(fleet4, svg));
  }
  {
    // Figure 4 proper: robots + the EXACT tower boundary T_{f+1}(x)
    // extracted as piecewise-linear geometry (eval/profile); everything
    // below the bold curve has been seen by >= f+1 robots.
    SvgOptions svg;
    svg.max_time = 60;
    svg.max_position = 12;
    svg.cone_beta = algo.beta();
    svg.title =
        "Figure 4: A(3,1) and the exact tower boundary T_2(x)";
    for (const int side : {-1, +1}) {
      std::vector<std::pair<Real, Real>> boundary;
      for (const ProfilePiece& piece : detection_profile(
               fleet3, f, side, {.window_lo = 0.05L, .window_hi = 12})) {
        boundary.emplace_back(piece.lo, piece.value_at_lo);
        boundary.emplace_back(piece.hi, piece.value_at_hi());
      }
      svg.overlays.push_back(std::move(boundary));
    }
    write_svg_file("figures/fig4_tower.svg", render_svg(fleet3, svg));
    std::cout << "\nSVG artifacts: figures/fig3_proportional_schedule.svg, "
                 "figures/fig4_tower.svg\n";
  }

  bench::csv_header("fig4_k_profile");
  write_series_csv(std::cout, {{"K_of_x", xs, ks}});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Figures 3 & 4",
      "proportional schedule structure and the detection tower", body);
}

// bench_random_faults — extension experiment A3: the "price of
// adversity".  The paper's competitive ratio is worst case over fault
// sets; this bench samples the fault set uniformly at random (and the
// target log-uniformly) and reports the resulting ratio distribution
// next to the exact adversarial value, per (n, f).
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "eval/montecarlo.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  TablePrinter table({"n", "f", "mean", "median", "p95", "worst sample",
                      "adversarial CR", "adversity premium"});
  table.set_caption(
      "Detection ratio under RANDOM faults (1000 trials each) vs the "
      "adversarial worst case");

  Series means{"random_mean", {}, {}}, worst{"adversarial", {}, {}};
  int index = 0;
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {5, 2}, {5, 3}, {7, 3}, {9, 4}}) {
    const ProportionalAlgorithm algo(n, f);
    const Fleet fleet = algo.build_fleet(1200);
    MonteCarloOptions options;
    options.trials = 1000;
    options.target_hi = 24;
    const MonteCarloResult result = random_fault_study(fleet, f, options);
    table.add_row(
        {cell(static_cast<long long>(n)), cell(static_cast<long long>(f)),
         fixed(result.ratio.mean, 3), fixed(result.median, 3),
         fixed(result.p95, 3), fixed(result.worst_sample, 3),
         fixed(result.adversarial_cr, 3),
         fixed(result.adversarial_cr / result.ratio.mean, 2) + "x"});
    ++index;
    means.x.push_back(index);
    means.y.push_back(result.ratio.mean);
    worst.x.push_back(index);
    worst.y.push_back(result.adversarial_cr);
  }
  table.print(std::cout);

  std::cout << "\nReading: random faults cost far less than adversarial "
               "ones — the mean ratio sits\n"
            << "well below the competitive ratio, quantifying how much "
               "of the bound is adversarial\n"
            << "pessimism (the paper's model) rather than typical-case "
               "behaviour.\n";

  bench::csv_header("random_faults");
  write_series_csv(std::cout, {means, worst});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension A3", "random-fault Monte-Carlo vs adversarial CR", body);
}

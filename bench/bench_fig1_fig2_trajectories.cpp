// bench_fig1_fig2_trajectories — regenerates Figures 1 and 2: the
// space/time picture of a general zig-zag strategy (Fig. 1) and of the
// zig-zag defined by a cone C_beta and a seed point (Fig. 2), whose
// turning points follow Lemma 1: x_i = x_0 * kappa^i * (-1)^i.  Emits an
// ASCII rendering plus the polyline data as CSV.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/cone.hpp"
#include "sim/recorder.hpp"
#include "sim/svg.hpp"
#include "sim/zigzag.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

Series polyline(const std::string& name, const Trajectory& t) {
  Series s{name, {}, {}};
  for (const Waypoint& w : t.waypoints()) {
    s.x.push_back(w.position);
    s.y.push_back(w.time);
  }
  return s;
}

void body() {
  // ---- Figure 1: a general zig-zag strategy (hand-picked turning
  // points, like the paper's illustration). ----
  TrajectoryBuilder general;
  general.start_at(0, 0);
  general.move_to(1.5L).move_to(-1.0L).move_to(3.0L).move_to(-4.0L)
      .move_to(6.0L);
  const Trajectory fig1 = std::move(general).build();

  std::cout << "Figure 1: a general zig-zag strategy (turning points "
               "1.5, -1, 3, -4)\n\n";
  RenderOptions r1;
  r1.max_time = fig1.end_time();
  r1.max_position = 7;
  r1.rows = 24;
  r1.columns = 57;
  std::cout << render_space_time(Fleet({fig1}), r1) << '\n';

  // ---- Figure 2: zig-zag defined by cone C_beta and seed point. ----
  const Real beta = 2;
  const Cone cone(beta);
  const Trajectory fig2 =
      make_cone_zigzag({.beta = beta, .first_turn = 0.4L,
                        .min_coverage = 12});

  std::cout << "Figure 2: zig-zag defined by " << cone.describe()
            << " seeded at x0 = 0.4\n\n";
  RenderOptions r2;
  r2.max_time = 40;
  r2.max_position = 14;
  r2.rows = 26;
  r2.columns = 57;
  r2.cone_beta = beta;
  std::cout << render_space_time(Fleet({fig2}), r2) << '\n';

  // Lemma 1 check table: predicted vs materialized turning points.
  TablePrinter table({"i", "Lemma 1: x0*kappa^i*(-1)^i", "materialized"});
  table.set_caption("Lemma 1 turning points (beta = 2, kappa = 3)");
  const std::vector<Real> predicted = lemma1_turning_points(beta, 0.4L, 5);
  const std::vector<Waypoint> turns = fig2.turning_waypoints();
  for (std::size_t i = 0; i + 1 < predicted.size() && i < turns.size();
       ++i) {
    // predicted[0] is the seed itself; turns start at the first reversal.
    table.add_row({cell(static_cast<long long>(i + 1)),
                   fixed(predicted[i + 1], 4),
                   fixed(turns[i].position, 4)});
  }
  table.print(std::cout);

  // SVG artifacts next to the terminal renderings.
  {
    SvgOptions svg1;
    svg1.max_time = fig1.end_time();
    svg1.max_position = 7;
    svg1.title = "Figure 1: a general zig-zag strategy";
    write_svg_file("figures/fig1_general_zigzag.svg",
                   render_svg(Fleet({fig1}), svg1));
    SvgOptions svg2;
    svg2.max_time = 40;
    svg2.max_position = 14;
    svg2.cone_beta = beta;
    svg2.title = "Figure 2: zig-zag defined by the cone C_beta (beta=2)";
    write_svg_file("figures/fig2_cone_zigzag.svg",
                   render_svg(Fleet({fig2}), svg2));
    std::cout << "\nSVG artifacts: figures/fig1_general_zigzag.svg, "
                 "figures/fig2_cone_zigzag.svg\n";
  }

  bench::csv_header("fig1_fig2_polylines");
  write_series_csv(std::cout, {polyline("fig1_general", fig1),
                               polyline("fig2_cone", fig2)});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Figures 1 & 2", "zig-zag strategies and the cone C_beta", body);
}

// bench_comparison — ablation A2: the proportional schedule A(n, f)
// against the strategies a practitioner might try first:
//   * group doubling (everyone together, classic cow-path): CR 9 for
//     every f < n — robustness without any benefit from parallelism;
//   * uniform-offset zig-zag (same cone, arithmetic instead of geometric
//     interleaving): strictly worse than proportional;
//   * two-group split where legal (n >= 2f+2): the CR-1 optimum.
// "Who wins, by what factor" is the shape this table reproduces.
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/algorithm.hpp"
#include "core/baselines.hpp"
#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/cr_eval.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

Real measure(const SearchStrategy& strategy, const int f) {
  const Fleet fleet = strategy.build_fleet(1500);
  return measure_cr(fleet, f, {.window_hi = 12}).cr;
}

void body() {
  TablePrinter table({"n", "f", "A(n,f)", "uniform-offset",
                      "group doubling", "classic cow-path",
                      "staggered doubling", "two-group split",
                      "lower bound"});
  table.set_caption("Measured competitive ratios (exact simulation)");

  Series prop{"proportional", {}, {}}, uniform{"uniform_offset", {}, {}},
      doubling{"group_doubling", {}, {}};

  int index = 0;
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {4, 2}, {4, 3}, {5, 2}, {5, 3},
           {5, 4}, {7, 3}, {9, 4}}) {
    const Real a_cr = measure(ProportionalAlgorithm(n, f), f);
    const Real u_cr = measure(UniformOffsetZigzag(n, f), f);
    const Real d_cr = measure(GroupDoubling(n, f), f);
    const Real c_cr = measure(ClassicCowPath(n, f), f);
    const Real s_cr = measure(StaggeredDoubling(n, f), f);
    const std::string split =
        (n >= 2 * f + 2) ? fixed(measure(TwoGroupSplit(n, f), f), 3) : "-";
    table.add_row({cell(static_cast<long long>(n)),
                   cell(static_cast<long long>(f)), fixed(a_cr, 3),
                   fixed(u_cr, 3), fixed(d_cr, 3), fixed(c_cr, 3),
                   fixed(s_cr, 3), split,
                   fixed(best_lower_bound(n, f), 3)});
    ++index;
    prop.x.push_back(index);
    prop.y.push_back(a_cr);
    uniform.x.push_back(index);
    uniform.y.push_back(u_cr);
    doubling.x.push_back(index);
    doubling.y.push_back(d_cr);
  }
  table.print(std::cout);

  std::cout
      << "\nExpected shape: A(n,f) strictly beats the uniform-offset "
         "foil (breaking Definition 2's\n"
      << "geometric interleaving always hurts), group doubling is "
         "pinned at 9 for every f < n,\n"
      << "and A(f+1,f) ties group doubling at 9 (both optimal there); the classic\n"
      << "full-speed cow-path sits a hair under 9 (its sup is approached, not attained).\n";

  bench::csv_header("comparison");
  write_series_csv(std::cout, {prop, uniform, doubling});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Ablation A2", "A(n,f) vs baseline strategies, measured", body);
}

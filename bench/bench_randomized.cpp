// bench_randomized — extension study A6: what randomization buys.
//
// A randomly-scaled doubling schedule has expected competitive ratio
// 1 + (kappa+1)/ln(kappa), minimized at the Kao-Reif-Tate point
// kappa ~ 3.5911 with value ~4.5911 — far below the deterministic 9.
// The bench sweeps kappa to exhibit the curve and its optimum, then
// applies the same scale randomization to the paper's A(n, f): the
// worst-case EXPECTATION drops well below Theorem 1's deterministic
// competitive ratio — quantifying how much a randomized variant of the
// paper's algorithm could gain (an open direction the paper does not
// pursue).
#include <cmath>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/optimize.hpp"
#include "bench_common.hpp"
#include "core/competitive.hpp"
#include "eval/randomized.hpp"
#include "util/csv.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

void body() {
  // ---- Single robot: the classic randomized cow-path. ----
  std::cout << "Single robot, randomly scaled (scale kappa^(2U), "
               "mirrored by coin flip):\n\n";
  TablePrinter single({"kappa", "E[CR] measured",
                       "1 + (kappa+1)/ln kappa", "deterministic CR"});
  RandomizedOptions options;
  options.offset_samples = 256;
  options.phase_samples = 16;
  Series measured{"expected_cr", {}, {}}, closed{"closed_form", {}, {}};
  for (const Real kappa :
       {2.0L, 2.5L, 3.0L, 3.3L, 3.5911L, 3.9L, 4.5L, 5.5L, 7.0L}) {
    const RandomizedResult result = randomized_single_cr(kappa, options);
    const Real theory = 1 + (kappa + 1) / std::log(kappa);
    const Real det = 1 + 2 * kappa * kappa / (kappa - 1);
    single.add_row({fixed(kappa, 4), fixed(result.mean_expected_cr, 4),
                    fixed(theory, 4), fixed(det, 4)});
    measured.x.push_back(kappa);
    measured.y.push_back(result.mean_expected_cr);
    closed.x.push_back(kappa);
    closed.y.push_back(theory);
  }
  single.print(std::cout);

  RandomizedOptions fine = options;
  fine.offset_samples = 512;
  const MinimizeResult optimum = golden_section(
      [&](const Real kappa) {
        return randomized_single_cr(kappa, fine).mean_expected_cr;
      },
      2.0L, 6.0L, {.tolerance = 1e-6L, .max_iterations = 60});
  std::cout << "\nmeasured optimum: kappa = " << fixed(optimum.x, 4)
            << ", E[CR] = " << fixed(optimum.fx, 4)
            << "   (Kao-Reif-Tate: kappa = 3.5911, E[CR] = 4.5911; "
               "deterministic best is 9)\n";

  // ---- The paper's algorithm, randomized. ----
  std::cout << "\nA(n, f) scaled by r^U (faults adversarial per "
               "realization):\n\n";
  TablePrinter prop({"n", "f", "Theorem 1 (deterministic)",
                     "E[CR] randomized", "gain"});
  Series prop_series{"randomized_anf", {}, {}};
  int index = 0;
  for (const auto& [n, f] : std::vector<std::pair<int, int>>{
           {2, 1}, {3, 1}, {3, 2}, {5, 2}, {5, 3}, {7, 3}}) {
    RandomizedOptions prop_options;
    prop_options.offset_samples = 128;
    prop_options.phase_samples = 16;
    const RandomizedResult result =
        randomized_proportional_cr(n, f, prop_options);
    const Real det = algorithm_cr(n, f);
    prop.add_row({cell(static_cast<long long>(n)),
                  cell(static_cast<long long>(f)), fixed(det, 4),
                  fixed(result.mean_expected_cr, 4),
                  fixed(det / result.mean_expected_cr, 2) + "x"});
    ++index;
    prop_series.x.push_back(index);
    prop_series.y.push_back(result.mean_expected_cr);
  }
  prop.print(std::cout);

  std::cout
      << "\nReading: randomizing the schedule scale cuts the worst-case "
         "EXPECTED ratio well below\n"
      << "the deterministic competitive ratio for every (n, f) — the "
         "same lever that takes the\n"
      << "single robot from 9 to 4.59 also helps the faulty-robot "
         "schedules.  Randomized faulty\n"
      << "search is an open direction the paper leaves untouched.\n";

  bench::csv_header("randomized");
  write_series_csv(std::cout, {measured, closed, prop_series});
}

}  // namespace

int main() {
  return linesearch::bench::run(
      "Extension A6", "randomized schedules vs deterministic bounds",
      body);
}

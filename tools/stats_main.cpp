// tools/stats_main — run instrumented workloads and dump the obs metric
// registry as JSON (schema "linesearch-stats/1").
//
// The observability layer's counters are deterministic for any thread
// count (docs/observability.md), so two invocations
//
//   stats_main --workload=dense --threads=1
//   stats_main --workload=dense --threads=8
//
// must print bit-identical "metrics" arrays once the non-deterministic
// wall-clock entries are filtered (--deterministic-only drops them in
// the output itself).  That makes this binary both a debugging lens
// ("how many probes did that sweep really run?") and a quick manual
// determinism check outside the test suite.
//
// Usage: stats_main [--workload=dense|analytic|game|runtime|degraded|
//                      byzantine|service|probabilistic|fuzz|all]
//                   [--threads=N] [--json=PATH] [--deterministic-only]
#include <fstream>
#include <iostream>
#include <ostream>
#include <string>
#include <vector>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/algorithm.hpp"
#include "core/lower_bound.hpp"
#include "eval/batch.hpp"
#include "eval/cr_eval.hpp"
#include "eval/expectation.hpp"
#include "eval/validation.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/arbitration.hpp"
#include "runtime/supervisor.hpp"
#include "runtime/world.hpp"
#include "sim/faults.hpp"
#include "svc/query.hpp"
#include "util/cli.hpp"
#include "util/jsonio.hpp"
#include "util/parallel.hpp"
#include "verify/fuzz.hpp"

namespace {

using namespace linesearch;

/// The dense A(7, 4) grid shared with obs/perf_report: every fault
/// budget crossed with three windows.
void run_dense(const int threads) {
  const ProportionalAlgorithm algo(7, 4);
  const Fleet fleet = algo.build_fleet(2000);
  std::vector<CrBatchJob> jobs;
  for (int f = 0; f < static_cast<int>(fleet.size()); ++f) {
    for (const Real window : {12.0L, 24.0L, 48.0L}) {
      jobs.push_back(
          {&fleet, f, {.window_hi = window, .interior_samples = 16}});
    }
  }
  (void)measure_cr_batch(jobs, {.threads = threads});
}

/// Unbounded analytic A(12, 11) swept over 2^20 — every visit query and
/// window enumeration comes from closed forms.
void run_analytic() {
  const ProportionalAlgorithm algo(12, 11);
  const Fleet fleet = algo.build_unbounded_fleet();
  (void)measure_cr(fleet, 11, {.window_hi = 1048576});
}

/// One Theorem-2 adversarial round against A(3, 1).
void run_game(const int threads) {
  const Real alpha = comfortable_alpha(3, 0.8L);
  const Fleet fleet =
      ProportionalAlgorithm(3, 1).build_fleet(largest_placement(alpha) * 4);
  GameOptions options;
  options.threads = threads;
  (void)play_theorem2_game(fleet, 1, alpha, options);
}

/// Online execution: 5 proportional controllers driven by the world.
void run_runtime() {
  (void)run_proportional_controllers(5, 2, 1000);
}

/// A small deterministic fuzz corpus (seeds 1..16).
void run_fuzz() { (void)verify::run_corpus(1, 16); }

/// Crash -> detect -> re-plan -> re-measure over the regime grid
/// (runtime/supervisor.hpp); populates the runtime.replans and
/// runtime.crash_truncations counters.
void run_degraded() {
  DegradedSweepOptions options;
  options.n_max = 6;
  options.max_crashes = 2;
  (void)degraded_mode_sweep(options);
}

/// Byzantine quorum pipeline: one lie-placement game round against
/// A(3, 1) plus one arbitrated run under a seeded lie plan
/// (runtime/arbitration); populates adversary.lie_placements and the
/// runtime.claims_* counters.
void run_byzantine_workload(const int threads) {
  const Real alpha = comfortable_alpha(3, 0.8L);
  const Fleet fleet =
      ProportionalAlgorithm(3, 1).build_fleet(largest_placement(alpha) * 4);
  GameOptions options;
  options.threads = threads;
  (void)play_byzantine_game(fleet, 1, alpha, options);
  const LiePlan plan = random_lie_plan(2024, 3, {});
  (void)run_byzantine(3, 1, 64, 5, plan);
}

/// The stateless query layer over the n <= 6 regime grid: one cold pass
/// (backend builds + evaluations) and one warm pass (cache hits);
/// populates the svc.* counters.
void run_service() {
  svc::QueryService service;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& [n, f] : proportional_regime_pairs(6)) {
      svc::CrQuery query;
      query.n = n;
      query.f = f;
      query.window_hi = 32;
      (void)service.evaluate(query);
    }
  }
}

/// The probabilistic expected-CR engine: one sweep over the n <= 6
/// regime grid times a convergent p grid, one query-layer scan (cold +
/// warm), and one certified-divergent point past (3, 1)'s ladder
/// threshold; populates the eval.expectation.* work profile and
/// svc.probabilistic_queries.
void run_probabilistic() {
  ExpectationSweepOptions sweep;
  sweep.n_max = 6;
  sweep.p_count = 3;
  sweep.p_max = 0.4L;
  (void)expectation_sweep(sweep);
  svc::QueryService service;
  for (int pass = 0; pass < 2; ++pass) {
    svc::CrQuery query;
    query.n = 3;
    query.f = 1;
    query.window_hi = 16;
    query.regime = svc::FaultRegime::kProbabilistic;
    query.fault_p = 0.25L;
    (void)service.evaluate(query);
  }
  const Fleet fleet = ProportionalAlgorithm(3, 1).build_unbounded_fleet();
  ExpectationOptions divergent;
  divergent.p = (expectation_convergence_threshold(3, 1) + 1) / 2;
  (void)expected_detection_time(fleet, 2, divergent);
}

}  // namespace

int main(const int argc, const char* const* argv) {
  std::string workload = "all";
  std::string json_path;  // empty: stdout
  int threads = 0;
  bool deterministic_only = false;

  CliParser cli("stats_main",
                "run instrumented workloads and dump the obs metric "
                "registry as JSON");
  cli.add_option("workload", &workload, "NAME",
                 "dense|analytic|game|runtime|degraded|byzantine|service|"
                 "probabilistic|fuzz|all (default all)");
  cli.add_option("threads", &threads, "N",
                 "worker threads (0 = LINESEARCH_THREADS / hardware)");
  cli.add_option("json", &json_path, "PATH",
                 "write the report here instead of stdout");
  cli.add_flag("deterministic-only", &deterministic_only,
               "drop wall-clock (non-deterministic) metrics");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << '\n' << cli.usage();
    return 2;
  }

  const bool all = workload == "all";
  if (!all && workload != "dense" && workload != "analytic" &&
      workload != "game" && workload != "runtime" &&
      workload != "degraded" && workload != "byzantine" &&
      workload != "service" && workload != "probabilistic" &&
      workload != "fuzz") {
    std::cerr << "stats_main: unknown --workload '" << workload
              << "' (valid: dense, analytic, game, runtime, degraded, "
                 "byzantine, service, probabilistic, fuzz, all)\n"
              << cli.usage();
    return 2;
  }

  obs::Registry::instance().reset();
  if (all || workload == "dense") run_dense(threads);
  if (all || workload == "analytic") run_analytic();
  if (all || workload == "game") run_game(threads);
  if (all || workload == "runtime") run_runtime();
  if (all || workload == "degraded") run_degraded();
  if (all || workload == "byzantine") run_byzantine_workload(threads);
  if (all || workload == "service") run_service();
  if (all || workload == "probabilistic") run_probabilistic();
  if (all || workload == "fuzz") run_fuzz();

  std::ofstream file;
  if (!json_path.empty()) file.open(json_path);
  std::ostream& out = json_path.empty() ? std::cout : file;

  JsonWriter json(out);
  json.begin_object();
  json.field("schema", "linesearch-stats/1");
  json.field("workload", workload);
  json.field("threads", static_cast<int>(resolve_thread_count(threads)));
  json.field("enabled", obs::kEnabled);
  json.field("deterministic_only", deterministic_only);
  json.key("metrics");
  obs::write_metrics_array(json, deterministic_only);
  json.end_object();
  out << '\n';
  return 0;
}

// tools/serve_main — the always-on CR evaluation service binary.
//
//   serve_main --socket /tmp/linesearch.sock
//
// listens on a local AF_UNIX socket and answers newline-delimited JSON
// CR queries (docs/service.md) until SIGTERM/SIGINT, then drains
// gracefully: the listener closes, in-flight connections finish their
// buffered requests, and the process exits 0 after printing the final
// svc.* stats to stderr.  All responses carry only values, so replaying
// a request corpus against any instance (any thread count, any cache
// configuration) yields byte-identical bytes — CI's server-smoke job
// does exactly that.
#include <csignal>
#include <iostream>
#include <string>

#include "svc/server.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

linesearch::svc::QueryServer* g_server = nullptr;

extern "C" void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe: atomic flip
}

}  // namespace

int main(const int argc, const char* const* argv) {
  using linesearch::CliParser;
  using linesearch::svc::QueryServer;
  using linesearch::svc::QueryServerOptions;

  std::string socket_path;
  int threads = 4;
  int max_inflight = 64;
  int shard_count = 8;
  int shard_capacity = 128;
  bool no_cache = false;
  bool no_coalesce = false;

  CliParser cli("serve_main",
                "serve CR queries over a local socket (NDJSON; see "
                "docs/service.md)");
  cli.add_option("socket", &socket_path, "PATH",
                 "AF_UNIX socket path to listen on (required)");
  cli.add_option("threads", &threads, "N",
                 "connection worker threads (default 4)", 1);
  cli.add_option("max-inflight", &max_inflight, "N",
                 "admission bound before overload rejection (default 64)",
                 1);
  cli.add_option("shards", &shard_count, "N",
                 "result-LRU shard count (default 8)", 1);
  cli.add_option("shard-capacity", &shard_capacity, "N",
                 "LRU entries per shard (default 128)", 1);
  cli.add_flag("no-cache", &no_cache, "disable the result LRU");
  cli.add_flag("no-coalesce", &no_coalesce,
               "disable in-flight query coalescing");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << '\n' << cli.usage();
    return 2;
  }
  if (socket_path.empty()) {
    std::cerr << "serve_main: --socket is required\n" << cli.usage();
    return 2;
  }

  QueryServerOptions options;
  options.threads = threads;
  options.max_inflight = static_cast<std::size_t>(max_inflight);
  options.service.cache_results = !no_cache;
  options.service.coalesce = !no_coalesce;
  options.service.shard_count = static_cast<std::size_t>(shard_count);
  options.service.shard_capacity =
      static_cast<std::size_t>(shard_capacity);

  QueryServer server(options);
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  // A client vanishing mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  std::cerr << "serve_main: listening on " << socket_path << '\n';
  try {
    server.serve(socket_path);
  } catch (const linesearch::Error& failure) {
    std::cerr << "serve_main: " << failure.what() << '\n';
    return 1;
  }

  const QueryServer::Stats wire = server.stats();
  const linesearch::svc::QueryService::Stats svc = server.service().stats();
  std::cerr << "serve_main: drained; connections=" << wire.connections
            << " requests=" << wire.requests << " errors=" << wire.errors
            << " rejected=" << wire.rejected
            << " cache_hits=" << svc.cache_hits
            << " coalesced=" << svc.coalesced
            << " evaluations=" << svc.evaluations << '\n';
  return 0;
}

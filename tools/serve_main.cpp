// tools/serve_main — the always-on CR evaluation service binary.
//
//   serve_main --socket /tmp/linesearch.sock
//
// listens on a local AF_UNIX socket and answers newline-delimited JSON
// CR queries (docs/service.md) until SIGTERM/SIGINT, then drains
// gracefully: the listener closes, in-flight connections finish their
// buffered requests, and the process exits 0 after printing the final
// svc.* stats to stderr.  All responses carry only values, so replaying
// a request corpus against any instance (any thread count, any cache
// configuration) yields byte-identical bytes — CI's server-smoke job
// does exactly that.
//
// Crash-safe warm restarts: --snapshot PATH restores the result cache
// from a prior snapshot on startup (a corrupt or version-mismatched
// file is rejected and the server starts cold — never half-warm), saves
// it atomically on drain, and SIGUSR1 checkpoints it live without
// interrupting service.
#include <csignal>
#include <iostream>
#include <string>

#include "svc/server.hpp"
#include "svc/snapshot.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

namespace {

linesearch::svc::QueryServer* g_server = nullptr;

extern "C" void handle_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe: atomic flip
}

extern "C" void handle_checkpoint(int) {
  if (g_server != nullptr) g_server->request_checkpoint();  // atomic flip
}

}  // namespace

int main(const int argc, const char* const* argv) {
  using linesearch::CliParser;
  using linesearch::svc::QueryServer;
  using linesearch::svc::QueryServerOptions;

  std::string socket_path;
  int threads = 4;
  int max_inflight = 64;
  int shard_count = 8;
  int shard_capacity = 128;
  bool no_cache = false;
  bool no_coalesce = false;
  std::string snapshot_path;
  int idle_timeout_ms = 30000;
  int write_timeout_ms = 5000;

  CliParser cli("serve_main",
                "serve CR queries over a local socket (NDJSON; see "
                "docs/service.md)");
  cli.add_option("socket", &socket_path, "PATH",
                 "AF_UNIX socket path to listen on (required)");
  cli.add_option("threads", &threads, "N",
                 "connection worker threads (default 4)", 1);
  cli.add_option("max-inflight", &max_inflight, "N",
                 "admission bound before overload rejection (default 64)",
                 1);
  cli.add_option("shards", &shard_count, "N",
                 "result-LRU shard count (default 8)", 1);
  cli.add_option("shard-capacity", &shard_capacity, "N",
                 "LRU entries per shard (default 128)", 1);
  cli.add_flag("no-cache", &no_cache, "disable the result LRU");
  cli.add_flag("no-coalesce", &no_coalesce,
               "disable in-flight query coalescing");
  cli.add_option("snapshot", &snapshot_path, "PATH",
                 "warm-restart cache snapshot: restored on startup, "
                 "saved atomically on drain and on SIGUSR1");
  cli.add_option("idle-timeout-ms", &idle_timeout_ms, "MS",
                 "close connections idle beyond this (0 disables; "
                 "default 30000)", 0);
  cli.add_option("write-timeout-ms", &write_timeout_ms, "MS",
                 "per-response write deadline (0 disables; default 5000)",
                 0);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << '\n' << cli.usage();
    return 2;
  }
  if (socket_path.empty()) {
    std::cerr << "serve_main: --socket is required\n" << cli.usage();
    return 2;
  }

  QueryServerOptions options;
  options.threads = threads;
  options.max_inflight = static_cast<std::size_t>(max_inflight);
  options.service.cache_results = !no_cache;
  options.service.coalesce = !no_coalesce;
  options.service.shard_count = static_cast<std::size_t>(shard_count);
  options.service.shard_capacity =
      static_cast<std::size_t>(shard_capacity);
  options.snapshot_path = snapshot_path;
  options.idle_timeout_ms = idle_timeout_ms;
  options.write_timeout_ms = write_timeout_ms;

  QueryServer server(options);
  if (!snapshot_path.empty()) {
    const linesearch::svc::SnapshotLoadReport restore =
        linesearch::svc::load_snapshot(server.service(), snapshot_path);
    if (restore.ok) {
      std::cerr << "serve_main: restored " << restore.entries
                << " cached entries from " << snapshot_path << '\n';
    } else {
      std::cerr << "serve_main: cold start (" << restore.error << ")\n";
    }
  }
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGUSR1, handle_checkpoint);
  // A client vanishing mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);

  std::cerr << "serve_main: listening on " << socket_path << '\n';
  try {
    server.serve(socket_path);
  } catch (const linesearch::Error& failure) {
    std::cerr << "serve_main: " << failure.what() << '\n';
    return 1;
  }

  const QueryServer::Stats wire = server.stats();
  const linesearch::svc::QueryService::Stats svc = server.service().stats();
  std::cerr << "serve_main: drained; connections=" << wire.connections
            << " requests=" << wire.requests << " errors=" << wire.errors
            << " rejected=" << wire.rejected
            << " frame_rejected=" << wire.frame_rejected
            << " idle_closed=" << wire.idle_closed
            << " drain_rejected=" << wire.drain_rejected
            << " write_failures=" << wire.write_failures
            << " cache_hits=" << svc.cache_hits
            << " coalesced=" << svc.coalesced
            << " evaluations=" << svc.evaluations << '\n';
  return 0;
}

// tools/fuzz_main — run the verify fuzzer from the command line.
//
//   fuzz_main --seed 42                 run one instance
//   fuzz_main --seed 1 --count 100      run a corpus of consecutive seeds
//   fuzz_main --seed 7 --inject cone-escape   corrupt the instance first
//   fuzz_main --kind crash-injected --count 10   only seeds of one kind
//   fuzz_main ... --json out.json       write the (shrunk) repro record
//
// --kind filters by generated fleet kind (see kind_name in verify/fuzz):
// seeds are scanned upward from --seed and only matching instances run,
// so --count still means "run N instances".  Seed->instance mapping is
// untouched — a failure found through the filter replays with the bare
// seed.
//
// Exit status 0 when every instance passes, 1 on any failure (the
// minimal repro JSON is printed to stdout), 2 on usage errors.  A
// failing run is fully reproducible from its seed: generation AND
// shrinking are deterministic, so `fuzz_main --seed S [--inject ...]`
// reconstructs the identical minimal instance.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "util/cli.hpp"
#include "verify/fuzz.hpp"

namespace {

using linesearch::verify::FuzzInstance;
using linesearch::verify::FuzzOutcome;
using linesearch::verify::Injection;

struct CliOptions {
  std::uint64_t seed = 1;
  int count = 1;
  Injection injection = Injection::kNone;
  bool shrink = true;
  std::string kind;  ///< empty = every kind
  std::string json_path;
};

/// True when `name` is a kind_name the generator can produce.
bool known_kind(const std::string& name) {
  using linesearch::verify::FleetKind;
  for (const FleetKind kind :
       {FleetKind::kProportional, FleetKind::kPerturbedBeta,
        FleetKind::kCustomCone, FleetKind::kGroupDoubling,
        FleetKind::kClassicCowPath, FleetKind::kUniformOffset,
        FleetKind::kAnalyticZigzag, FleetKind::kCrashInjected,
        FleetKind::kKernelSoA, FleetKind::kByzantineLies,
        FleetKind::kServerQuery, FleetKind::kProbabilisticFaults,
        FleetKind::kChaosWire}) {
    if (name == linesearch::verify::kind_name(kind)) return true;
  }
  return false;
}

/// Run one seed; on failure print (and optionally shrink) the repro.
bool run_seed(const std::uint64_t seed, const CliOptions& cli) {
  FuzzInstance instance = linesearch::verify::generate_instance(seed);
  instance.injection = cli.injection;
  FuzzOutcome outcome = linesearch::verify::run_instance(instance);
  if (outcome.ok()) return true;

  std::cerr << "seed " << seed << " FAILED: " << outcome.primary_failure()
            << '\n'
            << outcome.describe() << '\n';
  if (cli.shrink) {
    const linesearch::verify::ShrinkResult shrunk =
        linesearch::verify::shrink_instance(instance);
    std::cerr << "shrunk in " << shrunk.accepted_moves
              << " steps (preserving '" << shrunk.failure << "')\n";
    instance = shrunk.instance;
    outcome = linesearch::verify::run_instance(instance);
  }
  const std::string json =
      linesearch::verify::instance_to_json(instance, outcome);
  std::cout << json;
  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    out << json;
  }
  return false;
}

}  // namespace

int main(const int argc, const char* const* argv) {
  CliOptions cli;
  std::string inject;
  bool no_shrink = false;
  linesearch::CliParser parser(
      "fuzz_main", "run the verify fuzzer (deterministic seeds; exit 1 "
                   "prints the minimal repro JSON)");
  parser.add_option("seed", &cli.seed, "S", "first seed (default 1)");
  parser.add_option("count", &cli.count, "N",
                    "number of instances to run (default 1)", 1);
  parser.add_option("inject", &inject, "FAULT",
                    "corrupt each instance first (cone-escape)");
  parser.add_option("kind", &cli.kind, "NAME",
                    "only run seeds of one fleet kind (see verify/fuzz)");
  parser.add_flag("no-shrink", &no_shrink,
                  "print the raw failing instance without shrinking");
  parser.add_option("json", &cli.json_path, "PATH",
                    "also write the repro record here");
  if (!parser.parse(argc, argv)) {
    std::cerr << parser.error() << '\n' << parser.usage();
    return 2;
  }
  cli.shrink = !no_shrink;
  if (!inject.empty()) {
    if (inject != "cone-escape") {
      std::cerr << "fuzz_main: unknown --inject '" << inject
                << "' (valid: cone-escape)\n"
                << parser.usage();
      return 2;
    }
    cli.injection = Injection::kConeEscape;
  }
  if (!cli.kind.empty() && !known_kind(cli.kind)) {
    std::cerr << "fuzz_main: unknown --kind '" << cli.kind
              << "' (valid: proportional, perturbed-beta, custom-cone, "
                 "group-doubling, classic-cow-path, uniform-offset, "
                 "analytic-zigzag, crash-injected, kernel-soa, "
                 "byzantine-lies, server-query, probabilistic-faults)\n"
              << parser.usage();
    return 2;
  }

  int failures = 0;
  int ran = 0;
  for (std::uint64_t seed = cli.seed; ran < cli.count; ++seed) {
    if (!cli.kind.empty()) {
      const FuzzInstance probe = linesearch::verify::generate_instance(seed);
      if (cli.kind != linesearch::verify::kind_name(probe.kind)) continue;
    }
    ++ran;
    if (!run_seed(seed, cli)) ++failures;
  }
  if (cli.count > 1) {
    std::cerr << (cli.count - failures) << "/" << cli.count
              << " seeds passed\n";
  }
  return failures == 0 ? 0 : 1;
}

// tools/fuzz_main — run the verify fuzzer from the command line.
//
//   fuzz_main --seed 42                 run one instance
//   fuzz_main --seed 1 --count 100      run a corpus of consecutive seeds
//   fuzz_main --seed 7 --inject cone-escape   corrupt the instance first
//   fuzz_main --kind crash-injected --count 10   only seeds of one kind
//   fuzz_main ... --json out.json       write the (shrunk) repro record
//
// --kind filters by generated fleet kind (see kind_name in verify/fuzz):
// seeds are scanned upward from --seed and only matching instances run,
// so --count still means "run N instances".  Seed->instance mapping is
// untouched — a failure found through the filter replays with the bare
// seed.
//
// Exit status 0 when every instance passes, 1 on any failure (the
// minimal repro JSON is printed to stdout), 2 on usage errors.  A
// failing run is fully reproducible from its seed: generation AND
// shrinking are deterministic, so `fuzz_main --seed S [--inject ...]`
// reconstructs the identical minimal instance.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "verify/fuzz.hpp"

namespace {

using linesearch::verify::FuzzInstance;
using linesearch::verify::FuzzOutcome;
using linesearch::verify::Injection;

struct CliOptions {
  std::uint64_t seed = 1;
  int count = 1;
  Injection injection = Injection::kNone;
  bool shrink = true;
  std::string kind;  ///< empty = every kind
  std::string json_path;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seed S] [--count N] [--inject cone-escape]"
               " [--kind NAME] [--no-shrink] [--json PATH]\n"
               "kinds: proportional, perturbed-beta, custom-cone,"
               " group-doubling,\n       classic-cow-path, uniform-offset,"
               " analytic-zigzag, crash-injected,\n       kernel-soa,"
               " byzantine-lies\n";
  return 2;
}

/// True when `name` is a kind_name the generator can produce.
bool known_kind(const std::string& name) {
  using linesearch::verify::FleetKind;
  for (const FleetKind kind :
       {FleetKind::kProportional, FleetKind::kPerturbedBeta,
        FleetKind::kCustomCone, FleetKind::kGroupDoubling,
        FleetKind::kClassicCowPath, FleetKind::kUniformOffset,
        FleetKind::kAnalyticZigzag, FleetKind::kCrashInjected,
        FleetKind::kKernelSoA, FleetKind::kByzantineLies}) {
    if (name == linesearch::verify::kind_name(kind)) return true;
  }
  return false;
}

bool parse_args(const int argc, const char* const* argv, CliOptions& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* value = next_value();
      if (value == nullptr) return false;
      cli.seed = std::strtoull(value, nullptr, 10);
    } else if (arg == "--count") {
      const char* value = next_value();
      if (value == nullptr) return false;
      cli.count = std::atoi(value);
      if (cli.count < 1) return false;
    } else if (arg == "--inject") {
      const char* value = next_value();
      if (value == nullptr || std::string(value) != "cone-escape") {
        return false;
      }
      cli.injection = Injection::kConeEscape;
    } else if (arg == "--kind") {
      const char* value = next_value();
      if (value == nullptr || !known_kind(value)) return false;
      cli.kind = value;
    } else if (arg == "--no-shrink") {
      cli.shrink = false;
    } else if (arg == "--json") {
      const char* value = next_value();
      if (value == nullptr) return false;
      cli.json_path = value;
    } else {
      return false;
    }
  }
  return true;
}

/// Run one seed; on failure print (and optionally shrink) the repro.
bool run_seed(const std::uint64_t seed, const CliOptions& cli) {
  FuzzInstance instance = linesearch::verify::generate_instance(seed);
  instance.injection = cli.injection;
  FuzzOutcome outcome = linesearch::verify::run_instance(instance);
  if (outcome.ok()) return true;

  std::cerr << "seed " << seed << " FAILED: " << outcome.primary_failure()
            << '\n'
            << outcome.describe() << '\n';
  if (cli.shrink) {
    const linesearch::verify::ShrinkResult shrunk =
        linesearch::verify::shrink_instance(instance);
    std::cerr << "shrunk in " << shrunk.accepted_moves
              << " steps (preserving '" << shrunk.failure << "')\n";
    instance = shrunk.instance;
    outcome = linesearch::verify::run_instance(instance);
  }
  const std::string json =
      linesearch::verify::instance_to_json(instance, outcome);
  std::cout << json;
  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    out << json;
  }
  return false;
}

}  // namespace

int main(const int argc, const char* const* argv) {
  CliOptions cli;
  if (!parse_args(argc, argv, cli)) return usage(argv[0]);

  int failures = 0;
  int ran = 0;
  for (std::uint64_t seed = cli.seed; ran < cli.count; ++seed) {
    if (!cli.kind.empty()) {
      const FuzzInstance probe = linesearch::verify::generate_instance(seed);
      if (cli.kind != linesearch::verify::kind_name(probe.kind)) continue;
    }
    ++ran;
    if (!run_seed(seed, cli)) ++failures;
  }
  if (cli.count > 1) {
    std::cerr << (cli.count - failures) << "/" << cli.count
              << " seeds passed\n";
  }
  return failures == 0 ? 0 : 1;
}

#!/usr/bin/env python3
"""Render the CSV blocks emitted by the bench binaries as SVG plots.

Every bench prints one or more blocks of the form

    --- csv: <name> ---
    series,x,y
    <series>,<x>,<y>
    ...

Pipe a bench's stdout through this script (or give it files) and it
writes one SVG per block, with one polyline per series, to --outdir.

    build/bench/bench_fig5_ratio_curves | tools/plot_csv.py
    tools/plot_csv.py --outdir figures saved_output.txt

Pure standard library; no matplotlib required.
"""

import argparse
import math
import os
import re
import sys

PALETTE = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd",
           "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"]

WIDTH, HEIGHT, MARGIN = 640, 420, 50


def parse_blocks(text):
    """Yield (name, {series: [(x, y), ...]}) per CSV block."""
    blocks = re.split(r"^--- csv: (.+?) ---$", text, flags=re.M)
    # blocks = [prefix, name1, body1, name2, body2, ...]
    for i in range(1, len(blocks) - 1, 2):
        name, body = blocks[i].strip(), blocks[i + 1]
        series = {}
        for line in body.strip().splitlines():
            parts = line.strip().split(",")
            if len(parts) != 3 or parts[0] == "series":
                continue
            label, x, y = parts
            try:
                point = (float(x), float(y))
            except ValueError:
                continue
            series.setdefault(label, []).append(point)
        if series:
            yield name, series


def nice_ticks(lo, hi, count=5):
    if hi <= lo:
        hi = lo + 1
    raw = (hi - lo) / count
    mag = 10 ** math.floor(math.log10(raw))
    step = min(s * mag for s in (1, 2, 5, 10) if s * mag >= raw)
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * abs(hi):
        ticks.append(t)
        t += step
    return ticks


def render(name, series):
    xs = [p[0] for pts in series.values() for p in pts]
    ys = [p[1] for pts in series.values() for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi += 1
    pad = (y_hi - y_lo) * 0.08 or 1
    y_lo, y_hi = y_lo - pad, y_hi + pad

    def px(x):
        return MARGIN + (x - x_lo) / (x_hi - x_lo) * (WIDTH - 2 * MARGIN)

    def py(y):
        return HEIGHT - MARGIN - (y - y_lo) / (y_hi - y_lo) * (HEIGHT - 2 * MARGIN)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">',
        '<rect width="100%" height="100%" fill="white"/>',
        f'<text x="{WIDTH/2:.0f}" y="20" text-anchor="middle" '
        f'font-family="sans-serif" font-size="14">{name}</text>',
    ]
    # Axes + ticks.
    parts.append(
        f'<line x1="{MARGIN}" y1="{HEIGHT-MARGIN}" x2="{WIDTH-MARGIN}" '
        f'y2="{HEIGHT-MARGIN}" stroke="#333"/>')
    parts.append(
        f'<line x1="{MARGIN}" y1="{MARGIN}" x2="{MARGIN}" '
        f'y2="{HEIGHT-MARGIN}" stroke="#333"/>')
    for t in nice_ticks(x_lo, x_hi):
        parts.append(
            f'<text x="{px(t):.1f}" y="{HEIGHT-MARGIN+18}" '
            f'text-anchor="middle" font-family="sans-serif" '
            f'font-size="10">{t:g}</text>')
    for t in nice_ticks(y_lo, y_hi):
        parts.append(
            f'<line x1="{MARGIN-3}" y1="{py(t):.1f}" x2="{WIDTH-MARGIN}" '
            f'y2="{py(t):.1f}" stroke="#eee"/>')
        parts.append(
            f'<text x="{MARGIN-8}" y="{py(t)+3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{t:g}</text>')
    # Series.
    for i, (label, pts) in enumerate(sorted(series.items())):
        color = PALETTE[i % len(PALETTE)]
        path = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in sorted(pts))
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="1.8" '
            f'points="{path}"/>')
        parts.append(
            f'<rect x="{WIDTH-MARGIN-150}" y="{MARGIN+16*i}" width="10" '
            f'height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{WIDTH-MARGIN-136}" y="{MARGIN+9+16*i}" '
            f'font-family="sans-serif" font-size="10">{label}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="bench outputs (default: stdin)")
    parser.add_argument("--outdir", default="figures")
    args = parser.parse_args()

    texts = []
    if args.files:
        for path in args.files:
            with open(path, encoding="utf-8") as handle:
                texts.append(handle.read())
    else:
        texts.append(sys.stdin.read())

    os.makedirs(args.outdir, exist_ok=True)
    written = 0
    for text in texts:
        for name, series in parse_blocks(text):
            safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)
            path = os.path.join(args.outdir, f"{safe}.svg")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(render(name, series))
            print(f"wrote {path}")
            written += 1
    if written == 0:
        print("no CSV blocks found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

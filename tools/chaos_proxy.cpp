// tools/chaos_proxy — AF_UNIX man-in-the-middle wire fault injector.
//
//   chaos_proxy --listen /tmp/chaos.sock --upstream /tmp/linesearch.sock
//               --seed 7 [--fault-cap 3] [--clean-every 4]
//
// relays every accepted connection to the upstream service through one
// svc/chaos ChaosStream per direction: the same deterministic fault
// scripts the in-process differential runs (garbage bytes, forced
// split/merged frames, mid-stream disconnects), but on real sockets and
// real time — a kStall event sleeps, a kDisconnect shuts both sides
// down.  Every fault is a pure function of (seed, connection index,
// direction, byte offset), so a CI replay at a fixed seed perturbs the
// wire identically on every run; with --seed 0 the proxy is a
// transparent relay.  Every clean_every-th connection is relayed
// untouched, so a resilient client always converges (svc/chaos.hpp).
//
// SIGTERM/SIGINT stop the accept loop, wait for active relays to finish
// their current exchange, unlink the listen socket, and exit 0.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "svc/chaos.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_signal(int) { g_stop.store(true); }

/// Write all of `data`, EPIPE-tolerant.  false = peer is gone.
bool write_all(const int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote = ::send(fd, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Obey one direction's chaos events against the destination socket.
/// false = relay over (disconnect fault fired or peer vanished).
bool apply_events(const std::vector<linesearch::svc::ChaosEvent>& events,
                  const int dst) {
  using linesearch::svc::ChaosEvent;
  for (const ChaosEvent& event : events) {
    switch (event.kind) {
      case ChaosEvent::Kind::kDeliver:
        if (!write_all(dst, event.bytes)) return false;
        break;
      case ChaosEvent::Kind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(event.stall_ms));
        break;
      case ChaosEvent::Kind::kDisconnect:
        return false;
    }
  }
  return true;
}

/// One accepted connection: relay both directions through their fault
/// scripts until either side closes, a disconnect fault fires, or the
/// proxy is stopping.
void relay(const int client_fd, const int upstream_fd,
           const linesearch::svc::ChaosConfig& config,
           const std::uint64_t connection) {
  using linesearch::svc::ChaosStream;
  ChaosStream to_server(config, connection, 0);
  ChaosStream to_client(config, connection, 1);

  pollfd fds[2] = {{client_fd, POLLIN, 0}, {upstream_fd, POLLIN, 0}};
  bool open = true;
  while (open && !g_stop.load()) {
    const int ready = ::poll(fds, 2, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    for (int side = 0; side < 2 && open; ++side) {
      if ((fds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char buffer[4096];
      const ssize_t got = ::read(fds[side].fd, buffer, sizeof buffer);
      if (got <= 0) {
        // Side closed: flush the opposite stream's held bytes and stop.
        ChaosStream& stream = side == 0 ? to_server : to_client;
        const int dst = side == 0 ? upstream_fd : client_fd;
        (void)apply_events(stream.flush(), dst);
        open = false;
        break;
      }
      ChaosStream& stream = side == 0 ? to_server : to_client;
      const int dst = side == 0 ? upstream_fd : client_fd;
      if (!apply_events(
              stream.feed(std::string_view(buffer,
                                           static_cast<std::size_t>(got))),
              dst) ||
          stream.disconnected()) {
        open = false;
      }
    }
  }
  ::close(client_fd);
  ::close(upstream_fd);
}

int connect_upstream(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(const int argc, const char* const* argv) {
  using linesearch::CliParser;

  std::string listen_path;
  std::string upstream_path;
  std::uint64_t seed = 0;
  int fault_cap = 3;
  int clean_every = 4;

  CliParser cli("chaos_proxy",
                "deterministic wire-fault MITM for the CR service "
                "(see docs/robustness.md)");
  cli.add_option("listen", &listen_path, "PATH",
                 "AF_UNIX socket to accept clients on (required)");
  cli.add_option("upstream", &upstream_path, "PATH",
                 "AF_UNIX socket of the real service (required)");
  cli.add_option("seed", &seed, "N",
                 "chaos seed; 0 = transparent relay (default 0)");
  cli.add_option("fault-cap", &fault_cap, "N",
                 "max faults per connection per direction (default 3)", 1);
  cli.add_option("clean-every", &clean_every, "N",
                 "every N-th connection is relayed untouched (default 4)",
                 1);
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << '\n' << cli.usage();
    return 2;
  }
  if (listen_path.empty() || upstream_path.empty()) {
    std::cerr << "chaos_proxy: --listen and --upstream are required\n"
              << cli.usage();
    return 2;
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  linesearch::svc::ChaosConfig config;
  config.seed = seed;
  config.fault_cap = fault_cap;
  config.clean_every = clean_every;

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "chaos_proxy: socket: " << std::strerror(errno) << '\n';
    return 1;
  }
  ::unlink(listen_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, listen_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    std::cerr << "chaos_proxy: bind/listen " << listen_path << ": "
              << std::strerror(errno) << '\n';
    ::close(listener);
    return 1;
  }
  std::cerr << "chaos_proxy: " << listen_path << " -> " << upstream_path
            << " seed=" << seed << '\n';

  std::vector<std::thread> relays;
  std::uint64_t connection = 0;
  while (!g_stop.load()) {
    pollfd pfd{listener, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int client_fd = ::accept(listener, nullptr, nullptr);
    if (client_fd < 0) continue;
    const int upstream_fd = connect_upstream(upstream_path);
    if (upstream_fd < 0) {
      std::cerr << "chaos_proxy: upstream connect failed: "
                << std::strerror(errno) << '\n';
      ::close(client_fd);
      continue;
    }
    relays.emplace_back(relay, client_fd, upstream_fd, config, connection);
    ++connection;
  }

  for (std::thread& t : relays) t.join();
  ::close(listener);
  ::unlink(listen_path.c_str());
  std::cerr << "chaos_proxy: drained after " << connection
            << " connections\n";
  return 0;
}

#!/usr/bin/env python3
"""Coverage ratchet: fail CI when line coverage drops below the floor.

Reads a gcovr JSON summary (``gcovr --json-summary``) and compares its
aggregate line coverage against the committed floor in
``ci/coverage_baseline.json``.  The floor only moves UP, and only by a
human editing the baseline file — this script never rewrites it in CI.

    python3 tools/coverage_ratchet.py SUMMARY.json ci/coverage_baseline.json
    python3 tools/coverage_ratchet.py SUMMARY.json BASELINE --update  # local

Exit codes: 0 pass, 1 coverage below the floor, 2 bad input.

The baseline file is JSON: {"line_percent_min": <float 0..100>,
"note": "..."}.  When coverage comfortably exceeds the floor the script
says so, so raising the ratchet stays a deliberate, reviewable one-line
diff rather than an automatic churn source.
"""

import json
import sys

# Raise the floor only when coverage exceeds it by at least this much;
# smaller surpluses are timing/codegen noise between compiler versions.
RAISE_MARGIN = 2.0


def aggregate_line_percent(summary: dict) -> float:
    """Aggregate line coverage of a gcovr --json-summary document."""
    # Prefer exact counts; gcovr's pre-rounded root percent is a fallback.
    covered = summary.get("line_covered")
    total = summary.get("line_total")
    if isinstance(covered, (int, float)) and isinstance(total, (int, float)):
        if total > 0:
            return 100.0 * covered / total
    percent = summary.get("line_percent")
    if isinstance(percent, (int, float)):
        return float(percent)
    raise ValueError("summary has neither line_covered/line_total nor "
                     "line_percent")


def main(argv: list) -> int:
    args = [a for a in argv[1:] if a != "--update"]
    update = "--update" in argv[1:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    summary_path, baseline_path = args
    try:
        with open(summary_path, encoding="utf-8") as handle:
            summary = json.load(handle)
        actual = aggregate_line_percent(summary)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"coverage_ratchet: cannot read summary: {error}",
              file=sys.stderr)
        return 2

    if update:
        baseline = {
            "line_percent_min": round(actual - RAISE_MARGIN, 1),
            "note": "floor = measured aggregate line coverage of the "
                    "filtered set minus a noise margin; raise deliberately",
        }
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"coverage_ratchet: baseline updated to "
              f"{baseline['line_percent_min']:.1f}% (measured {actual:.1f}%)")
        return 0

    try:
        with open(baseline_path, encoding="utf-8") as handle:
            floor = float(json.load(handle)["line_percent_min"])
    except (OSError, KeyError, ValueError, json.JSONDecodeError) as error:
        print(f"coverage_ratchet: cannot read baseline: {error}",
              file=sys.stderr)
        return 2

    print(f"coverage_ratchet: measured {actual:.2f}% line coverage, "
          f"floor {floor:.2f}%")
    if actual < floor:
        print("coverage_ratchet: FAIL — coverage fell below the committed "
              "floor; add tests or (with review) lower the baseline",
              file=sys.stderr)
        return 1
    if actual >= floor + RAISE_MARGIN:
        print(f"coverage_ratchet: note — coverage exceeds the floor by "
              f"{actual - floor:.1f}pp; consider raising "
              f"line_percent_min in the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

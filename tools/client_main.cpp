// tools/client_main — the resilient wire client as a CLI.
//
//   client_main --socket /tmp/linesearch.sock < requests.ndjson
//
// reads newline-delimited JSON request lines from stdin, issues each
// through svc/client's QueryClient (per-request deadlines, capped
// exponential backoff with seeded jitter, reconnect + idempotent
// re-issue), and writes the authoritative response lines to stdout in
// request order.  Because the client either returns the server's exact
// intended bytes or fails structurally, piping a golden request corpus
// through chaos_proxy and diffing stdout against the golden responses
// is a byte-identical check even on a faulty wire — CI's server-chaos
// job does exactly that.
//
// Exit 0 when every request got an authoritative response, 1 when any
// call exhausted its attempts (the error goes to stderr), 2 on usage
// errors.  Lines must carry "id" >= 1 for full corruption detection
// (svc/client.hpp); transport stats land on stderr.
#include <cstdint>
#include <iostream>
#include <string>

#include "svc/client.hpp"
#include "util/cli.hpp"

int main(const int argc, const char* const* argv) {
  using linesearch::CliParser;
  using linesearch::svc::ClientOptions;
  using linesearch::svc::ClientResult;
  using linesearch::svc::QueryClient;

  std::string socket_path;
  int timeout_ms = 2000;
  int max_attempts = 8;
  std::uint64_t jitter_seed = 0x5eed;

  CliParser cli("client_main",
                "resilient NDJSON client for the CR service (requests on "
                "stdin, responses on stdout; see docs/service.md)");
  cli.add_option("socket", &socket_path, "PATH",
                 "AF_UNIX socket of the service (required)");
  cli.add_option("timeout-ms", &timeout_ms, "MS",
                 "per-attempt response deadline (default 2000)", 1);
  cli.add_option("max-attempts", &max_attempts, "N",
                 "attempts per request before giving up (default 8)", 1);
  cli.add_option("jitter-seed", &jitter_seed, "N",
                 "backoff jitter seed (default 0x5eed)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << '\n' << cli.usage();
    return 2;
  }
  if (socket_path.empty()) {
    std::cerr << "client_main: --socket is required\n" << cli.usage();
    return 2;
  }

  ClientOptions options;
  options.socket_path = socket_path;
  options.request_timeout_ms = timeout_ms;
  options.max_attempts = max_attempts;
  options.jitter_seed = jitter_seed;
  QueryClient client(options);

  std::uint64_t requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  int failed = 0;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    ++requests;
    const ClientResult result = client.call_line(line);
    retries += static_cast<std::uint64_t>(result.attempts - 1);
    reconnects += static_cast<std::uint64_t>(result.reconnects);
    if (!result.ok) {
      std::cerr << "client_main: request " << requests << " failed after "
                << result.attempts << " attempts: " << result.error << '\n';
      ++failed;
      continue;
    }
    std::cout << result.response << '\n';
  }
  std::cout.flush();
  std::cerr << "client_main: requests=" << requests << " failed=" << failed
            << " retries=" << retries << " reconnects=" << reconnects
            << '\n';
  return failed == 0 ? 0 : 1;
}

// online_controllers — robots as programs, not precomputed paths.
//
// Runs the A(n, f) robots as online controllers through the runtime
// World (which enforces the kinematic contract), proves on the spot that
// the online execution reproduces the offline schedule, and then races
// the materialized fleet against a target.
//
//   usage: online_controllers [n f target]      (default: 5 3 4.2)
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "eval/exact.hpp"
#include "runtime/world.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "util/format.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  int n = 5, f = 3;
  Real target = 4.2L;
  if (argc == 4) {
    n = std::atoi(argv[1]);
    f = std::atoi(argv[2]);
    target = static_cast<Real>(std::atof(argv[3]));
  }
  try {
    const Real extent = std::max(Real{64}, 32 * std::fabs(target));

    // 1. Execute the controllers online.
    std::vector<ControllerPtr> team;
    for (int robot = 0; robot < n; ++robot) {
      team.push_back(
          std::make_unique<ProportionalController>(n, f, robot, extent));
    }
    std::vector<ExecutionReport> reports;
    const Fleet online = World().execute_team(team, &reports);
    std::cout << "executed " << n << " controllers online:\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      std::cout << "  robot " << i << ": " << reports[i].directives
                << " directives, " << online.robot(i).segment_count()
                << " legs, reach " << fixed(online.robot(i).max_abs_position(), 1)
                << "\n";
    }

    // 2. Cross-check against the offline schedule builder.
    const Fleet offline = ProportionalAlgorithm(n, f).build_fleet(extent);
    Real worst = 0;
    for (RobotId id = 0; id < online.size(); ++id) {
      const auto& a = online.robot(id).waypoints();
      const auto& b = offline.robot(id).waypoints();
      if (a.size() != b.size()) {
        std::cout << "MISMATCH in waypoint counts!\n";
        return 1;
      }
      for (std::size_t w = 0; w < a.size(); ++w) {
        worst = std::max(worst, std::fabs(a[w].position - b[w].position));
        worst = std::max(worst, std::fabs(a[w].time - b[w].time));
      }
    }
    std::cout << "\nonline vs offline worst waypoint deviation: "
              << scientific(worst, 2) << "  (exact schedule reproduced)\n";

    // 3. Race the online fleet against the worst-case faults.
    AdversarialFaults adversary;
    const std::vector<bool> faults =
        adversary.choose_faults(online, target, f);
    const Engine engine(online);
    const SimulationOutcome outcome = engine.run(target, faults);
    std::cout << "\ntarget at " << fixed(target, 3)
              << " with adversarial faults: detected at t = "
              << fixed(outcome.detection_time, 4) << " (ratio "
              << fixed(outcome.detection_time / std::fabs(target), 4)
              << ", proven CR " << fixed(algorithm_cr(n, f), 4) << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// searchline_cli — a multi-tool command line for the library.
//
//   searchline_cli bounds <n> <f>
//       closed-form upper/lower bounds and schedule parameters
//   searchline_cli simulate <n> <f> <target>
//       worst-case (adversarial-fault) search, narrated event log
//   searchline_cli table <n_max>
//       Table-1-style grid for all f < n <= n_max
//   searchline_cli export <n> <f> <extent>
//       fleet waypoints as CSV on stdout (read back with `evaluate`)
//   searchline_cli evaluate <f> < fleet.csv
//       measure the competitive ratio of ANY fleet from waypoint CSV
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "core/strategy.hpp"
#include "eval/cr_eval.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/recorder.hpp"
#include "sim/serialize.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

namespace {

using namespace linesearch;

int usage() {
  std::cerr
      << "usage:\n"
      << "  searchline_cli bounds <n> <f>\n"
      << "  searchline_cli simulate <n> <f> <target>\n"
      << "  searchline_cli table <n_max>\n"
      << "  searchline_cli export <n> <f> <extent>\n"
      << "  searchline_cli evaluate <f>    (fleet CSV on stdin)\n";
  return 2;
}

int cmd_bounds(const int n, const int f) {
  std::cout << "n = " << n << ", f = " << f << "\n"
            << "upper bound (best known): " << fixed(best_known_cr(n, f), 6)
            << "\n"
            << "lower bound (best proved): "
            << fixed(best_lower_bound(n, f), 6) << "\n";
  if (in_proportional_regime(n, f)) {
    std::cout << "A(n,f): beta* = " << fixed(optimal_beta(n, f), 6)
              << ", expansion factor "
              << fixed(optimal_expansion_factor(n, f), 6) << "\n";
  } else {
    std::cout << "regime: n >= 2f+2 — two-group split is optimal (CR 1)\n";
  }
  return 0;
}

int cmd_simulate(const int n, const int f, const Real target) {
  const StrategyPtr strategy = make_optimal_strategy(n, f);
  const Fleet fleet =
      strategy->build_fleet(std::max(Real{64}, 32 * std::fabs(target)));
  AdversarialFaults adversary;
  const std::vector<bool> faults = adversary.choose_faults(fleet, target, f);
  EventLog log;
  const Engine engine(fleet);
  const SimulationOutcome outcome = engine.run(target, faults, &log);
  std::cout << "strategy " << strategy->name() << ", target "
            << fixed(target, 4) << ", adversarial faults\n\n"
            << log.to_text() << "\n";
  if (!outcome.detected) {
    std::cout << "not detected (extent too small)\n";
    return 1;
  }
  std::cout << "ratio " << fixed(outcome.detection_time / std::fabs(target), 4)
            << " vs proven "
            << fixed(strategy->theoretical_cr().value_or(kNaN), 4) << "\n";
  return 0;
}

int cmd_table(const int n_max) {
  TablePrinter table({"n", "f", "upper", "lower", "expansion"});
  for (int n = 2; n <= n_max; ++n) {
    for (int f = 1; f < n; ++f) {
      table.add_row({cell(static_cast<long long>(n)),
                     cell(static_cast<long long>(f)),
                     fixed(best_known_cr(n, f), 4),
                     fixed(best_lower_bound(n, f), 4),
                     in_proportional_regime(n, f)
                         ? fixed(optimal_expansion_factor(n, f), 3)
                         : "-"});
    }
  }
  table.print(std::cout);
  return 0;
}

int cmd_export(const int n, const int f, const Real extent) {
  const StrategyPtr strategy = make_optimal_strategy(n, f);
  write_fleet_csv(std::cout, strategy->build_fleet(extent));
  return 0;
}

int cmd_evaluate(const int f) {
  const Fleet fleet = read_fleet_csv(std::cin);
  // Probe up to a quarter of the fleet's reach so the (f+1)-st visit of
  // every probe still falls inside the trajectories.
  Real reach = fleet.robot(0).max_abs_position();
  for (RobotId id = 1; id < fleet.size(); ++id) {
    reach = std::min(reach, fleet.robot(id).max_abs_position());
  }
  CrEvalOptions options;
  options.window_hi = std::max(Real{2}, reach / 32);
  options.require_finite = false;
  const CrEvalResult result = measure_cr(fleet, f, options);
  std::cout << "fleet: " << fleet.size() << " robots, horizon "
            << fixed(fleet.horizon(), 2) << "\n"
            << "measured CR over |x| in [1, " << fixed(options.window_hi, 2)
            << "] with f = " << f << ": " << fixed(result.cr, 6)
            << " (argmax x = " << fixed(result.argmax, 4) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "bounds" && argc == 4) {
      return cmd_bounds(std::atoi(argv[2]), std::atoi(argv[3]));
    }
    if (command == "simulate" && argc == 5) {
      return cmd_simulate(std::atoi(argv[2]), std::atoi(argv[3]),
                          static_cast<Real>(std::atof(argv[4])));
    }
    if (command == "table" && argc == 3) {
      return cmd_table(std::atoi(argv[2]));
    }
    if (command == "export" && argc == 5) {
      return cmd_export(std::atoi(argv[2]), std::atoi(argv[3]),
                        static_cast<Real>(std::atof(argv[4])));
    }
    if (command == "evaluate" && argc == 3) {
      return cmd_evaluate(std::atoi(argv[2]));
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// adversarial_game — play Theorem 2's adversary against a strategy of
// your choice and watch it force a bad ratio.
//
// The adversary threatens the placements {±1, ±x_{n-1}, ..., ±x_0} of
// the lower-bound proof and, for each, makes faulty the f robots that
// would detect first.  Against ANY strategy with n < 2f+2 robots it
// forces ratio >= alpha; against the two-group split (n >= 2f+2) it
// cannot.
//
//   usage: adversarial_game [n f]      (default: 3 1)
#include <cstdlib>
#include <iostream>

#include "adversary/game.hpp"
#include "adversary/placements.hpp"
#include "core/lower_bound.hpp"
#include "core/strategy.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  int n = 3, f = 1;
  if (argc == 3) {
    n = std::atoi(argv[1]);
    f = std::atoi(argv[2]);
  }
  try {
    const Real alpha = comfortable_alpha(n, 0.85L);
    const StrategyPtr strategy = make_optimal_strategy(n, f);
    std::cout << "defender:  " << strategy->name() << " (proven CR "
              << fixed(strategy->theoretical_cr().value_or(kNaN), 4)
              << ")\n"
              << "adversary: Theorem-2 placements at threat level alpha = "
              << fixed(alpha, 4) << " (exact root for n=" << n << ": "
              << fixed(theorem2_alpha(n), 4) << ")\n\n";

    const Fleet fleet =
        strategy->build_fleet(largest_placement(alpha) * 4);
    const GameResult game = play_theorem2_game(fleet, f, alpha);

    TablePrinter table({"target", "detection time", "ratio", "faulted"});
    for (const PlacementOutcome& outcome : game.outcomes) {
      std::string faulted;
      for (std::size_t id = 0; id < outcome.faults.size(); ++id) {
        if (outcome.faults[id]) {
          if (!faulted.empty()) faulted += ",";
          faulted += std::to_string(id);
        }
      }
      table.add_row({fixed(outcome.target, 4),
                     fixed(outcome.detection_time, 4),
                     fixed(outcome.ratio, 4),
                     faulted.empty() ? "-" : faulted});
    }
    table.print(std::cout);

    std::cout << "\nadversary's best: target at "
              << fixed(game.best.target, 4) << " forces ratio "
              << fixed(game.forced_ratio, 4) << "\n";
    if (n < 2 * f + 2) {
      std::cout << "as Theorem 2 promises, forced ratio >= alpha = "
                << fixed(alpha, 4)
                << " — no algorithm with n < 2f+2 robots escapes.\n";
    } else {
      std::cout << "n >= 2f+2: the two-group split detects at distance "
                   "exactly, ratio 1 — the bound does not apply.\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

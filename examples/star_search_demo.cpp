// star_search_demo — search on m rays, the star generalization.
//
// Shows the classic single-robot sweep at the textbook-optimal expansion
// factor m/(m-1), then a faulty-robot fleet on the same star, with
// measured competitive ratios for both.
//
//   usage: star_search_demo [m n f]      (default: 3 4 1)
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "star/search.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  int m = 3, n = 4, f = 1;
  if (argc == 4) {
    m = std::atoi(argv[1]);
    n = std::atoi(argv[2]);
    f = std::atoi(argv[3]);
  }
  try {
    std::cout << "Search on a star of " << m << " rays\n\n";

    // Single robot, classic.
    const Real kappa = star_optimal_kappa(m);
    const StarFleet single({star_sweep(m, kappa, 1, 20000)});
    const StarCrResult classic = star_cr(single, m, 0, 16, 160);
    std::cout << "single robot, geometric sweep at kappa* = "
              << fixed(kappa, 4) << ":\n"
              << "  measured CR " << fixed(classic.cr, 4)
              << "  (textbook 1 + 2m^m/(m-1)^(m-1) = "
              << fixed(star_optimal_cr(m), 4) << ")\n\n";

    // Faulty fleet.
    if (n / std::gcd(n, m) < f + 1) {
      std::cout << "n/gcd(n,m) = " << n / std::gcd(n, m) << " < f+1 = "
                << f + 1
                << ": each ray is served by too few robots for " << f
                << " faults — pick n with n/gcd(n,m) >= f+1.\n";
      return 1;
    }
    std::cout << n << " robots, up to " << f
              << " faulty, global geometric grid (rho swept):\n\n";
    TablePrinter table({"rho", "measured CR (f faults)"});
    Real best = kInfinity, best_rho = 0;
    for (const Real rho : {1.2L, 1.35L, 1.5L, 1.8L, 2.2L, 2.8L}) {
      const StarFleet fleet = star_proportional(m, n, rho, 8000);
      const Real cr = star_cr(fleet, m, f, 8, 64).cr;
      table.add_row({fixed(rho, 2), fixed(cr, 4)});
      if (cr < best) {
        best = cr;
        best_rho = rho;
      }
    }
    table.print(std::cout);
    std::cout << "\nbest: CR " << fixed(best, 4) << " at rho = "
              << fixed(best_rho, 2) << " — fault tolerance AND a "
              << fixed(star_optimal_cr(m) / best, 1)
              << "x speedup over the single searcher.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// random_faults_demo — how lucky do you get when the faults are NOT
// adversarial?  Runs the Monte-Carlo study of eval/montecarlo on A(n, f)
// and prints the ratio distribution as a histogram next to the exact
// adversarial competitive ratio.
//
//   usage: random_faults_demo [n f trials]      (default: 5 2 2000)
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/algorithm.hpp"
#include "eval/montecarlo.hpp"
#include "sim/faults.hpp"
#include "util/format.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  int n = 5, f = 2, trials = 2000;
  if (argc >= 3) {
    n = std::atoi(argv[1]);
    f = std::atoi(argv[2]);
  }
  if (argc >= 4) trials = std::atoi(argv[3]);

  try {
    const ProportionalAlgorithm algo(n, f);
    const Fleet fleet = algo.build_fleet(1200);
    MonteCarloOptions options;
    options.trials = trials;
    options.target_hi = 24;
    const MonteCarloResult result = random_fault_study(fleet, f, options);

    std::cout << algo.name() << ", " << trials
              << " trials, random fault sets of size " << f
              << ", targets log-uniform in ±[1, 24]\n\n";

    const int buckets = 24;
    const Real lo = 1, hi = result.adversarial_cr;
    std::cout << "ratio distribution:\n"
              << "  min    = " << fixed(result.ratio.min, 3) << '\n'
              << "  median = " << fixed(result.median, 3) << '\n'
              << "  mean   = " << fixed(result.ratio.mean, 3) << '\n'
              << "  p95    = " << fixed(result.p95, 3) << '\n'
              << "  max    = " << fixed(result.worst_sample, 3) << '\n'
              << "  sigma  = " << fixed(result.ratio.stddev, 3) << '\n'
              << "adversarial CR on the same window: "
              << fixed(result.adversarial_cr, 3) << '\n';

    const auto bar = [&](const Real value) {
      const Real fraction =
          std::clamp((value - lo) / (hi - lo), Real{0}, Real{1});
      const int width = static_cast<int>(fraction * buckets);
      std::string row = "[";
      row.append(static_cast<std::size_t>(width), '#');
      row.append(static_cast<std::size_t>(buckets - width), ' ');
      row += "]";
      return row;
    };
    std::cout << "\nscale [1 .. " << fixed(hi, 2) << "]:\n"
              << "  median " << bar(result.median) << '\n'
              << "  mean   " << bar(result.ratio.mean) << '\n'
              << "  p95    " << bar(result.p95) << '\n'
              << "  max    " << bar(result.worst_sample) << '\n'
              << "  advrs  " << bar(result.adversarial_cr) << '\n';

    std::cout << "\nadversity premium (adversarial / random mean): "
              << fixed(result.adversarial_cr / result.ratio.mean, 2)
              << "x\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

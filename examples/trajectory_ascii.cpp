// trajectory_ascii — draw the space/time diagram of a proportional
// schedule in your terminal (the paper's Figures 2-4, live).
//
//   usage: trajectory_ascii [n f [target]]      (default: 3 1, no target)
#include <cstdlib>
#include <iostream>

#include "core/algorithm.hpp"
#include "core/competitive.hpp"
#include "sim/recorder.hpp"
#include "util/format.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  int n = 3, f = 1;
  Real target = kNaN;
  if (argc >= 3) {
    n = std::atoi(argv[1]);
    f = std::atoi(argv[2]);
  }
  if (argc >= 4) target = static_cast<Real>(std::atof(argv[3]));

  try {
    const ProportionalAlgorithm algo(n, f);
    const Fleet fleet = algo.build_fleet(64);

    std::cout << algo.name() << ": beta = " << fixed(algo.beta(), 4)
              << ", expansion factor "
              << fixed(optimal_expansion_factor(n, f), 4) << ", CR "
              << fixed(algorithm_cr(n, f), 4) << "\n"
              << "robots drawn as digits, origin '|', cone boundary '.'"
              << (std::isfinite(static_cast<double>(target))
                      ? ", target column ':'"
                      : "")
              << "\n\n";

    RenderOptions options;
    options.max_position = 16;
    options.max_time = 16 * algo.beta();
    options.rows = 36;
    options.columns = 79;
    options.cone_beta = algo.beta();
    options.target = target;
    std::cout << render_space_time(fleet, options);

    std::cout << "\nEach robot leaves the origin at speed 1/beta, hits "
                 "its first turning point on the\n"
              << "cone, then zig-zags at unit speed; the global turning "
                 "sequence is geometric with\n"
              << "ratio r = "
              << fixed(algo.schedule().proportionality_ratio(), 4)
              << " and consecutive turns belong to distinct robots "
                 "(Definition 2).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// fleet_report — a capacity-planning view: for a fleet of n robots, how
// does the guaranteed search performance degrade as the fault budget f
// grows?  Prints, for each f < n, the regime, the strategy the paper
// prescribes, its proven competitive ratio, the measured value from the
// exact simulator, and the best lower bound.
//
//   usage: fleet_report [n]      (default: 8)
#include <cstdlib>
#include <iostream>

#include "core/competitive.hpp"
#include "core/lower_bound.hpp"
#include "eval/validation.hpp"
#include "util/format.hpp"
#include "util/table.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  const int n = (argc == 2) ? std::atoi(argv[1]) : 8;
  try {
    std::cout << "Fault-tolerance report for a fleet of " << n
              << " unit-speed robots searching a line\n\n";

    TablePrinter table({"f", "regime", "strategy", "proven CR",
                        "measured CR", "lower bound", "optimal?"});
    table.set_alignment(1, Align::kLeft);
    table.set_alignment(2, Align::kLeft);

    for (int f = 0; f < n; ++f) {
      const bool trivial = n >= 2 * f + 2;
      const ValidationRow row =
          validate_pair(n, f, {.window_hi = 12, .extent_factor = 32});
      const bool tight =
          approx_equal(row.theory_cr, row.lower_bound, 1e-6L);
      table.add_row({cell(static_cast<long long>(f)),
                     trivial ? "n >= 2f+2 (split)" : "f < n < 2f+2",
                     row.strategy, fixed(row.theory_cr, 4),
                     fixed(row.measured_cr, 4), fixed(row.lower_bound, 4),
                     tight ? "yes (tight)" : "gap remains"});
    }
    table.print(std::cout);

    std::cout << "\nHow to read this:\n"
              << "  * up to f = " << (n - 2) / 2
              << " faults cost nothing (CR 1, two groups of f+1);\n"
              << "  * beyond that the proportional schedule takes over, "
                 "degrading smoothly to the\n"
              << "    cow-path bound 9 at f = n-1 (where it is provably "
                 "optimal);\n"
              << "  * 'gap remains' rows are pinched between Theorem 1 "
                 "and Theorem 2.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// quickstart — the 60-second tour of the library.
//
// Build the paper's optimal strategy for n robots with up to f faults,
// place a target, let the adversary pick the worst fault set, replay the
// search with the event engine, and compare against the proven
// competitive ratio.
//
//   usage: quickstart [n f target]      (default: 3 1 7.5)
#include <cstdlib>
#include <iostream>

#include "core/strategy.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/recorder.hpp"
#include "util/format.hpp"

using namespace linesearch;

int main(int argc, char** argv) {
  int n = 3, f = 1;
  Real target = 7.5L;
  if (argc == 4) {
    n = std::atoi(argv[1]);
    f = std::atoi(argv[2]);
    target = static_cast<Real>(std::atof(argv[3]));
  }

  try {
    // 1. Pick the paper's best strategy for (n, f): the two-group split
    //    when n >= 2f+2, the proportional schedule algorithm otherwise.
    const StrategyPtr strategy = make_optimal_strategy(n, f);
    std::cout << "strategy: " << strategy->name() << "  (proven CR "
              << fixed(strategy->theoretical_cr().value_or(kNaN), 4)
              << ")\n";

    // 2. Materialize trajectories covering targets up to |x| <= extent.
    const Fleet fleet = strategy->build_fleet(16 * std::fabs(target) + 16);

    // 3. Worst case: the adversary makes faulty the f robots that would
    //    otherwise find the target first.
    AdversarialFaults adversary;
    const std::vector<bool> faults =
        adversary.choose_faults(fleet, target, f);

    // 4. Replay the search as a chronological event stream.
    EventLog log;
    const Engine engine(fleet);
    const SimulationOutcome outcome = engine.run(target, faults, &log);

    std::cout << "\nevent log (target at x = " << fixed(target, 3)
              << "):\n"
              << log.to_text();

    if (!outcome.detected) {
      std::cout << "\ntarget NOT detected — increase the fleet extent\n";
      return 1;
    }
    std::cout << "\ndetected by robot " << *outcome.detector << " at t = "
              << fixed(outcome.detection_time, 4) << " after "
              << outcome.visits_before_detection
              << " fruitless visits by faulty robots\n"
              << "achieved ratio: "
              << fixed(outcome.detection_time / std::fabs(target), 4)
              << "  (proven worst case "
              << fixed(strategy->theoretical_cr().value_or(kNaN), 4)
              << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

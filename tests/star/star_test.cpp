// Tests for the m-ray star substrate and strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "star/search.hpp"
#include "star/trajectory.hpp"
#include "util/error.hpp"

namespace linesearch {
namespace {

// -------------------------------------------------------- trajectory --

TEST(StarTrajectoryTest, ExcursionBuilderShape) {
  StarTrajectoryBuilder builder;
  builder.excursion(0, 1).excursion(1, 2).excursion(2, 4);
  const StarTrajectory t = std::move(builder).build();
  // origin + 3 * (tip, origin) = 7 waypoints; total time 2(1+2+4) = 14.
  EXPECT_EQ(t.waypoints().size(), 7u);
  EXPECT_EQ(t.end_time(), 14.0L);
}

TEST(StarTrajectoryTest, FirstVisitOnOutboundLeg) {
  StarTrajectoryBuilder builder;
  builder.excursion(0, 1).excursion(1, 2);
  const StarTrajectory t = std::move(builder).build();
  // (ray 1, 1.5): reached at t = 2 (end of first excursion) + 1.5.
  EXPECT_NEAR(static_cast<double>(*t.first_visit_time({1, 1.5L})), 3.5,
              1e-15);
  // (ray 0, 0.5): on the very first leg.
  EXPECT_EQ(*t.first_visit_time({0, 0.5L}), 0.5L);
}

TEST(StarTrajectoryTest, UnvisitedRayReturnsNullopt) {
  StarTrajectoryBuilder builder;
  builder.excursion(0, 2);
  const StarTrajectory t = std::move(builder).build();
  EXPECT_FALSE(t.first_visit_time({1, 1.0L}).has_value());
  EXPECT_FALSE(t.first_visit_time({0, 3.0L}).has_value());
}

TEST(StarTrajectoryTest, OriginBelongsToEveryRay) {
  StarTrajectoryBuilder builder;
  builder.excursion(2, 1);
  const StarTrajectory t = std::move(builder).build();
  for (int ray = 0; ray < 5; ++ray) {
    EXPECT_EQ(*t.first_visit_time({ray, 0}), 0.0L) << ray;
  }
}

TEST(StarTrajectoryTest, ReachAndTurningDepths) {
  StarTrajectoryBuilder builder;
  builder.excursion(0, 1).excursion(1, 2).excursion(0, 4).excursion(1, 8);
  const StarTrajectory t = std::move(builder).build();
  EXPECT_EQ(t.reach(0), 4.0L);
  EXPECT_EQ(t.reach(1), 8.0L);
  EXPECT_EQ(t.turning_depths(0), (std::vector<Real>{1, 4}));
  EXPECT_EQ(t.turning_depths(1), (std::vector<Real>{2, 8}));
}

TEST(StarTrajectoryTest, ValidationRejectsIllegalMoves) {
  // Ray change away from the origin.
  EXPECT_THROW(StarTrajectory({{0, 0, 0}, {1, 0, 1}, {2, 1, 2}}),
               PreconditionError);
  // Super-unit speed.
  EXPECT_THROW(StarTrajectory({{0, 0, 0}, {1, 0, 3}}), PreconditionError);
  // Non-increasing time.
  EXPECT_THROW(StarTrajectory({{0, 0, 0}, {0, 0, 0}}), PreconditionError);
  // Negative distance.
  EXPECT_THROW(StarTrajectory({{0, 0, -1}}), PreconditionError);
}

TEST(StarTrajectoryTest, FinalOutLeg) {
  StarTrajectoryBuilder builder;
  builder.excursion(0, 1);
  builder.final_out(1, 3);
  const StarTrajectory t = std::move(builder).build();
  EXPECT_EQ(t.end_time(), 5.0L);
  EXPECT_EQ(*t.first_visit_time({1, 3.0L}), 5.0L);
}

// ------------------------------------------------------------- sweep --

TEST(StarSweepTest, ClosedFormRatioJustPastDepths) {
  // Worst ratio just past excursion depth kappa^j on the sweep is
  // 1 + 2 kappa^m/(kappa-1) minus a vanishing correction.
  const int m = 3;
  const Real kappa = 1.5L;
  const StarTrajectory sweep = star_sweep(m, kappa, 1, 3000);
  const StarFleet fleet({sweep});
  const Real limit = star_sweep_cr(m, kappa);
  // Probe just past a mid-schedule depth on each ray.
  Real worst = 0;
  for (int ray = 0; ray < m; ++ray) {
    for (const Real depth : fleet.turning_depths(ray)) {
      if (depth < 10 || depth > 100) continue;
      const Real d = depth * (1 + 1e-9L);
      worst = std::max(worst,
                       fleet.detection_time({ray, d}, 0) / d);
    }
  }
  EXPECT_GT(worst, limit - 0.2L);
  EXPECT_LT(worst, limit + 1e-6L);
}

TEST(StarSweepTest, LineSpecialCaseIsTheCowPath) {
  // m = 2, kappa = 2 reduces to the classic doubling: closed form 9.
  EXPECT_NEAR(static_cast<double>(star_sweep_cr(2, 2)), 9.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(star_optimal_cr(2)), 9.0, 1e-15);
  EXPECT_NEAR(static_cast<double>(star_optimal_kappa(2)), 2.0, 1e-15);
}

TEST(StarSweepTest, TextbookConstantsForSmallM) {
  // 1 + 2 m^m/(m-1)^(m-1): 14.5 (m=3), ~19.96 (m=4), ~25.42 (m=5).
  EXPECT_NEAR(static_cast<double>(star_optimal_cr(3)), 14.5, 1e-12);
  EXPECT_NEAR(static_cast<double>(star_optimal_cr(4)), 1 + 512.0 / 27,
              1e-12);
  EXPECT_NEAR(static_cast<double>(star_optimal_cr(5)), 1 + 6250.0 / 256,
              1e-12);
}

TEST(StarSweepTest, OptimalKappaMinimizesMeasuredCr) {
  const int m = 3;
  const Real kappa_star = star_optimal_kappa(m);
  const auto measured = [&](const Real kappa) {
    const StarFleet fleet({star_sweep(m, kappa, 1, 5000)});
    return star_cr(fleet, m, 0, 8, 80).cr;
  };
  const Real at_star = measured(kappa_star);
  EXPECT_NEAR(static_cast<double>(at_star),
              static_cast<double>(star_optimal_cr(m)), 0.2);
  EXPECT_LT(at_star, measured(kappa_star * 1.4L));
  EXPECT_LT(at_star, measured(1 + (kappa_star - 1) / 2));
}

// ---------------------------------------------------------- faulty ----

TEST(StarProportionalTest, CoverageAndDetection) {
  // m = 3 rays, n = 4 robots (coprime): every ray served by all robots.
  const StarFleet fleet = star_proportional(3, 4, 1.3L, 200);
  EXPECT_EQ(fleet.size(), 4u);
  for (int ray = 0; ray < 3; ++ray) {
    for (const Real d : {1.0L, 7.7L, 50.0L}) {
      for (int f = 0; f < 4; ++f) {
        EXPECT_TRUE(std::isfinite(fleet.detection_time({ray, d}, f)))
            << ray << " " << static_cast<double>(d) << " " << f;
      }
    }
  }
}

TEST(StarProportionalTest, FaultsDelayDetectionMonotonically) {
  const StarFleet fleet = star_proportional(3, 4, 1.3L, 200);
  const StarPoint target{1, 20.0L};
  Real previous = 0;
  for (int f = 0; f < 4; ++f) {
    const Real time = fleet.detection_time(target, f);
    EXPECT_GE(time, previous);
    previous = time;
  }
}

TEST(StarProportionalTest, GcdLimitsCoverage) {
  // m = 2, n = 2: gcd 2, each ray served by exactly one robot — f = 1
  // detection is impossible and the evaluator reports it.
  const StarFleet fleet = star_proportional(2, 2, 1.5L, 100);
  EXPECT_TRUE(std::isinf(fleet.detection_time({0, 5.0L}, 1)));
  EXPECT_THROW((void)star_cr(fleet, 2, 1, 2, 50), NumericError);
}

TEST(StarProportionalTest, LineCaseBeatsSingleRobotNine) {
  // m = 2, n = 3 (f = 1): the faulty-robot star schedule with a tuned
  // rho must beat running the single-robot sweep three times... i.e. be
  // meaningfully below the naive 3-robot pack bound of 9+.
  const StarFleet fleet = star_proportional(2, 3, 1.6L, 3000);
  const StarCrResult result = star_cr(fleet, 2, 1, 4, 64);
  EXPECT_LT(result.cr, 9.0L);
  EXPECT_GT(result.cr, 3.0L);
}

TEST(StarGuards, ArgumentValidation) {
  EXPECT_THROW((void)star_sweep(1, 2, 1, 10), PreconditionError);
  EXPECT_THROW((void)star_sweep(3, 1, 1, 10), PreconditionError);
  EXPECT_THROW((void)star_proportional(3, 0, 1.5L, 10), PreconditionError);
  EXPECT_THROW((void)star_proportional(3, 2, 1.0L, 10), PreconditionError);
  EXPECT_THROW((void)star_optimal_cr(1), PreconditionError);
  const StarFleet fleet = star_proportional(3, 4, 1.3L, 50);
  EXPECT_THROW((void)star_cr(fleet, 1, 0, 2, 40), PreconditionError);
  EXPECT_THROW((void)star_cr(fleet, 3, 0, 5, 2), PreconditionError);
}

}  // namespace
}  // namespace linesearch
